#include "gen/taskset_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "gen/uunifast.hpp"

namespace edfkit {
namespace {

double actual_utilization(const std::vector<Task>& tasks) {
  double u = 0.0;
  for (const Task& t : tasks) u += t.utilization_double();
  return u;
}

/// Nudge WCETs (within [1, D]) until the utilization error is inside the
/// tolerance. Works from the largest period down: large T gives the
/// finest step (1/T) and the widest absolute range.
bool repair_utilization(std::vector<Task>& tasks, double target, double tol) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].period > tasks[b].period;
  });
  for (int pass = 0; pass < 8; ++pass) {
    const double diff = target - actual_utilization(tasks);
    if (std::abs(diff) <= tol) return true;
    bool moved = false;
    for (const std::size_t i : order) {
      Task& t = tasks[i];
      const double want = diff * static_cast<double>(t.period);
      Time delta = static_cast<Time>(std::llround(want));
      if (delta == 0) delta = (diff > 0) ? 1 : -1;
      const Time new_c = std::clamp<Time>(t.wcet + delta, 1, t.deadline);
      if (new_c != t.wcet) {
        t.wcet = new_c;
        moved = true;
        break;
      }
    }
    if (!moved) return std::abs(target - actual_utilization(tasks)) <= tol;
  }
  return std::abs(target - actual_utilization(tasks)) <= tol;
}

}  // namespace

void GeneratorConfig::validate() const {
  if (tasks < 1) throw std::invalid_argument("GeneratorConfig: tasks < 1");
  if (!(utilization > 0.0))
    throw std::invalid_argument("GeneratorConfig: utilization <= 0");
  if (period_min < 2 || period_max < period_min)
    throw std::invalid_argument("GeneratorConfig: bad period range");
  if (gap_mean < 0.0 || gap_mean > 0.95)
    throw std::invalid_argument("GeneratorConfig: gap_mean out of [0, 0.95]");
  if (gap_halfwidth < 0.0)
    throw std::invalid_argument("GeneratorConfig: negative gap_halfwidth");
  if (max_attempts < 1)
    throw std::invalid_argument("GeneratorConfig: max_attempts < 1");
}

TaskSet generate_task_set(Rng& rng, const GeneratorConfig& cfg) {
  cfg.validate();
  for (int attempt = 0; attempt < cfg.max_attempts; ++attempt) {
    const std::vector<double> us =
        uunifast(rng, cfg.tasks, cfg.utilization);
    std::vector<Task> tasks;
    tasks.reserve(us.size());
    bool ok = true;
    for (std::size_t i = 0; i < us.size(); ++i) {
      Task t;
      t.period = (cfg.period_dist == PeriodDistribution::Uniform)
                     ? rng.uniform_time(cfg.period_min, cfg.period_max)
                     : rng.log_uniform_time(cfg.period_min, cfg.period_max);
      t.wcet = std::max<Time>(
          1, round_to_time(us[i] * static_cast<double>(t.period), 1,
                           t.period));
      const double gap = std::clamp(
          rng.uniform(cfg.gap_mean - cfg.gap_halfwidth,
                      cfg.gap_mean + cfg.gap_halfwidth),
          0.0, 0.98);
      const Time d_raw = round_to_time(
          (1.0 - gap) * static_cast<double>(t.period), 1, t.period);
      t.deadline = std::clamp(d_raw, t.wcet, t.period);
      t.name = "t" + std::to_string(i);
      if (!t.valid()) {
        ok = false;
        break;
      }
      tasks.push_back(std::move(t));
    }
    if (!ok) continue;
    if (!repair_utilization(tasks, cfg.utilization,
                            cfg.utilization_tolerance))
      continue;
    return TaskSet(std::move(tasks));
  }
  throw std::runtime_error(
      "generate_task_set: could not hit the utilization tolerance; relax "
      "the config (larger periods or tolerance)");
}

}  // namespace edfkit
