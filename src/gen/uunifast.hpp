/// \file uunifast.hpp
/// UUniFast (Bini & Buttazzo): unbiased uniform sampling of n task
/// utilizations summing to a target U. The paper's experiments (§5)
/// follow "the uniform distribution proposed by Bini [4]"; UUniFast is
/// that construction — it avoids the biasing effects of naive
/// normalization the cited paper analyzes.
#pragma once

#include <vector>

#include "util/random.hpp"

namespace edfkit {

/// Draw n utilizations u_i > 0 with Sigma u_i == total, uniformly over
/// the simplex. \pre n >= 1, total > 0
[[nodiscard]] std::vector<double> uunifast(Rng& rng, int n, double total);

}  // namespace edfkit
