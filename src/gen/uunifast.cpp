#include "gen/uunifast.hpp"

#include <cmath>
#include <stdexcept>

namespace edfkit {

std::vector<double> uunifast(Rng& rng, int n, double total) {
  if (n < 1) throw std::invalid_argument("uunifast: n < 1");
  if (!(total > 0.0)) throw std::invalid_argument("uunifast: total <= 0");
  std::vector<double> us;
  us.reserve(static_cast<std::size_t>(n));
  double sum = total;
  for (int i = 1; i < n; ++i) {
    // next = sum * U(0,1)^(1/(n-i)): order statistics of the simplex.
    const double next =
        sum * std::pow(rng.uniform(0.0, 1.0), 1.0 / static_cast<double>(n - i));
    us.push_back(sum - next);
    sum = next;
  }
  us.push_back(sum);
  return us;
}

}  // namespace edfkit
