#include "gen/scenario.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "gen/uunifast.hpp"

namespace edfkit {
namespace {

constexpr std::array<double, 3> kPaperGaps = {0.2, 0.3, 0.4};

}  // namespace

TaskSet draw_fig1_set(Rng& rng, double utilization) {
  GeneratorConfig cfg;
  cfg.tasks = rng.uniform_int(5, 100);
  cfg.utilization = utilization;
  cfg.gap_mean = kPaperGaps[static_cast<std::size_t>(rng.uniform_int(0, 2))];
  cfg.period_min = 10'000;
  cfg.period_max = 1'000'000;
  return generate_task_set(rng, cfg);
}

TaskSet draw_fig8_set(Rng& rng, double utilization) {
  // Same family as Fig. 1; the paper reuses the generation and sweeps
  // 90-99 % with gaps 20/30/40 %.
  return draw_fig1_set(rng, utilization);
}

TaskSet draw_fig9_set(Rng& rng, Time period_ratio) {
  GeneratorConfig cfg;
  cfg.tasks = rng.uniform_int(5, 100);
  cfg.utilization = rng.uniform(0.90, 0.9999);
  cfg.utilization_tolerance = 0.0005;
  cfg.gap_mean = rng.uniform(0.10, 0.50);
  cfg.gap_halfwidth = 0.05;
  cfg.period_min = 1'000;
  cfg.period_max = mul_saturating(cfg.period_min, period_ratio);
  // Spread periods across the whole ratio so Tmax/Tmin is actually hit.
  cfg.period_dist = PeriodDistribution::LogUniform;
  return generate_task_set(rng, cfg);
}

TaskSet draw_small_set(Rng& rng, double utilization) {
  // Periods come from a divisor-rich pool (lcm == 240) so the hyperperiod
  // stays tiny and the EDF simulator can serve as an exact oracle.
  static constexpr std::array<Time, 14> kPool = {4,  5,  6,  8,  10, 12, 15,
                                                 16, 20, 24, 30, 40, 48, 60};
  const int n = rng.uniform_int(2, 12);
  const std::vector<double> us = uunifast(rng, n, utilization);
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Task t;
    t.period = kPool[static_cast<std::size_t>(rng.uniform_int(0, 13))];
    t.wcet = std::max<Time>(
        1, round_to_time(us[static_cast<std::size_t>(i)] *
                             static_cast<double>(t.period),
                         1, t.period));
    const double gap = rng.uniform(0.0, 0.5);
    const Time d_raw = round_to_time(
        (1.0 - gap) * static_cast<double>(t.period), 1, t.period);
    t.deadline = std::clamp(d_raw, t.wcet, t.period);
    t.name = "s" + std::to_string(i);
    tasks.push_back(std::move(t));
  }
  return TaskSet(std::move(tasks));
}

}  // namespace edfkit
