/// \file scenario.hpp
/// Ready-made workload scenarios matching the paper's §5 experiments, so
/// benches and tests draw from one definition.
#pragma once

#include <vector>

#include "gen/taskset_gen.hpp"

namespace edfkit {

/// Figure 1 workload: utilization swept 70-100 %, n in [5, 100], average
/// gap drawn from {20, 30, 40} %.
[[nodiscard]] TaskSet draw_fig1_set(Rng& rng, double utilization);

/// Figure 8 workload: utilization in [90, 99] %, n in [5, 100], average
/// gap in {20, 30, 40} % (uniformly chosen per set).
[[nodiscard]] TaskSet draw_fig8_set(Rng& rng, double utilization);

/// Figure 9 workload: given Tmax/Tmin ratio, n in [5, 100], gap mean in
/// [10, 50] %, utilization in [90, 100) %.
[[nodiscard]] TaskSet draw_fig9_set(Rng& rng, Time period_ratio);

/// Small feasible-or-not sets for property tests: n in [2, 12], coarse
/// periods (hyperperiod small enough for simulation cross-checks).
[[nodiscard]] TaskSet draw_small_set(Rng& rng, double utilization);

}  // namespace edfkit
