/// \file taskset_gen.hpp
/// Random task-set generation following the paper's §5 methodology:
/// UUniFast utilizations, equally (or log-) distributed periods, and a
/// "gap" parameter — the relative difference between deadline and period
/// (gap g => D ~= (1-g)*T).
///
/// All parameters are integers (ticks); after rounding, an exact repair
/// pass nudges WCETs so the achieved utilization lands inside the
/// requested tolerance band — without it, rounding noise near U = 100 %
/// silently tips sets over the U <= 1 boundary and biases acceptance
/// statistics (the effect Bini & Buttazzo [4] warn about).
#pragma once

#include <cstdint>

#include "model/task_set.hpp"
#include "util/random.hpp"

namespace edfkit {

enum class PeriodDistribution : std::uint8_t {
  Uniform,     ///< T ~ U[tmin, tmax] (paper Figs. 1/8)
  LogUniform,  ///< log T ~ U[log tmin, log tmax] (paper Fig. 9 sweeps)
};

struct GeneratorConfig {
  int tasks = 10;                  ///< n
  double utilization = 0.95;       ///< target U
  double utilization_tolerance = 0.002;  ///< accepted |U_actual - U|
  Time period_min = 10'000;        ///< Tmin (ticks)
  Time period_max = 1'000'000;     ///< Tmax (ticks)
  PeriodDistribution period_dist = PeriodDistribution::Uniform;
  double gap_mean = 0.3;           ///< mean of (T - D)/T
  double gap_halfwidth = 0.1;      ///< gap_i ~ U[mean-hw, mean+hw], clipped
  int max_attempts = 64;           ///< regeneration attempts before giving up

  void validate() const;
};

/// Generate one task set. Guarantees: every task valid, C_i <= D_i (no
/// trivially dead tasks), and |U_actual - utilization| <= tolerance.
/// \throws std::runtime_error if max_attempts regenerations cannot meet
/// the tolerance (pathological configs only).
[[nodiscard]] TaskSet generate_task_set(Rng& rng, const GeneratorConfig& cfg);

}  // namespace edfkit
