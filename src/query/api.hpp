/// \file api.hpp
/// The versioned public surface of edfkit's analysis service. Include
/// this one header to get everything an external caller needs:
///
///   - `Workload` / `WorkloadView`         (query/workload.hpp)
///   - `Platform`                          (model/platform.hpp)
///   - `Query`, `QueryOptions`, `Outcome`  (query/query.hpp)
///   - typed per-backend parameters        (query/options.hpp)
///   - the backend registry + `TestKind`   (query/registry.hpp)
///   - certificates and their checker      (query/certificate.hpp)
///
/// Everything else under src/ (analysis kernels, demand machinery, the
/// simulator) is implementation detail reachable through the registry;
/// internal headers may change without an API-version bump.
///
/// Versioning: EDFKIT_API_VERSION bumps when this surface changes
/// incompatibly. Version 2 added the platform-aware query API — a
/// `Platform{m}` on `Query`/`QueryOptions`, backend platform-capability
/// flags, the global-EDF cascade (`Query::cascade`), and the
/// multiprocessor certificate forms. Uniprocessor callers are
/// source-compatible: `Platform` defaults to m == 1 and every version-1
/// construct keeps its meaning.
///
/// Typical use:
///
///   #include "query/api.hpp"
///   using namespace edfkit;
///
///   TaskSet ts = ...;
///   // Uniprocessor, exact:
///   Outcome uni = Query::single(TestKind::Qpa).run(ts);
///   // Global EDF on 4 processors, cheapest-first cascade:
///   Outcome glb = Query::cascade(Platform{4}).run(ts);
///   if (glb.feasible()) {
///     CertificateCheck chk = verify(ts, glb.certificate);
///     // chk.valid: the accept re-established by independent replay
///   }
///
/// The deprecated `core/analyzer.hpp` facade (AnalyzerOptions, run_test,
/// compare_all) remains as a shim over this API for one more release;
/// it is deliberately NOT re-exported here.
#pragma once

#define EDFKIT_API_VERSION 2

#include "model/platform.hpp"
#include "model/task_set.hpp"
#include "query/certificate.hpp"
#include "query/options.hpp"
#include "query/query.hpp"
#include "query/registry.hpp"
#include "query/workload.hpp"
