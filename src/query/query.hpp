/// \file query.hpp
/// The unified analysis service: one entry point every caller routes
/// through — examples, the batch analyzer, the admission controller's
/// escalation ladder, and the bench harness.
///
/// A `Query` selects backends from the registry (with typed, validated
/// per-backend parameters), an execution policy, resource limits, and
/// whether outcomes should carry machine-checkable certificates. It runs
/// against a `Workload` (task set or event streams) and returns a uniform
/// `Outcome`.
///
/// Policies:
///   Single     run exactly one backend.
///   Ladder     escalate through the selection in order, stopping at the
///              first decisive (Feasible/Infeasible) verdict — the online
///              admission controller's ladder is this policy over the
///              registry's incremental backends plus an exact fallback.
///   Portfolio  race the selection on threads; the first decisive verdict
///              wins and raises a stop token that the long-running exact
///              backends observe, so losers return early (with
///              `cancelled` set on their attempt) instead of running to
///              completion.
///   Batch      run every selected backend and report all verdicts (the
///              comparison-table / batch-column workflow).
///
/// Backends that do not support the workload's kind are skipped under
/// multi-backend policies (and rejected under Single) — capability
/// filtering replaces the old hard-coded test lists.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/types.hpp"
#include "model/platform.hpp"
#include "query/certificate.hpp"
#include "query/options.hpp"
#include "query/registry.hpp"
#include "query/workload.hpp"

namespace edfkit {

enum class ExecPolicy : std::uint8_t { Single, Ladder, Portfolio, Batch };

[[nodiscard]] const char* to_string(ExecPolicy p) noexcept;

/// Aggregate of every query knob, for callers that configure in one
/// place (the public api.hpp surface). Platform defaults to one
/// processor, so existing uniprocessor call sites are source-compatible.
struct QueryOptions {
  ExecPolicy policy = ExecPolicy::Batch;
  ResourceLimits limits;
  bool certificates = true;
  Platform platform;
};

/// One backend the query will (attempt to) run.
struct BackendSelection {
  TestKind kind;
  BackendParams params;
};

/// One executed backend with its instrumented result.
struct BackendAttempt {
  TestKind kind;
  FeasibilityResult result;
};

/// Uniform result of a query.
struct Outcome {
  /// Combined verdict under the policy (see decided_by).
  Verdict verdict = Verdict::Unknown;
  /// True when some backend produced a decisive Feasible/Infeasible.
  bool decided = false;
  /// The backend whose verdict stands (meaningful when decided).
  TestKind decided_by = TestKind::LiuLayland;
  /// The deciding backend's instrumented result (last attempt otherwise).
  FeasibilityResult analysis;
  /// Every backend that ran, in completion order.
  std::vector<BackendAttempt> attempts;
  /// Backends skipped because they do not support the workload kind.
  std::vector<TestKind> skipped;
  /// Machine-checkable evidence (kind None when not requested or when
  /// the verdict is Unknown). See certificate.hpp / verify().
  Certificate certificate;

  [[nodiscard]] bool feasible() const noexcept {
    return verdict == Verdict::Feasible;
  }
  [[nodiscard]] bool infeasible() const noexcept {
    return verdict == Verdict::Infeasible;
  }
  /// Sum of effort over every attempt (the ladder/portfolio cost).
  [[nodiscard]] std::uint64_t total_effort() const noexcept;
  [[nodiscard]] std::string to_string() const;
};

class Query {
 public:
  /// Empty selection; add backends with add(). Policy defaults to Batch.
  Query() = default;

  /// One backend, default or explicit params.
  [[nodiscard]] static Query single(TestKind kind);
  [[nodiscard]] static Query single(TestKind kind, BackendParams params);

  /// The default escalation ladder: the registry's incremental backends
  /// (utilization, epsilon-approximate) then an exact fallback.
  [[nodiscard]] static Query ladder(TestKind exact_fallback = TestKind::Qpa,
                                    double epsilon = 0.25,
                                    bool include_exact = true);

  /// The platform-aware escalation ladder: for m == 1 exactly ladder();
  /// for m > 1 the global-EDF cascade (cheapest-first, simulation last)
  /// with the platform pre-set — "give me the right test portfolio for
  /// this platform" as one call.
  [[nodiscard]] static Query cascade(const Platform& p);

  /// Race every exact backend in the registry.
  [[nodiscard]] static Query portfolio();

  /// Run all `kinds` with default params and report every verdict.
  [[nodiscard]] static Query batch(const std::vector<TestKind>& kinds);

  Query& add(TestKind kind);
  Query& add(TestKind kind, BackendParams params);
  Query& with_policy(ExecPolicy policy);
  Query& with_limits(ResourceLimits limits);
  Query& with_certificates(bool want);
  /// Target platform; every selected backend must support it (filtered
  /// under multi-backend policies, rejected under Single). Certificates
  /// switch to the multiprocessor forms when m > 1.
  Query& with_platform(Platform platform);
  /// All knobs at once (the api.hpp configuration surface).
  Query& with_options(const QueryOptions& options);

  [[nodiscard]] const std::vector<BackendSelection>& backends() const noexcept {
    return backends_;
  }
  [[nodiscard]] ExecPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const ResourceLimits& limits() const noexcept {
    return limits_;
  }
  [[nodiscard]] bool certificates() const noexcept { return certificates_; }
  [[nodiscard]] const Platform& platform() const noexcept {
    return platform_;
  }

  /// Boundary validation (also run by run()): throws std::invalid_argument
  /// on an empty selection, on out-of-range parameters (epsilon outside
  /// (0,1), superpos level < 1, ...), or on a Single policy with an
  /// unsupported/ambiguous selection.
  void validate() const;

  /// Execute against `w`. \throws std::invalid_argument on validation
  /// failure, an empty (zero-task) workload, or when no selected backend
  /// supports the workload's kind.
  [[nodiscard]] Outcome run(const Workload& w) const;

  /// Zero-copy execution against a non-owning view — the hot-path entry
  /// point (the admission ladder's exact rung, the bench harness):
  /// `q.run(WorkloadView(ts))` hands `ts` to the backends without ever
  /// copying it into a Workload. Same contract as run(const Workload&).
  [[nodiscard]] Outcome run(const WorkloadView& w) const;

  /// Convenience for the common migration case: runs zero-copy through a
  /// view (a plain TaskSet argument used to copy into a Workload).
  [[nodiscard]] Outcome run(const TaskSet& ts) const {
    return run(WorkloadView(ts));
  }

  /// Group-admission overlay: analyze `base` plus a candidate `extra`
  /// group as one workload without mutating either (the combined set
  /// materializes at most once, inside the view).
  [[nodiscard]] Outcome run(const TaskSet& base,
                            std::span<const Task> extra) const {
    return run(WorkloadView(base, extra));
  }

 private:
  std::vector<BackendSelection> backends_;
  ExecPolicy policy_ = ExecPolicy::Batch;
  ResourceLimits limits_;
  bool certificates_ = true;
  Platform platform_;
};

/// The escalation-ladder kinds the default ladder (and the online
/// admission controller) run, in order: the registry's incremental
/// backends, then `exact_fallback` when included. \throws when
/// include_exact and the fallback is not exact.
[[nodiscard]] std::vector<TestKind> default_ladder_kinds(
    TestKind exact_fallback = TestKind::Qpa, bool include_exact = true);

/// The platform-aware ladder kinds: delegates to the uniprocessor
/// ladder for m == 1; for m > 1 the global cascade in cost order —
/// GfbDensity, GlobalBcl, GlobalBclIterative, GlobalLoad, GlobalRta,
/// then GlobalSim as the decisive closer (`include_sim` drops it for
/// analysis-only sweeps).
[[nodiscard]] std::vector<TestKind> default_ladder_kinds(
    const Platform& p, bool include_sim = true);

/// Run the given backends (default: every one the platform supports,
/// with default params) over `w` in Batch policy and render an aligned
/// text table (test, verdict, iterations, revisions, max interval) —
/// the diagnostics/examples comparison view. Platform-aware: on m > 1
/// only global-capable backends are enumerated.
[[nodiscard]] std::string comparison_table(const Workload& w,
                                           const Platform& p = {});
[[nodiscard]] std::string comparison_table(
    const Workload& w, const std::vector<BackendSelection>& backends);

}  // namespace edfkit
