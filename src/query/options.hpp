/// \file options.hpp
/// Typed per-backend parameters for the unified query API.
///
/// The legacy `AnalyzerOptions` was a kitchen-sink struct whose unrelated
/// knobs (superpos level, epsilon, PD flags, ...) all travelled together
/// and were never validated. Here every backend owns a small parameter
/// struct; a query carries one `BackendParams` variant per selected
/// backend and `validate_params` rejects out-of-range knobs at the API
/// boundary — epsilon outside (0,1), superposition levels < 1 — with a
/// descriptive `std::invalid_argument` instead of a degenerate scan.
#pragma once

#include <atomic>
#include <cstdint>
#include <variant>

#include "analysis/processor_demand.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "util/math.hpp"

namespace edfkit {

enum class TestKind : int;  // full definition in query/registry.hpp

/// Liu & Layland utilization bound — no knobs.
struct LiuLaylandParams {};

/// Devi's sufficient test — no knobs.
struct DeviParams {};

/// SuperPos(level): exact for the first `level` jobs per task.
struct SuperPosParams {
  Time level = 3;  ///< >= 1 (1 == Devi's test, Lemma 2)
};

/// Chakraborty/Künzli/Thiele epsilon-approximate analysis.
struct ChakrabortyParams {
  double epsilon = 0.25;  ///< in (0, 1): k = ceil(1/epsilon) exact jobs
};

/// QPA (Zhang & Burns): only a cancellation hook.
struct QpaParams {
  /// Cooperative cancellation (see ProcessorDemandOptions::stop).
  const std::atomic<bool>* stop = nullptr;
};

/// Real-time-calculus 2-segment curve test — no knobs.
struct RtcCurveParams {};

/// Devi envelopes on the curve machinery — no knobs.
struct DeviEnvelopeParams {};

/// Global-EDF density bound (gfb) — no knobs.
struct GfbParams {};

/// Global-EDF one-pass window test (gbl-bcl) — no knobs.
struct GlobalBclParams {};

/// Global-EDF slack-iterated window test (gbl-bcl-iter).
struct GlobalBclIterParams {
  unsigned max_rounds = 32;  ///< >= 1 slack-iteration rounds
};

/// Global-EDF busy-window/load sweep (gbl-load).
struct GlobalLoadParams {
  std::uint64_t max_points = 1u << 18;  ///< >= 1 step points per task
};

/// Global-EDF response-time analysis (gbl-rta).
struct GlobalRtaParams {
  unsigned max_rounds = 32;          ///< >= 1 outer slack rounds
  unsigned max_iterations = 4096;    ///< >= 1 inner fixpoint steps
};

/// Global-EDF simulation rung (gbl-sim): the decisive closer.
struct GlobalSimParams {
  Time max_horizon = 50'000'000;  ///< > 0; refuse longer hyperperiods
};

/// One variant alternative per backend; ProcessorDemandOptions,
/// DynamicTestOptions and AllApproxOptions are reused directly from the
/// analysis layer (they were already well-typed).
using BackendParams =
    std::variant<LiuLaylandParams, DeviParams, SuperPosParams,
                 ChakrabortyParams, ProcessorDemandOptions, QpaParams,
                 DynamicTestOptions, AllApproxOptions, RtcCurveParams,
                 DeviEnvelopeParams, GfbParams, GlobalBclParams,
                 GlobalBclIterParams, GlobalLoadParams, GlobalRtaParams,
                 GlobalSimParams>;

/// Default-constructed params for `kind`.
[[nodiscard]] BackendParams default_params(TestKind kind);

/// True iff `params` holds the variant alternative belonging to `kind`.
[[nodiscard]] bool params_match(TestKind kind,
                                const BackendParams& params) noexcept;

/// Boundary validation: throws std::invalid_argument with a precise
/// message when `params` is the wrong alternative for `kind` or any knob
/// is out of range (epsilon outside (0,1), level < 1, zero growth, ...).
void validate_params(TestKind kind, const BackendParams& params);

/// Per-query resource limits, applied to every selected backend that
/// supports the limit (others treat it as advisory).
struct ResourceLimits {
  /// Cap on test intervals examined by the processor-demand backend
  /// (0 = unlimited); other backends are bounded by construction.
  std::uint64_t max_iterations = 0;
  /// Step cap for the feasibility-certificate construction sweep; when
  /// exceeded (pathological U == 1 hyperperiods) the outcome falls back
  /// to an exhaustive-replay certificate.
  std::uint64_t certificate_step_cap = 1u << 20;
};

}  // namespace edfkit
