/// \file workload.hpp
/// The workload abstraction of the unified query API: a variant over the
/// sporadic task-set model and Gresser event-stream sets, so RTC-style
/// bursty workloads are first-class inputs to every feasibility backend.
///
/// Backends analyze the *canonical sporadic form*: for periodic/sporadic
/// workloads that is the task set itself; for event streams it is the
/// demand-preserving expansion of model/event_stream.hpp (one sporadic
/// task (C, D + a, z) per tuple), under which every verdict carries over
/// verbatim. The expansion is computed once and cached (thread-safe:
/// concurrent tasks() calls synchronize on a std::once_flag).
///
/// `Workload` owns its tasks/streams. `WorkloadView` is the non-owning
/// companion for hot paths (one view per query, zero task copies) — see
/// below and the README migration guide.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "model/event_stream.hpp"
#include "model/task_set.hpp"

namespace edfkit {

/// Workload families a backend can declare support for.
enum class WorkloadKind : std::uint8_t {
  PeriodicTasks,  ///< sporadic/periodic task set (the paper's base model)
  EventStreams,   ///< Gresser event-stream tasks (paper §2/§3.6)
};

[[nodiscard]] const char* to_string(WorkloadKind k) noexcept;

class Workload {
 public:
  /// Empty periodic workload (rejected by Query::run — see query.hpp).
  Workload() : data_(TaskSet{}) {}

  /// Implicit from a task set: lets existing call sites pass a TaskSet
  /// straight to Query::run during migration from run_test.
  Workload(TaskSet ts) : data_(std::move(ts)) {}  // NOLINT(runtime/explicit)

  // Copies get a fresh expansion cache (a std::once_flag cannot be
  // copied), so a copied stream workload re-expands on first use;
  // moves steal the cache, keeping an already computed expansion.
  Workload(const Workload& o);
  Workload& operator=(const Workload& o);
  Workload(Workload&& o) noexcept;
  Workload& operator=(Workload&& o) noexcept;

  [[nodiscard]] static Workload periodic(TaskSet ts) {
    return Workload(std::move(ts));
  }
  [[nodiscard]] static Workload event_streams(
      std::vector<EventStreamTask> streams);

  [[nodiscard]] WorkloadKind kind() const noexcept {
    return std::holds_alternative<TaskSet>(data_)
               ? WorkloadKind::PeriodicTasks
               : WorkloadKind::EventStreams;
  }

  /// True when no task/stream is present.
  [[nodiscard]] bool empty() const noexcept;

  /// Number of source entities: tasks, or streams (not expanded tuples).
  [[nodiscard]] std::size_t source_size() const noexcept;

  /// Canonical sporadic form every backend runs on. For event streams
  /// this is the exact dbf-preserving expansion, computed once under a
  /// std::once_flag (safe to call from concurrent query threads).
  [[nodiscard]] const TaskSet& tasks() const;

  /// The stream set. \pre kind() == WorkloadKind::EventStreams
  [[nodiscard]] const std::vector<EventStreamTask>& streams() const;

  /// Exact utilization of the canonical form, as double (reporting).
  [[nodiscard]] double utilization_double() const {
    return tasks().utilization_double();
  }

  /// "tasks(n=..)" or "streams(n=.., expanded=..)".
  [[nodiscard]] std::string to_string() const;

 private:
  /// Stream-expansion cache. Heap-allocated so the enclosing Workload
  /// stays copyable/movable; guarded by the once_flag (the old mutable
  /// bool + TaskSet pair was a data race under concurrent tasks()).
  /// Allocated only for stream-backed workloads — the invariant is
  /// expansion_ != nullptr iff data_ holds streams.
  struct Expansion {
    std::once_flag once;
    TaskSet tasks;
  };

  [[nodiscard]] std::unique_ptr<Expansion> fresh_expansion() const;

  std::variant<TaskSet, std::vector<EventStreamTask>> data_;
  mutable std::unique_ptr<Expansion> expansion_;
};

/// Non-owning view of an analyzable workload: a reference to the tasks
/// plus their lazily cached aggregates. `Query::run(const WorkloadView&)`
/// is the hot entry point — constructing a `Workload` copies the task
/// set; a view copies nothing. The viewed storage must outlive the view
/// (it is meant to be built at the call site: `q.run(WorkloadView(ts))`).
///
/// Four backings:
///   - a `TaskSet` — zero-copy, aggregates come from the set's caches;
///   - a `Workload` — zero-copy pass-through (streams expand in the
///     workload's own cache);
///   - a raw `std::span<const Task>` — the canonical TaskSet is
///     materialized once on first use (one copy, owned by the view);
///   - an overlay: a base `TaskSet` plus an extra task span (a
///     candidate group over the resident set) — the combined set
///     materializes once on first use, so a "would this group fit?"
///     query never mutates the base and copies at most once.
class WorkloadView {
 public:
  /// View over a task set (implicit: hot call sites read naturally).
  WorkloadView(const TaskSet& ts) noexcept  // NOLINT(runtime/explicit)
      : set_(&ts) {}
  /// View over a full workload (task sets and event streams alike).
  WorkloadView(const Workload& w) noexcept  // NOLINT(runtime/explicit)
      : workload_(&w) {}
  /// View over raw task storage (e.g. a TaskView's dense rows).
  explicit WorkloadView(std::span<const Task> tasks) noexcept
      : span_(tasks) {}
  /// Overlay view: `base` plus a candidate `extra` group, analyzed as
  /// one workload (the group-admission plumbing). Zero-copy when
  /// `extra` is empty.
  WorkloadView(const TaskSet& base, std::span<const Task> extra) noexcept {
    if (extra.empty()) {
      set_ = &base;
    } else {
      base_ = &base;
      span_ = extra;
    }
  }

  WorkloadView(const WorkloadView&) = delete;
  WorkloadView& operator=(const WorkloadView&) = delete;

  [[nodiscard]] WorkloadKind kind() const noexcept {
    return workload_ != nullptr ? workload_->kind()
                                : WorkloadKind::PeriodicTasks;
  }
  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t source_size() const noexcept;

  /// Canonical sporadic form (zero-copy for set/workload backings).
  [[nodiscard]] const TaskSet& tasks() const;

  [[nodiscard]] double utilization_double() const {
    return tasks().utilization_double();
  }
  [[nodiscard]] std::string to_string() const;

 private:
  const Workload* workload_ = nullptr;
  const TaskSet* set_ = nullptr;
  const TaskSet* base_ = nullptr;     ///< overlay backing: base set
  std::span<const Task> span_;        ///< raw backing, or overlay extra
  mutable std::once_flag once_;       ///< span/overlay: materialize once
  mutable TaskSet materialized_;      ///< span/overlay backing only
};

}  // namespace edfkit
