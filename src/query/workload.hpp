/// \file workload.hpp
/// The workload abstraction of the unified query API: a variant over the
/// sporadic task-set model and Gresser event-stream sets, so RTC-style
/// bursty workloads are first-class inputs to every feasibility backend.
///
/// Backends analyze the *canonical sporadic form*: for periodic/sporadic
/// workloads that is the task set itself; for event streams it is the
/// demand-preserving expansion of model/event_stream.hpp (one sporadic
/// task (C, D + a, z) per tuple), under which every verdict carries over
/// verbatim. The expansion is computed once and cached.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "model/event_stream.hpp"
#include "model/task_set.hpp"

namespace edfkit {

/// Workload families a backend can declare support for.
enum class WorkloadKind : std::uint8_t {
  PeriodicTasks,  ///< sporadic/periodic task set (the paper's base model)
  EventStreams,   ///< Gresser event-stream tasks (paper §2/§3.6)
};

[[nodiscard]] const char* to_string(WorkloadKind k) noexcept;

class Workload {
 public:
  /// Empty periodic workload (rejected by Query::run — see query.hpp).
  Workload() : data_(TaskSet{}) {}

  /// Implicit from a task set: lets existing call sites pass a TaskSet
  /// straight to Query::run during migration from run_test.
  Workload(TaskSet ts) : data_(std::move(ts)) {}  // NOLINT(runtime/explicit)

  [[nodiscard]] static Workload periodic(TaskSet ts) {
    return Workload(std::move(ts));
  }
  [[nodiscard]] static Workload event_streams(
      std::vector<EventStreamTask> streams);

  [[nodiscard]] WorkloadKind kind() const noexcept {
    return std::holds_alternative<TaskSet>(data_)
               ? WorkloadKind::PeriodicTasks
               : WorkloadKind::EventStreams;
  }

  /// True when no task/stream is present.
  [[nodiscard]] bool empty() const noexcept;

  /// Number of source entities: tasks, or streams (not expanded tuples).
  [[nodiscard]] std::size_t source_size() const noexcept;

  /// Canonical sporadic form every backend runs on. For event streams
  /// this is the exact dbf-preserving expansion (cached after first use).
  [[nodiscard]] const TaskSet& tasks() const;

  /// The stream set. \pre kind() == WorkloadKind::EventStreams
  [[nodiscard]] const std::vector<EventStreamTask>& streams() const;

  /// Exact utilization of the canonical form, as double (reporting).
  [[nodiscard]] double utilization_double() const {
    return tasks().utilization_double();
  }

  /// "tasks(n=..)" or "streams(n=.., expanded=..)".
  [[nodiscard]] std::string to_string() const;

 private:
  std::variant<TaskSet, std::vector<EventStreamTask>> data_;
  mutable TaskSet expanded_;        // cache for the stream case
  mutable bool expanded_valid_ = false;
};

}  // namespace edfkit
