#include "query/certificate.hpp"

#include <deque>
#include <limits>
#include <sstream>

#include "analysis/bounds.hpp"
#include "analysis/multi/global_tests.hpp"
#include "analysis/utilization.hpp"
#include "demand/accumulator.hpp"
#include "demand/approx.hpp"
#include "demand/dbf.hpp"
#include "demand/intervals.hpp"
#include "query/registry.hpp"
#include "sim/oracle.hpp"
#include "util/fixedpoint.hpp"
#include "util/rational.hpp"

namespace edfkit {
namespace {

CertificateCheck rejected(std::string reason) {
  CertificateCheck c;
  c.valid = false;
  c.reason = std::move(reason);
  return c;
}

/// U <= 1 provable with exact rationals? (Marginal fixed-point fallbacks
/// are not accepted as certificate evidence — the checker only signs off
/// on claims it can fully re-establish.)
bool utilization_provably_at_most_one(const TaskSet& ts) {
  const UtilizationClass uc = classify_utilization(ts);
  return uc == UtilizationClass::BelowOne ||
         uc == UtilizationClass::ExactlyOne;
}

/// Border must be an absolute job deadline of `t`: D_eff + k*T (k >= 0),
/// or exactly D_eff for one-shot tasks.
bool border_is_job_deadline(const Task& t, Time border) noexcept {
  const Time d = t.effective_deadline();
  if (border < d || is_time_infinite(border)) return false;
  if (is_time_infinite(t.period)) return border == d;
  return floor_mod(border - d, t.period) == 0;
}

CertificateCheck verify_borders(const TaskSet& ts, const Certificate& c,
                                std::uint64_t max_points) {
  CertificateCheck out;
  if (c.borders.size() != ts.size()) {
    return rejected("border count does not match task count");
  }
  if (!utilization_provably_at_most_one(ts)) {
    return rejected("utilization not provably <= 1");
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!border_is_job_deadline(ts[i], c.borders[i])) {
      return rejected("border " + std::to_string(c.borders[i]) +
                      " is not a job deadline of task " + std::to_string(i));
    }
  }

  // Regenerate every job deadline <= its task's border and replay the
  // demand/capacity comparison with exact rationals. Between the points
  // dbf' is piecewise linear with slope <= U <= 1 (Lemmas 1/3/4), so
  // pointwise acceptance here proves dbf(I) <= dbf'(I) <= I everywhere.
  TestList list;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    list.add(i, ts[i].effective_deadline());
  }
  while (!list.empty()) {
    const Time point = list.peek().interval;
    while (!list.empty() && list.peek().interval == point) {
      const auto e = list.pop();
      if (point < c.borders[e.task]) {
        const Time nxt = ts[e.task].next_deadline_after(point);
        if (!is_time_infinite(nxt)) list.add(e.task, nxt);
      }
    }
    if (++out.points_checked > max_points) {
      return rejected("certificate exceeds the verification point cap");
    }
    // Two-stage exact comparison, mirroring the accumulator's strategy:
    // certified 2^-62 fixed-point bounds settle almost every point; only
    // bound-straddling points (equality) pay the exact rationals.
    std::vector<bool> approximated(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      approximated[i] = c.borders[i] < point;
    }
    const ScaledDemand scaled =
        recompute_demand_scaled(ts, approximated, point);
    const Int128 cap = static_cast<Int128>(point) * kFixedPointScale;
    if (scaled.hi > cap) {
      if (scaled.lo > cap) {
        return rejected("demand exceeds capacity at I=" +
                        std::to_string(point));
      }
      Rational demand;
      for (std::size_t i = 0; i < ts.size(); ++i) {
        demand += approx_dbf(ts[i], point, c.borders[i]);
      }
      if (!demand.exact()) {
        return rejected("rational arithmetic degraded; unverifiable");
      }
      if (!demand.certainly_le(point)) {
        std::ostringstream os;
        os << "demand " << demand.to_string() << " exceeds capacity at I="
           << point;
        return rejected(os.str());
      }
    }
  }
  out.valid = true;
  return out;
}

CertificateCheck verify_exhaustive(const TaskSet& ts, const Certificate& c,
                                   std::uint64_t max_points) {
  CertificateCheck out;
  if (!utilization_provably_at_most_one(ts)) {
    return rejected("utilization not provably <= 1");
  }
  // The checker trusts only its own horizon: the certificate's bound must
  // cover it (a shrunk/mutated bound is rejected), and the replay runs to
  // the checker's bound.
  const Time horizon = implicit_test_bound(ts);
  if (c.bound < horizon) {
    return rejected("certificate bound " + std::to_string(c.bound) +
                    " is below the sound replay horizon " +
                    std::to_string(horizon));
  }
  TestList list;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Time d0 = ts[i].effective_deadline();
    if (d0 <= horizon) list.add(i, d0);
  }
  Time demand = 0;
  while (!list.empty()) {
    const Time point = list.peek().interval;
    while (!list.empty() && list.peek().interval == point) {
      const auto e = list.pop();
      demand = add_saturating(demand, ts[e.task].wcet);
      const Time nxt = ts[e.task].next_deadline_after(point);
      if (nxt <= horizon && !is_time_infinite(nxt)) list.add(e.task, nxt);
    }
    if (++out.points_checked > max_points) {
      return rejected("certificate exceeds the verification point cap");
    }
    if (demand > point) {
      return rejected("exact demand exceeds capacity at I=" +
                      std::to_string(point));
    }
  }
  out.valid = true;
  return out;
}

/// True when some task alone overloads one processor (C_i > D_i): no
/// global schedule, on any m, can finish it — a job never parallelizes.
bool some_job_overloads(const TaskSet& ts) noexcept {
  for (const Task& t : ts.tasks()) {
    if (t.wcet > t.effective_deadline()) return true;
  }
  return false;
}

/// Proof that U > m: exact rationals when they fit, else a certified
/// double *lower* bound (nearest-rounded sum of n nonnegative terms is
/// within (n + 4) * eps of the exact value, so deflating by that still
/// exceeding m is a sound overload proof — realistic tick-resolution
/// periods overflow the exact path routinely).
bool utilization_provably_above(const TaskSet& ts, std::uint32_t m) {
  const Rational u = ts.utilization();
  if (u.exact()) return u.certainly_gt(static_cast<Time>(m));
  double acc = 0.0;
  for (const Task& t : ts.tasks()) {
    if (is_time_infinite(t.period)) continue;
    acc += static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  const double slack = (static_cast<double>(ts.size()) + 4.0) *
                       std::numeric_limits<double>::epsilon();
  return acc * (1.0 - slack) > static_cast<double>(m);
}

CertificateCheck verify_multi(const TaskSet& ts, const Certificate& c,
                              std::uint64_t max_points) {
  const Platform p{c.processors};
  if (!platform_valid(p)) return rejected("invalid processor count");
  CertificateCheck out;
  // Deterministic-recomputation budget: each rung's work is bounded by
  // its own caps; count one "point" per task as replay bookkeeping.
  out.points_checked = ts.size();
  (void)max_points;
  switch (c.kind) {
    case CertificateKind::MultiFeasibleDensity: {
      if (multi::gfb_density_test(ts, p).verdict != Verdict::Feasible) {
        return rejected("GFB density condition does not hold");
      }
      out.valid = true;
      return out;
    }
    case CertificateKind::MultiFeasibleWindow: {
      switch (c.multi_test) {
        case MultiTest::Bcl:
          if (multi::global_bcl_test(ts, p).verdict != Verdict::Feasible) {
            return rejected("BCL window condition does not hold");
          }
          break;
        case MultiTest::BclIter:
          if (multi::global_bcl_iterative_test(ts, p).verdict !=
              Verdict::Feasible) {
            return rejected("iterated BCL window condition does not hold");
          }
          break;
        case MultiTest::Load:
          if (multi::global_load_test(ts, p).verdict != Verdict::Feasible) {
            return rejected("load/busy-window condition does not hold");
          }
          break;
        case MultiTest::Rta: {
          std::vector<Time> recomputed;
          if (multi::global_rta_test(ts, p, {}, &recomputed).verdict !=
              Verdict::Feasible) {
            return rejected("global RTA does not converge within deadlines");
          }
          if (c.borders.size() != ts.size()) {
            return rejected("response-bound count does not match task count");
          }
          for (std::size_t i = 0; i < ts.size(); ++i) {
            if (c.borders[i] > ts[i].effective_deadline()) {
              return rejected("claimed response bound exceeds deadline of "
                              "task " + std::to_string(i));
            }
            if (recomputed[i] > c.borders[i]) {
              return rejected("claimed response bound below the recomputed "
                              "bound for task " + std::to_string(i));
            }
          }
          break;
        }
        default:
          return rejected("window certificate names no window test");
      }
      out.valid = true;
      return out;
    }
    case CertificateKind::MultiFeasibleSim: {
      OracleConfig cfg;
      if (c.bound > 0) cfg.max_horizon = c.bound;
      const FeasibilityResult r = simulate_global_feasibility(ts, p.m, cfg);
      if (r.verdict != Verdict::Feasible) {
        return rejected("simulation does not re-establish feasibility");
      }
      out.points_checked += static_cast<std::uint64_t>(r.iterations);
      out.valid = true;
      return out;
    }
    case CertificateKind::MultiInfeasibleOverload: {
      if (!utilization_provably_above(ts, p.m)) {
        return rejected("utilization not provably > m");
      }
      out.valid = true;
      return out;
    }
    case CertificateKind::MultiInfeasibleJob: {
      if (!some_job_overloads(ts)) {
        return rejected("no task has C > D");
      }
      out.valid = true;
      return out;
    }
    case CertificateKind::MultiInfeasibleSim: {
      OracleConfig cfg;
      if (c.bound > 0) cfg.max_horizon = c.bound;
      const FeasibilityResult r = simulate_global_feasibility(ts, p.m, cfg);
      if (r.verdict != Verdict::Infeasible) {
        return rejected("simulation does not reproduce the deadline miss");
      }
      out.points_checked += static_cast<std::uint64_t>(r.iterations);
      out.valid = true;
      return out;
    }
    default: return rejected("not a multiprocessor certificate");
  }
}

}  // namespace

const char* to_string(CertificateKind k) noexcept {
  switch (k) {
    case CertificateKind::None: return "none";
    case CertificateKind::FeasibleBorders: return "feasible-borders";
    case CertificateKind::FeasibleExhaustive: return "feasible-exhaustive";
    case CertificateKind::InfeasibleWitness: return "infeasible-witness";
    case CertificateKind::InfeasibleOverload: return "infeasible-overload";
    case CertificateKind::MultiFeasibleDensity:
      return "multi-feasible-density";
    case CertificateKind::MultiFeasibleWindow: return "multi-feasible-window";
    case CertificateKind::MultiFeasibleSim: return "multi-feasible-sim";
    case CertificateKind::MultiInfeasibleOverload:
      return "multi-infeasible-overload";
    case CertificateKind::MultiInfeasibleJob: return "multi-infeasible-job";
    case CertificateKind::MultiInfeasibleSim: return "multi-infeasible-sim";
  }
  return "?";
}

const char* to_string(MultiTest t) noexcept {
  switch (t) {
    case MultiTest::None: return "none";
    case MultiTest::Gfb: return "gfb";
    case MultiTest::Bcl: return "bcl";
    case MultiTest::BclIter: return "bcl-iter";
    case MultiTest::Load: return "load";
    case MultiTest::Rta: return "rta";
    case MultiTest::Sim: return "sim";
  }
  return "?";
}

std::string Certificate::to_string() const {
  std::ostringstream os;
  os << edfkit::to_string(kind);
  switch (kind) {
    case CertificateKind::InfeasibleWitness: os << "(W=" << witness << ")";
      break;
    case CertificateKind::FeasibleExhaustive: os << "(B=" << bound << ")";
      break;
    case CertificateKind::FeasibleBorders:
      os << "(n=" << borders.size() << ")";
      break;
    case CertificateKind::MultiFeasibleWindow:
      os << "(m=" << processors << ", test=" << edfkit::to_string(multi_test)
         << ")";
      break;
    case CertificateKind::MultiInfeasibleSim:
      os << "(m=" << processors << ", miss=" << witness << ")";
      break;
    case CertificateKind::MultiFeasibleDensity:
    case CertificateKind::MultiFeasibleSim:
    case CertificateKind::MultiInfeasibleOverload:
    case CertificateKind::MultiInfeasibleJob:
      os << "(m=" << processors << ")";
      break;
    default: break;
  }
  return os.str();
}

CertificateCheck verify(const TaskSet& ts, const Certificate& c,
                        std::uint64_t max_points) {
  switch (c.kind) {
    case CertificateKind::None:
      return rejected("no certificate attached");
    case CertificateKind::InfeasibleWitness: {
      CertificateCheck out;
      if (c.witness <= 0) return rejected("witness interval must be > 0");
      out.points_checked = 1;
      if (dbf(ts, c.witness) <= c.witness) {
        return rejected("exact dbf does not exceed the witness interval");
      }
      out.valid = true;
      return out;
    }
    case CertificateKind::InfeasibleOverload: {
      CertificateCheck out;
      out.points_checked = 1;
      if (classify_utilization(ts) != UtilizationClass::AboveOne) {
        return rejected("utilization not provably > 1");
      }
      out.valid = true;
      return out;
    }
    case CertificateKind::FeasibleBorders:
      return verify_borders(ts, c, max_points);
    case CertificateKind::FeasibleExhaustive:
      return verify_exhaustive(ts, c, max_points);
    case CertificateKind::MultiFeasibleDensity:
    case CertificateKind::MultiFeasibleWindow:
    case CertificateKind::MultiFeasibleSim:
    case CertificateKind::MultiInfeasibleOverload:
    case CertificateKind::MultiInfeasibleJob:
    case CertificateKind::MultiInfeasibleSim:
      return verify_multi(ts, c, max_points);
  }
  return rejected("unknown certificate kind");
}

CertificateCheck verify(const Workload& w, const Certificate& c,
                        std::uint64_t max_points) {
  return verify(w.tasks(), c, max_points);
}

Certificate make_infeasibility_certificate(const FeasibilityResult& r) {
  Certificate c;
  if (r.witness >= 0) {
    c.kind = CertificateKind::InfeasibleWitness;
    c.witness = r.witness;
  } else {
    c.kind = CertificateKind::InfeasibleOverload;
  }
  return c;
}

std::optional<Certificate> build_feasibility_certificate(
    const TaskSet& ts, std::uint64_t step_cap) {
  Certificate cert;
  cert.kind = CertificateKind::FeasibleBorders;
  if (ts.empty()) return cert;
  if (!utilization_provably_at_most_one(ts)) return std::nullopt;

  const auto exhaustive_fallback = [&]() -> std::optional<Certificate> {
    Certificate c;
    c.kind = CertificateKind::FeasibleExhaustive;
    c.bound = implicit_test_bound(ts);
    return c;
  };

  // All-approximated sweep (paper Fig. 7, FIFO revision) run to test-list
  // drain — not to a bound — so the recorded per-task borders cover every
  // point the checker will regenerate. Revising a task re-enters its next
  // deadline, and re-approximating it there raises its border; at drain
  // every recorded border is the task's last verified job deadline.
  TestList list;
  std::vector<bool> approximated(ts.size(), false);
  std::deque<std::size_t> approx_fifo;
  cert.borders.assign(ts.size(), 0);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    list.add(i, ts[i].effective_deadline());
  }
  DemandAccumulator acc;
  Time iold = 0;
  std::uint64_t steps = 0;

  while (!list.empty()) {
    if (++steps > step_cap) return exhaustive_fallback();
    const auto entry = list.pop();
    const Time point = entry.interval;
    acc.advance(point - iold);
    acc.add_job(ts[entry.task].wcet);

    while (true) {
      bool degraded = false;
      const Ordering cmp =
          acc.compare_with_refresh(ts, approximated, point, &degraded);
      if (cmp != Ordering::Greater) break;
      if (approx_fifo.empty()) {
        // Every task exact: either a true overflow (the set is not
        // feasible — never certify) or degraded arithmetic (fall back).
        return degraded ? exhaustive_fallback() : std::nullopt;
      }
      if (++steps > step_cap) return exhaustive_fallback();
      const std::size_t ti = approx_fifo.front();
      approx_fifo.pop_front();
      acc.revise(ts[ti], point);
      approximated[ti] = false;
      const Time nxt = ts[ti].next_deadline_after(point);
      if (!is_time_infinite(nxt)) list.add(ti, nxt);
    }

    acc.approximate(ts[entry.task]);
    approximated[entry.task] = true;
    approx_fifo.push_back(entry.task);
    cert.borders[entry.task] = point;
    iold = point;
  }
  return cert;
}

std::optional<Certificate> build_multiprocessor_certificate(
    const TaskSet& ts, const Platform& p, TestKind decided_by,
    const FeasibilityResult& r) {
  if (!platform_valid(p)) return std::nullopt;
  Certificate c;
  c.processors = p.m;

  if (r.verdict == Verdict::Infeasible) {
    // Classify by the strongest independently-checkable refutation, in
    // gate order: a single overlong job, provable over-utilization, then
    // the simulated miss (the sim rung's own evidence).
    if (some_job_overloads(ts)) {
      c.kind = CertificateKind::MultiInfeasibleJob;
      c.witness = r.witness;
      return c;
    }
    if (utilization_provably_above(ts, p.m)) {
      c.kind = CertificateKind::MultiInfeasibleOverload;
      return c;
    }
    if (decided_by == TestKind::GlobalSim) {
      c.kind = CertificateKind::MultiInfeasibleSim;
      c.witness = r.witness;
      c.multi_test = MultiTest::Sim;
      return c;
    }
    return std::nullopt;
  }
  if (r.verdict != Verdict::Feasible) return std::nullopt;

  // Re-derive the accepting condition (with default budgets) instead of
  // trusting the caller's result — an unsound claim must die here, not
  // in the checker.
  switch (decided_by) {
    case TestKind::GfbDensity:
      if (multi::gfb_density_test(ts, p).verdict != Verdict::Feasible) {
        return std::nullopt;
      }
      c.kind = CertificateKind::MultiFeasibleDensity;
      c.multi_test = MultiTest::Gfb;
      return c;
    case TestKind::GlobalBcl:
      if (multi::global_bcl_test(ts, p).verdict != Verdict::Feasible) {
        return std::nullopt;
      }
      c.kind = CertificateKind::MultiFeasibleWindow;
      c.multi_test = MultiTest::Bcl;
      return c;
    case TestKind::GlobalBclIterative:
      if (multi::global_bcl_iterative_test(ts, p).verdict !=
          Verdict::Feasible) {
        return std::nullopt;
      }
      c.kind = CertificateKind::MultiFeasibleWindow;
      c.multi_test = MultiTest::BclIter;
      return c;
    case TestKind::GlobalLoad:
      if (multi::global_load_test(ts, p).verdict != Verdict::Feasible) {
        return std::nullopt;
      }
      c.kind = CertificateKind::MultiFeasibleWindow;
      c.multi_test = MultiTest::Load;
      return c;
    case TestKind::GlobalRta: {
      std::vector<Time> bounds;
      if (multi::global_rta_test(ts, p, {}, &bounds).verdict !=
          Verdict::Feasible) {
        return std::nullopt;
      }
      c.kind = CertificateKind::MultiFeasibleWindow;
      c.multi_test = MultiTest::Rta;
      c.borders = std::move(bounds);
      return c;
    }
    case TestKind::GlobalSim: {
      OracleConfig cfg;
      if (r.max_interval_tested > 0) {
        cfg.max_horizon = r.max_interval_tested;
      }
      if (simulate_global_feasibility(ts, p.m, cfg).verdict !=
          Verdict::Feasible) {
        return std::nullopt;
      }
      c.kind = CertificateKind::MultiFeasibleSim;
      c.multi_test = MultiTest::Sim;
      c.bound = cfg.max_horizon;
      return c;
    }
    default: return std::nullopt;
  }
}

}  // namespace edfkit
