/// \file registry.hpp
/// The backend registry of the unified query API: every feasibility test
/// in edfkit registers here with its name, exactness, supported workload
/// kinds, and incremental (admission-usable) capability. `TestKind` — the
/// enum callers historically switched over — is now just a lookup key
/// into this table; sweeps, ladders, and the batch analyzer enumerate the
/// registry instead of hard-coded kind lists.
///
/// Backends run through a uniform function-pointer entry taking the
/// canonical sporadic `TaskSet` plus their typed parameter struct (see
/// options.hpp); the Query layer (query.hpp) handles workload
/// normalization, validation, policies, and certificates on top.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "analysis/types.hpp"
#include "model/task_set.hpp"
#include "query/options.hpp"
#include "query/workload.hpp"

namespace edfkit {

/// Every analysis the library implements. A lookup key into the
/// BackendRegistry; new backends extend the enum and register a row.
enum class TestKind : int {
  LiuLayland,       ///< utilization bound [12] (exact for implicit deadlines)
  Devi,             ///< sufficient test [9]
  SuperPos,         ///< superposition approximation [1], needs `level`
  Chakraborty,      ///< approximate analysis [8], needs `epsilon`
  ProcessorDemand,  ///< exact test [3]
  Qpa,              ///< exact test (Zhang & Burns 2009, extension)
  Dynamic,          ///< dynamic-error exact test (paper §4.1)
  AllApprox,        ///< all-approximated exact test (paper §4.2)
  RtcCurve,         ///< real-time-calculus 2-segment curve test (§3.6)
  DeviEnvelope,     ///< Devi's envelopes on the RTC curve machinery (§3.6)
};

[[nodiscard]] const char* to_string(TestKind k) noexcept;

/// One registered backend: capabilities plus the uniform runner.
struct BackendInfo {
  TestKind kind;
  const char* name;     ///< stable registry/CLI name (e.g. "qpa")
  const char* summary;  ///< one-line description for listings
  /// True for tests whose Feasible *and* Infeasible verdicts are proofs.
  bool exact = false;
  /// Workload kinds the backend accepts (event streams run on the exact
  /// dbf-preserving sporadic expansion unless natively supported).
  bool supports_tasks = true;
  bool supports_streams = true;
  /// True when the test has an incremental/online formulation used by the
  /// admission controller's cheap rungs (utilization, epsilon-approx).
  bool incremental = false;
  /// Uniform entry point: canonical sporadic form + typed params. The
  /// params variant must hold the alternative for `kind` (see
  /// validate_params); Query guarantees this before dispatch.
  FeasibilityResult (*run)(const TaskSet& ts, const BackendParams& params);

  [[nodiscard]] bool supports(WorkloadKind w) const noexcept {
    return w == WorkloadKind::PeriodicTasks ? supports_tasks
                                            : supports_streams;
  }
};

/// Immutable singleton table of every backend.
class BackendRegistry {
 public:
  [[nodiscard]] static const BackendRegistry& instance();

  /// Lookup by kind; never nullptr for a valid TestKind.
  [[nodiscard]] const BackendInfo* find(TestKind k) const noexcept;
  /// Lookup by stable name ("qpa", "all-approx", ...); nullptr if unknown.
  [[nodiscard]] const BackendInfo* find(std::string_view name) const noexcept;

  [[nodiscard]] std::span<const BackendInfo> all() const noexcept {
    return backends_;
  }

  /// Kinds with exact == true, in registration order.
  [[nodiscard]] std::vector<TestKind> exact_kinds() const;
  /// Kinds supporting the given workload kind, in registration order.
  [[nodiscard]] std::vector<TestKind> kinds_for(WorkloadKind w) const;

  /// Aligned text table of the registry (name, exactness, workloads,
  /// incremental) — the README's capability table is generated from this.
  [[nodiscard]] std::string capability_table() const;

 private:
  BackendRegistry();
  std::vector<BackendInfo> backends_;
};

/// All kinds, in declaration order (for sweeps). Enumerates the registry.
[[nodiscard]] const std::vector<TestKind>& all_test_kinds();

/// True for tests whose Feasible *and* Infeasible verdicts are exact.
[[nodiscard]] bool is_exact(TestKind k) noexcept;

}  // namespace edfkit
