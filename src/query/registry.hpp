/// \file registry.hpp
/// The backend registry of the unified query API: every feasibility test
/// in edfkit registers here with its name, exactness, supported workload
/// kinds, and incremental (admission-usable) capability. `TestKind` — the
/// enum callers historically switched over — is now just a lookup key
/// into this table; sweeps, ladders, and the batch analyzer enumerate the
/// registry instead of hard-coded kind lists.
///
/// Backends run through a uniform function-pointer entry taking the
/// canonical sporadic `TaskSet` plus their typed parameter struct (see
/// options.hpp); the Query layer (query.hpp) handles workload
/// normalization, validation, policies, and certificates on top.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/types.hpp"
#include "model/platform.hpp"
#include "model/task_set.hpp"
#include "query/options.hpp"
#include "query/workload.hpp"

namespace edfkit {

/// Every analysis the library implements. A lookup key into the
/// BackendRegistry; new backends extend the enum and register a row.
enum class TestKind : int {
  LiuLayland,       ///< utilization bound [12] (exact for implicit deadlines)
  Devi,             ///< sufficient test [9]
  SuperPos,         ///< superposition approximation [1], needs `level`
  Chakraborty,      ///< approximate analysis [8], needs `epsilon`
  ProcessorDemand,  ///< exact test [3]
  Qpa,              ///< exact test (Zhang & Burns 2009, extension)
  Dynamic,          ///< dynamic-error exact test (paper §4.1)
  AllApprox,        ///< all-approximated exact test (paper §4.2)
  RtcCurve,         ///< real-time-calculus 2-segment curve test (§3.6)
  DeviEnvelope,     ///< Devi's envelopes on the RTC curve machinery (§3.6)
  GfbDensity,       ///< global-EDF density bound (analysis/multi)
  GlobalBcl,        ///< global-EDF window test, one pass
  GlobalBclIterative,  ///< global-EDF window test, slack-iterated
  GlobalLoad,       ///< global-EDF busy-window/load sweep
  GlobalRta,        ///< global-EDF response-time analysis
  GlobalSim,        ///< m-processor simulation rung (decisive closer)
};

[[nodiscard]] const char* to_string(TestKind k) noexcept;

/// Platform capability flags: which execution platforms a backend's
/// verdict applies to. `uniprocessor_only` tests answer for m == 1;
/// `global` tests answer for global EDF on any m; `partitioned` marks
/// uniprocessor tests the sharded AdmissionEngine may run per shard
/// (shards *are* uniprocessors, so today the two uniprocessor flags
/// travel together — the split exists so a future per-shard-unsafe
/// backend can opt out of engine use).
enum PlatformCap : std::uint8_t {
  kPlatformUniprocessor = 1u << 0,
  kPlatformGlobal = 1u << 1,
  kPlatformPartitioned = 1u << 2,
};

/// One registered backend: capabilities plus the uniform runner.
struct BackendInfo {
  TestKind kind;
  const char* name;     ///< stable registry/CLI name (e.g. "qpa")
  const char* summary;  ///< one-line description for listings
  /// True for tests whose Feasible *and* Infeasible verdicts are proofs.
  /// (The global sufficient tests are not exact; gbl-sim's Feasible is
  /// exact only for the synchronous periodic interpretation, so it also
  /// registers as non-exact — sim/oracle.hpp documents the semantics.)
  bool exact = false;
  /// Workload kinds the backend accepts (event streams run on the exact
  /// dbf-preserving sporadic expansion unless natively supported).
  bool supports_tasks = true;
  bool supports_streams = true;
  /// True when the test has an incremental/online formulation used by the
  /// admission controller's cheap rungs (utilization, epsilon-approx).
  bool incremental = false;
  /// PlatformCap bitmask; see supports(const Platform&).
  std::uint8_t platform_caps = kPlatformUniprocessor | kPlatformPartitioned;
  /// Uniform entry point: canonical sporadic form + platform + typed
  /// params. The params variant must hold the alternative for `kind`
  /// (see validate_params); Query guarantees this before dispatch.
  /// Uniprocessor backends ignore the platform (Query only routes them
  /// m == 1 work).
  FeasibilityResult (*run)(const TaskSet& ts, const Platform& platform,
                           const BackendParams& params);

  [[nodiscard]] bool supports(WorkloadKind w) const noexcept {
    return w == WorkloadKind::PeriodicTasks ? supports_tasks
                                            : supports_streams;
  }
  /// Platform filtering: m == 1 queries run the uniprocessor backends
  /// (the global tests degenerate there but the classic exact tests
  /// dominate them); m > 1 queries run the global backends.
  [[nodiscard]] bool supports(const Platform& p) const noexcept {
    return (platform_caps &
            (p.uniprocessor() ? kPlatformUniprocessor : kPlatformGlobal)) !=
           0;
  }
};

/// Typed lookup failure for name-based resolution: carries the unknown
/// name and a did-you-mean candidate list (close names by edit
/// distance, or the full registry when nothing is close).
class UnknownBackendError : public std::invalid_argument {
 public:
  UnknownBackendError(std::string name, std::vector<std::string> candidates);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::string>& candidates() const noexcept {
    return candidates_;
  }

 private:
  std::string name_;
  std::vector<std::string> candidates_;
};

/// Immutable singleton table of every backend.
class BackendRegistry {
 public:
  [[nodiscard]] static const BackendRegistry& instance();

  /// Lookup by kind; never nullptr for a valid TestKind.
  [[nodiscard]] const BackendInfo* find(TestKind k) const noexcept;
  /// Lookup by stable name ("qpa", "all-approx", ...); nullptr if unknown.
  [[nodiscard]] const BackendInfo* find(std::string_view name) const noexcept;
  /// Lookup by name, throwing UnknownBackendError (with did-you-mean
  /// candidates) instead of returning nullptr.
  [[nodiscard]] const BackendInfo& resolve(std::string_view name) const;
  /// The did-you-mean list for an unknown name: registered names within
  /// edit distance 2 or sharing a prefix/substring; the full name list
  /// when nothing is close.
  [[nodiscard]] std::vector<std::string> suggestions(
      std::string_view name) const;

  [[nodiscard]] std::span<const BackendInfo> all() const noexcept {
    return backends_;
  }

  /// Kinds with exact == true, in registration order.
  [[nodiscard]] std::vector<TestKind> exact_kinds() const;
  /// Kinds supporting the given workload kind, in registration order.
  [[nodiscard]] std::vector<TestKind> kinds_for(WorkloadKind w) const;
  /// Kinds applicable to the given platform, in registration order.
  [[nodiscard]] std::vector<TestKind> kinds_for(const Platform& p) const;

  /// Aligned text table of the registry (name, exactness, workloads,
  /// incremental, platform) — the README's capability table is generated
  /// from this.
  [[nodiscard]] std::string capability_table() const;

 private:
  BackendRegistry();
  std::vector<BackendInfo> backends_;
};

/// All kinds, in declaration order (for sweeps). Enumerates the registry.
[[nodiscard]] const std::vector<TestKind>& all_test_kinds();

/// True for tests whose Feasible *and* Infeasible verdicts are exact.
[[nodiscard]] bool is_exact(TestKind k) noexcept;

}  // namespace edfkit
