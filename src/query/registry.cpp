#include "query/registry.hpp"

#include <iomanip>
#include <sstream>

#include "analysis/chakraborty.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "analysis/qpa.hpp"
#include "analysis/utilization.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "core/superpos.hpp"
#include "rtc/rtc_feas.hpp"

namespace edfkit {
namespace {

FeasibilityResult run_liu_layland(const TaskSet& ts, const BackendParams&) {
  return liu_layland_test(ts);
}
FeasibilityResult run_devi(const TaskSet& ts, const BackendParams&) {
  return devi_test(ts);
}
FeasibilityResult run_superpos(const TaskSet& ts, const BackendParams& p) {
  return superpos_test(ts, std::get<SuperPosParams>(p).level);
}
FeasibilityResult run_chakraborty(const TaskSet& ts, const BackendParams& p) {
  return chakraborty_test(ts, std::get<ChakrabortyParams>(p).epsilon).base;
}
FeasibilityResult run_processor_demand(const TaskSet& ts,
                                       const BackendParams& p) {
  return processor_demand_test(ts, std::get<ProcessorDemandOptions>(p));
}
FeasibilityResult run_qpa(const TaskSet& ts, const BackendParams& p) {
  return qpa_test(ts, std::get<QpaParams>(p).stop);
}
FeasibilityResult run_dynamic(const TaskSet& ts, const BackendParams& p) {
  return dynamic_error_test(ts, std::get<DynamicTestOptions>(p));
}
FeasibilityResult run_all_approx(const TaskSet& ts, const BackendParams& p) {
  return all_approx_test(ts, std::get<AllApproxOptions>(p));
}
FeasibilityResult run_rtc_curve(const TaskSet& ts, const BackendParams&) {
  return rtc::rtc_feasibility_test(ts);
}
FeasibilityResult run_devi_envelope(const TaskSet& ts, const BackendParams&) {
  return rtc::devi_envelope_test(ts);
}

}  // namespace

const char* to_string(TestKind k) noexcept {
  const BackendInfo* info = BackendRegistry::instance().find(k);
  return info != nullptr ? info->name : "?";
}

BackendRegistry::BackendRegistry() {
  // Registration order == TestKind declaration order == sweep order.
  // LiuLayland does not take event streams: the offset expansion folds
  // tuple offsets into deadlines, so the implicit-deadline acceptance
  // direction never applies to genuinely bursty streams and only the
  // vacuous U > 1 direction would remain.
  backends_ = {
      {TestKind::LiuLayland, "liu-layland",
       "utilization bound [12]; exact for implicit deadlines",
       /*exact=*/false, /*tasks=*/true, /*streams=*/false,
       /*incremental=*/true, &run_liu_layland},
      {TestKind::Devi, "devi", "sufficient density test [9]",
       /*exact=*/false, true, true, /*incremental=*/false, &run_devi},
      {TestKind::SuperPos, "superpos",
       "superposition approximation SuperPos(x) [1]",
       /*exact=*/false, true, true, /*incremental=*/false, &run_superpos},
      {TestKind::Chakraborty, "chakraborty",
       "epsilon-approximate analysis [8]",
       /*exact=*/false, true, true, /*incremental=*/true, &run_chakraborty},
      {TestKind::ProcessorDemand, "processor-demand",
       "classic exact processor-demand test [3]",
       /*exact=*/true, true, true, /*incremental=*/false,
       &run_processor_demand},
      {TestKind::Qpa, "qpa", "quick processor-demand analysis (exact)",
       /*exact=*/true, true, true, /*incremental=*/false, &run_qpa},
      {TestKind::Dynamic, "dynamic",
       "dynamic-error exact test (paper 4.1)",
       /*exact=*/true, true, true, /*incremental=*/false, &run_dynamic},
      {TestKind::AllApprox, "all-approx",
       "all-approximated exact test (paper 4.2)",
       /*exact=*/true, true, true, /*incremental=*/false, &run_all_approx},
      {TestKind::RtcCurve, "rtc-curve",
       "real-time-calculus 2-segment curve test (3.6, sufficient)",
       /*exact=*/false, true, true, /*incremental=*/false, &run_rtc_curve},
      {TestKind::DeviEnvelope, "devi-envelope",
       "Devi envelopes on the curve machinery (3.6, sufficient)",
       /*exact=*/false, true, true, /*incremental=*/false,
       &run_devi_envelope},
  };
}

const BackendRegistry& BackendRegistry::instance() {
  static const BackendRegistry registry;
  return registry;
}

const BackendInfo* BackendRegistry::find(TestKind k) const noexcept {
  for (const BackendInfo& b : backends_) {
    if (b.kind == k) return &b;
  }
  return nullptr;
}

const BackendInfo* BackendRegistry::find(
    std::string_view name) const noexcept {
  for (const BackendInfo& b : backends_) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

std::vector<TestKind> BackendRegistry::exact_kinds() const {
  std::vector<TestKind> out;
  for (const BackendInfo& b : backends_) {
    if (b.exact) out.push_back(b.kind);
  }
  return out;
}

std::vector<TestKind> BackendRegistry::kinds_for(WorkloadKind w) const {
  std::vector<TestKind> out;
  for (const BackendInfo& b : backends_) {
    if (b.supports(w)) out.push_back(b.kind);
  }
  return out;
}

std::string BackendRegistry::capability_table() const {
  std::ostringstream os;
  os << std::left << std::setw(18) << "backend" << std::setw(8) << "exact"
     << std::setw(8) << "tasks" << std::setw(9) << "streams"
     << std::setw(13) << "incremental" << "summary\n";
  for (const BackendInfo& b : backends_) {
    os << std::left << std::setw(18) << b.name << std::setw(8)
       << (b.exact ? "yes" : "no") << std::setw(8)
       << (b.supports_tasks ? "yes" : "no") << std::setw(9)
       << (b.supports_streams ? "yes" : "no") << std::setw(13)
       << (b.incremental ? "yes" : "no") << b.summary << "\n";
  }
  return os.str();
}

const std::vector<TestKind>& all_test_kinds() {
  static const std::vector<TestKind> kinds = [] {
    std::vector<TestKind> out;
    for (const BackendInfo& b : BackendRegistry::instance().all()) {
      out.push_back(b.kind);
    }
    return out;
  }();
  return kinds;
}

bool is_exact(TestKind k) noexcept {
  const BackendInfo* info = BackendRegistry::instance().find(k);
  return info != nullptr && info->exact;
}

}  // namespace edfkit
