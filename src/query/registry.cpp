#include "query/registry.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "analysis/chakraborty.hpp"
#include "analysis/devi.hpp"
#include "analysis/multi/global_tests.hpp"
#include "analysis/processor_demand.hpp"
#include "analysis/qpa.hpp"
#include "analysis/utilization.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "core/superpos.hpp"
#include "rtc/rtc_feas.hpp"
#include "sim/oracle.hpp"

namespace edfkit {
namespace {

FeasibilityResult run_liu_layland(const TaskSet& ts, const Platform&,
                                  const BackendParams&) {
  return liu_layland_test(ts);
}
FeasibilityResult run_devi(const TaskSet& ts, const Platform&,
                           const BackendParams&) {
  return devi_test(ts);
}
FeasibilityResult run_superpos(const TaskSet& ts, const Platform&,
                               const BackendParams& p) {
  return superpos_test(ts, std::get<SuperPosParams>(p).level);
}
FeasibilityResult run_chakraborty(const TaskSet& ts, const Platform&,
                                  const BackendParams& p) {
  return chakraborty_test(ts, std::get<ChakrabortyParams>(p).epsilon).base;
}
FeasibilityResult run_processor_demand(const TaskSet& ts, const Platform&,
                                       const BackendParams& p) {
  return processor_demand_test(ts, std::get<ProcessorDemandOptions>(p));
}
FeasibilityResult run_qpa(const TaskSet& ts, const Platform&,
                          const BackendParams& p) {
  return qpa_test(ts, std::get<QpaParams>(p).stop);
}
FeasibilityResult run_dynamic(const TaskSet& ts, const Platform&,
                              const BackendParams& p) {
  return dynamic_error_test(ts, std::get<DynamicTestOptions>(p));
}
FeasibilityResult run_all_approx(const TaskSet& ts, const Platform&,
                                 const BackendParams& p) {
  return all_approx_test(ts, std::get<AllApproxOptions>(p));
}
FeasibilityResult run_rtc_curve(const TaskSet& ts, const Platform&,
                                const BackendParams&) {
  return rtc::rtc_feasibility_test(ts);
}
FeasibilityResult run_devi_envelope(const TaskSet& ts, const Platform&,
                                    const BackendParams&) {
  return rtc::devi_envelope_test(ts);
}

FeasibilityResult run_gfb(const TaskSet& ts, const Platform& p,
                          const BackendParams&) {
  return multi::gfb_density_test(ts, p);
}
FeasibilityResult run_global_bcl(const TaskSet& ts, const Platform& p,
                                 const BackendParams&) {
  return multi::global_bcl_test(ts, p);
}
FeasibilityResult run_global_bcl_iter(const TaskSet& ts, const Platform& p,
                                      const BackendParams& params) {
  multi::GlobalTestConfig cfg;
  cfg.max_rounds = std::get<GlobalBclIterParams>(params).max_rounds;
  return multi::global_bcl_iterative_test(ts, p, cfg);
}
FeasibilityResult run_global_load(const TaskSet& ts, const Platform& p,
                                  const BackendParams& params) {
  multi::GlobalTestConfig cfg;
  cfg.max_load_points = std::get<GlobalLoadParams>(params).max_points;
  return multi::global_load_test(ts, p, cfg);
}
FeasibilityResult run_global_rta(const TaskSet& ts, const Platform& p,
                                 const BackendParams& params) {
  const auto& rp = std::get<GlobalRtaParams>(params);
  multi::GlobalTestConfig cfg;
  cfg.max_rounds = rp.max_rounds;
  cfg.max_rta_iterations = rp.max_iterations;
  return multi::global_rta_test(ts, p, cfg);
}
FeasibilityResult run_global_sim(const TaskSet& ts, const Platform& p,
                                 const BackendParams& params) {
  OracleConfig cfg;
  cfg.max_horizon = std::get<GlobalSimParams>(params).max_horizon;
  return simulate_global_feasibility(ts, p.m, cfg);
}

/// Classic Levenshtein distance with an early-out band; names are short
/// so the quadratic table is trivial.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

UnknownBackendError::UnknownBackendError(std::string name,
                                         std::vector<std::string> candidates)
    : std::invalid_argument([&] {
        std::string msg = "unknown backend \"" + name + "\"";
        if (!candidates.empty()) {
          msg += "; did you mean ";
          for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (i != 0) msg += ", ";
            msg += "\"" + candidates[i] + "\"";
          }
          msg += "?";
        }
        return msg;
      }()),
      name_(std::move(name)),
      candidates_(std::move(candidates)) {}

const char* to_string(TestKind k) noexcept {
  const BackendInfo* info = BackendRegistry::instance().find(k);
  return info != nullptr ? info->name : "?";
}

BackendRegistry::BackendRegistry() {
  constexpr std::uint8_t kUni = kPlatformUniprocessor | kPlatformPartitioned;
  constexpr std::uint8_t kGlb = kPlatformGlobal;
  // Registration order == TestKind declaration order == sweep order.
  // LiuLayland does not take event streams: the offset expansion folds
  // tuple offsets into deadlines, so the implicit-deadline acceptance
  // direction never applies to genuinely bursty streams and only the
  // vacuous U > 1 direction would remain.
  // The global backends take tasks only: the stream expansion's folded
  // offsets read as jitter to the multi gates, which answer Unknown.
  backends_ = {
      {TestKind::LiuLayland, "liu-layland",
       "utilization bound [12]; exact for implicit deadlines",
       /*exact=*/false, /*tasks=*/true, /*streams=*/false,
       /*incremental=*/true, kUni, &run_liu_layland},
      {TestKind::Devi, "devi", "sufficient density test [9]",
       /*exact=*/false, true, true, /*incremental=*/false, kUni, &run_devi},
      {TestKind::SuperPos, "superpos",
       "superposition approximation SuperPos(x) [1]",
       /*exact=*/false, true, true, /*incremental=*/false, kUni,
       &run_superpos},
      {TestKind::Chakraborty, "chakraborty",
       "epsilon-approximate analysis [8]",
       /*exact=*/false, true, true, /*incremental=*/true, kUni,
       &run_chakraborty},
      {TestKind::ProcessorDemand, "processor-demand",
       "classic exact processor-demand test [3]",
       /*exact=*/true, true, true, /*incremental=*/false, kUni,
       &run_processor_demand},
      {TestKind::Qpa, "qpa", "quick processor-demand analysis (exact)",
       /*exact=*/true, true, true, /*incremental=*/false, kUni, &run_qpa},
      {TestKind::Dynamic, "dynamic",
       "dynamic-error exact test (paper 4.1)",
       /*exact=*/true, true, true, /*incremental=*/false, kUni,
       &run_dynamic},
      {TestKind::AllApprox, "all-approx",
       "all-approximated exact test (paper 4.2)",
       /*exact=*/true, true, true, /*incremental=*/false, kUni,
       &run_all_approx},
      {TestKind::RtcCurve, "rtc-curve",
       "real-time-calculus 2-segment curve test (3.6, sufficient)",
       /*exact=*/false, true, true, /*incremental=*/false, kUni,
       &run_rtc_curve},
      {TestKind::DeviEnvelope, "devi-envelope",
       "Devi envelopes on the curve machinery (3.6, sufficient)",
       /*exact=*/false, true, true, /*incremental=*/false, kUni,
       &run_devi_envelope},
      {TestKind::GfbDensity, "gfb",
       "global-EDF density bound (GFB) + O(n) infeasibility gates",
       /*exact=*/false, true, /*streams=*/false, /*incremental=*/true, kGlb,
       &run_gfb},
      {TestKind::GlobalBcl, "gbl-bcl",
       "global-EDF one-pass window test (BCL-style)",
       /*exact=*/false, true, false, /*incremental=*/false, kGlb,
       &run_global_bcl},
      {TestKind::GlobalBclIterative, "gbl-bcl-iter",
       "global-EDF slack-iterated window test",
       /*exact=*/false, true, false, /*incremental=*/false, kGlb,
       &run_global_bcl_iter},
      {TestKind::GlobalLoad, "gbl-load",
       "global-EDF busy-window/load sweep",
       /*exact=*/false, true, false, /*incremental=*/false, kGlb,
       &run_global_load},
      {TestKind::GlobalRta, "gbl-rta",
       "global-EDF response-time analysis (slack-iterated)",
       /*exact=*/false, true, false, /*incremental=*/false, kGlb,
       &run_global_rta},
      {TestKind::GlobalSim, "gbl-sim",
       "m-processor EDF simulation rung (decisive closer)",
       /*exact=*/false, true, false, /*incremental=*/false, kGlb,
       &run_global_sim},
  };
}

const BackendRegistry& BackendRegistry::instance() {
  static const BackendRegistry registry;
  return registry;
}

const BackendInfo* BackendRegistry::find(TestKind k) const noexcept {
  for (const BackendInfo& b : backends_) {
    if (b.kind == k) return &b;
  }
  return nullptr;
}

const BackendInfo* BackendRegistry::find(
    std::string_view name) const noexcept {
  for (const BackendInfo& b : backends_) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

const BackendInfo& BackendRegistry::resolve(std::string_view name) const {
  if (const BackendInfo* info = find(name)) return *info;
  throw UnknownBackendError(std::string(name), suggestions(name));
}

std::vector<std::string> BackendRegistry::suggestions(
    std::string_view name) const {
  std::vector<std::string> close;
  for (const BackendInfo& b : backends_) {
    const std::string_view bn = b.name;
    const bool substr = !name.empty() && (bn.find(name) != std::string_view::npos ||
                                          name.find(bn) != std::string_view::npos);
    if (substr || edit_distance(name, bn) <= 2) close.emplace_back(bn);
  }
  if (!close.empty()) return close;
  std::vector<std::string> all_names;
  for (const BackendInfo& b : backends_) all_names.emplace_back(b.name);
  return all_names;
}

std::vector<TestKind> BackendRegistry::exact_kinds() const {
  std::vector<TestKind> out;
  for (const BackendInfo& b : backends_) {
    if (b.exact) out.push_back(b.kind);
  }
  return out;
}

std::vector<TestKind> BackendRegistry::kinds_for(WorkloadKind w) const {
  std::vector<TestKind> out;
  for (const BackendInfo& b : backends_) {
    if (b.supports(w)) out.push_back(b.kind);
  }
  return out;
}

std::vector<TestKind> BackendRegistry::kinds_for(const Platform& p) const {
  std::vector<TestKind> out;
  for (const BackendInfo& b : backends_) {
    if (b.supports(p)) out.push_back(b.kind);
  }
  return out;
}

std::string BackendRegistry::capability_table() const {
  std::ostringstream os;
  os << std::left << std::setw(18) << "backend" << std::setw(8) << "exact"
     << std::setw(8) << "tasks" << std::setw(9) << "streams"
     << std::setw(13) << "incremental" << std::setw(10) << "platform"
     << "summary\n";
  for (const BackendInfo& b : backends_) {
    const bool uni = (b.platform_caps & kPlatformUniprocessor) != 0;
    const bool glb = (b.platform_caps & kPlatformGlobal) != 0;
    const char* platform = uni && glb ? "any" : glb ? "global" : "uni";
    os << std::left << std::setw(18) << b.name << std::setw(8)
       << (b.exact ? "yes" : "no") << std::setw(8)
       << (b.supports_tasks ? "yes" : "no") << std::setw(9)
       << (b.supports_streams ? "yes" : "no") << std::setw(13)
       << (b.incremental ? "yes" : "no") << std::setw(10) << platform
       << b.summary << "\n";
  }
  return os.str();
}

const std::vector<TestKind>& all_test_kinds() {
  static const std::vector<TestKind> kinds = [] {
    std::vector<TestKind> out;
    for (const BackendInfo& b : BackendRegistry::instance().all()) {
      out.push_back(b.kind);
    }
    return out;
  }();
  return kinds;
}

bool is_exact(TestKind k) noexcept {
  const BackendInfo* info = BackendRegistry::instance().find(k);
  return info != nullptr && info->exact;
}

}  // namespace edfkit
