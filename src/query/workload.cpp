#include "query/workload.hpp"

#include <sstream>
#include <stdexcept>

namespace edfkit {

const char* to_string(WorkloadKind k) noexcept {
  switch (k) {
    case WorkloadKind::PeriodicTasks: return "tasks";
    case WorkloadKind::EventStreams: return "streams";
  }
  return "?";
}

std::unique_ptr<Workload::Expansion> Workload::fresh_expansion() const {
  return std::holds_alternative<std::vector<EventStreamTask>>(data_)
             ? std::make_unique<Expansion>()
             : nullptr;
}

Workload::Workload(const Workload& o)
    : data_(o.data_), expansion_(fresh_expansion()) {}

Workload& Workload::operator=(const Workload& o) {
  if (this != &o) {
    data_ = o.data_;
    expansion_ = fresh_expansion();
  }
  return *this;
}

// Moves swap with a default (empty periodic) workload: the cache — and
// any expansion already computed — travels along, no allocation happens
// inside noexcept, and the moved-from object is a valid empty workload.
Workload::Workload(Workload&& o) noexcept {
  data_.swap(o.data_);
  expansion_.swap(o.expansion_);
}

Workload& Workload::operator=(Workload&& o) noexcept {
  if (this != &o) {
    data_ = std::move(o.data_);
    expansion_ = std::move(o.expansion_);
    o.data_ = TaskSet{};
    o.expansion_.reset();
  }
  return *this;
}

Workload Workload::event_streams(std::vector<EventStreamTask> streams) {
  for (const EventStreamTask& s : streams) s.validate();
  Workload w;
  w.data_ = std::move(streams);
  w.expansion_ = std::make_unique<Expansion>();
  return w;
}

bool Workload::empty() const noexcept { return source_size() == 0; }

std::size_t Workload::source_size() const noexcept {
  if (const auto* ts = std::get_if<TaskSet>(&data_)) return ts->size();
  return std::get<std::vector<EventStreamTask>>(data_).size();
}

const TaskSet& Workload::tasks() const {
  if (const auto* ts = std::get_if<TaskSet>(&data_)) return *ts;
  Expansion& e = *expansion_;
  std::call_once(e.once, [&] {
    e.tasks = expand(std::get<std::vector<EventStreamTask>>(data_));
  });
  return e.tasks;
}

const std::vector<EventStreamTask>& Workload::streams() const {
  const auto* s = std::get_if<std::vector<EventStreamTask>>(&data_);
  if (s == nullptr) {
    throw std::logic_error("Workload::streams: periodic-task workload");
  }
  return *s;
}

std::string Workload::to_string() const {
  std::ostringstream os;
  if (kind() == WorkloadKind::PeriodicTasks) {
    os << "tasks(n=" << source_size() << ")";
  } else {
    os << "streams(n=" << source_size() << ", expanded=" << tasks().size()
       << ")";
  }
  return os.str();
}

bool WorkloadView::empty() const noexcept { return source_size() == 0; }

std::size_t WorkloadView::source_size() const noexcept {
  if (workload_ != nullptr) return workload_->source_size();
  if (set_ != nullptr) return set_->size();
  return (base_ != nullptr ? base_->size() : 0) + span_.size();
}

const TaskSet& WorkloadView::tasks() const {
  if (workload_ != nullptr) return workload_->tasks();
  if (set_ != nullptr) return *set_;
  std::call_once(once_, [&] {
    std::vector<Task> all;
    all.reserve((base_ != nullptr ? base_->size() : 0) + span_.size());
    if (base_ != nullptr) {
      all.insert(all.end(), base_->begin(), base_->end());
    }
    all.insert(all.end(), span_.begin(), span_.end());
    materialized_ = TaskSet(std::move(all));
  });
  return materialized_;
}

std::string WorkloadView::to_string() const {
  if (workload_ != nullptr) return workload_->to_string();
  std::ostringstream os;
  os << "tasks(n=" << source_size() << ", view)";
  return os.str();
}

}  // namespace edfkit
