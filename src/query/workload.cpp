#include "query/workload.hpp"

#include <sstream>
#include <stdexcept>

namespace edfkit {

const char* to_string(WorkloadKind k) noexcept {
  switch (k) {
    case WorkloadKind::PeriodicTasks: return "tasks";
    case WorkloadKind::EventStreams: return "streams";
  }
  return "?";
}

Workload Workload::event_streams(std::vector<EventStreamTask> streams) {
  for (const EventStreamTask& s : streams) s.validate();
  Workload w;
  w.data_ = std::move(streams);
  return w;
}

bool Workload::empty() const noexcept { return source_size() == 0; }

std::size_t Workload::source_size() const noexcept {
  if (const auto* ts = std::get_if<TaskSet>(&data_)) return ts->size();
  return std::get<std::vector<EventStreamTask>>(data_).size();
}

const TaskSet& Workload::tasks() const {
  if (const auto* ts = std::get_if<TaskSet>(&data_)) return *ts;
  if (!expanded_valid_) {
    expanded_ = expand(std::get<std::vector<EventStreamTask>>(data_));
    expanded_valid_ = true;
  }
  return expanded_;
}

const std::vector<EventStreamTask>& Workload::streams() const {
  const auto* s = std::get_if<std::vector<EventStreamTask>>(&data_);
  if (s == nullptr) {
    throw std::logic_error("Workload::streams: periodic-task workload");
  }
  return *s;
}

std::string Workload::to_string() const {
  std::ostringstream os;
  if (kind() == WorkloadKind::PeriodicTasks) {
    os << "tasks(n=" << source_size() << ")";
  } else {
    os << "streams(n=" << source_size() << ", expanded=" << tasks().size()
       << ")";
  }
  return os.str();
}

}  // namespace edfkit
