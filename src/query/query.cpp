#include "query/query.hpp"

#include <atomic>
#include <condition_variable>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace edfkit {
namespace {

bool decisive(Verdict v) noexcept { return v != Verdict::Unknown; }

/// Forward the query-level resource limits into params where supported.
BackendParams apply_limits(BackendParams params, const ResourceLimits& l) {
  if (l.max_iterations != 0) {
    if (auto* pd = std::get_if<ProcessorDemandOptions>(&params)) {
      if (pd->max_iterations == 0 ||
          pd->max_iterations > l.max_iterations) {
        pd->max_iterations = l.max_iterations;
      }
    }
  }
  return params;
}

/// Thread the portfolio stop token into every param struct that has a
/// cancellation hook (the long-running exact backends). A null token is
/// a no-op so callers' own stop pointers survive non-portfolio runs.
BackendParams arm_stop(BackendParams params, const std::atomic<bool>* stop) {
  if (stop == nullptr) return params;
  std::visit(
      [&](auto& p) {
        if constexpr (requires { p.stop; }) p.stop = stop;
      },
      params);
  return params;
}

}  // namespace

const char* to_string(ExecPolicy p) noexcept {
  switch (p) {
    case ExecPolicy::Single: return "single";
    case ExecPolicy::Ladder: return "ladder";
    case ExecPolicy::Portfolio: return "portfolio";
    case ExecPolicy::Batch: return "batch";
  }
  return "?";
}

std::uint64_t Outcome::total_effort() const noexcept {
  std::uint64_t sum = 0;
  for (const BackendAttempt& a : attempts) sum += a.result.effort();
  return sum;
}

std::string Outcome::to_string() const {
  std::ostringstream os;
  os << edfkit::to_string(verdict);
  if (decided) os << " by " << edfkit::to_string(decided_by);
  os << " (attempts=" << attempts.size() << ", effort=" << total_effort()
     << ")";
  if (certificate.present()) {
    os << " certificate=" << certificate.to_string();
  }
  return os.str();
}

Query Query::single(TestKind kind) {
  return single(kind, default_params(kind));
}

Query Query::single(TestKind kind, BackendParams params) {
  Query q;
  q.backends_.push_back({kind, std::move(params)});
  q.policy_ = ExecPolicy::Single;
  return q;
}

Query Query::ladder(TestKind exact_fallback, double epsilon,
                    bool include_exact) {
  Query q;
  q.policy_ = ExecPolicy::Ladder;
  for (const TestKind k : default_ladder_kinds(exact_fallback,
                                               include_exact)) {
    BackendParams p = default_params(k);
    if (auto* ck = std::get_if<ChakrabortyParams>(&p)) ck->epsilon = epsilon;
    q.backends_.push_back({k, std::move(p)});
  }
  return q;
}

Query Query::cascade(const Platform& p) {
  if (!platform_valid(p)) {
    throw std::invalid_argument("Query::cascade: invalid platform " +
                                edfkit::to_string(p));
  }
  if (p.uniprocessor()) return ladder();
  Query q;
  q.policy_ = ExecPolicy::Ladder;
  q.platform_ = p;
  for (const TestKind k : default_ladder_kinds(p)) {
    q.backends_.push_back({k, default_params(k)});
  }
  return q;
}

Query Query::portfolio() {
  Query q;
  q.policy_ = ExecPolicy::Portfolio;
  for (const TestKind k : BackendRegistry::instance().exact_kinds()) {
    q.backends_.push_back({k, default_params(k)});
  }
  return q;
}

Query Query::batch(const std::vector<TestKind>& kinds) {
  Query q;
  q.policy_ = ExecPolicy::Batch;
  for (const TestKind k : kinds) q.backends_.push_back({k, default_params(k)});
  return q;
}

Query& Query::add(TestKind kind) { return add(kind, default_params(kind)); }

Query& Query::add(TestKind kind, BackendParams params) {
  backends_.push_back({kind, std::move(params)});
  return *this;
}

Query& Query::with_policy(ExecPolicy policy) {
  policy_ = policy;
  return *this;
}

Query& Query::with_limits(ResourceLimits limits) {
  limits_ = limits;
  return *this;
}

Query& Query::with_certificates(bool want) {
  certificates_ = want;
  return *this;
}

Query& Query::with_platform(Platform platform) {
  platform_ = platform;
  return *this;
}

Query& Query::with_options(const QueryOptions& options) {
  policy_ = options.policy;
  limits_ = options.limits;
  certificates_ = options.certificates;
  platform_ = options.platform;
  return *this;
}

void Query::validate() const {
  if (backends_.empty()) {
    throw std::invalid_argument("Query: no backend selected");
  }
  if (!platform_valid(platform_)) {
    throw std::invalid_argument("Query: invalid platform " +
                                edfkit::to_string(platform_));
  }
  if (policy_ == ExecPolicy::Single && backends_.size() != 1) {
    throw std::invalid_argument(
        "Query: the single policy takes exactly one backend");
  }
  const BackendRegistry& reg = BackendRegistry::instance();
  for (const BackendSelection& sel : backends_) {
    if (reg.find(sel.kind) == nullptr) {
      throw std::invalid_argument("Query: unregistered backend kind");
    }
    validate_params(sel.kind, sel.params);
  }
}

Outcome Query::run(const Workload& w) const { return run(WorkloadView(w)); }

Outcome Query::run(const WorkloadView& w) const {
  validate();
  if (w.empty()) {
    throw std::invalid_argument(
        "Query: zero-task workload (a degenerate scan would decide "
        "nothing; construct a non-empty workload)");
  }
  const BackendRegistry& reg = BackendRegistry::instance();
  const TaskSet& ts = w.tasks();

  Outcome out;
  std::vector<const BackendSelection*> runnable;
  for (const BackendSelection& sel : backends_) {
    const BackendInfo* info = reg.find(sel.kind);
    if (!info->supports(w.kind())) {
      if (policy_ == ExecPolicy::Single) {
        throw std::invalid_argument(
            std::string("Query: backend '") + info->name +
            "' does not support " + edfkit::to_string(w.kind()) +
            " workloads");
      }
      out.skipped.push_back(sel.kind);
      continue;
    }
    if (!info->supports(platform_)) {
      if (policy_ == ExecPolicy::Single) {
        throw std::invalid_argument(
            std::string("Query: backend '") + info->name +
            "' does not support platform " + edfkit::to_string(platform_));
      }
      out.skipped.push_back(sel.kind);
      continue;
    }
    runnable.push_back(&sel);
  }
  if (runnable.empty()) {
    throw std::invalid_argument(
        "Query: no selected backend supports this workload kind and "
        "platform");
  }

  const auto run_one = [&](const BackendSelection& sel,
                           const std::atomic<bool>* stop = nullptr) {
    const BackendInfo* info = reg.find(sel.kind);
    return info->run(ts, platform_,
                     arm_stop(apply_limits(sel.params, limits_), stop));
  };

  const auto settle = [&](TestKind kind, const FeasibilityResult& r) {
    out.decided = true;
    out.decided_by = kind;
    out.verdict = r.verdict;
    out.analysis = r;
  };

  switch (policy_) {
    case ExecPolicy::Single:
    case ExecPolicy::Ladder: {
      for (const BackendSelection* sel : runnable) {
        const FeasibilityResult r = run_one(*sel);
        out.attempts.push_back({sel->kind, r});
        out.analysis = r;
        if (decisive(r.verdict)) {
          settle(sel->kind, r);
          break;
        }
      }
      break;
    }
    case ExecPolicy::Portfolio: {
      // Race: every backend on its own thread; completion order decides
      // the winner. The first decisive finisher raises the stop token;
      // the long-running exact backends poll it and return early with
      // `cancelled`, so the race never pays for the slowest loser.
      //
      // Populate the set's lazy caches (exact utilization, deadline
      // order) on this thread first: they are unsynchronized mutables,
      // and every backend's precheck would otherwise race to fill them.
      (void)ts.utilization();
      (void)ts.by_deadline();
      std::atomic<bool> stop{false};
      std::mutex m;
      std::vector<BackendAttempt> done;
      done.reserve(runnable.size());
      std::vector<std::thread> threads;
      threads.reserve(runnable.size());
      for (const BackendSelection* sel : runnable) {
        threads.emplace_back([&, sel] {
          FeasibilityResult r = run_one(*sel, &stop);
          if (decisive(r.verdict) && !r.cancelled) {
            stop.store(true, std::memory_order_relaxed);
          }
          const std::lock_guard<std::mutex> lock(m);
          done.push_back({sel->kind, std::move(r)});
        });
      }
      for (std::thread& t : threads) t.join();
      out.attempts = std::move(done);
      for (const BackendAttempt& a : out.attempts) {
        out.analysis = a.result;
        if (decisive(a.result.verdict)) {
          settle(a.kind, a.result);
          break;
        }
      }
      break;
    }
    case ExecPolicy::Batch: {
      for (const BackendSelection* sel : runnable) {
        const FeasibilityResult r = run_one(*sel);
        out.attempts.push_back({sel->kind, r});
      }
      // Combined verdict: prefer the first decisive exact backend, then
      // any decisive backend (all sound, so decisive verdicts can only
      // disagree on an implementation bug — surfaced by the batch layer).
      for (const BackendAttempt& a : out.attempts) {
        if (is_exact(a.kind) && decisive(a.result.verdict)) {
          settle(a.kind, a.result);
          break;
        }
      }
      if (!out.decided) {
        for (const BackendAttempt& a : out.attempts) {
          if (decisive(a.result.verdict)) {
            settle(a.kind, a.result);
            break;
          }
        }
      }
      if (!out.attempts.empty() && !out.decided) {
        out.analysis = out.attempts.back().result;
      }
      break;
    }
  }

  if (certificates_ && out.decided) {
    if (!platform_.uniprocessor()) {
      // Multiprocessor verdicts carry the MultiprocessorCertificate
      // extension: the named sufficient condition (or simulation) the
      // checker re-establishes by deterministic recomputation.
      if (auto cert = build_multiprocessor_certificate(
              ts, platform_, out.decided_by, out.analysis)) {
        out.certificate = std::move(*cert);
      }
    } else if (out.verdict == Verdict::Infeasible) {
      out.certificate = make_infeasibility_certificate(out.analysis);
    } else if (out.verdict == Verdict::Feasible) {
      // Sound accepts (exact or sufficient) admit a constructive
      // certificate; construction is itself an exact sweep, so a
      // nullopt here would indicate a library bug and is surfaced by
      // leaving the certificate absent.
      if (auto cert = build_feasibility_certificate(
              ts, limits_.certificate_step_cap)) {
        out.certificate = std::move(*cert);
      }
    }
  }
  return out;
}

std::vector<TestKind> default_ladder_kinds(TestKind exact_fallback,
                                           bool include_exact) {
  if (include_exact && !is_exact(exact_fallback)) {
    throw std::invalid_argument(
        "default_ladder_kinds: fallback must be an exact test kind");
  }
  std::vector<TestKind> kinds;
  for (const BackendInfo& b : BackendRegistry::instance().all()) {
    if (b.incremental && (b.platform_caps & kPlatformUniprocessor) != 0) {
      kinds.push_back(b.kind);
    }
  }
  if (include_exact) kinds.push_back(exact_fallback);
  return kinds;
}

std::vector<TestKind> default_ladder_kinds(const Platform& p,
                                           bool include_sim) {
  if (p.uniprocessor()) return default_ladder_kinds();
  std::vector<TestKind> kinds = {
      TestKind::GfbDensity,     TestKind::GlobalBcl,
      TestKind::GlobalBclIterative, TestKind::GlobalLoad,
      TestKind::GlobalRta,
  };
  if (include_sim) kinds.push_back(TestKind::GlobalSim);
  return kinds;
}

std::string comparison_table(const Workload& w,
                             const std::vector<BackendSelection>& backends) {
  Query q;
  q.with_policy(ExecPolicy::Batch).with_certificates(false);
  for (const BackendSelection& b : backends) q.add(b.kind, b.params);
  std::ostringstream os;
  os << std::left << std::setw(18) << "test" << std::setw(12) << "verdict"
     << std::setw(12) << "iterations" << std::setw(11) << "revisions"
     << "max interval\n";
  if (backends.empty()) return os.str();
  const Outcome out = q.run(w);
  for (const BackendAttempt& a : out.attempts) {
    os << std::left << std::setw(18) << to_string(a.kind) << std::setw(12)
       << to_string(a.result.verdict) << std::setw(12) << a.result.iterations
       << std::setw(11) << a.result.revisions << a.result.max_interval_tested
       << "\n";
  }
  return os.str();
}

std::string comparison_table(const Workload& w, const Platform& p) {
  std::vector<BackendSelection> backends;
  for (const TestKind k : BackendRegistry::instance().kinds_for(p)) {
    backends.push_back(BackendSelection{k, default_params(k)});
  }
  return comparison_table(w, backends);
}

}  // namespace edfkit
