#include "query/options.hpp"

#include <stdexcept>
#include <string>

#include "query/registry.hpp"

namespace edfkit {
namespace {

[[noreturn]] void reject(TestKind kind, const std::string& what) {
  throw std::invalid_argument(std::string("Query[") + to_string(kind) +
                              "]: " + what);
}

}  // namespace

BackendParams default_params(TestKind kind) {
  switch (kind) {
    case TestKind::LiuLayland: return LiuLaylandParams{};
    case TestKind::Devi: return DeviParams{};
    case TestKind::SuperPos: return SuperPosParams{};
    case TestKind::Chakraborty: return ChakrabortyParams{};
    case TestKind::ProcessorDemand: return ProcessorDemandOptions{};
    case TestKind::Qpa: return QpaParams{};
    case TestKind::Dynamic: return DynamicTestOptions{};
    case TestKind::AllApprox: return AllApproxOptions{};
    case TestKind::RtcCurve: return RtcCurveParams{};
    case TestKind::DeviEnvelope: return DeviEnvelopeParams{};
    case TestKind::GfbDensity: return GfbParams{};
    case TestKind::GlobalBcl: return GlobalBclParams{};
    case TestKind::GlobalBclIterative: return GlobalBclIterParams{};
    case TestKind::GlobalLoad: return GlobalLoadParams{};
    case TestKind::GlobalRta: return GlobalRtaParams{};
    case TestKind::GlobalSim: return GlobalSimParams{};
  }
  throw std::invalid_argument("default_params: unknown TestKind");
}

bool params_match(TestKind kind, const BackendParams& params) noexcept {
  switch (kind) {
    case TestKind::LiuLayland:
      return std::holds_alternative<LiuLaylandParams>(params);
    case TestKind::Devi: return std::holds_alternative<DeviParams>(params);
    case TestKind::SuperPos:
      return std::holds_alternative<SuperPosParams>(params);
    case TestKind::Chakraborty:
      return std::holds_alternative<ChakrabortyParams>(params);
    case TestKind::ProcessorDemand:
      return std::holds_alternative<ProcessorDemandOptions>(params);
    case TestKind::Qpa: return std::holds_alternative<QpaParams>(params);
    case TestKind::Dynamic:
      return std::holds_alternative<DynamicTestOptions>(params);
    case TestKind::AllApprox:
      return std::holds_alternative<AllApproxOptions>(params);
    case TestKind::RtcCurve:
      return std::holds_alternative<RtcCurveParams>(params);
    case TestKind::DeviEnvelope:
      return std::holds_alternative<DeviEnvelopeParams>(params);
    case TestKind::GfbDensity:
      return std::holds_alternative<GfbParams>(params);
    case TestKind::GlobalBcl:
      return std::holds_alternative<GlobalBclParams>(params);
    case TestKind::GlobalBclIterative:
      return std::holds_alternative<GlobalBclIterParams>(params);
    case TestKind::GlobalLoad:
      return std::holds_alternative<GlobalLoadParams>(params);
    case TestKind::GlobalRta:
      return std::holds_alternative<GlobalRtaParams>(params);
    case TestKind::GlobalSim:
      return std::holds_alternative<GlobalSimParams>(params);
  }
  return false;
}

void validate_params(TestKind kind, const BackendParams& params) {
  if (!params_match(kind, params)) {
    reject(kind, "parameter struct does not match the backend (pass the "
                 "alternative belonging to this TestKind)");
  }
  if (const auto* sp = std::get_if<SuperPosParams>(&params)) {
    if (sp->level < 1) reject(kind, "superpos level must be >= 1");
  } else if (const auto* ck = std::get_if<ChakrabortyParams>(&params)) {
    if (!(ck->epsilon > 0.0) || !(ck->epsilon < 1.0)) {
      reject(kind, "epsilon must lie in (0, 1), got " +
                       std::to_string(ck->epsilon));
    }
  } else if (const auto* dy = std::get_if<DynamicTestOptions>(&params)) {
    if (dy->initial_level < 1) reject(kind, "initial_level must be >= 1");
    if (dy->growth_factor < 1) reject(kind, "growth_factor must be >= 1");
    if (dy->max_level < 0) reject(kind, "max_level must be >= 0");
    if (dy->bound && *dy->bound <= 0) reject(kind, "bound must be > 0");
  } else if (const auto* aa = std::get_if<AllApproxOptions>(&params)) {
    if (aa->bound && *aa->bound <= 0) reject(kind, "bound must be > 0");
  } else if (const auto* pd = std::get_if<ProcessorDemandOptions>(&params)) {
    if (pd->bound && *pd->bound <= 0) reject(kind, "bound must be > 0");
  } else if (const auto* bi = std::get_if<GlobalBclIterParams>(&params)) {
    if (bi->max_rounds < 1) reject(kind, "max_rounds must be >= 1");
  } else if (const auto* gl = std::get_if<GlobalLoadParams>(&params)) {
    if (gl->max_points < 1) reject(kind, "max_points must be >= 1");
  } else if (const auto* gr = std::get_if<GlobalRtaParams>(&params)) {
    if (gr->max_rounds < 1) reject(kind, "max_rounds must be >= 1");
    if (gr->max_iterations < 1) reject(kind, "max_iterations must be >= 1");
  } else if (const auto* gs = std::get_if<GlobalSimParams>(&params)) {
    if (gs->max_horizon <= 0) reject(kind, "max_horizon must be > 0");
  }
}

}  // namespace edfkit
