/// \file certificate.hpp
/// Machine-checkable certificates for feasibility verdicts, with an
/// independent checker.
///
/// Infeasibility is certified by replayable evidence: either a witness
/// interval W with exact dbf(W) > W (checked by one exact dbf
/// evaluation), or provable over-utilization U > 1 (checked by the exact
/// rational classifier).
///
/// Feasibility by an exact test is certified by a *superposition-border
/// certificate*: one job deadline b_i ("border") per task, with the claim
/// that the approximated demand dbf'(I) — exact per task up to its
/// border, linear envelope beyond (paper Defs. 4/5) — stays at or below
/// capacity at every absolute job deadline <= its task's border. The
/// checker re-derives feasibility from nothing but the borders and the
/// paper's lemmas:
///   1. exact rational U <= 1 (Lemma 1 tail argument needs it);
///   2. every border is a job deadline of its task;
///   3. regenerating ALL deadline points {D_i + k*T_i <= b_i} and
///      evaluating dbf' with exact rational arithmetic at each, demand
///      never exceeds capacity.
/// Between checked points dbf' is piecewise linear with slope <= U <= 1
/// against a capacity line of slope 1, and beyond the largest border
/// every task is on its envelope — so pointwise acceptance at the
/// regenerated points proves dbf(I) <= dbf'(I) <= I for every I > 0
/// (Lemmas 1/3/4). The checker shares no code path with the tests other
/// than the Def. 4/5 demand formulas; a mutated certificate (border off a
/// deadline, border shrunk below a violation, transplanted task set)
/// fails one of the three checks.
///
/// The rare fallback (step-capped construction at U == 1) is an
/// exhaustive certificate: a bound B such that checking the exact dbf at
/// every deadline in (0, B] proves feasibility; the checker recomputes
/// its own sound bound and replays the full scan.
///
/// Multiprocessor verdicts (Platform.m > 1) carry a
/// *MultiprocessorCertificate* extension: the same Certificate struct
/// with `processors` and `multi_test` set, naming the sufficient
/// condition (or simulation) that proved the verdict. The checker
/// re-establishes the claim by *deterministic recomputation* of that
/// named condition over the task set — never by checking claimed
/// fixpoints (a transplanted "fixpoint" can be self-consistent yet
/// unsound; recomputation from the sound starting point cannot). For
/// the RTA form `borders` additionally carries the claimed per-task
/// response bounds; the checker recomputes its own bounds and rejects
/// when any recomputed bound exceeds the claimed one or any claim
/// exceeds its deadline, so mutation (shrinking a bound, inflating one
/// past D, transplanting onto another set) fails.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/types.hpp"
#include "model/platform.hpp"
#include "model/task_set.hpp"
#include "query/workload.hpp"

namespace edfkit {

enum class TestKind : int;  // full definition in query/registry.hpp

enum class CertificateKind : std::uint8_t {
  None,                ///< no certificate attached
  FeasibleBorders,     ///< per-task superposition borders (see above)
  FeasibleExhaustive,  ///< bound B; full exact-dbf replay over (0, B]
  InfeasibleWitness,   ///< interval W with exact dbf(W) > W
  InfeasibleOverload,  ///< exact utilization > 1
  MultiFeasibleDensity,    ///< GFB density condition holds on m procs
  MultiFeasibleWindow,     ///< a window/RTA sufficient condition holds
  MultiFeasibleSim,        ///< m-proc sim: no miss (periodic semantics)
  MultiInfeasibleOverload, ///< exact utilization > m
  MultiInfeasibleJob,      ///< some task has C_i > D_i
  MultiInfeasibleSim,      ///< m-proc sim missed (sporadic refutation)
};

[[nodiscard]] const char* to_string(CertificateKind k) noexcept;

/// Which global test a MultiFeasibleWindow certificate names; the
/// checker recomputes exactly this condition.
enum class MultiTest : std::uint8_t {
  None,
  Gfb,
  Bcl,
  BclIter,
  Load,
  Rta,
  Sim,
};

[[nodiscard]] const char* to_string(MultiTest t) noexcept;

struct Certificate {
  CertificateKind kind = CertificateKind::None;
  /// InfeasibleWitness: the overflow interval W.
  /// MultiInfeasibleSim: the simulated miss instant (informational; the
  /// checker re-runs the deterministic simulation rather than trust it).
  Time witness = -1;
  /// FeasibleExhaustive: the replay bound B.
  /// MultiFeasibleSim / MultiInfeasibleSim: the simulation horizon cap.
  Time bound = 0;
  /// FeasibleBorders: border b_i per task, aligned with task order.
  /// MultiFeasibleWindow(Rta): claimed response-time bound per task.
  std::vector<Time> borders;
  /// Multiprocessor extension: platform width the claim is for (1 for
  /// the uniprocessor kinds) and the named sufficient condition.
  std::uint32_t processors = 1;
  MultiTest multi_test = MultiTest::None;

  [[nodiscard]] bool present() const noexcept {
    return kind != CertificateKind::None;
  }
  [[nodiscard]] bool multiprocessor() const noexcept {
    return kind >= CertificateKind::MultiFeasibleDensity;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Verdict of the independent checker.
struct CertificateCheck {
  bool valid = false;
  /// Demand/capacity comparisons the checker replayed.
  std::uint64_t points_checked = 0;
  /// Human-readable rejection reason (empty when valid).
  std::string reason;
};

/// Default cap on checker comparisons (guards hyperperiod blow-ups in
/// the exhaustive form; certificates needing more are rejected as
/// unverifiable, never accepted unchecked).
inline constexpr std::uint64_t kDefaultVerifyPointCap = 1u << 22;

/// Independently verify `c` against `ts`. Accepts only certificates
/// whose claim it can fully re-establish with exact arithmetic.
[[nodiscard]] CertificateCheck verify(
    const TaskSet& ts, const Certificate& c,
    std::uint64_t max_points = kDefaultVerifyPointCap);

/// Workload overload: verifies against the canonical sporadic form.
[[nodiscard]] CertificateCheck verify(
    const Workload& w, const Certificate& c,
    std::uint64_t max_points = kDefaultVerifyPointCap);

/// Build the infeasibility certificate matching an Infeasible result:
/// witness form when `r.witness >= 0`, overload form otherwise.
[[nodiscard]] Certificate make_infeasibility_certificate(
    const FeasibilityResult& r);

/// Construct a feasibility certificate for a provably feasible set by an
/// all-approximated superposition sweep that records per-task borders.
/// Falls back to the exhaustive form when the sweep exceeds `step_cap`
/// (possible only for pathological U == 1 sets). Returns nullopt when the
/// set is not provably feasible (never emits an unsound certificate).
[[nodiscard]] std::optional<Certificate> build_feasibility_certificate(
    const TaskSet& ts, std::uint64_t step_cap = 1u << 20);

/// Build the MultiprocessorCertificate for a global-mode verdict decided
/// by the backend `decided_by` (one of the Global* / GfbDensity kinds)
/// on platform `p`. Re-derives everything it attaches (e.g. the RTA
/// response bounds) rather than trusting `r`, so the result always
/// passes verify() when the verdict was sound. Returns nullopt when the
/// deciding kind is not a global backend or the condition cannot be
/// re-established (a library bug — never emits an unsound certificate).
[[nodiscard]] std::optional<Certificate> build_multiprocessor_certificate(
    const TaskSet& ts, const Platform& p, TestKind decided_by,
    const FeasibilityResult& r);

}  // namespace edfkit
