#include "fault/fault.hpp"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <memory>

namespace edfkit::fault {
namespace {

/// xorshift64* step — good enough for fault schedules, cheap enough
/// for an armed hot path.
[[nodiscard]] std::uint64_t xorshift64(std::uint64_t x) noexcept {
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  return x * 0x2545F4914F6CDD1Dull;
}

struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<FailPoint>> points;
};

Registry& registry() {
  // Leaked on purpose: sites cache FailPoint references in
  // function-local statics whose destruction order vs this map is
  // otherwise unsequenced.
  static Registry* r = new Registry();
  return *r;
}

const std::map<std::string, int>& errno_names() {
  static const std::map<std::string, int> names = {
      {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"EDQUOT", EDQUOT},
      {"EACCES", EACCES}, {"EROFS", EROFS},   {"EMFILE", EMFILE},
      {"ENFILE", ENFILE}, {"ENOENT", ENOENT}, {"EFBIG", EFBIG},
      {"EPERM", EPERM},   {"EAGAIN", EAGAIN}, {"EINTR", EINTR},
  };
  return names;
}

}  // namespace

const char* to_string(Mode m) noexcept {
  switch (m) {
    case Mode::Off: return "off";
    case Mode::Once: return "once";
    case Mode::EveryN: return "every";
    case Mode::AfterN: return "after";
    case Mode::Random: return "prob";
  }
  return "?";
}

FaultResult FailPoint::consume() noexcept {
  // The hit index is local to the current arming: a point armed
  // `every,n=3` fires on its 3rd/6th/9th hit *since arming*,
  // regardless of history.
  const std::uint64_t hit =
      hits_.fetch_add(1, std::memory_order_relaxed) + 1 -
      armed_at_hit_.load(std::memory_order_relaxed);
  FaultResult r;
  switch (static_cast<Mode>(mode_.load(std::memory_order_relaxed))) {
    case Mode::Off:
      return r;
    case Mode::Once:
      if (hit != 1) return r;
      break;
    case Mode::EveryN: {
      const std::uint64_t n = n_.load(std::memory_order_relaxed);
      if (n == 0 || hit % n != 0) return r;
      break;
    }
    case Mode::AfterN:
      if (hit <= n_.load(std::memory_order_relaxed)) return r;
      break;
    case Mode::Random: {
      // Relaxed load/advance/store: concurrent hits may reuse a state
      // (a duplicated draw), which only perturbs the schedule — fault
      // injection needs determinism per thread sequence, not a global
      // total order — and stays TSan-clean (atomics throughout).
      const std::uint64_t s = rng_.load(std::memory_order_relaxed);
      const std::uint64_t next = xorshift64(s);
      rng_.store(next, std::memory_order_relaxed);
      if (next >= prob_bits_.load(std::memory_order_relaxed)) return r;
      break;
    }
  }
  fires_.fetch_add(1, std::memory_order_relaxed);
  r.fire = true;
  r.err = err_.load(std::memory_order_relaxed);
  r.short_len = short_len_.load(std::memory_order_relaxed);
  return r;
}

bool FailPoint::should_fail() noexcept {
  const FaultResult r = consume();
  if (r.fire) errno = r.err;
  return r.fire;
}

void FailPoint::arm(Mode mode, std::uint64_t n, double probability,
                    std::uint64_t seed, int err,
                    std::size_t short_len) noexcept {
  n_.store(n, std::memory_order_relaxed);
  // p scaled to the full u64 range; clamp so p=1.0 always fires.
  double p = probability;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  prob_bits_.store(
      p >= 1.0 ? ~0ull
               : static_cast<std::uint64_t>(
                     p * 18446744073709551616.0 /* 2^64 */),
      std::memory_order_relaxed);
  rng_.store(seed == 0 ? 1 : seed, std::memory_order_relaxed);
  err_.store(err, std::memory_order_relaxed);
  short_len_.store(short_len, std::memory_order_relaxed);
  armed_at_hit_.store(hits_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  mode_.store(static_cast<std::uint8_t>(mode), std::memory_order_relaxed);
  // armed_ last: a site observing armed sees the full configuration
  // (release pairs with the site's consume() loads via the data; the
  // relaxed hot path tolerates a stale read for at most one hit).
  armed_.store(mode == Mode::Off ? 0 : 1, std::memory_order_release);
}

void FailPoint::disarm() noexcept {
  armed_.store(0, std::memory_order_relaxed);
  mode_.store(static_cast<std::uint8_t>(Mode::Off),
              std::memory_order_relaxed);
}

FailPoint& point(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end()) {
    it = r.points.emplace(name, std::make_unique<FailPoint>(name)).first;
  }
  return *it->second;
}

std::vector<FailPoint*> list() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<FailPoint*> out;
  out.reserve(r.points.size());
  for (const auto& [name, fp] : r.points) out.push_back(fp.get());
  return out;
}

void disarm_all() noexcept {
  for (FailPoint* fp : list()) fp->disarm();
}

namespace {

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool parse_entry(const std::string& entry, std::string* error) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    if (error != nullptr) *error = "entry '" + entry + "': expected NAME=MODE";
    return false;
  }
  const std::string name = trim(entry.substr(0, eq));
  std::string rest = entry.substr(eq + 1);

  // MODE[,key=value...]
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= rest.size()) {
    const std::size_t comma = rest.find(',', start);
    const std::size_t end = comma == std::string::npos ? rest.size() : comma;
    parts.push_back(trim(rest.substr(start, end - start)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (parts.empty() || parts[0].empty()) {
    if (error != nullptr) *error = "entry '" + entry + "': missing mode";
    return false;
  }

  Mode mode;
  const std::string& m = parts[0];
  if (m == "off") {
    mode = Mode::Off;
  } else if (m == "once") {
    mode = Mode::Once;
  } else if (m == "every") {
    mode = Mode::EveryN;
  } else if (m == "after") {
    mode = Mode::AfterN;
  } else if (m == "prob") {
    mode = Mode::Random;
  } else {
    if (error != nullptr) *error = "entry '" + entry + "': unknown mode " + m;
    return false;
  }

  std::uint64_t n = 1;
  double p = 0.0;
  std::uint64_t seed = 1;
  int err = EIO;
  std::size_t short_len = static_cast<std::size_t>(-1);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::size_t keq = parts[i].find('=');
    if (keq == std::string::npos) {
      if (error != nullptr) {
        *error = "entry '" + entry + "': expected key=value, got " + parts[i];
      }
      return false;
    }
    const std::string key = parts[i].substr(0, keq);
    const std::string val = parts[i].substr(keq + 1);
    char* endp = nullptr;
    if (key == "n") {
      n = std::strtoull(val.c_str(), &endp, 10);
    } else if (key == "p") {
      p = std::strtod(val.c_str(), &endp);
    } else if (key == "seed") {
      seed = std::strtoull(val.c_str(), &endp, 10);
    } else if (key == "short") {
      short_len = std::strtoull(val.c_str(), &endp, 10);
    } else if (key == "errno") {
      const auto it = errno_names().find(val);
      if (it != errno_names().end()) {
        err = it->second;
        endp = nullptr;
      } else {
        err = static_cast<int>(std::strtol(val.c_str(), &endp, 10));
        if (err <= 0) {
          if (error != nullptr) {
            *error = "entry '" + entry + "': unknown errno " + val;
          }
          return false;
        }
      }
    } else {
      if (error != nullptr) {
        *error = "entry '" + entry + "': unknown key " + key;
      }
      return false;
    }
    if (endp != nullptr && (*endp != '\0' || endp == val.c_str())) {
      if (error != nullptr) {
        *error = "entry '" + entry + "': bad value for " + key;
      }
      return false;
    }
  }
  point(name).arm(mode, n, p, seed, err, short_len);
  return true;
}

}  // namespace

bool configure(const std::string& spec, std::string* error) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::size_t end = semi == std::string::npos ? spec.size() : semi;
    const std::string entry = trim(spec.substr(start, end - start));
    if (!entry.empty() && !parse_entry(entry, error)) return false;
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return true;
}

std::size_t configure_from_env() {
  const char* env = std::getenv("EDFKIT_FAULTS");
  if (env == nullptr || *env == '\0') return 0;
  if (!configure(env)) return 0;
  std::size_t armed = 0;
  for (const FailPoint* fp : list()) {
    if (fp->armed()) ++armed;
  }
  return armed;
}

}  // namespace edfkit::fault
