/// \file fault.hpp
/// Deterministic fault injection: a process-global registry of named
/// failpoints threaded through the persist layer's syscall sites
/// (open/write/fsync/rename/truncate) and the server's response path,
/// so every failure shape the service must survive — ENOSPC on a
/// journal append, a crash-torn write, a snapshot rename that never
/// lands, a response dropped after the commit — can be provoked on
/// demand and differential-tested instead of waited for.
///
/// Cost model: a site is
///
///   fault::FailPoint& fp = EDFKIT_FAULT_POINT("journal.append.write");
///   if (fp.armed() && fp.should_fail()) throw ...;
///
/// `armed()` is one relaxed atomic load behind a function-local static
/// reference, so a disarmed site costs a load and a predicted branch —
/// the perf suite's `fault_off` cell gates the armed-but-never-firing
/// state (which upper-bounds it) at <1% on the headline churn cell.
/// consume()/should_fail() run only when armed and are lock-free
/// (atomics throughout), so arming a point never serializes the paths
/// it instruments — TSan-clean by construction.
///
/// Trigger modes (per point):
///   off      — never fires (the disarmed state).
///   once     — fires on the first hit after arming, then never again.
///   every,n= — fires on every n-th hit (n=1: every hit).
///   after,n= — fires on every hit after the first n.
///   prob,p=,seed= — fires with probability p per hit (seeded
///              xorshift64*, so a given seed replays the same fault
///              schedule against the same hit sequence).
///
/// Every mode composes with `errno=` (named — ENOSPC, EIO, … — or
/// numeric) selecting the errno the site reports, and write sites
/// honor `short=K`: write K bytes for real before failing, producing a
/// genuine torn tail on disk rather than a clean error.
///
/// Configuration: programmatic (point(name).arm(...)) or the
/// `EDFKIT_FAULTS` environment spec for harnesses —
///
///   EDFKIT_FAULTS="journal.append.fsync=every,n=50,errno=EIO;
///                  snapshot.rename=once;
///                  journal.append.write=prob,p=0.01,seed=7,short=3"
///
/// (entries ';'-separated, whitespace ignored). configure() reports
/// malformed specs instead of silently arming nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace edfkit::fault {

enum class Mode : std::uint8_t { Off = 0, Once, EveryN, AfterN, Random };

[[nodiscard]] const char* to_string(Mode m) noexcept;

/// Outcome of one armed hit.
struct FaultResult {
  bool fire = false;
  int err = 0;  ///< errno to report when firing
  /// Write sites: bytes to write for real before failing (a torn
  /// tail). SIZE_MAX = fail cleanly without writing.
  std::size_t short_len = static_cast<std::size_t>(-1);
};

/// One named failpoint. Never destroyed (the registry leaks its points
/// on purpose — sites cache references for the process lifetime).
class FailPoint {
 public:
  explicit FailPoint(std::string name) : name_(std::move(name)) {}
  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The hot-path check: one relaxed load.
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed) != 0;
  }

  /// Count a hit and decide whether it fires. Call only when armed()
  /// (calling disarmed is harmless but counts a hit). Lock-free.
  FaultResult consume() noexcept;

  /// consume() and, when firing, set errno to the configured value.
  /// The site then throws whatever its real failure would throw.
  [[nodiscard]] bool should_fail() noexcept;

  /// Arm with `mode`. `n` parameterizes EveryN/AfterN, `probability` +
  /// `seed` parameterize Random, `err` is the injected errno,
  /// `short_len` the torn-write length (SIZE_MAX = clean failure).
  void arm(Mode mode, std::uint64_t n = 1, double probability = 0.0,
           std::uint64_t seed = 1, int err = 5 /*EIO*/,
           std::size_t short_len = static_cast<std::size_t>(-1)) noexcept;

  void disarm() noexcept;

  /// Hits seen while armed (consume() calls) and hits that fired.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fires() const noexcept {
    return fires_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Mode mode() const noexcept {
    return static_cast<Mode>(mode_.load(std::memory_order_relaxed));
  }

  /// Reset counters (arming does not, so a harness can arm once and
  /// read totals across phases).
  void reset_counters() noexcept {
    hits_.store(0, std::memory_order_relaxed);
    fires_.store(0, std::memory_order_relaxed);
  }

 private:
  const std::string name_;
  std::atomic<std::uint8_t> armed_{0};
  std::atomic<std::uint8_t> mode_{0};
  std::atomic<std::uint64_t> n_{1};
  std::atomic<std::uint64_t> prob_bits_{0};  ///< p scaled to 2^64
  std::atomic<std::uint64_t> rng_{1};
  std::atomic<int> err_{5};
  std::atomic<std::size_t> short_len_{static_cast<std::size_t>(-1)};
  std::atomic<std::uint64_t> armed_at_hit_{0};  ///< hits() when armed
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fires_{0};
};

/// Find-or-create the point named `name`. Thread-safe; the reference
/// stays valid for the process lifetime.
[[nodiscard]] FailPoint& point(const std::string& name);

/// Every point ever created, in name order.
[[nodiscard]] std::vector<FailPoint*> list();

/// Disarm every registered point (test teardown).
void disarm_all() noexcept;

/// Parse and apply a fault spec (see file header). Returns false and
/// fills `error` (when non-null) on a malformed spec; points named
/// before the malformed entry stay armed.
bool configure(const std::string& spec, std::string* error = nullptr);

/// configure(getenv("EDFKIT_FAULTS")); no-op when unset. Returns the
/// number of entries armed (0 when unset or malformed).
std::size_t configure_from_env();

/// The canonical persist-layer site names, in the order a
/// journal+snapshot lifecycle hits them. tests/fault iterates this
/// list; a test cross-checks it against the registry after exercising
/// a full lifecycle, so a new site cannot be added without being
/// enumerated (or the list test fails).
inline constexpr const char* kPersistSites[] = {
    "journal.create.open",   "journal.create.write",
    "journal.create.fsync",  "journal.open.open",
    "journal.open.truncate", "journal.append.write",
    "journal.append.fsync",  "journal.append.truncate_back",
    "journal.rotate.fsync",  "journal.rotate.open",
    "journal.sync.fsync",    "journal.tail.open",
    "journal.tail.read",     "snapshot.tmp.open",
    "snapshot.tmp.write",    "snapshot.tmp.fsync",
    "snapshot.rename",
};

/// The server's post-commit response drop (emulates a kill between
/// commit and reply — the exactly-once retry differential arms it).
inline constexpr const char* kDropResponseSite = "net.server.drop_response";

/// The replication shipper's post-read payload corruption: flip one
/// byte of a shipped record AFTER it left the journal (its wire CRC is
/// computed over the corrupt bytes, so framing passes) — the digest
/// divergence differential arms it to prove a follower detects and
/// re-seeds rather than silently diverging.
inline constexpr const char* kReplCorruptSite = "repl.ship.corrupt";

#define EDFKIT_FAULT_POINT(name_literal)                          \
  ([]() -> ::edfkit::fault::FailPoint& {                          \
    static ::edfkit::fault::FailPoint& fp_ =                      \
        ::edfkit::fault::point(name_literal);                     \
    return fp_;                                                   \
  }())

}  // namespace edfkit::fault
