/// \file all_approx.hpp
/// The all-approximated exact feasibility test (paper §4.2, Fig. 7).
///
/// Instead of a global level, every task is approximated immediately
/// after its first tested job deadline, and approximations are revised
/// *individually*, on demand, at exactly those test intervals where the
/// approximated demand exceeds the capacity. Revision order is FIFO over
/// the approximation list (the paper's `getAndRemoveFirstTask`). Each
/// revised task contributes one new test interval — its next job deadline
/// after the failing interval (Lemma 5) — and is re-approximated as soon
/// as that interval is processed.
///
/// The test terminates implicitly at the superposition feasibility bound
/// (§4.3): once the slack at a test interval absorbs every task's
/// overestimation, no further intervals are generated. When the initial
/// interval of every task is accepted without revisions, the behaviour
/// and cost equal Devi's test — the paper's key property.
#pragma once

#include <atomic>
#include <optional>

#include "analysis/types.hpp"
#include "model/task_set.hpp"

namespace edfkit {

/// Which approximated task to revise when the demand exceeds a test
/// interval. The paper's getAndRemoveFirstTask is FIFO; the alternatives
/// exist for the ablation bench (verdicts are policy-independent — the
/// test stays exact — only the effort changes).
enum class RevisionPolicy : std::uint8_t {
  Fifo,      ///< paper: oldest approximation first
  Lifo,      ///< newest approximation first
  MaxError,  ///< largest current overestimation app(I, tau) first
};

struct AllApproxOptions {
  /// Safety net for U == 1 workloads where the implicit termination
  /// argument does not apply (see DESIGN.md §4): intervals beyond this
  /// bound are feasible by construction. Default: the library's combined
  /// feasibility bound.
  std::optional<Time> bound;
  RevisionPolicy revision = RevisionPolicy::Fifo;
  /// Cooperative cancellation (see ProcessorDemandOptions::stop).
  const std::atomic<bool>* stop = nullptr;
};

[[nodiscard]] FeasibilityResult all_approx_test(
    const TaskSet& ts, const AllApproxOptions& opts = {});

}  // namespace edfkit
