#include "core/analyzer.hpp"

#include <iomanip>
#include <sstream>

#include "query/query.hpp"

namespace edfkit {

BackendParams params_from_legacy(TestKind kind, const AnalyzerOptions& opts) {
  switch (kind) {
    case TestKind::SuperPos: return SuperPosParams{opts.superpos_level};
    case TestKind::Chakraborty: return ChakrabortyParams{opts.epsilon};
    case TestKind::ProcessorDemand: {
      ProcessorDemandOptions po;
      po.use_busy_period = opts.pd_use_busy_period;
      po.max_iterations = opts.pd_max_iterations;
      return po;
    }
    case TestKind::Dynamic: return opts.dynamic;
    case TestKind::AllApprox: return opts.all_approx;
    default: return default_params(kind);
  }
}

FeasibilityResult run_test(const TaskSet& ts, TestKind kind,
                           const AnalyzerOptions& opts) {
  if (ts.empty()) return make_verdict(Verdict::Feasible);
  return Query::single(kind, params_from_legacy(kind, opts))
      .with_certificates(false)
      .run(Workload::periodic(ts))
      .analysis;
}

std::string compare_all(const TaskSet& ts, const AnalyzerOptions& opts) {
  std::vector<BackendSelection> backends;
  if (!ts.empty()) {
    for (const TestKind k : all_test_kinds()) {
      backends.push_back(BackendSelection{k, params_from_legacy(k, opts)});
    }
  }
  return comparison_table(Workload::periodic(ts), backends);
}

}  // namespace edfkit
