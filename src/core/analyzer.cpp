#include "core/analyzer.hpp"

#include <iomanip>
#include <sstream>

#include "analysis/chakraborty.hpp"
#include "analysis/devi.hpp"
#include "analysis/processor_demand.hpp"
#include "analysis/qpa.hpp"
#include "analysis/utilization.hpp"
#include "core/superpos.hpp"

namespace edfkit {

const char* to_string(TestKind k) noexcept {
  switch (k) {
    case TestKind::LiuLayland: return "liu-layland";
    case TestKind::Devi: return "devi";
    case TestKind::SuperPos: return "superpos";
    case TestKind::Chakraborty: return "chakraborty";
    case TestKind::ProcessorDemand: return "processor-demand";
    case TestKind::Qpa: return "qpa";
    case TestKind::Dynamic: return "dynamic";
    case TestKind::AllApprox: return "all-approx";
  }
  return "?";
}

const std::vector<TestKind>& all_test_kinds() {
  static const std::vector<TestKind> kinds = {
      TestKind::LiuLayland, TestKind::Devi,    TestKind::SuperPos,
      TestKind::Chakraborty, TestKind::ProcessorDemand, TestKind::Qpa,
      TestKind::Dynamic,    TestKind::AllApprox};
  return kinds;
}

bool is_exact(TestKind k) noexcept {
  switch (k) {
    case TestKind::ProcessorDemand:
    case TestKind::Qpa:
    case TestKind::AllApprox:
      return true;
    case TestKind::Dynamic:
      return true;  // exact while max_level == 0 (the default)
    default:
      return false;
  }
}

FeasibilityResult run_test(const TaskSet& ts, TestKind kind,
                           const AnalyzerOptions& opts) {
  switch (kind) {
    case TestKind::LiuLayland:
      return liu_layland_test(ts);
    case TestKind::Devi:
      return devi_test(ts);
    case TestKind::SuperPos:
      return superpos_test(ts, opts.superpos_level);
    case TestKind::Chakraborty:
      return chakraborty_test(ts, opts.epsilon).base;
    case TestKind::ProcessorDemand: {
      ProcessorDemandOptions po;
      po.use_busy_period = opts.pd_use_busy_period;
      po.max_iterations = opts.pd_max_iterations;
      return processor_demand_test(ts, po);
    }
    case TestKind::Qpa:
      return qpa_test(ts);
    case TestKind::Dynamic:
      return dynamic_error_test(ts, opts.dynamic);
    case TestKind::AllApprox:
      return all_approx_test(ts, opts.all_approx);
  }
  return make_verdict(Verdict::Unknown);
}

std::string compare_all(const TaskSet& ts, const AnalyzerOptions& opts) {
  std::ostringstream os;
  os << std::left << std::setw(18) << "test" << std::setw(12) << "verdict"
     << std::setw(12) << "iterations" << std::setw(11) << "revisions"
     << "max interval\n";
  for (const TestKind k : all_test_kinds()) {
    const FeasibilityResult r = run_test(ts, k, opts);
    os << std::left << std::setw(18) << to_string(k) << std::setw(12)
       << to_string(r.verdict) << std::setw(12) << r.iterations
       << std::setw(11) << r.revisions << r.max_interval_tested << "\n";
  }
  return os.str();
}

}  // namespace edfkit
