#include "core/analyzer.hpp"

#include <iomanip>
#include <sstream>

#include "query/query.hpp"

namespace edfkit {

BackendParams params_from_legacy(TestKind kind, const AnalyzerOptions& opts) {
  switch (kind) {
    case TestKind::SuperPos: return SuperPosParams{opts.superpos_level};
    case TestKind::Chakraborty: return ChakrabortyParams{opts.epsilon};
    case TestKind::ProcessorDemand: {
      ProcessorDemandOptions po;
      po.use_busy_period = opts.pd_use_busy_period;
      po.max_iterations = opts.pd_max_iterations;
      return po;
    }
    case TestKind::Dynamic: return opts.dynamic;
    case TestKind::AllApprox: return opts.all_approx;
    default: return default_params(kind);
  }
}

FeasibilityResult run_test(const TaskSet& ts, TestKind kind,
                           const AnalyzerOptions& opts) {
  if (ts.empty()) return make_verdict(Verdict::Feasible);
  return Query::single(kind, params_from_legacy(kind, opts))
      .with_certificates(false)
      .run(Workload::periodic(ts))
      .analysis;
}

std::string compare_all(const TaskSet& ts, const AnalyzerOptions& opts) {
  Query q;
  q.with_policy(ExecPolicy::Batch).with_certificates(false);
  for (const TestKind k : all_test_kinds()) {
    q.add(k, params_from_legacy(k, opts));
  }
  std::ostringstream os;
  os << std::left << std::setw(18) << "test" << std::setw(12) << "verdict"
     << std::setw(12) << "iterations" << std::setw(11) << "revisions"
     << "max interval\n";
  if (ts.empty()) return os.str();
  const Outcome out = q.run(Workload::periodic(ts));
  for (const BackendAttempt& a : out.attempts) {
    os << std::left << std::setw(18) << to_string(a.kind) << std::setw(12)
       << to_string(a.result.verdict) << std::setw(12) << a.result.iterations
       << std::setw(11) << a.result.revisions << a.result.max_interval_tested
       << "\n";
  }
  return os.str();
}

}  // namespace edfkit
