/// \file analyzer.hpp
/// Facade over every feasibility test in edfkit: pick a test by enum,
/// run it, get a uniform instrumented result. This is the entry point the
/// examples and the benchmark harness use.
#pragma once

#include <string>
#include <vector>

#include "analysis/types.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "model/task_set.hpp"

namespace edfkit {

/// Every analysis the library implements.
enum class TestKind : int {
  LiuLayland,       ///< utilization bound [12] (exact for implicit deadlines)
  Devi,             ///< sufficient test [9]
  SuperPos,         ///< superposition approximation [1], needs `level`
  Chakraborty,      ///< approximate analysis [8], needs `epsilon`
  ProcessorDemand,  ///< exact test [3]
  Qpa,              ///< exact test (Zhang & Burns 2009, extension)
  Dynamic,          ///< NEW: dynamic-error exact test (paper §4.1)
  AllApprox,        ///< NEW: all-approximated exact test (paper §4.2)
};

[[nodiscard]] const char* to_string(TestKind k) noexcept;
/// All kinds, in declaration order (for sweeps).
[[nodiscard]] const std::vector<TestKind>& all_test_kinds();
/// True for tests whose Feasible *and* Infeasible verdicts are exact.
[[nodiscard]] bool is_exact(TestKind k) noexcept;

/// Knobs for run_test; only the fields relevant to the chosen kind apply.
struct AnalyzerOptions {
  Time superpos_level = 3;     ///< for TestKind::SuperPos
  double epsilon = 0.25;       ///< for TestKind::Chakraborty
  DynamicTestOptions dynamic;  ///< for TestKind::Dynamic
  AllApproxOptions all_approx; ///< for TestKind::AllApprox
  bool pd_use_busy_period = false;  ///< for TestKind::ProcessorDemand
  std::uint64_t pd_max_iterations = 0;
};

/// Run one test.
[[nodiscard]] FeasibilityResult run_test(const TaskSet& ts, TestKind kind,
                                         const AnalyzerOptions& opts = {});

/// Run every test and render a comparison table (diagnostics/examples).
/// The admission subsystem's escalation ladder (admission/controller.hpp)
/// is a subset of these columns — liu-layland, chakraborty at
/// `opts.epsilon`, then the configured exact fallback — so this table
/// also previews which rung would settle the set at admission time.
[[nodiscard]] std::string compare_all(const TaskSet& ts,
                                      const AnalyzerOptions& opts = {});

}  // namespace edfkit
