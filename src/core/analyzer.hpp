/// \file analyzer.hpp
/// DEPRECATED facade kept as a thin shim over the unified query API
/// (src/query/). `TestKind` now lives in query/registry.hpp as the
/// backend-registry lookup key; `run_test`/`compare_all` translate the
/// legacy kitchen-sink `AnalyzerOptions` into the typed per-backend
/// parameters and route through `Query`. New code should build a
/// `Query` directly (see query/query.hpp and the README migration
/// guide).
#pragma once

#include <string>
#include <vector>

#include "analysis/types.hpp"
#include "core/all_approx.hpp"
#include "core/dynamic_test.hpp"
#include "model/task_set.hpp"
#include "query/options.hpp"
#include "query/registry.hpp"

namespace edfkit {

/// Legacy knob pile for run_test; only the fields relevant to the chosen
/// kind apply. Superseded by the typed per-backend structs in
/// query/options.hpp.
struct AnalyzerOptions {
  Time superpos_level = 3;     ///< for TestKind::SuperPos
  double epsilon = 0.25;       ///< for TestKind::Chakraborty
  DynamicTestOptions dynamic;  ///< for TestKind::Dynamic
  AllApproxOptions all_approx; ///< for TestKind::AllApprox
  bool pd_use_busy_period = false;  ///< for TestKind::ProcessorDemand
  std::uint64_t pd_max_iterations = 0;
};

/// Map the legacy options onto the typed params of one backend.
[[nodiscard]] BackendParams params_from_legacy(TestKind kind,
                                               const AnalyzerOptions& opts);

/// DEPRECATED: run one test. Equivalent to
/// `Query::single(kind, params_from_legacy(kind, opts))
///      .with_certificates(false).run(ts)` for non-empty sets; empty sets
/// keep the historical trivially-Feasible behavior.
[[nodiscard]] FeasibilityResult run_test(const TaskSet& ts, TestKind kind,
                                         const AnalyzerOptions& opts = {});

/// Run every registered backend and render a comparison table
/// (diagnostics/examples). The admission subsystem's escalation ladder
/// (admission/controller.hpp) is a subset of these columns — see
/// default_ladder_kinds() in query/query.hpp.
[[nodiscard]] std::string compare_all(const TaskSet& ts,
                                      const AnalyzerOptions& opts = {});

}  // namespace edfkit
