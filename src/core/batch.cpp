#include "core/batch.hpp"

#include <iomanip>
#include <sstream>

#include "model/io.hpp"

namespace edfkit {

BatchReport run_batch(const std::vector<BatchEntry>& entries,
                      const BatchConfig& config) {
  BatchReport report;
  report.tests = config.tests;
  report.effort.resize(config.tests.size());
  report.accepted.assign(config.tests.size(), 0);

  for (const BatchEntry& entry : entries) {
    BatchRow row;
    row.name = entry.name;
    row.tasks = entry.tasks.size();
    row.utilization = entry.tasks.utilization_double();
    row.cells.reserve(config.tests.size());

    bool saw_exact_feasible = false;
    bool saw_exact_infeasible = false;
    for (std::size_t k = 0; k < config.tests.size(); ++k) {
      const TestKind kind = config.tests[k];
      const FeasibilityResult r =
          run_test(entry.tasks, kind, config.options);
      BatchCell cell;
      cell.verdict = r.verdict;
      cell.effort = r.effort();
      row.cells.push_back(cell);
      report.effort[k].add(static_cast<double>(cell.effort));
      if (r.feasible()) ++report.accepted[k];
      if (is_exact(kind)) {
        saw_exact_feasible |= r.feasible();
        saw_exact_infeasible |= r.infeasible();
      }
    }
    if (saw_exact_feasible && saw_exact_infeasible) {
      report.exact_disagreements.push_back(entry.name);
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

BatchReport run_batch_files(const std::vector<std::string>& paths,
                            const BatchConfig& config) {
  std::vector<BatchEntry> entries;
  entries.reserve(paths.size());
  for (const std::string& path : paths) {
    BatchEntry e;
    e.name = path;
    e.tasks = load_task_set(path);
    entries.push_back(std::move(e));
  }
  return run_batch(entries, config);
}

std::string BatchReport::to_string() const {
  std::ostringstream os;
  os << std::left << std::setw(24) << "set" << std::setw(5) << "n"
     << std::setw(9) << "U";
  for (const TestKind k : tests) {
    os << std::setw(22) << edfkit::to_string(k);
  }
  os << "\n";
  for (const BatchRow& row : rows) {
    os << std::left << std::setw(24) << row.name << std::setw(5) << row.tasks
       << std::setw(9) << std::fixed << std::setprecision(4)
       << row.utilization;
    for (const BatchCell& c : row.cells) {
      std::ostringstream cell;
      cell << edfkit::to_string(c.verdict) << " (" << c.effort << ")";
      os << std::setw(22) << cell.str();
    }
    os << "\n";
  }
  os << "\naccepted:";
  for (std::size_t k = 0; k < tests.size(); ++k) {
    os << "  " << edfkit::to_string(tests[k]) << "=" << accepted[k] << "/"
       << rows.size();
  }
  os << "\nmean effort:";
  for (std::size_t k = 0; k < tests.size(); ++k) {
    os << "  " << edfkit::to_string(tests[k]) << "="
       << std::setprecision(1) << effort[k].mean();
  }
  os << "\n";
  if (!exact_disagreements.empty()) {
    os << "!! exact tests disagreed on:";
    for (const std::string& n : exact_disagreements) os << " " << n;
    os << "\n";
  }
  return os.str();
}

std::string BatchReport::to_csv() const {
  std::ostringstream os;
  os << "set,n,utilization";
  for (const TestKind k : tests) {
    os << "," << edfkit::to_string(k) << "_verdict,"
       << edfkit::to_string(k) << "_effort";
  }
  os << "\n";
  for (const BatchRow& row : rows) {
    os << row.name << "," << row.tasks << "," << row.utilization;
    for (const BatchCell& c : row.cells) {
      os << "," << edfkit::to_string(c.verdict) << "," << c.effort;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace edfkit
