#include "core/batch.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "model/io.hpp"

namespace edfkit {
namespace {

/// JSON string escaping for set names (quotes/backslashes/control chars).
std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

}  // namespace

BatchReport run_batch(const std::vector<BatchEntry>& entries,
                      const Query& query) {
  Query batch_query = query;
  batch_query.with_policy(ExecPolicy::Batch).with_certificates(false);
  batch_query.validate();

  BatchReport report;
  for (const BackendSelection& sel : batch_query.backends()) {
    report.tests.push_back(sel.kind);
  }
  report.effort.resize(report.tests.size());
  report.accepted.assign(report.tests.size(), 0);

  for (const BatchEntry& entry : entries) {
    BatchRow row;
    row.name = entry.name;
    row.tasks = entry.tasks.size();
    row.utilization = entry.tasks.utilization_double();
    row.cells.reserve(report.tests.size());

    std::vector<BackendAttempt> attempts;
    if (!entry.tasks.empty()) {
      attempts =
          batch_query.run(Workload::periodic(entry.tasks)).attempts;
      if (attempts.size() != report.tests.size()) {
        throw std::logic_error(
            "run_batch: a backend was skipped; columns would misalign");
      }
    } else {
      // Preserve the historical trivially-Feasible row for empty sets.
      for (const TestKind k : report.tests) {
        attempts.push_back({k, make_verdict(Verdict::Feasible)});
      }
    }

    bool saw_exact_feasible = false;
    bool saw_exact_infeasible = false;
    for (std::size_t k = 0; k < attempts.size(); ++k) {
      const FeasibilityResult& r = attempts[k].result;
      BatchCell cell;
      cell.verdict = r.verdict;
      cell.effort = r.effort();
      row.cells.push_back(cell);
      report.effort[k].add(static_cast<double>(cell.effort));
      if (r.feasible()) ++report.accepted[k];
      if (is_exact(attempts[k].kind)) {
        saw_exact_feasible |= r.feasible();
        saw_exact_infeasible |= r.infeasible();
      }
    }
    if (saw_exact_feasible && saw_exact_infeasible) {
      report.exact_disagreements.push_back(entry.name);
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

BatchReport run_batch(const std::vector<BatchEntry>& entries,
                      const BatchConfig& config) {
  Query q;
  q.with_policy(ExecPolicy::Batch);
  for (const TestKind k : config.tests) {
    q.add(k, params_from_legacy(k, config.options));
  }
  return run_batch(entries, q);
}

namespace {

std::vector<BatchEntry> load_entries(const std::vector<std::string>& paths) {
  std::vector<BatchEntry> entries;
  entries.reserve(paths.size());
  for (const std::string& path : paths) {
    BatchEntry e;
    e.name = path;
    e.tasks = load_task_set(path);
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

BatchReport run_batch_files(const std::vector<std::string>& paths,
                            const BatchConfig& config) {
  return run_batch(load_entries(paths), config);
}

BatchReport run_batch_files(const std::vector<std::string>& paths,
                            const Query& query) {
  return run_batch(load_entries(paths), query);
}

std::string BatchReport::to_string() const {
  std::ostringstream os;
  os << std::left << std::setw(24) << "set" << std::setw(5) << "n"
     << std::setw(9) << "U";
  for (const TestKind k : tests) {
    os << std::setw(22) << edfkit::to_string(k);
  }
  os << "\n";
  for (const BatchRow& row : rows) {
    os << std::left << std::setw(24) << row.name << std::setw(5) << row.tasks
       << std::setw(9) << std::fixed << std::setprecision(4)
       << row.utilization;
    for (const BatchCell& c : row.cells) {
      std::ostringstream cell;
      cell << edfkit::to_string(c.verdict) << " (" << c.effort << ")";
      os << std::setw(22) << cell.str();
    }
    os << "\n";
  }
  os << "\naccepted:";
  for (std::size_t k = 0; k < tests.size(); ++k) {
    os << "  " << edfkit::to_string(tests[k]) << "=" << accepted[k] << "/"
       << rows.size();
  }
  os << "\nmean effort:";
  for (std::size_t k = 0; k < tests.size(); ++k) {
    os << "  " << edfkit::to_string(tests[k]) << "="
       << std::setprecision(1) << effort[k].mean();
  }
  os << "\n";
  if (!exact_disagreements.empty()) {
    os << "!! exact tests disagreed on:";
    for (const std::string& n : exact_disagreements) os << " " << n;
    os << "\n";
  }
  return os.str();
}

std::string BatchReport::to_csv() const {
  std::ostringstream os;
  os << "set,n,utilization";
  for (const TestKind k : tests) {
    os << "," << edfkit::to_string(k) << "_verdict,"
       << edfkit::to_string(k) << "_effort";
  }
  os << "\n";
  for (const BatchRow& row : rows) {
    os << row.name << "," << row.tasks << "," << row.utilization;
    for (const BatchCell& c : row.cells) {
      os << "," << edfkit::to_string(c.verdict) << "," << c.effort;
    }
    os << "\n";
  }
  return os.str();
}

std::string BatchReport::to_json() const {
  std::ostringstream os;
  os << "{\"tests\":[";
  for (std::size_t k = 0; k < tests.size(); ++k) {
    os << (k != 0 ? "," : "") << "\"" << edfkit::to_string(tests[k]) << "\"";
  }
  os << "],\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BatchRow& row = rows[i];
    os << (i != 0 ? "," : "") << "{\"set\":\"" << json_escape(row.name)
       << "\",\"n\":" << row.tasks << ",\"utilization\":" << std::fixed
       << std::setprecision(6) << row.utilization << ",\"results\":[";
    for (std::size_t k = 0; k < row.cells.size(); ++k) {
      const BatchCell& c = row.cells[k];
      os << (k != 0 ? "," : "") << "{\"test\":\""
         << edfkit::to_string(tests[k]) << "\",\"verdict\":\""
         << edfkit::to_string(c.verdict) << "\",\"effort\":" << c.effort
         << "}";
    }
    os << "]}";
  }
  os << "],\"accepted\":{";
  for (std::size_t k = 0; k < tests.size(); ++k) {
    os << (k != 0 ? "," : "") << "\"" << edfkit::to_string(tests[k])
       << "\":" << accepted[k];
  }
  os << "},\"mean_effort\":{";
  for (std::size_t k = 0; k < tests.size(); ++k) {
    os << (k != 0 ? "," : "") << "\"" << edfkit::to_string(tests[k])
       << "\":" << std::setprecision(3) << effort[k].mean();
  }
  os << "},\"exact_disagreements\":[";
  for (std::size_t k = 0; k < exact_disagreements.size(); ++k) {
    os << (k != 0 ? "," : "") << "\"" << json_escape(exact_disagreements[k])
       << "\"";
  }
  os << "]}";
  return os.str();
}

}  // namespace edfkit
