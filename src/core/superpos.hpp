/// \file superpos.hpp
/// The superposition approximation test SuperPos(x) (paper §3.4,
/// Defs. 4-6, from Albers & Slomka 2004 [1]).
///
/// Each task is evaluated exactly for its first x jobs and approximated
/// by its linear demand envelope afterwards. The test walks all exact job
/// deadlines in ascending order, maintaining the approximated demand
/// incrementally, and accepts iff dbf'(I) <= I at every change point
/// (which, with U <= 1, covers all intervals; Lemmas 1/3/4).
///
/// SuperPos(1) is provably equivalent to Devi's test (Lemma 2) — the
/// cross-validation suite asserts this on random workloads.
#pragma once

#include "analysis/types.hpp"
#include "model/task_set.hpp"

namespace edfkit {

/// Run SuperPos(level). Sufficient: Feasible on acceptance, Infeasible
/// only via the exact U > 1 precheck, Unknown on rejection.
/// \pre level >= 1
[[nodiscard]] FeasibilityResult superpos_test(const TaskSet& ts, Time level);

}  // namespace edfkit
