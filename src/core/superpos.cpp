#include "core/superpos.hpp"

#include <stdexcept>
#include <vector>

#include "analysis/utilization.hpp"
#include "demand/accumulator.hpp"
#include "demand/intervals.hpp"
#include "demand/task_view.hpp"

namespace edfkit {

FeasibilityResult superpos_test(const TaskSet& ts, Time level) {
  if (level < 1) throw std::invalid_argument("superpos_test: level < 1");
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    r.iterations = 1;
    return r;
  }

  const TaskColumns cols(ts.tasks());
  TestList list;
  std::vector<bool> approximated(cols.size(), false);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    list.add(i, cols.deadline[i]);
  }
  DemandAccumulator acc;
  Time iold = 0;

  // One testlist entry per iteration, exactly as in the paper's
  // pseudocode. Several tasks may share a test interval; the comparison
  // after the *last* entry of an interval sees the complete demand, and
  // earlier (partial-demand) failures are still true failures because
  // demand only grows within an interval. The per-job reads (wcet,
  // border, next deadline) come from the flat columns.
  while (!list.empty()) {
    const auto e = list.pop();
    const Time point = e.interval;
    acc.advance(point - iold);  // no-op for entries at the same interval
    acc.add_job(cols.wcet[e.task]);
    ++r.iterations;
    r.max_interval_tested = point;

    const Ordering cmp =
        acc.compare_with_refresh(ts, approximated, point, &r.degraded);
    if (cmp == Ordering::Greater) {
      // Approximated demand exceeds capacity (or cannot be proven not
      // to): the sufficient test rejects.
      r.verdict = Verdict::Unknown;
      return r;
    }

    // Border = deadline of job #level; at or past it, approximate.
    if (point < row_approx_border(cols, e.task, level)) {
      const Time nxt = row_next_deadline_after(cols, e.task, point);
      if (!is_time_infinite(nxt)) list.add(e.task, nxt);
    } else {
      acc.approximate(ts[e.task]);
      approximated[e.task] = true;
    }
    iold = point;
  }
  // All tasks approximated and every change point passed; with U <= 1 the
  // linear tail can never cross the capacity line (Lemma 1).
  r.verdict = Verdict::Feasible;
  return r;
}

}  // namespace edfkit
