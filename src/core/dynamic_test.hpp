/// \file dynamic_test.hpp
/// The dynamic-error exact feasibility test (paper §4.1, Fig. 5).
///
/// The test starts at superposition level 1 (every task approximated
/// after its first job — exactly Devi's test). Whenever the approximated
/// demand dbf' exceeds the current test interval, the level is raised
/// (doubled by default) and the approximations of all tasks whose new
/// border lies beyond the current interval are withdrawn: their
/// overestimation app(I, tau) is subtracted (Lemma 6) and their next job
/// deadline after I enters the test list (Lemma 5). Nothing already
/// computed is thrown away.
///
/// If the demand still exceeds the interval once *no* task is
/// approximated, the value is the exact dbf and the set is provably
/// infeasible. If the walk passes the feasibility bound Imax, or the test
/// list drains with every task approximated, the set is feasible
/// (Lemmas 1/3/4).
///
/// Task sets accepted by Devi's test complete entirely on level 1 with
/// one iteration per task — the paper's headline property.
#pragma once

#include <atomic>
#include <optional>

#include "analysis/types.hpp"
#include "model/task_set.hpp"

namespace edfkit {

struct DynamicTestOptions {
  /// Starting superposition level (paper: 1).
  Time initial_level = 1;
  /// Level growth on failure: next = max(level * growth_factor,
  /// level + 1). The paper doubles; the ablation bench varies this.
  Time growth_factor = 2;
  /// Hard cap on the level; 0 = unlimited (exact test). A non-zero cap
  /// yields the paper's "strictly limited worst-case run-time" variant,
  /// returning Unknown when the cap is insufficient.
  Time max_level = 0;
  /// Override for the feasibility bound Imax.
  std::optional<Time> bound;
  /// Cooperative cancellation (see ProcessorDemandOptions::stop).
  const std::atomic<bool>* stop = nullptr;
};

[[nodiscard]] FeasibilityResult dynamic_error_test(
    const TaskSet& ts, const DynamicTestOptions& opts = {});

}  // namespace edfkit
