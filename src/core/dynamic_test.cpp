#include "core/dynamic_test.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/utilization.hpp"
#include "demand/accumulator.hpp"
#include "demand/intervals.hpp"
#include "demand/task_view.hpp"

namespace edfkit {
namespace {

Time grown(Time level, Time factor) {
  return std::max(level + 1, mul_saturating(level, factor));
}

}  // namespace

FeasibilityResult dynamic_error_test(const TaskSet& ts,
                                     const DynamicTestOptions& opts) {
  if (opts.initial_level < 1)
    throw std::invalid_argument("dynamic_error_test: initial_level < 1");
  if (opts.growth_factor < 1)
    throw std::invalid_argument("dynamic_error_test: growth_factor < 1");

  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    r.iterations = 1;
    return r;
  }

  const Time imax = opts.bound.value_or(implicit_test_bound(ts));
  Time level = opts.initial_level;

  // The revision loops below only read wcet / effective deadline /
  // period — stream them from flat columns instead of re-indexing the
  // 80-byte Task structs every iteration (ROADMAP: "SoA the
  // accumulator tests"). The accumulator's refresh stages keep the
  // TaskSet (cold path).
  const TaskColumns cols(ts);
  TestList list;
  std::vector<bool> approximated(ts.size(), false);
  std::vector<std::size_t> approx_members;  // tasks currently approximated
  for (std::size_t i = 0; i < ts.size(); ++i) {
    list.add(i, cols.deadline[i]);
  }

  DemandAccumulator acc;
  Time iold = 0;

  // One testlist entry per iteration (paper Fig. 5): pop (tau, Iact),
  // account the job, then fix up the level until the demand fits.
  while (!list.empty() && list.peek().interval <= imax) {
    if (opts.stop != nullptr && opts.stop->load(std::memory_order_relaxed)) {
      r.verdict = Verdict::Unknown;
      r.cancelled = true;
      r.final_level = level;
      return r;
    }
    const auto entry = list.pop();
    const Time point = entry.interval;
    acc.advance(point - iold);
    acc.add_job(cols.wcet[entry.task]);
    ++r.iterations;
    r.max_interval_tested = point;

    // Inner loop: raise the level until the demand fits or nothing is
    // approximated any more.
    while (true) {
      bool cmp_degraded = false;
      const Ordering cmp =
          acc.compare_with_refresh(ts, approximated, point, &cmp_degraded);
      r.degraded = r.degraded || cmp_degraded;
      if (cmp != Ordering::Greater) break;

      if (approx_members.empty()) {
        if (cmp_degraded) {
          // Defensive: with nothing approximated the value is an exact
          // integer sum, so this branch should be unreachable.
          r.verdict = Verdict::Unknown;
          return r;
        }
        r.verdict = Verdict::Infeasible;  // exact dbf(point) > point
        r.witness = point;
        r.final_level = level;
        return r;
      }

      // Grow the level until at least one approximated task's new border
      // moves beyond `point` (bounded: borders grow without limit).
      std::vector<std::size_t> revised;
      while (revised.empty()) {
        level = grown(level, opts.growth_factor);
        if (opts.max_level != 0 && level > opts.max_level) {
          r.verdict = Verdict::Unknown;  // cap hit: sufficient-mode reject
          r.final_level = level;
          return r;
        }
        for (const std::size_t ti : approx_members) {
          if (row_approx_border(cols, ti, level) > point) {
            revised.push_back(ti);
          }
        }
      }
      for (const std::size_t ti : revised) {
        acc.revise(ts[ti], point);
        approximated[ti] = false;
        ++r.revisions;
        const Time nxt = row_next_deadline_after(cols, ti, point);
        if (!is_time_infinite(nxt)) list.add(ti, nxt);
      }
      approx_members.erase(
          std::remove_if(approx_members.begin(), approx_members.end(),
                         [&](std::size_t ti) { return !approximated[ti]; }),
          approx_members.end());
    }

    // Post-step (paper: "IF Iact < Testboarder(tau)"): keep testing the
    // popped task exactly below its border, approximate at/after it.
    {
      const std::size_t ti = entry.task;
      if (point < row_approx_border(cols, ti, level)) {
        const Time nxt = row_next_deadline_after(cols, ti, point);
        if (!is_time_infinite(nxt)) list.add(ti, nxt);
      } else {
        acc.approximate(ts[ti]);
        approximated[ti] = true;
        approx_members.push_back(ti);
      }
    }
    iold = point;
  }

  // Either every task is approximated and all change points passed, or
  // the walk crossed the feasibility bound: feasible both ways.
  r.verdict = Verdict::Feasible;
  r.final_level = level;
  return r;
}

}  // namespace edfkit
