#include "core/all_approx.hpp"

#include <deque>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/utilization.hpp"
#include "demand/accumulator.hpp"
#include "demand/intervals.hpp"
#include "demand/task_view.hpp"

namespace edfkit {

FeasibilityResult all_approx_test(const TaskSet& ts,
                                  const AllApproxOptions& opts) {
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    r.iterations = 1;
    return r;
  }

  const Time imax = opts.bound.value_or(implicit_test_bound(ts));

  // Flat hot columns for the revision loops (ROADMAP: "SoA the
  // accumulator tests"): the MaxError error sweep and the testlist
  // re-arming only read wcet / deadline / period / util.
  const TaskColumns cols(ts);
  TestList list;
  std::vector<bool> approximated(ts.size(), false);
  std::deque<std::size_t> approx_fifo;  // paper's ApproxList (FIFO)
  for (std::size_t i = 0; i < ts.size(); ++i) {
    list.add(i, cols.deadline[i]);
  }

  DemandAccumulator acc;
  Time iold = 0;

  // One testlist entry per iteration (paper Fig. 7).
  while (!list.empty() && list.peek().interval <= imax) {
    if (opts.stop != nullptr && opts.stop->load(std::memory_order_relaxed)) {
      r.verdict = Verdict::Unknown;
      r.cancelled = true;
      return r;
    }
    const auto entry = list.pop();
    const Time point = entry.interval;
    acc.advance(point - iold);
    acc.add_job(cols.wcet[entry.task]);
    ++r.iterations;
    r.max_interval_tested = point;

    // Revise approximations one task at a time (FIFO) until the demand
    // fits or nothing is approximated (=> the value is the exact dbf).
    while (true) {
      bool cmp_degraded = false;
      const Ordering cmp =
          acc.compare_with_refresh(ts, approximated, point, &cmp_degraded);
      r.degraded = r.degraded || cmp_degraded;
      if (cmp != Ordering::Greater) break;
      if (approx_fifo.empty()) {
        if (cmp_degraded) {
          r.verdict = Verdict::Unknown;  // defensive; exact dbf is integral
          return r;
        }
        r.verdict = Verdict::Infeasible;
        r.witness = point;
        return r;
      }
      std::size_t ti;
      switch (opts.revision) {
        case RevisionPolicy::Lifo:
          ti = approx_fifo.back();
          approx_fifo.pop_back();
          break;
        case RevisionPolicy::MaxError: {
          // Pick the approximation with the largest current
          // overestimation app(point, tau) = frac((point-D)/T) * C —
          // one dense sweep over the flat columns.
          std::size_t best = 0;
          double best_err = -1.0;
          for (std::size_t k = 0; k < approx_fifo.size(); ++k) {
            const std::size_t ci = approx_fifo[k];
            double err = 0.0;
            if (!is_time_infinite(cols.period[ci])) {
              err = static_cast<double>(floor_mod(
                        point - cols.deadline[ci], cols.period[ci])) *
                    cols.util[ci];
            }
            if (err > best_err) {
              best_err = err;
              best = k;
            }
          }
          ti = approx_fifo[best];
          approx_fifo.erase(approx_fifo.begin() +
                            static_cast<std::ptrdiff_t>(best));
          break;
        }
        case RevisionPolicy::Fifo:
        default:
          ti = approx_fifo.front();
          approx_fifo.pop_front();
          break;
      }
      acc.revise(ts[ti], point);
      approximated[ti] = false;
      ++r.revisions;
      const Time nxt = row_next_deadline_after(cols, ti, point);
      if (!is_time_infinite(nxt)) list.add(ti, nxt);
    }

    // The popped task re-enters approximation immediately: the frontier
    // sits on its own job deadline, where app == 0.
    acc.approximate(ts[entry.task]);
    approximated[entry.task] = true;
    approx_fifo.push_back(entry.task);
    iold = point;
  }

  r.verdict = Verdict::Feasible;
  return r;
}

}  // namespace edfkit
