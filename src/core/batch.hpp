/// \file batch.hpp
/// Batch feasibility analysis: run a selection of tests over many task
/// sets and aggregate verdicts, effort and disagreements into a report —
/// the workflow of a design-space exploration loop or a CI gate over a
/// directory of task-set files.
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "model/task_set.hpp"
#include "util/stats.hpp"

namespace edfkit {

struct BatchEntry {
  std::string name;
  TaskSet tasks;
};

struct BatchConfig {
  /// Tests to run per set, in column order. For previewing the online
  /// admission controller's escalation ladder offline, populate this
  /// from admission_ladder_tests() (admission/controller.hpp) — the
  /// batch_analyze example exposes that as `--ladder`.
  std::vector<TestKind> tests = {TestKind::Devi, TestKind::Dynamic,
                                 TestKind::AllApprox,
                                 TestKind::ProcessorDemand};
  AnalyzerOptions options;
};

struct BatchCell {
  Verdict verdict = Verdict::Unknown;
  std::uint64_t effort = 0;
};

struct BatchRow {
  std::string name;
  std::size_t tasks = 0;
  double utilization = 0.0;
  std::vector<BatchCell> cells;  ///< one per BatchConfig::tests entry
};

struct BatchReport {
  std::vector<TestKind> tests;
  std::vector<BatchRow> rows;
  /// Effort statistics per test, across all rows.
  std::vector<OnlineStats> effort;
  /// Names of sets where two *exact* tests disagreed (must stay empty —
  /// a non-empty list indicates an implementation bug).
  std::vector<std::string> exact_disagreements;
  /// Count of rows each test accepted.
  std::vector<std::size_t> accepted;

  /// Render as an aligned text table.
  [[nodiscard]] std::string to_string() const;
  /// Render as CSV (header + one line per row).
  [[nodiscard]] std::string to_csv() const;
};

/// Run the batch. Rows keep the input order.
[[nodiscard]] BatchReport run_batch(const std::vector<BatchEntry>& entries,
                                    const BatchConfig& config = {});

/// Convenience: load every path as a task-set file and run the batch.
/// \throws on unreadable/malformed files (fail fast — a CI gate should
/// not silently skip inputs).
[[nodiscard]] BatchReport run_batch_files(
    const std::vector<std::string>& paths, const BatchConfig& config = {});

}  // namespace edfkit
