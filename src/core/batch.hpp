/// \file batch.hpp
/// Batch feasibility analysis: route many task sets through one query and
/// aggregate verdicts, effort and disagreements into a report — the
/// workflow of a design-space exploration loop or a CI gate over a
/// directory of task-set files.
///
/// The batch runner is the query API's Batch execution policy applied
/// per entry: `run_batch(entries, query)` takes any Query (its backend
/// selection defines the column order) and runs it on every entry. The
/// legacy `BatchConfig` path remains as a thin shim.
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "model/task_set.hpp"
#include "query/query.hpp"
#include "util/stats.hpp"

namespace edfkit {

struct BatchEntry {
  std::string name;
  TaskSet tasks;
};

/// DEPRECATED legacy batch configuration; superseded by passing a Query.
struct BatchConfig {
  /// Tests to run per set, in column order. For previewing the online
  /// admission controller's escalation ladder offline, populate this
  /// from admission_ladder_tests() (admission/controller.hpp) — the
  /// batch_analyze example exposes that as `--ladder`.
  std::vector<TestKind> tests = {TestKind::Devi, TestKind::Dynamic,
                                 TestKind::AllApprox,
                                 TestKind::ProcessorDemand};
  AnalyzerOptions options;
};

struct BatchCell {
  Verdict verdict = Verdict::Unknown;
  std::uint64_t effort = 0;
};

struct BatchRow {
  std::string name;
  std::size_t tasks = 0;
  double utilization = 0.0;
  std::vector<BatchCell> cells;  ///< one per selected backend
};

struct BatchReport {
  std::vector<TestKind> tests;
  std::vector<BatchRow> rows;
  /// Effort statistics per test, across all rows.
  std::vector<OnlineStats> effort;
  /// Names of sets where two *exact* tests disagreed (must stay empty —
  /// a non-empty list indicates an implementation bug).
  std::vector<std::string> exact_disagreements;
  /// Count of rows each test accepted.
  std::vector<std::size_t> accepted;

  /// Render as an aligned text table.
  [[nodiscard]] std::string to_string() const;
  /// Render as CSV (header + one line per row).
  [[nodiscard]] std::string to_csv() const;
  /// Render as machine-readable JSON (tests, rows, aggregates).
  [[nodiscard]] std::string to_json() const;
};

/// Run `query`'s backend selection over every entry (Batch policy; the
/// query's params and limits apply per backend). Rows keep input order.
[[nodiscard]] BatchReport run_batch(const std::vector<BatchEntry>& entries,
                                    const Query& query);

/// DEPRECATED shim: translate the legacy config into a Query.
[[nodiscard]] BatchReport run_batch(const std::vector<BatchEntry>& entries,
                                    const BatchConfig& config = {});

/// Convenience: load every path as a task-set file and run the batch.
/// \throws on unreadable/malformed files (fail fast — a CI gate should
/// not silently skip inputs).
[[nodiscard]] BatchReport run_batch_files(
    const std::vector<std::string>& paths, const BatchConfig& config = {});
[[nodiscard]] BatchReport run_batch_files(
    const std::vector<std::string>& paths, const Query& query);

}  // namespace edfkit
