#include "lit/literature.hpp"

namespace edfkit::lit {
namespace {

Task t(Time c, Time d, Time tt, const char* name) {
  return make_task(c, d, tt, name);
}

}  // namespace

LiteratureSet burns_set() {
  // 14 mixed-rate control tasks, U ~ 0.95, periods spread 20..10000 (the
  // wide spread is what makes the processor-demand test expensive while
  // Devi still accepts — Table 1's Burns row pattern).
  LiteratureSet s;
  s.name = "Burns";
  s.tasks = TaskSet({
      t(1, 15, 20, "b0"),
      t(2, 22, 30, "b1"),
      t(3, 38, 50, "b2"),
      t(5, 60, 80, "b3"),
      t(8, 90, 120, "b4"),
      t(14, 150, 200, "b5"),
      t(20, 225, 300, "b6"),
      t(34, 375, 500, "b7"),
      t(54, 600, 800, "b8"),
      t(82, 900, 1200, "b9"),
      t(136, 1800, 2000, "b10"),
      t(272, 3600, 4000, "b11"),
      t(500, 5400, 6000, "b12"),
      t(850, 8100, 10000, "b13"),
  });
  s.devi_accepts = true;
  s.feasible = true;
  return s;
}

LiteratureSet ma_shin_set() {
  // 10 tasks, U ~ 0.98: the aggregate envelope overshoots at the largest
  // deadline (Devi FAILED) although the exact demand never does.
  LiteratureSet s;
  s.name = "Ma&Shin";
  s.tasks = TaskSet({
      t(2, 8, 20, "m0"),
      t(3, 25, 30, "m1"),
      t(4, 40, 50, "m2"),
      t(6, 60, 70, "m3"),
      t(9, 90, 100, "m4"),
      t(14, 140, 150, "m5"),
      t(20, 190, 200, "m6"),
      t(30, 290, 300, "m7"),
      t(46, 390, 400, "m8"),
      t(72, 580, 600, "m9"),
  });
  s.devi_accepts = false;
  s.feasible = true;
  return s;
}

LiteratureSet gap_set() {
  // 18 avionics functions (Generic Avionics Platform flavour): flight
  // control at 20 Hz, displays/navigation/threat processing at
  // harmonically-related lower rates; U ~ 0.95.
  LiteratureSet s;
  s.name = "GAP";
  s.tasks = TaskSet({
      t(5, 40, 50, "aileron_ctl"),
      t(5, 40, 50, "elevator_ctl"),
      t(3, 40, 59, "rudder_ctl"),
      t(8, 80, 100, "ads_update"),
      t(9, 80, 100, "radar_track"),
      t(12, 160, 200, "nav_update"),
      t(14, 160, 200, "display_hud"),
      t(12, 160, 200, "display_mpd"),
      t(18, 320, 400, "tgt_track"),
      t(21, 320, 400, "threat_resp"),
      t(23, 400, 500, "weapon_sel"),
      t(33, 800, 1000, "nav_steer"),
      t(38, 800, 1000, "display_stat"),
      t(42, 800, 1000, "blit_update"),
      t(45, 1600, 2000, "threat_scan"),
      t(53, 1600, 2000, "weapon_traj"),
      t(90, 2500, 5000, "bit_check"),
      t(120, 5000, 10000, "data_log"),
  });
  s.devi_accepts = true;
  s.feasible = true;
  return s;
}

LiteratureSet gresser1_set() {
  // Event-stream example: three periodic streams plus one 3-event burst
  // source (inner gap 10 within period 500); expansion yields 6 sporadic
  // tasks. The burst elements' large T-D gaps blow up Devi's envelope
  // while the exact demand stays under capacity.
  LiteratureSet s;
  s.name = "Gresser1";
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::periodic(20), 2, 15, "g1_fast"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(40), 6, 30, "g1_ctl"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(100), 18, 70, "g1_proc"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(250), 45, 230, "g1_log"});
  streams.push_back(EventStreamTask{EventStream::bursty(500, 3, 10), 25, 150,
                                    "g1_burst"});
  // Heavy background job with D == T: adds utilization (stretching the
  // processor-demand test's bound) without any Devi-envelope penalty.
  streams.push_back(
      EventStreamTask{EventStream::periodic(5000), 1000, 5000, "g1_heavy"});
  s.tasks = expand(streams);
  s.devi_accepts = false;
  s.feasible = true;
  return s;
}

LiteratureSet gresser2_set() {
  // Heavier variant: two burst sources and four periodic streams;
  // expansion yields 13 sporadic tasks.
  LiteratureSet s;
  s.name = "Gresser2";
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::periodic(30), 4, 22, "g2_sense"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(80), 12, 60, "g2_ctl"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(160), 22, 120, "g2_plan"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(400), 50, 400, "g2_log"});
  streams.push_back(EventStreamTask{EventStream::bursty(600, 4, 12), 20, 200,
                                    "g2_burst_a"});
  streams.push_back(EventStreamTask{EventStream::bursty(900, 5, 15), 17, 250,
                                    "g2_burst_b"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(6000), 900, 6000, "g2_heavy"});
  s.tasks = expand(streams);
  s.devi_accepts = false;
  s.feasible = true;
  return s;
}

std::vector<LiteratureSet> all_literature_sets() {
  return {burns_set(), ma_shin_set(), gap_set(), gresser1_set(),
          gresser2_set()};
}

}  // namespace edfkit::lit
