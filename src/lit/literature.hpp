/// \file literature.hpp
/// Reconstructions of the five literature task sets of paper Table 1.
///
/// The paper cites the sets (Burns; modified Ma & Shin; Generic Avionics
/// Platform; Gresser 1/2) without printing their parameters, and the
/// primary sources are not available offline. Each set here is a
/// *documented reconstruction* engineered to the properties Table 1
/// exhibits:
///   * sizes between 7 and 21 tasks (§5),
///   * Burns and GAP accepted by Devi's test (Devi column == n),
///   * Ma & Shin and both Gresser sets REJECTED by Devi yet exactly
///     feasible (Devi column "FAILED"),
///   * the Gresser sets specified as event streams with bursts and
///     expanded to sporadic tasks (§3.6),
///   * processor-demand iteration counts an order of magnitude (or more)
///     above the new tests'.
/// EXPERIMENTS.md reports our measured Table 1 next to the paper's.
#pragma once

#include <string>
#include <vector>

#include "model/event_stream.hpp"
#include "model/task_set.hpp"

namespace edfkit::lit {

/// One named benchmark set with its documented expectations.
struct LiteratureSet {
  std::string name;
  TaskSet tasks;
  bool devi_accepts = false;  ///< Table 1: Devi column is a count, not FAILED
  bool feasible = true;       ///< exact-test ground truth
};

/// 14-task set in the style of the Burns example used in [1]
/// (mixed-rate control loops, moderate utilization, Devi-acceptable).
[[nodiscard]] LiteratureSet burns_set();

/// Modified Ma & Shin style set: high utilization multimedia/control mix
/// whose late deadlines defeat Devi's envelope but which is feasible.
[[nodiscard]] LiteratureSet ma_shin_set();

/// Generic Avionics Platform (Locke et al.) style set: 18 avionics
/// periodic functions, harmonically-flavoured periods, Devi-acceptable.
[[nodiscard]] LiteratureSet gap_set();

/// Gresser dissertation style event-stream example 1: sporadic streams
/// with one burst source, expanded to sporadic tasks.
[[nodiscard]] LiteratureSet gresser1_set();

/// Gresser style example 2: heavier bursts, more streams.
[[nodiscard]] LiteratureSet gresser2_set();

/// All five, in Table-1 order.
[[nodiscard]] std::vector<LiteratureSet> all_literature_sets();

}  // namespace edfkit::lit
