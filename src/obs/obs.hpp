/// \file obs.hpp
/// The observability facade: one `Obs` object owns the metrics
/// registry, the flight recorder, and the named instrument bundles the
/// admission subsystem attaches to (`attach_obs` on the controller,
/// engine and journal mirrors `attach_journal`).
///
/// Everything is compiled-in-but-cheap: `Obs{ObsConfig::disabled()}`
/// hands out null metric handles and a zero-capacity recorder, and the
/// consumers skip their probes entirely when nothing is attached — the
/// perf_suite `obs` cell gates the instrumented-vs-disabled overhead
/// in CI.
///
/// Metric name catalog (all exported with an `edfkit_` prefix; the
/// README "Observability" section is the user-facing copy):
///
///   admission_admits_total / admission_rejects_total /
///   admission_removals_total / admission_group_decisions_total /
///   admission_rollbacks_total
///   admission_rung{0..3}_attempts_total / _settled_total /
///   _admits_total       — escalation-ladder rung statistics
///   (admits/rejects/rung attempts are derived at read time from the
///   rung histograms and per-rung counters; see derive_counter())
///   admission_rung{0..3}_ns, admission_decision_ns   — histograms
///   admission_cert_cover_hits_total / _misses_total
///   admission_scan_iterations_total /
///   admission_scan_refinements_total /
///   admission_segments_walked_total /
///   admission_segments_fast_forwarded_total /
///   admission_tombstone_compactions_total            — scan internals
///   engine_placements_total / engine_group_placements_total /
///   engine_placement_rejects_total / engine_stats_read_retries_total
///   engine_placement_ns, engine_shards_tried,
///   engine_shard{i}_decision_ns                      — histograms
///   journal_appends_total / journal_fsyncs_total
///   journal_append_ns, journal_fsync_ns              — histograms
///   replay_events_total / replay_arrivals_total /
///   replay_departures_total / replay_crashes_total /
///   replay_snapshots_total
///   net_accepted_total / net_closed_total / net_connections (gauge) /
///   net_requests_total / net_shed_total /
///   net_protocol_errors_total / net_bytes_in_total /
///   net_bytes_out_total / net_fused_admits_total /
///   net_fuse_fallbacks_total
///   net_op_<op>_ns                                   — per-op service
///   latency histograms (hello/admit/admit_group/remove/remove_group/
///   stats/ping, the repl_* ops and promote, plus unknown)
///   repl_shipped_records_total / repl_ship_batches_total /
///   repl_acked_records_total / repl_ship_errors_total /
///   repl_seeds_sent_total / repl_digests_sent_total /
///   repl_applied_records_total / repl_digests_checked_total /
///   repl_digest_mismatches_total / repl_seeds_applied_total /
///   repl_lag_records (gauge)                         — replication
///   query_ns_<backend>                               — batch_analyze
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edfkit::obs {

struct ObsConfig {
  bool metrics = true;
  bool tracing = true;
  /// Flight-recorder slots per shard (rounded up to a power of two).
  /// The default keeps one shard's ring around 50KB: pushing a record
  /// dirties fresh cache lines until the ring wraps, and a recorder
  /// sized past L2 measurably evicts the admission working set (it was
  /// most of the obs cell's overhead before the default was sized to
  /// fit). 512 decisions per shard is ample for post-mortem dumps;
  /// raise it explicitly when deeper history matters more than the
  /// last percent of admit throughput.
  std::size_t trace_capacity = 512;

  [[nodiscard]] static ObsConfig disabled() noexcept {
    return ObsConfig{false, false, 0};
  }
  [[nodiscard]] bool any() const noexcept {
    return metrics || (tracing && trace_capacity > 0);
  }
};

/// Monotonic nanosecond clock for probe timestamps.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Fast monotonic tick source for intra-decision interval timing: the
/// TSC on x86-64 (one rdtsc, ~5ns, vs ~25ns for clock_gettime), the ns
/// clock elsewhere. Probes subtract ticks on the hot path and convert
/// to ns once per decision via `ns_per_tick()`, whose scale is
/// calibrated against the ns clock on first use (the Obs constructor
/// forces that, keeping the ~1ms spin off the decision path).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
namespace detail {
[[nodiscard]] double calibrate_ns_per_tick() noexcept;  // obs.cpp
}
[[nodiscard]] inline std::uint64_t now_ticks() noexcept {
  return __builtin_ia32_rdtsc();
}
[[nodiscard]] inline double ns_per_tick() noexcept {
  static const double scale = detail::calibrate_ns_per_tick();
  return scale;
}
#else
[[nodiscard]] inline std::uint64_t now_ticks() noexcept { return now_ns(); }
[[nodiscard]] inline double ns_per_tick() noexcept { return 1.0; }
#endif

/// Controller-side handles (one bundle shared by all shards; writes
/// are internally sharded).
/// Note: several ladder counters are *derived* at read time rather
/// than written on the decision path, exploiting two structural
/// invariants — the probe records exactly one rung_ns sample per
/// entered rung, and the ladder escalates one rung at a time:
///   rung{r}_attempts ≡ count(rung{r}_ns)
///   rung{r}_settled  ≡ count(rung{r}_ns) − count(rung{r+1}_ns)
///   admits           ≡ Σ rung_admits
///   rejects          ≡ count(rung0_ns) − Σ rung_admits
///   cert_cover_hits  ≡ count(rung2_ns) − cert_cover_misses
/// They have no handles here; read them by name. A cover-hit admit
/// thus pays only the samples it must record anyway (rung_ns ×
/// entered rungs, decision_ns, rung_admits).
struct AdmissionInstruments {
  std::array<Counter, kTraceRungs> rung_admits;
  std::array<Histogram, kTraceRungs> rung_ns;
  Histogram decision_ns;
  Counter removals;
  Counter group_decisions;
  Counter rollbacks;
  Counter cert_cover_misses;
  Counter scan_iterations;
  Counter scan_refinements;
  Counter segments_walked;
  Counter segments_fast_forwarded;
  Counter tombstone_compactions;
};

struct EngineInstruments {
  Counter placements;
  Counter group_placements;
  Counter placement_rejects;
  Counter stats_read_retries;
  Histogram placement_ns;
  Histogram shards_tried;
  std::vector<Histogram> shard_decision_ns;
};

struct JournalInstruments {
  Counter appends;
  Counter fsyncs;
  Histogram append_ns;
  Histogram fsync_ns;
};

struct ReplayInstruments {
  Counter events;
  Counter arrivals;
  Counter departures;
  Counter crashes;
  Counter snapshots;
};

/// Replication instruments (src/repl/ + the server's follower path).
/// Primary side: shipped/acked record counts, batches, snapshot
/// (re-)seeds sent, transport errors, digests attached, and the
/// current shipping lag in records (journal head minus last ack).
/// Follower side: records applied through controller replay, digests
/// checked, mismatches (each one forces a re-seed), and seeds applied.
struct ReplInstruments {
  Counter shipped;
  Counter ship_batches;
  Counter acked;
  Counter ship_errors;
  Counter seeds_sent;
  Counter digests_sent;
  Counter applied;
  Counter digests_checked;
  Counter digest_mismatches;
  Counter seeds_applied;
  Gauge lag;
};

/// Wire-op slots for NetInstruments::op_ns. Index 0 is the unknown-op
/// bucket; 1..12 mirror net::NetOp (protocol.hpp static_asserts the
/// mirror, keeping obs a dependency leaf like kTraceRungs does for the
/// admission ladder). Slots 8..12 are the replication ops (PR 9).
inline constexpr std::size_t kNetOps = 13;

struct NetInstruments {
  Counter accepted;
  Counter closed;
  Gauge connections;
  Counter requests;
  Counter sheds;
  Counter protocol_errors;
  Counter bytes_in;
  Counter bytes_out;
  Counter fused_admits;
  Counter fuse_fallbacks;
  /// Fault-domain + exactly-once counters (net/server.hpp): responses
  /// answered Unavailable because the tenant is quarantined, retries
  /// answered from the dedup window, quarantine entries/exits, failed
  /// re-probe attempts, and the current quarantined-tenant gauge.
  Counter unavailable;
  Counter dedup_hits;
  Counter quarantines;
  Counter unquarantines;
  Counter reprobe_failures;
  Gauge quarantined;
  /// Decode-to-encode service time per op, unknown ops in slot 0.
  std::array<Histogram, kNetOps> op_ns;
};

class Obs {
 public:
  explicit Obs(ObsConfig cfg = {}, std::size_t shards = 1);
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  [[nodiscard]] const ObsConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] FlightRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const noexcept {
    return recorder_;
  }

  /// Instrument bundles, created on first use (null handles when the
  /// registry is disabled). Pointers stay valid for the Obs lifetime.
  [[nodiscard]] AdmissionInstruments* admission();
  [[nodiscard]] EngineInstruments* engine(std::size_t shards);
  [[nodiscard]] JournalInstruments* journal();
  [[nodiscard]] ReplayInstruments* replay();
  [[nodiscard]] NetInstruments* net();
  [[nodiscard]] ReplInstruments* repl();

  /// Per-backend query latency histogram (`query_ns_<backend>`).
  [[nodiscard]] Histogram query_ns(const std::string& backend);

 private:
  ObsConfig cfg_;
  MetricsRegistry registry_;
  FlightRecorder recorder_;
  std::mutex mu_;
  std::unique_ptr<AdmissionInstruments> admission_;
  std::unique_ptr<EngineInstruments> engine_;
  std::unique_ptr<JournalInstruments> journal_;
  std::unique_ptr<ReplayInstruments> replay_;
  std::unique_ptr<NetInstruments> net_;
  std::unique_ptr<ReplInstruments> repl_;
};

}  // namespace edfkit::obs
