#include "obs/obs.hpp"

namespace edfkit::obs {
namespace {

std::string rung_metric(std::size_t rung, const char* suffix) {
  return "admission_rung" + std::to_string(rung) + suffix;
}

}  // namespace

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
namespace detail {

double calibrate_ns_per_tick() noexcept {
  // Spin ~1ms against the ns clock; the TSC is invariant on anything
  // this library targets, so one calibration serves the process. A
  // non-advancing TSC (emulators) degrades to the 1:1 fallback.
  const std::uint64_t t0 = now_ticks();
  const std::uint64_t n0 = now_ns();
  while (now_ns() - n0 < 1000000) {
  }
  const std::uint64_t dt = now_ticks() - t0;
  const std::uint64_t dn = now_ns() - n0;
  if (dt == 0 || dn == 0) return 1.0;
  return static_cast<double>(dn) / static_cast<double>(dt);
}

}  // namespace detail
#endif

Obs::Obs(ObsConfig cfg, std::size_t shards)
    : cfg_(cfg),
      registry_(cfg.metrics),
      recorder_(cfg.tracing ? shards : 0, cfg.trace_capacity) {
  // Force tick-clock calibration now, not inside the first decision.
  if (cfg.any()) (void)ns_per_tick();
}

AdmissionInstruments* Obs::admission() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (admission_ == nullptr) {
    auto b = std::make_unique<AdmissionInstruments>();
    std::vector<std::string> admit_names;
    for (std::size_t r = 0; r < kTraceRungs; ++r) {
      b->rung_admits[r] = registry_.counter(rung_metric(r, "_admits_total"));
      b->rung_ns[r] = registry_.histogram(rung_metric(r, "_ns"));
      // One rung_ns sample is recorded per entered rung, so the
      // attempts counter is exactly that histogram's sample count —
      // derived at read time, free on the decision path. Settled
      // follows from the ladder escalating one rung at a time: a
      // decision settles at r iff it entered r and not r + 1.
      registry_.derive_counter(rung_metric(r, "_attempts_total"),
                               {rung_metric(r, "_ns")});
      registry_.derive_counter(
          rung_metric(r, "_settled_total"), {rung_metric(r, "_ns")}, {}, {},
          r + 1 < kTraceRungs
              ? std::vector<std::string>{rung_metric(r + 1, "_ns")}
              : std::vector<std::string>{});
      admit_names.push_back(rung_metric(r, "_admits_total"));
    }
    b->decision_ns = registry_.histogram("admission_decision_ns");
    registry_.derive_counter("admission_admits_total", {}, admit_names);
    registry_.derive_counter("admission_rejects_total",
                             {rung_metric(0, "_ns")}, {}, admit_names);
    b->removals = registry_.counter("admission_removals_total");
    b->group_decisions = registry_.counter("admission_group_decisions_total");
    b->rollbacks = registry_.counter("admission_rollbacks_total");
    b->cert_cover_misses =
        registry_.counter("admission_cert_cover_misses_total");
    // Every rung-2 entrant runs the cover test, so hits are implied.
    registry_.derive_counter("admission_cert_cover_hits_total",
                             {rung_metric(2, "_ns")}, {},
                             {"admission_cert_cover_misses_total"});
    b->scan_iterations = registry_.counter("admission_scan_iterations_total");
    b->scan_refinements =
        registry_.counter("admission_scan_refinements_total");
    b->segments_walked =
        registry_.counter("admission_segments_walked_total");
    b->segments_fast_forwarded =
        registry_.counter("admission_segments_fast_forwarded_total");
    b->tombstone_compactions =
        registry_.counter("admission_tombstone_compactions_total");
    admission_ = std::move(b);
  }
  return admission_.get();
}

EngineInstruments* Obs::engine(std::size_t shards) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (engine_ == nullptr) {
    engine_ = std::make_unique<EngineInstruments>();
    engine_->placements = registry_.counter("engine_placements_total");
    engine_->group_placements =
        registry_.counter("engine_group_placements_total");
    engine_->placement_rejects =
        registry_.counter("engine_placement_rejects_total");
    engine_->stats_read_retries =
        registry_.counter("engine_stats_read_retries_total");
    engine_->placement_ns = registry_.histogram("engine_placement_ns");
    engine_->shards_tried = registry_.histogram("engine_shards_tried");
  }
  while (engine_->shard_decision_ns.size() < shards) {
    engine_->shard_decision_ns.push_back(registry_.histogram(
        "engine_shard" +
        std::to_string(engine_->shard_decision_ns.size()) +
        "_decision_ns"));
  }
  return engine_.get();
}

JournalInstruments* Obs::journal() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (journal_ == nullptr) {
    journal_ = std::make_unique<JournalInstruments>();
    journal_->appends = registry_.counter("journal_appends_total");
    journal_->fsyncs = registry_.counter("journal_fsyncs_total");
    journal_->append_ns = registry_.histogram("journal_append_ns");
    journal_->fsync_ns = registry_.histogram("journal_fsync_ns");
  }
  return journal_.get();
}

ReplayInstruments* Obs::replay() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (replay_ == nullptr) {
    replay_ = std::make_unique<ReplayInstruments>();
    replay_->events = registry_.counter("replay_events_total");
    replay_->arrivals = registry_.counter("replay_arrivals_total");
    replay_->departures = registry_.counter("replay_departures_total");
    replay_->crashes = registry_.counter("replay_crashes_total");
    replay_->snapshots = registry_.counter("replay_snapshots_total");
  }
  return replay_.get();
}

NetInstruments* Obs::net() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (net_ == nullptr) {
    // Slot order mirrors net::NetOp (slot 0 = unknown).
    static constexpr const char* kOpNames[kNetOps] = {
        "unknown",    "hello",       "admit",    "admit_group",
        "remove",     "remove_group", "stats",   "ping",
        "repl_hello", "repl_append", "repl_ack", "repl_snapshot",
        "promote"};
    auto b = std::make_unique<NetInstruments>();
    b->accepted = registry_.counter("net_accepted_total");
    b->closed = registry_.counter("net_closed_total");
    b->connections = registry_.gauge("net_connections");
    b->requests = registry_.counter("net_requests_total");
    b->sheds = registry_.counter("net_shed_total");
    b->protocol_errors = registry_.counter("net_protocol_errors_total");
    b->bytes_in = registry_.counter("net_bytes_in_total");
    b->bytes_out = registry_.counter("net_bytes_out_total");
    b->fused_admits = registry_.counter("net_fused_admits_total");
    b->fuse_fallbacks = registry_.counter("net_fuse_fallbacks_total");
    b->unavailable = registry_.counter("net_unavailable_total");
    b->dedup_hits = registry_.counter("net_dedup_hits_total");
    b->quarantines = registry_.counter("net_tenant_quarantines_total");
    b->unquarantines = registry_.counter("net_tenant_unquarantines_total");
    b->reprobe_failures =
        registry_.counter("net_tenant_reprobe_failures_total");
    b->quarantined = registry_.gauge("net_tenants_quarantined");
    for (std::size_t i = 0; i < kNetOps; ++i) {
      b->op_ns[i] =
          registry_.histogram(std::string("net_op_") + kOpNames[i] + "_ns");
    }
    net_ = std::move(b);
  }
  return net_.get();
}

ReplInstruments* Obs::repl() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (repl_ == nullptr) {
    auto b = std::make_unique<ReplInstruments>();
    b->shipped = registry_.counter("repl_shipped_records_total");
    b->ship_batches = registry_.counter("repl_ship_batches_total");
    b->acked = registry_.counter("repl_acked_records_total");
    b->ship_errors = registry_.counter("repl_ship_errors_total");
    b->seeds_sent = registry_.counter("repl_seeds_sent_total");
    b->digests_sent = registry_.counter("repl_digests_sent_total");
    b->applied = registry_.counter("repl_applied_records_total");
    b->digests_checked = registry_.counter("repl_digests_checked_total");
    b->digest_mismatches =
        registry_.counter("repl_digest_mismatches_total");
    b->seeds_applied = registry_.counter("repl_seeds_applied_total");
    b->lag = registry_.gauge("repl_lag_records");
    repl_ = std::move(b);
  }
  return repl_.get();
}

Histogram Obs::query_ns(const std::string& backend) {
  return registry_.histogram("query_ns_" + backend);
}

}  // namespace edfkit::obs
