/// \file trace.hpp
/// Decision flight recorder: per-shard lock-free ring buffers of
/// fixed-size DecisionTrace records, capturable on demand.
///
/// Each admission decision leaves one record answering "why was this
/// decision slow / why was this task rejected": the rung the ladder
/// settled on, per-rung nanoseconds, whether the O(1) certificate
/// cover short-circuited the scan, how many demand segments were
/// walked versus fast-forwarded, the refinement count, and whether a
/// group rejection rolled back tentative inserts.
///
/// Concurrency model: each ring has a single writer (the shard's
/// controller, already serialized under the shard mutex) and any
/// number of concurrent capture() readers. A slot is a per-slot
/// seqlock: the writer bumps the slot version odd, stores the packed
/// payload as relaxed atomic words, then publishes version + 2.
/// Readers validate the version before and after copying and *skip*
/// slots that were torn or lapped mid-scan — the settled version is
/// also a generation stamp (2 * writes completed), so a reader knows
/// exactly which ring index a slot's payload belongs to and never
/// emits a newer record at an older position. Capture is best-effort
/// by design (it is a flight recorder, not a transaction log), but
/// what it does emit is bit-exact and oldest-first. All slot accesses
/// are atomic, so the race window is defined behavior (and
/// TSan-clean).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace edfkit::obs {

/// Mirror of admission/controller.hpp's kAdmissionRungs; controller.cpp
/// static_asserts they agree (obs stays a dependency leaf).
inline constexpr std::size_t kTraceRungs = 4;

/// Rung names, indexed by rung; shared by the JSON dump and README.
[[nodiscard]] const char* rung_name(std::size_t rung) noexcept;

/// One admission decision, as recorded by the controller.
struct DecisionTrace {
  std::uint64_t sequence = 0;
  /// First task id placed (or the arriving task's id); 0-equivalent
  /// invalid when the decision was a reject.
  std::uint64_t task_id = 0;
  /// Shard tag, attached by FlightRecorder::capture_all.
  std::uint32_t shard = 0;
  /// 0 for a single arrival; member count for a group decision.
  std::uint32_t group_size = 0;
  std::uint32_t refinements = 0;
  std::uint64_t segments_walked = 0;
  std::uint64_t segments_fast_forwarded = 0;
  bool admitted = false;
  /// The decision settled via the O(1) certificate cover.
  bool cert_cover = false;
  /// Group reject rolled back tentative inserts (and refinements).
  bool rollback = false;
  /// Rung the ladder settled on (index into rung_name()).
  std::uint8_t rung = 0;
  /// Bitmask of rungs the decision entered (bit r = rung r).
  std::uint8_t rungs_entered = 0;
  std::array<std::uint64_t, kTraceRungs> rung_ns{};
  std::uint64_t total_ns = 0;
};

inline constexpr std::size_t kTraceSlotWords = 12;

void pack_trace(const DecisionTrace& t,
                std::array<std::uint64_t, kTraceSlotWords>& w) noexcept;
[[nodiscard]] DecisionTrace unpack_trace(
    const std::array<std::uint64_t, kTraceSlotWords>& w) noexcept;

/// Render records as a JSON array (shared by FlightRecorder::to_json
/// and the --trace-out surfaces).
[[nodiscard]] std::string traces_to_json(
    const std::vector<DecisionTrace>& traces);

/// Single-writer / multi-reader ring of DecisionTrace slots.
class TraceRing {
 public:
  /// Capacity 0 disables the ring (push/capture become no-ops);
  /// otherwise rounded up to a power of two.
  explicit TraceRing(std::size_t capacity = 0);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool enabled() const noexcept { return cap_ != 0; }
  /// Total records ever pushed (wraparound overwrites the oldest).
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Record one decision. \pre single writer (serialize externally).
  void push(const DecisionTrace& t) noexcept;

  /// Copy out the retained window, oldest first, skipping slots torn
  /// by a concurrent push. Returns the number captured.
  std::size_t capture(std::vector<DecisionTrace>& out) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> version{0};
    std::array<std::atomic<std::uint64_t>, kTraceSlotWords> words{};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

/// One TraceRing per engine shard, plus whole-recorder capture/dump.
class FlightRecorder {
 public:
  FlightRecorder() = default;
  /// `capacity` slots per shard; 0 shards or 0 capacity disables.
  FlightRecorder(std::size_t shards, std::size_t capacity);

  [[nodiscard]] bool enabled() const noexcept { return !rings_.empty(); }
  [[nodiscard]] std::size_t shards() const noexcept { return rings_.size(); }
  /// The shard's ring, or nullptr when disabled / out of range.
  [[nodiscard]] TraceRing* ring(std::size_t shard) noexcept;

  /// Capture every shard's window (shard tag attached), ordered by
  /// (shard, sequence). Returns the number captured.
  std::size_t capture_all(std::vector<DecisionTrace>& out) const;

  /// {"shards": N, "captured": M, "records": [...]}.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

}  // namespace edfkit::obs
