/// \file metrics.hpp
/// Lock-free metrics registry: named counters, gauges and log2-bucket
/// latency histograms for the admission subsystem's hot paths.
///
/// Design contract (the reason this layer may be compiled in
/// everywhere): a sample on the admit path costs exactly one relaxed
/// atomic add — no locks, no allocation, no branches beyond the null
/// handle check. Writes are sharded across `kWriteShards` cache-line-
/// padded slots (threads pick a slot round-robin at first use), so
/// concurrent writers do not bounce one cache line; readers aggregate
/// the shards under the registry mutex. Registration is the cold path
/// (mutex + allocation); handles returned by counter()/gauge()/
/// histogram() are trivially copyable values that stay valid for the
/// registry's lifetime.
///
/// A registry constructed disabled returns *null handles*: every
/// record/add/set on them is a single predictable branch. That is the
/// `ObsConfig::disabled()` story — instrumentation stays wired, the
/// cost collapses to nothing.
///
/// Histograms are fixed log2 buckets over unsigned integer samples
/// (nanoseconds, counts): bucket 0 holds {0}, bucket i in [1, 38]
/// holds [2^(i-1), 2^i), bucket 39 is the overflow [2^38, inf). One
/// fetch_add per sample; no exact sum is maintained (the exporters
/// report a midpoint-approximated sum, flagged as such).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace edfkit::obs {

inline constexpr std::size_t kWriteShards = 8;
inline constexpr std::size_t kHistogramBuckets = 40;

/// Bucket index for a sample: 0 for 0, else clamp(bit_width(v), 1, 39).
[[nodiscard]] constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const auto w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

/// Inclusive lower bound of bucket i (0 for buckets 0 and 1's start).
[[nodiscard]] constexpr std::uint64_t bucket_lo(std::size_t i) noexcept {
  return i <= 1 ? (i == 0 ? 0 : 1) : (std::uint64_t{1} << (i - 1));
}

/// Exclusive upper bound of bucket i; UINT64_MAX for the overflow
/// bucket.
[[nodiscard]] constexpr std::uint64_t bucket_hi(std::size_t i) noexcept {
  if (i == 0) return 1;
  if (i >= kHistogramBuckets - 1) return ~std::uint64_t{0};
  return std::uint64_t{1} << i;
}

/// The write shard this thread uses (round-robin assigned at first
/// use; stable for the thread's lifetime).
[[nodiscard]] std::size_t write_shard() noexcept;

namespace detail {

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> v{0};
};

struct CounterCells {
  std::array<CounterShard, kWriteShards> shards;
};

struct GaugeCell {
  std::atomic<double> v{0.0};
};

struct alignas(64) HistogramShard {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> b{};
};

struct HistogramCells {
  std::array<HistogramShard, kWriteShards> shards;
};

/// Read-time recipe for a derived counter (see
/// MetricsRegistry::derive_counter): Σ histogram sample counts plus
/// Σ counter values minus Σ counter values, clamped at zero.
struct DerivedSpec {
  std::vector<const HistogramCells*> hists;
  std::vector<const CounterCells*> plus;
  std::vector<const CounterCells*> minus;
  std::vector<const HistogramCells*> hists_minus;
};

}  // namespace detail

/// Monotonic counter handle. Null handles (default-constructed or from
/// a disabled registry) make add() a no-op.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) const noexcept {
    if (cells_ == nullptr) return;
    cells_->shards[write_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Hot-path variant for callers that looked up write_shard() once and
  /// reuse it across a batch of updates (e.g. one admission decision).
  void add_at(std::size_t shard, std::uint64_t n = 1) const noexcept {
    if (cells_ == nullptr) return;
    cells_->shards[shard].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] bool attached() const noexcept { return cells_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCells* c) noexcept : cells_(c) {}
  detail::CounterCells* cells_ = nullptr;
};

/// Last-write-wins gauge handle (a single relaxed atomic double).
class Gauge {
 public:
  Gauge() = default;

  void set(double v) const noexcept {
    if (cell_ == nullptr) return;
    cell_->v.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] bool attached() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* c) noexcept : cell_(c) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Log2-bucket histogram handle: one relaxed fetch_add per sample.
class Histogram {
 public:
  Histogram() = default;

  void record(std::uint64_t v) const noexcept {
    if (cells_ == nullptr) return;
    cells_->shards[write_shard()].b[bucket_of(v)].fetch_add(
        1, std::memory_order_relaxed);
  }
  /// Hot-path variant taking a cached write_shard() result.
  void record_at(std::size_t shard, std::uint64_t v) const noexcept {
    if (cells_ == nullptr) return;
    cells_->shards[shard].b[bucket_of(v)].fetch_add(
        1, std::memory_order_relaxed);
  }
  [[nodiscard]] bool attached() const noexcept { return cells_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCells* c) noexcept : cells_(c) {}
  detail::HistogramCells* cells_ = nullptr;
};

/// Shard-aggregated histogram state at one point in time. Because
/// writers are relaxed and never quiesced, a snapshot taken concurrently
/// with writes is a consistent-enough lower bound per bucket (each
/// bucket value was the bucket's true count at some moment).
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  /// Midpoint-approximated sum of samples (exact for bucket 0).
  double approx_sum = 0.0;
};

/// Named-metric registry. Thread-safe: registration and reads take the
/// internal mutex; recording through handles is lock-free.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) noexcept
      : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Register (or look up) a metric and return its handle. Disabled
  /// registries return null handles and allocate nothing.
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  [[nodiscard]] Histogram histogram(const std::string& name);

  /// Register a *derived* counter: its value is computed at read time
  /// as Σ sample counts of `hist_counts` + Σ `plus` − Σ `minus`
  /// − Σ sample counts of `hist_minus` (saturating at zero while
  /// in-flight writers make the difference transiently stale). The
  /// referenced metrics are created if absent. Derived counters cost
  /// nothing on the write path — they exist so a hot path never pays
  /// an RMW for a value that is already implied by the samples it must
  /// record anyway — and the exporters present them exactly like
  /// ordinary counters. A name already registered as a real counter
  /// keeps the real cells.
  void derive_counter(const std::string& name,
                      const std::vector<std::string>& hist_counts,
                      const std::vector<std::string>& plus = {},
                      const std::vector<std::string>& minus = {},
                      const std::vector<std::string>& hist_minus = {});

  /// Aggregated reads; absent names read as zero/empty.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;
  [[nodiscard]] HistogramSnapshot histogram_snapshot(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Prometheus text exposition (metrics prefixed `edfkit_`; histogram
  /// `le` labels are the inclusive integer upper bounds 2^k - 1).
  [[nodiscard]] std::string to_prometheus() const;
  /// JSON object {"counters": .., "gauges": .., "histograms": ..}.
  [[nodiscard]] std::string to_json() const;

 private:
  bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<detail::CounterCells>> counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeCell>> gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramCells>> histograms_;
  std::map<std::string, detail::DerivedSpec> derived_;
};

}  // namespace edfkit::obs
