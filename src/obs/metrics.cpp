#include "obs/metrics.hpp"

#include <sstream>

namespace edfkit::obs {
namespace {

std::uint64_t sum_counter(const detail::CounterCells& c) noexcept {
  std::uint64_t total = 0;
  for (const auto& s : c.shards) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

HistogramSnapshot sum_histogram(const detail::HistogramCells& c) noexcept {
  HistogramSnapshot out;
  for (const auto& s : c.shards) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      out.buckets[i] += s.b[i].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out.count += out.buckets[i];
    if (i > 0) {
      // Geometric midpoint of [2^(i-1), 2^i) is 1.5 * 2^(i-1); the
      // overflow bucket counts at its lower bound.
      const double lo = static_cast<double>(bucket_lo(i));
      const double mid = i + 1 < kHistogramBuckets ? 1.5 * lo : lo;
      out.approx_sum += static_cast<double>(out.buckets[i]) * mid;
    }
  }
  return out;
}

std::uint64_t sum_hist_count(const detail::HistogramCells& c) noexcept {
  std::uint64_t total = 0;
  for (const auto& s : c.shards) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      total += s.b[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::uint64_t eval_derived(const detail::DerivedSpec& d) noexcept {
  std::uint64_t plus = 0;
  std::uint64_t minus = 0;
  for (const auto* h : d.hists) plus += sum_hist_count(*h);
  for (const auto* c : d.plus) plus += sum_counter(*c);
  for (const auto* c : d.minus) minus += sum_counter(*c);
  for (const auto* h : d.hists_minus) minus += sum_hist_count(*h);
  return plus > minus ? plus - minus : 0;
}

/// Real and derived counters in one sorted view for the exporters
/// (emplace keeps the real cells when a name is shadowed).
std::map<std::string, std::uint64_t> merged_counters(
    const std::map<std::string, std::unique_ptr<detail::CounterCells>>&
        counters,
    const std::map<std::string, detail::DerivedSpec>& derived) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, cells] : counters) {
    out.emplace(name, sum_counter(*cells));
  }
  for (const auto& [name, spec] : derived) {
    out.emplace(name, eval_derived(spec));
  }
  return out;
}

void json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      os << '\\' << ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      os << ' ';
    } else {
      os << ch;
    }
  }
  os << '"';
}

}  // namespace

std::size_t write_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t hint =
      next.fetch_add(1, std::memory_order_relaxed) % kWriteShards;
  return hint;
}

Counter MetricsRegistry::counter(const std::string& name) {
  if (!enabled_) return Counter{};
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<detail::CounterCells>();
  return Counter{slot.get()};
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  if (!enabled_) return Gauge{};
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<detail::GaugeCell>();
  return Gauge{slot.get()};
}

Histogram MetricsRegistry::histogram(const std::string& name) {
  if (!enabled_) return Histogram{};
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<detail::HistogramCells>();
  return Histogram{slot.get()};
}

void MetricsRegistry::derive_counter(const std::string& name,
                                     const std::vector<std::string>& hist_counts,
                                     const std::vector<std::string>& plus,
                                     const std::vector<std::string>& minus,
                                     const std::vector<std::string>& hist_minus) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(mu_);
  detail::DerivedSpec spec;
  for (const auto& h : hist_counts) {
    auto& slot = histograms_[h];
    if (slot == nullptr) slot = std::make_unique<detail::HistogramCells>();
    spec.hists.push_back(slot.get());
  }
  for (const auto& h : hist_minus) {
    auto& slot = histograms_[h];
    if (slot == nullptr) slot = std::make_unique<detail::HistogramCells>();
    spec.hists_minus.push_back(slot.get());
  }
  for (const auto& c : plus) {
    auto& slot = counters_[c];
    if (slot == nullptr) slot = std::make_unique<detail::CounterCells>();
    spec.plus.push_back(slot.get());
  }
  for (const auto& c : minus) {
    auto& slot = counters_[c];
    if (slot == nullptr) slot = std::make_unique<detail::CounterCells>();
    spec.minus.push_back(slot.get());
  }
  derived_[name] = std::move(spec);
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return sum_counter(*it->second);
  const auto dit = derived_.find(name);
  return dit == derived_.end() ? 0 : eval_derived(dit->second);
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end()
             ? 0.0
             : it->second->v.load(std::memory_order_relaxed);
}

HistogramSnapshot MetricsRegistry::histogram_snapshot(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{}
                                 : sum_histogram(*it->second);
}

std::vector<std::string> MetricsRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + derived_.size() + gauges_.size() +
              histograms_.size());
  for (const auto& [name, cells] : counters_) out.push_back(name);
  for (const auto& [name, spec] : derived_) {
    if (counters_.find(name) == counters_.end()) out.push_back(name);
  }
  for (const auto& [name, cell] : gauges_) out.push_back(name);
  for (const auto& [name, cells] : histograms_) out.push_back(name);
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, value] : merged_counters(counters_, derived_)) {
    os << "# TYPE edfkit_" << name << " counter\n";
    os << "edfkit_" << name << ' ' << value << '\n';
  }
  for (const auto& [name, cell] : gauges_) {
    os << "# TYPE edfkit_" << name << " gauge\n";
    os << "edfkit_" << name << ' '
       << cell->v.load(std::memory_order_relaxed) << '\n';
  }
  for (const auto& [name, cells] : histograms_) {
    const HistogramSnapshot snap = sum_histogram(*cells);
    os << "# TYPE edfkit_" << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
      cumulative += snap.buckets[i];
      // Samples are integers, so bucket i's half-open [lo, 2^i) range
      // is exactly le = 2^i - 1 inclusive.
      os << "edfkit_" << name << "_bucket{le=\"" << (bucket_hi(i) - 1)
         << "\"} " << cumulative << '\n';
    }
    os << "edfkit_" << name << "_bucket{le=\"+Inf\"} " << snap.count
       << '\n';
    os << "edfkit_" << name << "_sum " << snap.approx_sum << '\n';
    os << "edfkit_" << name << "_count " << snap.count << '\n';
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : merged_counters(counters_, derived_)) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':' << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, cell] : gauges_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':' << cell->v.load(std::memory_order_relaxed);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, cells] : histograms_) {
    if (!first) os << ',';
    first = false;
    const HistogramSnapshot snap = sum_histogram(*cells);
    json_string(os, name);
    os << ":{\"count\":" << snap.count << ",\"approx_sum\":"
       << snap.approx_sum << ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      if (!first_bucket) os << ',';
      first_bucket = false;
      os << "{\"lo\":" << bucket_lo(i) << ",\"hi\":";
      if (i + 1 < kHistogramBuckets) {
        os << bucket_hi(i);
      } else {
        os << "null";
      }
      os << ",\"count\":" << snap.buckets[i] << '}';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

}  // namespace edfkit::obs
