#include "obs/trace.hpp"

#include <bit>
#include <sstream>

namespace edfkit::obs {
namespace {

constexpr std::uint64_t kFlagAdmitted = 1u << 0;
constexpr std::uint64_t kFlagCertCover = 1u << 1;
constexpr std::uint64_t kFlagRollback = 1u << 2;

std::size_t round_up_pow2(std::size_t n) noexcept {
  return std::bit_ceil(n);
}

}  // namespace

const char* rung_name(std::size_t rung) noexcept {
  switch (rung) {
    case 0: return "structural";
    case 1: return "utilization";
    case 2: return "approximate";
    case 3: return "exact";
    default: return "unknown";
  }
}

void pack_trace(const DecisionTrace& t,
                std::array<std::uint64_t, kTraceSlotWords>& w) noexcept {
  w[0] = t.sequence;
  w[1] = t.task_id;
  w[2] = (static_cast<std::uint64_t>(t.group_size) << 32) | t.refinements;
  std::uint64_t flags = 0;
  if (t.admitted) flags |= kFlagAdmitted;
  if (t.cert_cover) flags |= kFlagCertCover;
  if (t.rollback) flags |= kFlagRollback;
  flags |= static_cast<std::uint64_t>(t.rung) << 8;
  flags |= static_cast<std::uint64_t>(t.rungs_entered) << 16;
  flags |= static_cast<std::uint64_t>(t.shard) << 32;
  w[3] = flags;
  w[4] = t.segments_walked;
  w[5] = t.segments_fast_forwarded;
  for (std::size_t r = 0; r < kTraceRungs; ++r) w[6 + r] = t.rung_ns[r];
  w[10] = t.total_ns;
  w[11] = 0;  // reserved
}

DecisionTrace unpack_trace(
    const std::array<std::uint64_t, kTraceSlotWords>& w) noexcept {
  DecisionTrace t;
  t.sequence = w[0];
  t.task_id = w[1];
  t.group_size = static_cast<std::uint32_t>(w[2] >> 32);
  t.refinements = static_cast<std::uint32_t>(w[2]);
  const std::uint64_t flags = w[3];
  t.admitted = (flags & kFlagAdmitted) != 0;
  t.cert_cover = (flags & kFlagCertCover) != 0;
  t.rollback = (flags & kFlagRollback) != 0;
  t.rung = static_cast<std::uint8_t>(flags >> 8);
  t.rungs_entered = static_cast<std::uint8_t>(flags >> 16);
  t.shard = static_cast<std::uint32_t>(flags >> 32);
  t.segments_walked = w[4];
  t.segments_fast_forwarded = w[5];
  for (std::size_t r = 0; r < kTraceRungs; ++r) t.rung_ns[r] = w[6 + r];
  t.total_ns = w[10];
  return t;
}

std::string traces_to_json(const std::vector<DecisionTrace>& traces) {
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (const DecisionTrace& t : traces) {
    if (!first) os << ',';
    first = false;
    os << "{\"sequence\":" << t.sequence << ",\"shard\":" << t.shard
       << ",\"task_id\":" << t.task_id
       << ",\"group_size\":" << t.group_size
       << ",\"admitted\":" << (t.admitted ? "true" : "false")
       << ",\"rung\":\"" << rung_name(t.rung) << '"'
       << ",\"cert_cover\":" << (t.cert_cover ? "true" : "false")
       << ",\"rollback\":" << (t.rollback ? "true" : "false")
       << ",\"refinements\":" << t.refinements
       << ",\"segments_walked\":" << t.segments_walked
       << ",\"segments_fast_forwarded\":" << t.segments_fast_forwarded
       << ",\"rung_ns\":[";
    for (std::size_t r = 0; r < kTraceRungs; ++r) {
      if (r > 0) os << ',';
      os << t.rung_ns[r];
    }
    os << "],\"total_ns\":" << t.total_ns << '}';
  }
  os << ']';
  return os.str();
}

TraceRing::TraceRing(std::size_t capacity) {
  if (capacity == 0) return;
  cap_ = round_up_pow2(capacity);
  mask_ = cap_ - 1;
  slots_ = std::make_unique<Slot[]>(cap_);
}

void TraceRing::push(const DecisionTrace& t) noexcept {
  if (cap_ == 0) return;
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[h & mask_];
  const std::uint64_t v = s.version.load(std::memory_order_relaxed);
  s.version.store(v + 1, std::memory_order_relaxed);  // odd: writing
  std::atomic_thread_fence(std::memory_order_release);
  std::array<std::uint64_t, kTraceSlotWords> w;
  pack_trace(t, w);
  for (std::size_t i = 0; i < kTraceSlotWords; ++i) {
    s.words[i].store(w[i], std::memory_order_relaxed);
  }
  s.version.store(v + 2, std::memory_order_release);
  head_.store(h + 1, std::memory_order_release);
}

std::size_t TraceRing::capture(std::vector<DecisionTrace>& out) const {
  if (cap_ == 0) return 0;
  const std::size_t before = out.size();
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t lo = h > cap_ ? h - cap_ : 0;
  for (std::uint64_t i = lo; i < h; ++i) {
    const Slot& s = slots_[i & mask_];
    // The slot version doubles as a generation stamp: completing the
    // write for ring index i leaves it at exactly 2 * (i / cap_ + 1).
    // Requiring that value (not merely an even version) rejects slots
    // the writer has lapped during this scan — accepting a lapped
    // slot's newer record at an older index would break the
    // oldest-first ordering of the captured window.
    const std::uint64_t want = 2 * (i / cap_ + 1);
    const std::uint64_t v1 = s.version.load(std::memory_order_acquire);
    if (v1 != want) continue;  // writer mid-slot, or slot lapped
    std::array<std::uint64_t, kTraceSlotWords> w;
    for (std::size_t j = 0; j < kTraceSlotWords; ++j) {
      w[j] = s.words[j].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.version.load(std::memory_order_relaxed) != v1) continue;  // torn
    out.push_back(unpack_trace(w));
  }
  return out.size() - before;
}

FlightRecorder::FlightRecorder(std::size_t shards, std::size_t capacity) {
  if (shards == 0 || capacity == 0) return;
  rings_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    rings_.push_back(std::make_unique<TraceRing>(capacity));
  }
}

TraceRing* FlightRecorder::ring(std::size_t shard) noexcept {
  return shard < rings_.size() ? rings_[shard].get() : nullptr;
}

std::size_t FlightRecorder::capture_all(
    std::vector<DecisionTrace>& out) const {
  std::size_t captured = 0;
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    const std::size_t at = out.size();
    captured += rings_[i]->capture(out);
    for (std::size_t j = at; j < out.size(); ++j) {
      out[j].shard = static_cast<std::uint32_t>(i);
    }
  }
  return captured;
}

std::string FlightRecorder::to_json() const {
  std::vector<DecisionTrace> traces;
  capture_all(traces);
  std::ostringstream os;
  os << "{\"shards\":" << rings_.size() << ",\"captured\":"
     << traces.size() << ",\"records\":" << traces_to_json(traces) << '}';
  return os.str();
}

}  // namespace edfkit::obs
