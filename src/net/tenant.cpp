#include "net/tenant.hpp"

#include <filesystem>
#include <stdexcept>

#include "admission/snapshot.hpp"
#include "obs/obs.hpp"

namespace edfkit::net {

Tenant::Tenant(std::string name, const TenantOptions& opts,
               persist::FsyncPolicy fsync, std::uint64_t fsync_interval,
               bool certified, obs::Obs* obs)
    : name_(std::move(name)),
      ctl_([&] {
        AdmissionOptions a = opts.admission;
        a.return_certificate = a.return_certificate || certified;
        return AdmissionController(a);
      }()),
      checkpoint_every_(opts.checkpoint_every) {
  if (!opts.data_dir.empty()) {
    std::filesystem::create_directories(opts.data_dir);
    snapshot_path_ = opts.data_dir + "/" + name_ + ".snap";
    journal_path_ = opts.data_dir + "/" + name_ + ".wal";
    // Recover first (tolerates missing artifacts — a clean cold
    // start), then open the journal for append; recovery itself must
    // not re-journal the replayed operations.
    (void)recover(ctl_, snapshot_path_, journal_path_);
    persist::JournalOptions jopts;
    jopts.fsync = fsync;
    jopts.fsync_interval = fsync_interval;
    journal_.emplace(persist::Journal::open_append(journal_path_, jopts));
    if (obs != nullptr && obs->config().metrics) {
      journal_->attach_obs(obs->journal());
    }
    ctl_.attach_journal(&*journal_);
  }
  if (obs != nullptr) ctl_.attach_obs(obs);
}

Tenant::~Tenant() {
  ctl_.attach_journal(nullptr);
  if (journal_) journal_->attach_obs(nullptr);
}

void Tenant::on_operation() {
  if (!journal_ || checkpoint_every_ == 0) return;
  if (++ops_since_checkpoint_ < checkpoint_every_) return;
  checkpoint();
}

void Tenant::checkpoint() {
  if (!journal_) return;
  const std::uint64_t lsn = journal_->lsn();
  save_snapshot(ctl_, snapshot_path_, lsn);
  (void)journal_->rotate(lsn);
  ops_since_checkpoint_ = 0;
}

void Tenant::flush() {
  if (journal_) journal_->sync();
}

bool valid_tenant_name(const std::string& name) noexcept {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

TenantTable::TenantTable(TenantOptions opts, obs::Obs* obs)
    : opts_(std::move(opts)), obs_(obs) {}

Tenant& TenantTable::get_or_create(const std::string& name,
                                   persist::FsyncPolicy fsync,
                                   std::uint64_t fsync_interval,
                                   bool certified) {
  if (!valid_tenant_name(name)) {
    throw std::invalid_argument("invalid tenant name");
  }
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(name, std::make_unique<Tenant>(
                                name, opts_, fsync, fsync_interval,
                                certified, obs_))
             .first;
  }
  return *it->second;
}

Tenant* TenantTable::find(const std::string& name) noexcept {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void TenantTable::flush_all() {
  for (auto& [name, tenant] : tenants_) tenant->flush();
}

}  // namespace edfkit::net
