#include "net/tenant.hpp"

#include <filesystem>
#include <random>
#include <stdexcept>

#include "admission/snapshot.hpp"
#include "obs/obs.hpp"
#include "persist/format.hpp"

namespace edfkit::net {
namespace {

/// Dedup sidecar section ids (persist/format.hpp container).
constexpr std::uint32_t kSecDedupMeta = 1;
constexpr std::uint32_t kSecDedupSessions = 2;

std::uint64_t mint_epoch() {
  std::random_device rd;
  std::uint64_t e = (static_cast<std::uint64_t>(rd()) << 32) | rd();
  // splitmix64 finalizer: random_device may be weak on exotic
  // platforms; the mix keeps the nonce well-spread regardless.
  e += 0x9e3779b97f4a7c15ull;
  e = (e ^ (e >> 30)) * 0xbf58476d1ce4e5b9ull;
  e = (e ^ (e >> 27)) * 0x94d049bb133111ebull;
  return e ^ (e >> 31);
}

}  // namespace

NetResponse make_admit_response(std::uint64_t request_id,
                                std::uint8_t flags,
                                const AdmissionDecision& d) {
  NetResponse resp;
  resp.hdr.op = static_cast<std::uint8_t>(NetOp::Admit);
  resp.hdr.request_id = request_id;
  resp.hdr.status = static_cast<std::uint8_t>(d.admitted ? NetStatus::Ok
                                                         : NetStatus::Rejected);
  resp.id = d.id;
  resp.rung = static_cast<std::uint8_t>(d.rung);
  resp.verdict = static_cast<std::uint8_t>(d.analysis.verdict);
  if ((flags & kFlagWantCertificate) != 0 && d.certificate.present()) {
    resp.hdr.flags |= kFlagHasCertificate;
    resp.certificate = d.certificate;
  }
  return resp;
}

NetResponse make_admit_group_response(std::uint64_t request_id,
                                      std::uint8_t flags,
                                      const GroupDecision& d) {
  NetResponse resp;
  resp.hdr.op = static_cast<std::uint8_t>(NetOp::AdmitGroup);
  resp.hdr.request_id = request_id;
  resp.hdr.status = static_cast<std::uint8_t>(d.admitted ? NetStatus::Ok
                                                         : NetStatus::Rejected);
  resp.ids = d.ids;
  resp.rung = static_cast<std::uint8_t>(d.rung);
  resp.verdict = static_cast<std::uint8_t>(d.analysis.verdict);
  if ((flags & kFlagWantCertificate) != 0 && d.certificate.present()) {
    resp.hdr.flags |= kFlagHasCertificate;
    resp.certificate = d.certificate;
  }
  return resp;
}

NetResponse make_remove_response(NetOp op, std::uint64_t request_id,
                                 std::uint64_t removed) {
  NetResponse resp;
  resp.hdr.op = static_cast<std::uint8_t>(op);
  resp.hdr.request_id = request_id;
  resp.removed = removed;
  return resp;
}

/// Rebuilds the per-client dedup window while recover() replays the
/// journal: a ClientMark record arms (client, request_id, flags); the
/// next operation's outcome is encoded through the same make_*_response
/// helpers the serving path uses and recorded — bit-identical to the
/// response originally sent. A mark with no following operation (crash
/// between the two appends) is simply superseded or dropped: the op
/// never committed, so the client's retry must re-execute.
class DedupRebuild final : public ReplayObserver {
 public:
  explicit DedupRebuild(Tenant& t) : t_(t) {}

  void on_mark(const std::string& client, std::uint64_t request_id,
               std::uint8_t flags) override {
    client_ = client;
    request_id_ = request_id;
    flags_ = flags;
    armed_ = true;
  }
  void on_admit(const AdmissionDecision& d) override {
    if (armed_) finish(make_admit_response(request_id_, flags_, d));
  }
  void on_admit_group(const GroupDecision& d) override {
    if (armed_) finish(make_admit_group_response(request_id_, flags_, d));
  }
  void on_remove(TaskId /*id*/, bool removed) override {
    if (armed_) {
      finish(make_remove_response(NetOp::Remove, request_id_,
                                  removed ? 1 : 0));
    }
  }
  void on_remove_group(std::span<const TaskId> /*ids*/,
                       std::size_t removed) override {
    if (armed_) {
      finish(make_remove_response(NetOp::RemoveGroup, request_id_,
                                  removed));
    }
  }

 private:
  void finish(const NetResponse& resp) {
    armed_ = false;
    t_.record_applied(client_, request_id_, encode_response(resp));
  }

  Tenant& t_;
  std::string client_;
  std::uint64_t request_id_ = 0;
  std::uint8_t flags_ = 0;
  bool armed_ = false;
};

Tenant::Tenant(std::string name, const TenantOptions& opts,
               persist::FsyncPolicy fsync, std::uint64_t fsync_interval,
               bool certified, obs::Obs* obs, std::uint32_t platform_m)
    : name_(std::move(name)),
      ctl_([&] {
        AdmissionOptions a = opts.admission;
        a.return_certificate = a.return_certificate || certified;
        a.platform.m = platform_m;  // > 1 selects global admission mode
        return AdmissionController(a);
      }()),
      fsync_(fsync),
      fsync_interval_(fsync_interval),
      obs_(obs),
      checkpoint_every_(opts.checkpoint_every),
      dedup_window_(opts.dedup_window),
      epoch_(mint_epoch()) {
  standby_ = opts.standby;
  if (standby_) standby_rebuild_ = std::make_unique<DedupRebuild>(*this);
  if (!opts.data_dir.empty()) {
    std::filesystem::create_directories(opts.data_dir);
    snapshot_path_ = opts.data_dir + "/" + name_ + ".snap";
    journal_path_ = opts.data_dir + "/" + name_ + ".wal";
    dedup_path_ = opts.data_dir + "/" + name_ + ".dedup";
    open_artifacts();
  }
  if (obs != nullptr) ctl_.attach_obs(obs);
}

Tenant::~Tenant() {
  ctl_.attach_journal(nullptr);
  if (journal_) journal_->attach_obs(nullptr);
}

void Tenant::open_artifacts() {
  // Recover first (tolerates missing artifacts — a clean cold start),
  // then open the journal for append; recovery itself must not
  // re-journal the replayed operations. The dedup sidecar seeds the
  // sessions; the replay re-applies marks idempotently on top (the
  // sidecar is written before the snapshot, so it is never behind it).
  sessions_.clear();
  load_dedup();
  DedupRebuild rebuild(*this);
  (void)recover(ctl_, snapshot_path_, journal_path_, &rebuild);
  persist::JournalOptions jopts;
  jopts.fsync = fsync_;
  jopts.fsync_interval = fsync_interval_;
  journal_.emplace(persist::Journal::open_append(journal_path_, jopts));
  if (obs_ != nullptr && obs_->config().metrics) {
    journal_->attach_obs(obs_->journal());
  }
  // A standby's controller never journals its own operations — the WAL
  // is written by apply_replicated() with the primary's exact bytes.
  ctl_.attach_journal(standby_ ? nullptr : &*journal_);
  repl_lsn_ = journal_->lsn();
  ops_since_checkpoint_ = 0;
}

void Tenant::apply_replicated(std::span<const std::uint8_t> payload) {
  // WAL-before-apply, and byte-identical to the primary's journal: a
  // follower crash recovers through the ordinary open_artifacts() path
  // and lands exactly where the primary's record stream left it.
  if (journal_) (void)journal_->append(payload);
  apply_record(ctl_, payload, standby_rebuild_.get());
  ++repl_lsn_;
  const bool is_mark =
      !payload.empty() &&
      payload[0] == static_cast<std::uint8_t>(JournalOp::ClientMark);
  if (!is_mark) on_operation();
}

void Tenant::seed_from(std::span<const std::uint8_t> snapshot_bytes,
                       std::span<const std::uint8_t> dedup_bytes,
                       std::uint64_t lsn) {
  ctl_.attach_journal(nullptr);
  if (journal_) {
    journal_->attach_obs(nullptr);
    journal_.reset();
  }
  sessions_.clear();
  if (!snapshot_path_.empty()) {
    // Persist the primary's artifacts verbatim first: a follower crash
    // after the seed recovers to exactly the seeded state.
    if (snapshot_bytes.empty()) {
      std::error_code ec;
      std::filesystem::remove(snapshot_path_, ec);
    } else {
      persist::write_file_atomic(snapshot_path_, snapshot_bytes);
    }
    if (dedup_bytes.empty()) {
      std::error_code ec;
      std::filesystem::remove(dedup_path_, ec);
    } else {
      persist::write_file_atomic(dedup_path_, dedup_bytes);
    }
  }
  if (snapshot_bytes.empty()) {
    // A primary that never checkpointed seeds an empty store at LSN 0.
    (void)recover(ctl_, "", "");
  } else {
    (void)load_snapshot_bytes(
        ctl_, std::vector<std::uint8_t>(snapshot_bytes.begin(),
                                        snapshot_bytes.end()));
  }
  if (!dedup_bytes.empty()) {
    load_dedup_bytes(std::vector<std::uint8_t>(dedup_bytes.begin(),
                                               dedup_bytes.end()));
  }
  if (!journal_path_.empty()) {
    persist::JournalOptions jopts;
    jopts.fsync = fsync_;
    jopts.fsync_interval = fsync_interval_;
    journal_.emplace(persist::Journal::create(journal_path_, jopts, lsn));
    if (obs_ != nullptr && obs_->config().metrics) {
      journal_->attach_obs(obs_->journal());
    }
    if (!standby_) ctl_.attach_journal(&*journal_);
  }
  repl_lsn_ = lsn;
  ops_since_checkpoint_ = 0;
  diverged_ = false;
  diverged_reason_.clear();
  quarantined_ = false;
  quarantine_retryable_ = true;
  quarantine_reason_.clear();
}

void Tenant::promote() {
  if (!standby_) return;
  standby_ = false;
  if (journal_ && !quarantined_) ctl_.attach_journal(&*journal_);
  // A fresh epoch tells retrying clients the serving identity changed:
  // they re-HELLO, learn highest_applied, and re-drive the gap.
  epoch_ = mint_epoch();
}

void Tenant::mark_diverged(std::string reason) {
  diverged_ = true;
  diverged_reason_ = std::move(reason);
}

void Tenant::on_operation() {
  if (!journal_ || checkpoint_every_ == 0) return;
  if (++ops_since_checkpoint_ < checkpoint_every_) return;
  checkpoint();
}

void Tenant::checkpoint() {
  if (!journal_) return;
  const std::uint64_t lsn = journal_->lsn();
  // Sidecar before snapshot (see save_dedup()); rotate last, so a
  // failure anywhere leaves snapshot_lsn within the journal window.
  save_dedup(lsn);
  save_snapshot(ctl_, snapshot_path_, lsn);
  (void)journal_->rotate(lsn);
  ops_since_checkpoint_ = 0;
}

void Tenant::flush() {
  if (journal_) journal_->sync();
}

void Tenant::quarantine(const persist::PersistError& e) {
  ctl_.attach_journal(nullptr);
  if (journal_) {
    journal_->attach_obs(nullptr);
    journal_.reset();  // the handle may be poisoned; recovery reopens
  }
  quarantined_ = true;
  quarantine_retryable_ = e.retryable();
  quarantine_reason_ = e.what();
}

bool Tenant::try_recover() {
  if (!quarantined_) return true;
  if (!quarantine_retryable_) return false;
  try {
    open_artifacts();
  } catch (const persist::PersistError& e) {
    // Still sick. A partial open_artifacts() may have mutated the
    // controller, but the quarantine keeps every op away from it, and
    // the next probe rebuilds from disk again.
    quarantine_retryable_ = e.retryable();
    quarantine_reason_ = e.what();
    ctl_.attach_journal(nullptr);
    if (journal_) {
      journal_->attach_obs(nullptr);
      journal_.reset();
    }
    return false;
  }
  quarantined_ = false;
  quarantine_retryable_ = true;
  quarantine_reason_.clear();
  return true;
}

std::uint64_t Tenant::highest_applied(
    const std::string& client) const noexcept {
  const auto it = sessions_.find(client);
  return it == sessions_.end() ? 0 : it->second.highest_applied;
}

Tenant::DedupResult Tenant::dedup_lookup(
    const std::string& client, std::uint64_t request_id,
    const std::vector<std::uint8_t>** out) const noexcept {
  const auto it = sessions_.find(client);
  if (it == sessions_.end() || request_id > it->second.highest_applied) {
    return DedupResult::Miss;
  }
  for (const auto& [id, bytes] : it->second.window) {
    if (id == request_id) {
      *out = &bytes;
      return DedupResult::Hit;
    }
  }
  return DedupResult::Evicted;
}

void Tenant::append_mark(const std::string& client,
                         std::uint64_t request_id, std::uint8_t flags) {
  if (!journal_) return;
  (void)journal_->append(
      journal_codec::client_mark(client, request_id, flags));
}

void Tenant::record_applied(const std::string& client,
                            std::uint64_t request_id,
                            std::vector<std::uint8_t> response) {
  ClientSession& s = sessions_[client];
  if (request_id <= s.highest_applied) return;  // replay idempotence
  s.highest_applied = request_id;
  s.window.emplace_back(request_id, std::move(response));
  while (s.window.size() > dedup_window_) s.window.pop_front();
}

void Tenant::save_dedup(std::uint64_t lsn) const {
  // Nothing to persist and nothing stale on disk: skip the write.
  if (sessions_.empty() && !persist::file_exists(dedup_path_)) return;
  persist::SectionWriter sw;
  ByteWriter& meta = sw.begin(kSecDedupMeta);
  meta.u64(lsn);
  meta.u64(sessions_.size());
  ByteWriter& body = sw.begin(kSecDedupSessions);
  for (const auto& [client, s] : sessions_) {
    body.str(client);
    body.u64(s.highest_applied);
    body.u32(static_cast<std::uint32_t>(s.window.size()));
    for (const auto& [id, bytes] : s.window) {
      body.u64(id);
      body.u32(static_cast<std::uint32_t>(bytes.size()));
      body.bytes(bytes.data(), bytes.size());
    }
  }
  sw.finish(dedup_path_);
}

void Tenant::load_dedup() {
  if (dedup_path_.empty() || !persist::file_exists(dedup_path_)) return;
  load_dedup_bytes(persist::read_file(dedup_path_));
}

void Tenant::load_dedup_bytes(std::vector<std::uint8_t> bytes) {
  const persist::SectionReader sr(std::move(bytes));
  try {
    ByteReader meta = sr.section(kSecDedupMeta);
    (void)meta.u64();  // sidecar lsn (diagnostic; replay is idempotent)
    const std::uint64_t count = meta.u64();
    ByteReader r = sr.section(kSecDedupSessions);
    for (std::uint64_t i = 0; i < count; ++i) {
      ClientSession s;
      const std::string client = r.str();
      s.highest_applied = r.u64();
      const std::uint32_t entries = r.u32();
      for (std::uint32_t k = 0; k < entries; ++k) {
        const std::uint64_t id = r.u64();
        const std::uint32_t len = r.u32();
        std::vector<std::uint8_t> bytes;
        bytes.reserve(len);
        for (std::uint32_t b = 0; b < len; ++b) bytes.push_back(r.u8());
        s.window.emplace_back(id, std::move(bytes));
      }
      sessions_.emplace(client, std::move(s));
    }
  } catch (const std::out_of_range&) {
    throw persist::PersistError(
        persist::PersistErrc::Truncated,
        dedup_path_.empty() ? "dedup bytes" : dedup_path_);
  }
}

bool valid_tenant_name(const std::string& name) noexcept {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

TenantTable::TenantTable(TenantOptions opts, obs::Obs* obs)
    : opts_(std::move(opts)), obs_(obs) {}

Tenant& TenantTable::get_or_create(const std::string& name,
                                   persist::FsyncPolicy fsync,
                                   std::uint64_t fsync_interval,
                                   bool certified,
                                   std::uint32_t platform_m) {
  if (!valid_tenant_name(name)) {
    throw std::invalid_argument("invalid tenant name");
  }
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(name, std::make_unique<Tenant>(
                                name, opts_, fsync, fsync_interval,
                                certified, obs_, platform_m))
             .first;
  }
  return *it->second;
}

Tenant* TenantTable::find(const std::string& name) noexcept {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void TenantTable::flush_all() {
  for (auto& [name, tenant] : tenants_) tenant->flush();
}

}  // namespace edfkit::net
