#include "net/shed.hpp"

namespace edfkit::net {

bool ShedPolicy::should_shed(NetOp op, std::size_t pending,
                             const StoreHeader& header) const noexcept {
  if (op != NetOp::Admit && op != NetOp::AdmitGroup) return false;
  if (opts_.max_pending != 0 && pending >= opts_.max_pending) return true;
  if (opts_.max_residents != 0 && header.residents >= opts_.max_residents) {
    return true;
  }
  if (opts_.utilization_headroom < 1.0 &&
      header.utilization >= opts_.utilization_headroom) {
    return true;
  }
  return false;
}

}  // namespace edfkit::net
