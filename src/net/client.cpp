#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>

namespace edfkit::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Wait until `fd` is ready for `events`; throws NetTimeout when
/// `timeout_ms` (nonzero) expires first.
void poll_or_throw(int fd, short events, std::uint64_t timeout_ms,
                   const char* what) {
  if (timeout_ms == 0) return;  // unbounded: let the syscall block
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int r = ::poll(&p, 1, static_cast<int>(timeout_ms));
    if (r > 0) return;
    if (r == 0) throw NetTimeout(std::string(what) + ": timed out");
    if (errno == EINTR) continue;
    throw_errno(what);
  }
}

void set_blocking(int fd, bool blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl F_GETFL");
  const int want =
      blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) throw_errno("fcntl F_SETFL");
}

}  // namespace

Client Client::connect(const std::string& host, std::uint16_t port,
                       std::uint64_t connect_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    throw_errno("inet_pton");
  }
  try {
    if (connect_timeout_ms == 0) {
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        throw_errno("connect");
      }
    } else {
      // Bounded handshake: non-blocking connect, poll for writability,
      // read the outcome back via SO_ERROR, then restore blocking mode.
      set_blocking(fd, false);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        if (errno != EINPROGRESS) throw_errno("connect");
        poll_or_throw(fd, POLLOUT, connect_timeout_ms, "connect");
        int err = 0;
        socklen_t len = sizeof err;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
          throw_errno("getsockopt SO_ERROR");
        }
        if (err != 0) {
          errno = err;
          throw_errno("connect");
        }
      }
      set_blocking(fd, true);
    }
  } catch (...) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      next_request_id_(o.next_request_id_),
      send_timeout_ms_(o.send_timeout_ms_),
      receive_timeout_ms_(o.receive_timeout_ms_),
      rbuf_(std::move(o.rbuf_)) {}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    next_request_id_ = o.next_request_id_;
    send_timeout_ms_ = o.send_timeout_ms_;
    receive_timeout_ms_ = o.receive_timeout_ms_;
    rbuf_ = std::move(o.rbuf_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

std::uint64_t Client::send(NetRequest req) {
  if (fd_ < 0) {
    errno = ENOTCONN;
    throw_errno("send");
  }
  if (req.hdr.request_id == 0) {
    req.hdr.request_id = next_request_id_++;
  } else {
    // A caller-chosen id (the retry path resends under the original
    // one); keep the counter ahead of it.
    next_request_id_ = std::max(next_request_id_, req.hdr.request_id + 1);
  }
  std::vector<std::uint8_t> wire;
  append_frame(wire, encode_request(req));
  std::size_t off = 0;
  while (off < wire.size()) {
    poll_or_throw(fd_, POLLOUT, send_timeout_ms_, "send");
    // MSG_NOSIGNAL: a server that vanished mid-send must surface as
    // EPIPE, not as a process-wide SIGPIPE.
    ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
  return req.hdr.request_id;
}

NetResponse Client::receive() {
  if (fd_ < 0) {
    errno = ENOTCONN;
    throw_errno("receive");
  }
  for (;;) {
    FrameView frame;
    switch (try_parse_frame(rbuf_, frame)) {
      case FrameStatus::Ok: {
        NetResponse resp = decode_response(frame.payload);
        rbuf_.erase(rbuf_.begin(),
                    rbuf_.begin() + static_cast<std::ptrdiff_t>(frame.consumed));
        return resp;
      }
      case FrameStatus::NeedMore:
        break;
      case FrameStatus::TooLarge:
        throw std::runtime_error("server sent an oversized frame");
      case FrameStatus::BadCrc:
        throw std::runtime_error("server frame failed CRC");
    }
    poll_or_throw(fd_, POLLIN, receive_timeout_ms_, "receive");
    std::uint8_t chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) {
      errno = ECONNRESET;
      throw_errno("read: connection closed");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    rbuf_.insert(rbuf_.end(), chunk, chunk + n);
  }
}

NetResponse Client::call(NetRequest req) {
  send(std::move(req));
  return receive();
}

NetResponse Client::hello(const std::string& tenant,
                          persist::FsyncPolicy fsync,
                          std::uint64_t fsync_interval, std::uint8_t flags,
                          const std::string& client,
                          std::uint32_t platform_m) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Hello);
  req.hdr.flags = flags;
  req.tenant = tenant;
  req.durability = static_cast<std::uint8_t>(fsync);
  req.fsync_interval = fsync_interval;
  req.client = client;
  req.platform_m = platform_m;
  return call(std::move(req));
}

// ---------------------------------------------------- RetryingClient

RetryingClient::RetryingClient(std::string host, std::uint16_t port,
                               std::string tenant, std::string client_id,
                               RetryPolicy policy,
                               persist::FsyncPolicy fsync,
                               std::uint64_t fsync_interval,
                               std::uint8_t hello_flags,
                               std::uint32_t platform_m)
    : RetryingClient(
          std::vector<Endpoint>{Endpoint{std::move(host), port}},
          std::move(tenant), std::move(client_id), policy, fsync,
          fsync_interval, hello_flags, platform_m) {}

RetryingClient::RetryingClient(std::vector<Endpoint> endpoints,
                               std::string tenant, std::string client_id,
                               RetryPolicy policy,
                               persist::FsyncPolicy fsync,
                               std::uint64_t fsync_interval,
                               std::uint8_t hello_flags,
                               std::uint32_t platform_m)
    : endpoints_(std::move(endpoints)),
      tenant_(std::move(tenant)),
      client_id_(std::move(client_id)),
      policy_(policy),
      fsync_(fsync),
      fsync_interval_(fsync_interval),
      hello_flags_(hello_flags),
      platform_m_(platform_m),
      rng_(policy.seed != 0 ? policy.seed
                            : (static_cast<std::uint64_t>(
                                   std::random_device{}())
                                   << 32) |
                                  std::random_device{}()) {
  if (endpoints_.empty()) {
    throw std::invalid_argument("RetryingClient: empty endpoint list");
  }
}

void RetryingClient::rotate_endpoint() {
  if (endpoints_.size() < 2) return;
  endpoint_idx_ = (endpoint_idx_ + 1) % endpoints_.size();
  ++failovers_;
  unavailable_streak_ = 0;
}

void RetryingClient::ensure_connected() {
  if (conn_.connected()) return;
  // Walk the endpoint list starting from the one that last worked: a
  // connect failure rotates to the next, and only when every endpoint
  // refused does the last error reach call()'s attempt accounting.
  for (std::size_t tried = 0;; ++tried) {
    const Endpoint& ep = endpoints_[endpoint_idx_];
    try {
      conn_ = Client::connect(ep.host, ep.port, policy_.connect_timeout_ms);
      break;
    } catch (const std::exception&) {
      if (tried + 1 >= endpoints_.size()) throw;
      rotate_endpoint();
    }
  }
  conn_.set_timeouts(policy_.send_timeout_ms, policy_.receive_timeout_ms);
  ++reconnects_;
  const NetResponse h =
      conn_.hello(tenant_, fsync_, fsync_interval_, hello_flags_,
                  client_id_, platform_m_);
  if (h.hdr.status != static_cast<std::uint8_t>(NetStatus::Ok)) {
    conn_.close();
    throw std::runtime_error(std::string("hello failed: ") +
                             to_string(static_cast<NetStatus>(
                                 h.hdr.status)));
  }
  if (epoch_ != 0 && h.epoch != epoch_) ++epoch_changes_;
  epoch_ = h.epoch;
  highest_applied_ = h.highest_applied;
  // Resume ids above what the server already applied for us: after a
  // server restart the dedup window was rebuilt from the journal, and
  // after a client restart this seeds the id sequence correctly.
  next_id_ = std::max(next_id_, h.highest_applied + 1);
  // Re-drive hook: the caller gets a look at the fresh endpoint's
  // highest_applied before the in-flight request goes out, so lost
  // acked ops are re-applied in their original order ahead of it.
  if (on_reconnect_ && !in_reconnect_cb_) {
    in_reconnect_cb_ = true;
    try {
      on_reconnect_();
    } catch (...) {
      in_reconnect_cb_ = false;
      throw;
    }
    in_reconnect_cb_ = false;
  }
}

void RetryingClient::backoff_sleep(std::uint64_t floor_ms) {
  // Decorrelated jitter: sleep = min(cap, uniform(base, prev * 3)),
  // floored by the server's retry_after_ms hint when it gave one. The
  // floor wins over the cap: the hint is the server saying when it
  // will be ready — sleeping less just burns an attempt (a cap below
  // the hint used to undercut it here).
  const std::uint64_t base = std::max<std::uint64_t>(
      1, std::max(policy_.backoff_base_ms, floor_ms));
  const std::uint64_t hi =
      std::max(base + 1, std::min(policy_.backoff_cap_ms,
                                  std::max(prev_sleep_ms_, base) * 3));
  std::uniform_int_distribution<std::uint64_t> dist(base, hi);
  prev_sleep_ms_ =
      std::max(floor_ms, std::min(policy_.backoff_cap_ms, dist(rng_)));
  std::this_thread::sleep_for(
      std::chrono::milliseconds(prev_sleep_ms_));
}

NetResponse RetryingClient::call(NetRequest req) {
  // The id is fixed once — after the first successful HELLO, which may
  // advance next_id_ past what the server already applied for this
  // client — and reused verbatim on every resend. That is what makes
  // the server's dedup window able to recognize a retry of an
  // already-applied operation. A caller-preset nonzero id survives
  // as-is (the failover re-drive path).
  std::uint64_t id = req.hdr.request_id;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      ensure_connected();
      if (id == 0) id = next_id_++;
      req.hdr.request_id = id;
      last_id_ = id;
      NetRequest copy = req;
      (void)conn_.send(std::move(copy));
      const NetResponse resp = conn_.receive();
      const NetStatus st = static_cast<NetStatus>(resp.hdr.status);
      if (st == NetStatus::Unavailable || st == NetStatus::Shed) {
        // Transient by contract: the op was NOT applied. Honor the
        // server's retry hint, then resend the same id.
        if (st == NetStatus::Unavailable) {
          // A persistent-Unavailable endpoint is likely an unpromoted
          // standby (or a dead tenant) — walk to the next endpoint
          // rather than burning every attempt against it. Shed resets
          // the streak: a shedding server is alive, just busy.
          if (++unavailable_streak_ >=
                  policy_.failover_after_unavailable &&
              endpoints_.size() > 1) {
            conn_.close();
            rotate_endpoint();
          }
        } else {
          unavailable_streak_ = 0;
        }
        if (attempt >= policy_.max_attempts) return resp;
        ++retries_;
        backoff_sleep(resp.retry_after_ms);
        continue;
      }
      unavailable_streak_ = 0;
      return resp;
    } catch (const std::system_error&) {
      conn_.close();
      if (attempt >= policy_.max_attempts) throw;
    } catch (const NetTimeout&) {
      // A late response would desynchronize the stream — drop the
      // connection and resend on a fresh one.
      conn_.close();
      if (attempt >= policy_.max_attempts) throw;
    }
    ++retries_;
    backoff_sleep(0);
  }
}

NetResponse RetryingClient::admit(const Task& t, std::uint8_t flags) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Admit);
  req.hdr.flags = flags;
  req.task = t;
  return call(std::move(req));
}

NetResponse RetryingClient::remove(TaskId id) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Remove);
  req.id = id;
  return call(std::move(req));
}

}  // namespace edfkit::net
