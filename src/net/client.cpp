#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace edfkit::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Client Client::connect(const std::string& host, std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    throw_errno("inet_pton");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      next_request_id_(o.next_request_id_),
      rbuf_(std::move(o.rbuf_)) {}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    next_request_id_ = o.next_request_id_;
    rbuf_ = std::move(o.rbuf_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

std::uint64_t Client::send(NetRequest req) {
  if (fd_ < 0) {
    errno = ENOTCONN;
    throw_errno("send");
  }
  req.hdr.request_id = next_request_id_++;
  std::vector<std::uint8_t> wire;
  append_frame(wire, encode_request(req));
  std::size_t off = 0;
  while (off < wire.size()) {
    ssize_t n = ::write(fd_, wire.data() + off, wire.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    off += static_cast<std::size_t>(n);
  }
  return req.hdr.request_id;
}

NetResponse Client::receive() {
  if (fd_ < 0) {
    errno = ENOTCONN;
    throw_errno("receive");
  }
  for (;;) {
    FrameView frame;
    switch (try_parse_frame(rbuf_, frame)) {
      case FrameStatus::Ok: {
        NetResponse resp = decode_response(frame.payload);
        rbuf_.erase(rbuf_.begin(),
                    rbuf_.begin() + static_cast<std::ptrdiff_t>(frame.consumed));
        return resp;
      }
      case FrameStatus::NeedMore:
        break;
      case FrameStatus::TooLarge:
        throw std::runtime_error("server sent an oversized frame");
      case FrameStatus::BadCrc:
        throw std::runtime_error("server frame failed CRC");
    }
    std::uint8_t chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) {
      errno = ECONNRESET;
      throw_errno("read: connection closed");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    rbuf_.insert(rbuf_.end(), chunk, chunk + n);
  }
}

NetResponse Client::call(NetRequest req) {
  send(std::move(req));
  return receive();
}

NetResponse Client::hello(const std::string& tenant,
                          persist::FsyncPolicy fsync,
                          std::uint64_t fsync_interval, std::uint8_t flags) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Hello);
  req.hdr.flags = flags;
  req.tenant = tenant;
  req.durability = static_cast<std::uint8_t>(fsync);
  req.fsync_interval = fsync_interval;
  return call(std::move(req));
}

}  // namespace edfkit::net
