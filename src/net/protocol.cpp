#include "net/protocol.hpp"

#include <stdexcept>

namespace edfkit::net {
namespace {

void encode_header(ByteWriter& w, const MessageHeader& h) {
  w.u8(h.version);
  w.u8(h.op);
  w.u8(h.status);
  w.u8(h.flags);
  w.u64(h.request_id);
}

MessageHeader decode_header(ByteReader& r) {
  MessageHeader h;
  h.version = r.u8();
  h.op = r.u8();
  h.status = r.u8();
  h.flags = r.u8();
  h.request_id = r.u64();
  return h;
}

void encode_task(ByteWriter& w, const Task& t) {
  w.i64(t.wcet);
  w.i64(t.deadline);
  w.i64(t.period);
  w.i64(t.jitter);
  w.str(t.name);
}

Task decode_task(ByteReader& r) {
  Task t;
  t.wcet = r.i64();
  t.deadline = r.i64();
  t.period = r.i64();
  t.jitter = r.i64();
  t.name = r.str();
  return t;
}

void encode_certificate(ByteWriter& w, const Certificate& c) {
  w.u8(static_cast<std::uint8_t>(c.kind));
  w.i64(c.witness);
  w.i64(c.bound);
  w.u32(static_cast<std::uint32_t>(c.borders.size()));
  for (const Time b : c.borders) w.i64(b);
  // v2 trailing multiprocessor fields. The certificate is always the
  // last element of its message, so a v1 decoder simply leaves these
  // bytes unread (it never sees multiprocessor kinds anyway: a v1
  // client cannot HELLO with platform_m > 1).
  w.u32(c.processors);
  w.u8(static_cast<std::uint8_t>(c.multi_test));
}

Certificate decode_certificate(ByteReader& r) {
  Certificate c;
  c.kind = static_cast<CertificateKind>(r.u8());
  c.witness = r.i64();
  c.bound = r.i64();
  const std::uint32_t n = r.u32();
  c.borders.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) c.borders.push_back(r.i64());
  if (r.remaining() >= 5) {  // v2: processors u32 + multi_test u8
    c.processors = r.u32();
    c.multi_test = static_cast<MultiTest>(r.u8());
  }
  return c;
}

}  // namespace

const char* to_string(NetOp op) noexcept {
  switch (op) {
    case NetOp::Hello: return "hello";
    case NetOp::Admit: return "admit";
    case NetOp::AdmitGroup: return "admit_group";
    case NetOp::Remove: return "remove";
    case NetOp::RemoveGroup: return "remove_group";
    case NetOp::Stats: return "stats";
    case NetOp::Ping: return "ping";
    case NetOp::ReplHello: return "repl_hello";
    case NetOp::ReplAppend: return "repl_append";
    case NetOp::ReplAck: return "repl_ack";
    case NetOp::ReplSnapshot: return "repl_snapshot";
    case NetOp::Promote: return "promote";
  }
  return "unknown";
}

const char* to_string(NetStatus s) noexcept {
  switch (s) {
    case NetStatus::Ok: return "ok";
    case NetStatus::Rejected: return "rejected";
    case NetStatus::Shed: return "shed";
    case NetStatus::BadRequest: return "bad_request";
    case NetStatus::BadVersion: return "bad_version";
    case NetStatus::UnknownOp: return "unknown_op";
    case NetStatus::NeedHello: return "need_hello";
    case NetStatus::InternalError: return "internal_error";
    case NetStatus::Unavailable: return "unavailable";
  }
  return "?";
}

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32(payload));
  frame.bytes(payload.data(), payload.size());
  const std::vector<std::uint8_t>& bytes = frame.data();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

FrameStatus try_parse_frame(std::span<const std::uint8_t> buf,
                            FrameView& out) {
  if (buf.size() < kFrameHeaderBytes) return FrameStatus::NeedMore;
  ByteReader r{buf};
  const std::uint32_t len = r.u32();
  const std::uint32_t crc = r.u32();
  if (len > kMaxFrameBytes) return FrameStatus::TooLarge;
  if (buf.size() - kFrameHeaderBytes < len) return FrameStatus::NeedMore;
  const std::span<const std::uint8_t> payload =
      buf.subspan(kFrameHeaderBytes, len);
  if (crc32(payload) != crc) return FrameStatus::BadCrc;
  out.payload = payload;
  out.consumed = kFrameHeaderBytes + len;
  return FrameStatus::Ok;
}

std::vector<std::uint8_t> encode_request(const NetRequest& r) {
  ByteWriter w;
  encode_header(w, r.hdr);
  switch (static_cast<NetOp>(r.hdr.op)) {
    case NetOp::Hello:
      w.str(r.tenant);
      w.u8(r.durability);
      w.u64(r.fsync_interval);
      // Trailing, so a pre-dedup peer's HELLO still decodes (the
      // decoder probes remaining()).
      w.str(r.client);
      w.u32(r.platform_m);  // v2 trailing: execution platform
      break;
    case NetOp::Admit:
      encode_task(w, r.task);
      break;
    case NetOp::AdmitGroup:
      w.u32(static_cast<std::uint32_t>(r.group.size()));
      for (const Task& t : r.group) encode_task(w, t);
      break;
    case NetOp::Remove:
      w.u64(r.id);
      break;
    case NetOp::RemoveGroup:
      w.u32(static_cast<std::uint32_t>(r.ids.size()));
      for (const TaskId id : r.ids) w.u64(id);
      break;
    case NetOp::ReplHello:
      w.str(r.tenant);
      w.u8(r.durability);
      w.u64(r.fsync_interval);
      break;
    case NetOp::ReplAppend:
      w.str(r.tenant);
      w.u64(r.repl_lsn);
      w.u32(static_cast<std::uint32_t>(r.repl_records.size()));
      for (const std::vector<std::uint8_t>& rec : r.repl_records) {
        w.blob(rec);
      }
      w.u64(r.digest_lsn);
      w.u32(r.digest);
      break;
    case NetOp::ReplSnapshot:
      w.str(r.tenant);
      w.u64(r.repl_lsn);
      w.blob(r.repl_snapshot);
      w.blob(r.repl_dedup);
      break;
    case NetOp::Stats:
    case NetOp::Ping:
    case NetOp::ReplAck:   // never a request body
    case NetOp::Promote:
      break;  // header-only
  }
  return w.take();
}

NetRequest decode_request(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  NetRequest out;
  out.hdr = decode_header(r);
  switch (static_cast<NetOp>(out.hdr.op)) {
    case NetOp::Hello:
      out.tenant = r.str();
      out.durability = r.u8();
      out.fsync_interval = r.u64();
      if (r.remaining() > 0) out.client = r.str();
      if (r.remaining() >= 4) out.platform_m = r.u32();  // v2
      break;
    case NetOp::Admit:
      out.task = decode_task(r);
      break;
    case NetOp::AdmitGroup: {
      const std::uint32_t n = r.u32();
      // A length prefix past the payload is a short body, not an OOM:
      // each task is >= 36 bytes, so cap by what could possibly fit.
      if (n > payload.size() / 4) throw std::out_of_range("group count");
      out.group.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        out.group.push_back(decode_task(r));
      }
      break;
    }
    case NetOp::Remove:
      out.id = r.u64();
      break;
    case NetOp::RemoveGroup: {
      const std::uint32_t n = r.u32();
      if (n > payload.size() / 8) throw std::out_of_range("id count");
      out.ids.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) out.ids.push_back(r.u64());
      break;
    }
    case NetOp::ReplHello:
      out.tenant = r.str();
      out.durability = r.u8();
      out.fsync_interval = r.u64();
      break;
    case NetOp::ReplAppend: {
      out.tenant = r.str();
      out.repl_lsn = r.u64();
      const std::uint32_t n = r.u32();
      // Each record frame is at least 4 bytes (its length prefix).
      if (n > payload.size() / 4) throw std::out_of_range("record count");
      out.repl_records.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        out.repl_records.push_back(r.blob());
      }
      out.digest_lsn = r.u64();
      out.digest = r.u32();
      break;
    }
    case NetOp::ReplSnapshot:
      out.tenant = r.str();
      out.repl_lsn = r.u64();
      out.repl_snapshot = r.blob();
      out.repl_dedup = r.blob();
      break;
    case NetOp::Stats:
    case NetOp::Ping:
    case NetOp::ReplAck:
    case NetOp::Promote:
      break;
    default:
      break;  // unknown op: header only, caller answers UnknownOp
  }
  return out;
}

std::vector<std::uint8_t> encode_response(const NetResponse& r) {
  ByteWriter w;
  encode_header(w, r.hdr);
  const NetStatus st = static_cast<NetStatus>(r.hdr.status);
  if (st == NetStatus::Shed || st == NetStatus::Unavailable) {
    w.u32(r.retry_after_ms);
    return w.take();
  }
  switch (static_cast<NetOp>(r.hdr.op)) {
    case NetOp::Hello:
      w.u64(r.base_lsn);
      w.u64(r.lsn);
      w.u64(r.epoch);
      w.u64(r.highest_applied);
      w.u32(r.platform_m);  // v2 trailing: the tenant's real platform
      break;
    case NetOp::Admit:
      w.u64(r.id);
      w.u8(r.rung);
      w.u8(r.verdict);
      if ((r.hdr.flags & kFlagHasCertificate) != 0) {
        encode_certificate(w, r.certificate);
      }
      break;
    case NetOp::AdmitGroup:
      w.u32(static_cast<std::uint32_t>(r.ids.size()));
      for (const TaskId id : r.ids) w.u64(id);
      w.u8(r.rung);
      w.u8(r.verdict);
      if ((r.hdr.flags & kFlagHasCertificate) != 0) {
        encode_certificate(w, r.certificate);
      }
      break;
    case NetOp::Remove:
    case NetOp::RemoveGroup:
      w.u64(r.removed);
      break;
    case NetOp::Stats:
      w.u64(r.stats.epoch);
      w.u64(r.stats.residents);
      w.u64(r.stats.constrained);
      w.u64(r.stats.live_checkpoints);
      w.u64(r.stats.dead_checkpoints);
      w.u64(r.stats.segments);
      w.f64(r.stats.utilization);
      w.f64(r.stats.cert_ratio);
      w.str(r.stats_json);
      w.u32(r.platform_m);  // v2 trailing: admission platform
      break;
    case NetOp::ReplHello:
    case NetOp::ReplAppend:
    case NetOp::ReplAck:
    case NetOp::ReplSnapshot:
      // All follower-side repl ops answer with the ack body (the
      // server sets hdr.op = ReplAck; the shared case keeps echoed-op
      // responses decodable too).
      w.u64(r.base_lsn);
      w.u64(r.lsn);
      w.u8(r.repl_flags);
      break;
    case NetOp::Promote:
      w.u64(r.promoted);
      break;
    case NetOp::Ping:
      break;
  }
  return w.take();
}

NetResponse decode_response(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  NetResponse out;
  out.hdr = decode_header(r);
  const NetStatus st = static_cast<NetStatus>(out.hdr.status);
  if (st == NetStatus::Shed || st == NetStatus::Unavailable) {
    out.retry_after_ms = r.u32();
    return out;
  }
  // Error statuses past Rejected carry no body.
  if (out.hdr.status > static_cast<std::uint8_t>(NetStatus::Rejected)) {
    return out;
  }
  switch (static_cast<NetOp>(out.hdr.op)) {
    case NetOp::Hello:
      out.base_lsn = r.u64();
      out.lsn = r.u64();
      if (r.remaining() >= 16) {
        out.epoch = r.u64();
        out.highest_applied = r.u64();
      }
      if (r.remaining() >= 4) out.platform_m = r.u32();  // v2
      break;
    case NetOp::Admit:
      out.id = r.u64();
      out.rung = r.u8();
      out.verdict = r.u8();
      if ((out.hdr.flags & kFlagHasCertificate) != 0) {
        out.certificate = decode_certificate(r);
      }
      break;
    case NetOp::AdmitGroup: {
      const std::uint32_t n = r.u32();
      if (n > payload.size() / 8) throw std::out_of_range("id count");
      out.ids.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) out.ids.push_back(r.u64());
      out.rung = r.u8();
      out.verdict = r.u8();
      if ((out.hdr.flags & kFlagHasCertificate) != 0) {
        out.certificate = decode_certificate(r);
      }
      break;
    }
    case NetOp::Remove:
    case NetOp::RemoveGroup:
      out.removed = r.u64();
      break;
    case NetOp::Stats:
      out.stats.epoch = r.u64();
      out.stats.residents = r.u64();
      out.stats.constrained = r.u64();
      out.stats.live_checkpoints = r.u64();
      out.stats.dead_checkpoints = r.u64();
      out.stats.segments = r.u64();
      out.stats.utilization = r.f64();
      out.stats.cert_ratio = r.f64();
      out.stats_json = r.str();
      if (r.remaining() >= 4) out.platform_m = r.u32();  // v2
      break;
    case NetOp::ReplHello:
    case NetOp::ReplAppend:
    case NetOp::ReplAck:
    case NetOp::ReplSnapshot:
      out.base_lsn = r.u64();
      out.lsn = r.u64();
      out.repl_flags = r.u8();
      break;
    case NetOp::Promote:
      out.promoted = r.u64();
      break;
    case NetOp::Ping:
      break;
    default:
      break;
  }
  return out;
}

}  // namespace edfkit::net
