/// \file tenant.hpp
/// Per-tenant admission state for the network server: each tenant name
/// maps to its own AdmissionController (its own resident set, TaskId
/// space, stats and ladder options) plus, when a data directory is
/// configured, its own write-ahead journal and snapshot file.
///
/// Tenants use *controller-level* durability, not engine-level, on
/// purpose: controller journal replay is bit-identical — the TaskIds a
/// recovered controller assigns are exactly the ids it handed out
/// before the crash, so the ids remote clients hold stay valid across
/// a server restart. (Engine recovery may remap ids; that is fine for
/// in-process callers holding GlobalTaskIds, fatal for clients across
/// a reconnect.)
///
/// Durability class is negotiated at HELLO (net/protocol.hpp): the
/// first HELLO for a name creates the tenant with the requested
/// persist::FsyncPolicy; later HELLOs attach to the existing tenant
/// (its class does not change mid-life — mixed-durability writers to
/// one journal would make the weakest class the real one).
///
/// Checkpointing ties into journal compaction (persist/journal.hpp
/// rotate()): every `checkpoint_every` journaled operations the tenant
/// snapshots at the current LSN and rotates the journal there, so a
/// long-lived tenant's on-disk footprint is one snapshot plus a
/// bounded suffix instead of an unbounded operation history.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "admission/controller.hpp"
#include "net/protocol.hpp"
#include "persist/journal.hpp"

namespace edfkit {
class ReplayObserver;  // admission/snapshot.hpp
}

namespace edfkit::obs {
class Obs;
}

namespace edfkit::net {

struct TenantOptions {
  /// Base ladder options every tenant's controller starts from (HELLO
  /// may additionally switch return_certificate on).
  AdmissionOptions admission;
  /// Directory for per-tenant durability artifacts
  /// (<dir>/<tenant>.snap, <dir>/<tenant>.wal). Empty = in-memory
  /// tenants, no journal, nothing to recover.
  std::string data_dir;
  /// Journaled operations between checkpoint+rotate cycles; 0 = never
  /// checkpoint automatically (flush()/checkpoint() still work).
  std::size_t checkpoint_every = 0;
  /// Per-client applied responses retained for exactly-once retry: a
  /// resent request whose id is still inside the window is answered
  /// from the cached result; one that fell off (the client is more
  /// than this many requests behind) gets InternalError rather than a
  /// silent double-apply.
  std::size_t dedup_window = 128;
  /// Create tenants as replication followers (src/repl/): the
  /// controller does not journal its own operations — instead
  /// apply_replicated() appends the primary's exact record bytes and
  /// replays each through the same recovery path, keeping the follower
  /// bit-identical. promote() flips a follower into a serving primary.
  bool standby = false;
};

/// One tenant: name, controller, optional journal. Created via
/// TenantTable; not movable once created (the controller holds a raw
/// journal pointer).
class Tenant {
 public:
  Tenant(std::string name, const TenantOptions& opts,
         persist::FsyncPolicy fsync, std::uint64_t fsync_interval,
         bool certified, obs::Obs* obs, std::uint32_t platform_m = 1);
  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;
  ~Tenant();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] AdmissionController& controller() noexcept { return ctl_; }
  [[nodiscard]] const AdmissionController& controller() const noexcept {
    return ctl_;
  }
  [[nodiscard]] bool journaled() const noexcept {
    return journal_.has_value();
  }
  [[nodiscard]] std::uint64_t journal_base_lsn() const noexcept {
    return journal_ ? journal_->base_lsn() : 0;
  }
  [[nodiscard]] std::uint64_t journal_lsn() const noexcept {
    return journal_ ? journal_->lsn() : 0;
  }

  /// Call after every journaled mutating operation: counts toward the
  /// checkpoint_every cycle and checkpoints when it is due.
  void on_operation();

  /// Snapshot now at the journal's LSN and rotate the journal there
  /// (no-op for in-memory tenants). \throws PersistError on IO failure
  /// — the caller decides whether that degrades or kills serving.
  void checkpoint();

  /// fdatasync the journal now (the SIGTERM drain path). No-op for
  /// in-memory tenants.
  void flush();

  // ------------------------------------------- failure domain
  // A PersistError from this tenant's journal/checkpoint quarantines
  // *this tenant only*: its journal handle is dropped (it may be
  // poisoned), mutating ops are answered Unavailable by the server,
  // and a background re-probe periodically attempts a full recovery
  // from the on-disk artifacts. Other tenants keep serving.

  [[nodiscard]] bool quarantined() const noexcept { return quarantined_; }
  /// False when the quarantining error was fatal (corrupt artifacts) —
  /// re-probing cannot help; the tenant stays dark until an operator
  /// repairs or removes the files.
  [[nodiscard]] bool quarantine_retryable() const noexcept {
    return quarantine_retryable_;
  }
  [[nodiscard]] const std::string& quarantine_reason() const noexcept {
    return quarantine_reason_;
  }

  /// Enter quarantine: detach + drop the journal handle, remember the
  /// error. Idempotent.
  void quarantine(const persist::PersistError& e);

  /// One recovery probe: discard in-memory state and rebuild everything
  /// from the on-disk artifacts — dedup sidecar, snapshot, full journal
  /// replay (rebuilding the dedup window from ClientMark records), then
  /// reopen the journal for append. A *full* pass on purpose: a failed
  /// fsync may have left an operation journaled-but-not-executed, so
  /// memory must be re-derived from disk, not patched. Returns true and
  /// clears the quarantine on success; on failure stays quarantined
  /// (updating retryability from the new error) and returns false.
  [[nodiscard]] bool try_recover();

  // ------------------------------------------- exactly-once dedup
  // The server journals a ClientMark record naming (client, request_id)
  // immediately before the operation record it annotates, and caches
  // the encoded response after applying. A resent request (lost reply,
  // reconnect, server restart) is answered from the cache — never
  // applied twice. Request ids must be issued monotonically per client
  // (the client library does), starting at 1.

  /// Session epoch: a random nonce minted when this Tenant object was
  /// created. A retrying client that sees it change across reconnects
  /// knows the server restarted (and recovered from disk).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Highest request id applied for `client` (0 = never seen).
  [[nodiscard]] std::uint64_t highest_applied(
      const std::string& client) const noexcept;

  enum class DedupResult : std::uint8_t {
    Miss,     ///< new request — execute it
    Hit,      ///< already applied; *out points at the cached response
    Evicted,  ///< applied, but the response fell off the window
  };
  [[nodiscard]] DedupResult dedup_lookup(
      const std::string& client, std::uint64_t request_id,
      const std::vector<std::uint8_t>** out) const noexcept;

  /// Journal the (client, request_id, flags) mark ahead of the
  /// operation record. No-op for in-memory tenants (their window is
  /// process-local). \throws PersistError — the op must NOT run then.
  void append_mark(const std::string& client, std::uint64_t request_id,
                   std::uint8_t flags);

  /// Cache an applied operation's encoded response payload and advance
  /// highest_applied. Idempotent: ids at or below highest_applied are
  /// ignored (the recovery replay may revisit sidecar-covered records).
  void record_applied(const std::string& client, std::uint64_t request_id,
                      std::vector<std::uint8_t> response);

  // ------------------------------------------- standby replica
  // A standby tenant mirrors a primary record-for-record: every shipped
  // journal payload is appended verbatim to the local WAL (the two
  // files stay byte-identical) and then applied through the same
  // replay path recovery uses, with a persistent dedup-rebuild observer
  // so ClientMark records carry the exactly-once windows across
  // failover. Replication piggybacks on replay determinism: the
  // follower's resident set, TaskIds, headers and stats match the
  // primary bit for bit, which the digest exchange verifies.

  [[nodiscard]] bool standby() const noexcept { return standby_; }
  /// Next record LSN apply_replicated() expects (== primary journal
  /// LSNs already applied).
  [[nodiscard]] std::uint64_t replica_lsn() const noexcept {
    return repl_lsn_;
  }

  /// Append one shipped record to the local WAL (durability first),
  /// then replay it into the controller. Counts non-mark records
  /// toward the checkpoint cycle so a long-lived follower's footprint
  /// stays bounded. \throws PersistError on WAL append failure (the
  /// caller quarantines), std::out_of_range on an undecodable record.
  void apply_replicated(std::span<const std::uint8_t> payload);

  /// Discard all state and re-seed from a primary checkpoint: write
  /// the snapshot container + dedup sidecar bytes as this tenant's own
  /// artifacts, load them, and restart the WAL empty at base `lsn`.
  /// Empty snapshot bytes reset to a fresh controller (a primary that
  /// has never checkpointed). Clears divergence *and* quarantine — the
  /// seed replaces whatever was broken. \throws PersistError
  void seed_from(std::span<const std::uint8_t> snapshot_bytes,
                 std::span<const std::uint8_t> dedup_bytes,
                 std::uint64_t lsn);

  /// Flip follower -> serving primary: attach the controller to the
  /// WAL it has been mirroring and mint a fresh session epoch (clients
  /// see the epoch change and resync their dedup expectations). The
  /// server refuses to promote diverged tenants; this trusts it.
  void promote();

  /// A digest check failed: refuse apply_replicated()/promote() until
  /// seed_from() replaces the state. Divergence is a hard fault — a
  /// follower that cannot prove bit-identity must never serve.
  void mark_diverged(std::string reason);
  [[nodiscard]] bool diverged() const noexcept { return diverged_; }
  [[nodiscard]] const std::string& diverged_reason() const noexcept {
    return diverged_reason_;
  }

 private:
  struct ClientSession {
    std::uint64_t highest_applied = 0;
    /// (request_id, encoded response payload), oldest first.
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> window;
  };

  /// Recover + dedup rebuild + journal open — the shared body of the
  /// constructor and try_recover(). \throws PersistError
  void open_artifacts();
  /// Persist the dedup sessions to the sidecar (<dir>/<name>.dedup) at
  /// journal LSN `lsn`. Written *before* the snapshot in checkpoint():
  /// if the snapshot then fails, marks in [sidecar_lsn, snapshot_lsn)
  /// are still replayed (idempotently); the reverse order could lose
  /// them — neither in the sidecar nor replayed.
  void save_dedup(std::uint64_t lsn) const;
  void load_dedup();
  /// Parse a dedup sidecar container into sessions_ (the shared body
  /// of load_dedup() and seed_from()).
  void load_dedup_bytes(std::vector<std::uint8_t> bytes);

  std::string name_;
  AdmissionController ctl_;
  std::optional<persist::Journal> journal_;
  std::string snapshot_path_;
  std::string journal_path_;
  std::string dedup_path_;
  persist::FsyncPolicy fsync_ = persist::FsyncPolicy::None;
  std::uint64_t fsync_interval_ = 64;
  obs::Obs* obs_ = nullptr;
  std::size_t checkpoint_every_ = 0;
  std::size_t ops_since_checkpoint_ = 0;
  std::size_t dedup_window_ = 128;
  std::uint64_t epoch_ = 0;
  std::map<std::string, ClientSession> sessions_;
  bool quarantined_ = false;
  bool quarantine_retryable_ = true;
  std::string quarantine_reason_;
  bool standby_ = false;
  std::uint64_t repl_lsn_ = 0;
  bool diverged_ = false;
  std::string diverged_reason_;
  /// Persistent dedup-window rebuilder fed by apply_replicated() (the
  /// same observer class recovery uses, kept armed across records so a
  /// ClientMark and its operation may arrive in different batches).
  std::unique_ptr<ReplayObserver> standby_rebuild_;
};

/// Build the wire response for an applied mutating operation. Shared
/// by the serving path (net/server.cpp) and the recovery replay's
/// dedup-window rebuild, so a cached retry answer is bit-identical to
/// the response originally sent. `flags` are the *request* flags (the
/// ClientMark record carries them for replay).
[[nodiscard]] NetResponse make_admit_response(std::uint64_t request_id,
                                              std::uint8_t flags,
                                              const AdmissionDecision& d);
[[nodiscard]] NetResponse make_admit_group_response(std::uint64_t request_id,
                                                    std::uint8_t flags,
                                                    const GroupDecision& d);
[[nodiscard]] NetResponse make_remove_response(NetOp op,
                                               std::uint64_t request_id,
                                               std::uint64_t removed);

/// True iff `name` is a safe tenant name: 1..64 chars drawn from
/// [A-Za-z0-9_-] (tenant names become file names; nothing else may).
/// Client ids (HELLO `client`) use the same rule — they are journaled
/// and persisted in the dedup sidecar.
[[nodiscard]] bool valid_tenant_name(const std::string& name) noexcept;

/// Name -> Tenant. Single-threaded, like the server's event loop.
class TenantTable {
 public:
  explicit TenantTable(TenantOptions opts, obs::Obs* obs = nullptr);

  /// Look up `name`, creating (and, when durable artifacts exist,
  /// recovering) it on first use. The fsync/certified/platform_m
  /// parameters only apply at creation (platform_m > 1 creates the
  /// tenant's controller in global admission mode; a recovered
  /// snapshot's platform wins over the parameter). \throws
  /// std::invalid_argument for invalid names or an invalid platform,
  /// PersistError when recovery finds corrupt artifacts.
  [[nodiscard]] Tenant& get_or_create(const std::string& name,
                                      persist::FsyncPolicy fsync,
                                      std::uint64_t fsync_interval,
                                      bool certified,
                                      std::uint32_t platform_m = 1);

  /// Look up only; nullptr when absent.
  [[nodiscard]] Tenant* find(const std::string& name) noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return tenants_.size(); }

  /// fdatasync every tenant journal (SIGTERM drain).
  void flush_all();

  /// Flip the standby flag for tenants created *after* this call
  /// (promotion flips existing tenants individually via promote()).
  void set_standby(bool standby) noexcept { opts_.standby = standby; }

  /// Visit every tenant in name order.
  template <typename F>
  void for_each(F&& f) {
    for (auto& [name, tenant] : tenants_) f(*tenant);
  }

 private:
  TenantOptions opts_;
  obs::Obs* obs_ = nullptr;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace edfkit::net
