/// \file tenant.hpp
/// Per-tenant admission state for the network server: each tenant name
/// maps to its own AdmissionController (its own resident set, TaskId
/// space, stats and ladder options) plus, when a data directory is
/// configured, its own write-ahead journal and snapshot file.
///
/// Tenants use *controller-level* durability, not engine-level, on
/// purpose: controller journal replay is bit-identical — the TaskIds a
/// recovered controller assigns are exactly the ids it handed out
/// before the crash, so the ids remote clients hold stay valid across
/// a server restart. (Engine recovery may remap ids; that is fine for
/// in-process callers holding GlobalTaskIds, fatal for clients across
/// a reconnect.)
///
/// Durability class is negotiated at HELLO (net/protocol.hpp): the
/// first HELLO for a name creates the tenant with the requested
/// persist::FsyncPolicy; later HELLOs attach to the existing tenant
/// (its class does not change mid-life — mixed-durability writers to
/// one journal would make the weakest class the real one).
///
/// Checkpointing ties into journal compaction (persist/journal.hpp
/// rotate()): every `checkpoint_every` journaled operations the tenant
/// snapshots at the current LSN and rotates the journal there, so a
/// long-lived tenant's on-disk footprint is one snapshot plus a
/// bounded suffix instead of an unbounded operation history.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "admission/controller.hpp"
#include "persist/journal.hpp"

namespace edfkit::obs {
class Obs;
}

namespace edfkit::net {

struct TenantOptions {
  /// Base ladder options every tenant's controller starts from (HELLO
  /// may additionally switch return_certificate on).
  AdmissionOptions admission;
  /// Directory for per-tenant durability artifacts
  /// (<dir>/<tenant>.snap, <dir>/<tenant>.wal). Empty = in-memory
  /// tenants, no journal, nothing to recover.
  std::string data_dir;
  /// Journaled operations between checkpoint+rotate cycles; 0 = never
  /// checkpoint automatically (flush()/checkpoint() still work).
  std::size_t checkpoint_every = 0;
};

/// One tenant: name, controller, optional journal. Created via
/// TenantTable; not movable once created (the controller holds a raw
/// journal pointer).
class Tenant {
 public:
  Tenant(std::string name, const TenantOptions& opts,
         persist::FsyncPolicy fsync, std::uint64_t fsync_interval,
         bool certified, obs::Obs* obs);
  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;
  ~Tenant();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] AdmissionController& controller() noexcept { return ctl_; }
  [[nodiscard]] const AdmissionController& controller() const noexcept {
    return ctl_;
  }
  [[nodiscard]] bool journaled() const noexcept {
    return journal_.has_value();
  }
  [[nodiscard]] std::uint64_t journal_base_lsn() const noexcept {
    return journal_ ? journal_->base_lsn() : 0;
  }
  [[nodiscard]] std::uint64_t journal_lsn() const noexcept {
    return journal_ ? journal_->lsn() : 0;
  }

  /// Call after every journaled mutating operation: counts toward the
  /// checkpoint_every cycle and checkpoints when it is due.
  void on_operation();

  /// Snapshot now at the journal's LSN and rotate the journal there
  /// (no-op for in-memory tenants). \throws PersistError on IO failure
  /// — the caller decides whether that degrades or kills serving.
  void checkpoint();

  /// fdatasync the journal now (the SIGTERM drain path). No-op for
  /// in-memory tenants.
  void flush();

 private:
  std::string name_;
  AdmissionController ctl_;
  std::optional<persist::Journal> journal_;
  std::string snapshot_path_;
  std::string journal_path_;
  std::size_t checkpoint_every_ = 0;
  std::size_t ops_since_checkpoint_ = 0;
};

/// True iff `name` is a safe tenant name: 1..64 chars drawn from
/// [A-Za-z0-9_-] (tenant names become file names; nothing else may).
[[nodiscard]] bool valid_tenant_name(const std::string& name) noexcept;

/// Name -> Tenant. Single-threaded, like the server's event loop.
class TenantTable {
 public:
  explicit TenantTable(TenantOptions opts, obs::Obs* obs = nullptr);

  /// Look up `name`, creating (and, when durable artifacts exist,
  /// recovering) it on first use. The fsync/certified parameters only
  /// apply at creation. \throws std::invalid_argument for invalid
  /// names, PersistError when recovery finds corrupt artifacts.
  [[nodiscard]] Tenant& get_or_create(const std::string& name,
                                      persist::FsyncPolicy fsync,
                                      std::uint64_t fsync_interval,
                                      bool certified);

  /// Look up only; nullptr when absent.
  [[nodiscard]] Tenant* find(const std::string& name) noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return tenants_.size(); }

  /// fdatasync every tenant journal (SIGTERM drain).
  void flush_all();

  /// Visit every tenant in name order.
  template <typename F>
  void for_each(F&& f) {
    for (auto& [name, tenant] : tenants_) f(*tenant);
  }

 private:
  TenantOptions opts_;
  obs::Obs* obs_ = nullptr;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace edfkit::net
