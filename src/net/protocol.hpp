/// \file protocol.hpp
/// Binary wire protocol for admission-as-a-service: length-prefixed,
/// CRC-framed request/response messages over a byte stream (TCP).
///
/// Frame layout (little-endian, mirroring the journal's record frame):
///
///   [len u32] [crc32 u32 of payload] [payload len bytes]
///
/// The framing layer distinguishes exactly three failure shapes:
///   * short read      — the frame is not fully buffered yet; keep the
///     bytes and wait (FrameStatus::NeedMore). Torn frames reassemble
///     across any number of reads.
///   * oversized frame — len exceeds kMaxFrameBytes; the stream cannot
///     be resynchronized (FrameStatus::TooLarge; close the connection).
///   * CRC mismatch    — the payload is fully present but the bits are
///     wrong (FrameStatus::BadCrc; close the connection — once a frame
///     lies, every subsequent length prefix is suspect).
///
/// Payload layout: a fixed header
///
///   [version u8] [op u8] [status u8] [flags u8] [request_id u64]
///
/// followed by an op-specific body (codecs below). `request_id` is an
/// opaque client token echoed verbatim in the response, so a client may
/// pipeline requests and match replies. `status` is zero in requests.
///
/// Ops: HELLO names the tenant and negotiates its durability class
/// (persist/journal.hpp FsyncPolicy), whether decisions build
/// certificates, and (v2) the tenant's execution platform — platform_m
/// processors, selecting global admission mode when > 1; every other
/// op requires a prior HELLO on the same connection. ADMIT/ADMIT_GROUP/REMOVE/REMOVE_GROUP map 1:1 onto the
/// AdmissionController entry points (admission/controller.hpp), STATS
/// returns the tenant's wait-free StoreHeader plus its running
/// counters, PING is a framing no-op.
///
/// Responses carry typed status codes: Ok vs Rejected separates "the
/// admission test said no" (a normal, certified outcome) from protocol
/// errors; Shed means the server refused to run the test at all
/// (backpressure — see net/shed.hpp) and names a retry delay. With
/// kFlagWantCertificate, ADMIT/ADMIT_GROUP responses attach the
/// decision's machine-checkable certificate (query/certificate.hpp)
/// when the tenant was HELLOed with certificates on — the client can
/// re-verify the verdict against its own view of the resident set
/// without trusting the server.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "admission/incremental_dbf.hpp"
#include "model/task.hpp"
#include "query/certificate.hpp"
#include "util/binio.hpp"

namespace edfkit::net {

/// v2 grew HELLO by a trailing `platform_m` (global admission mode:
/// the tenant's controller admits against m processors instead of
/// partitioned uniprocessor shards) and the certificate codec by the
/// multiprocessor fields. All v2 fields are trailing, so v1 peers
/// interoperate: the server accepts kMinProtocolVersion..kProtocolVersion
/// and a v1 HELLO defaults to platform_m = 1.
inline constexpr std::uint8_t kProtocolVersion = 2;
inline constexpr std::uint8_t kMinProtocolVersion = 1;
/// Frames larger than this are a protocol violation (a length prefix
/// this big is noise or abuse, not a real request).
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4;  // len + crc
inline constexpr std::size_t kMessageHeaderBytes = 4 + 8;

enum class NetOp : std::uint8_t {
  Hello = 1,
  Admit = 2,
  AdmitGroup = 3,
  Remove = 4,
  RemoveGroup = 5,
  Stats = 6,
  Ping = 7,
  /// Replication (src/repl/): a primary's shipper speaks these to a
  /// standby server over the same framing. REPL_HELLO opens (or
  /// recovers) the follower tenant and reports its applied window;
  /// REPL_APPEND ships a batch of raw journal record payloads starting
  /// at a named LSN, optionally carrying a store digest to verify at a
  /// matching LSN; REPL_ACK is the response op for all three
  /// follower-side ops (applied window + condition flags);
  /// REPL_SNAPSHOT (re-)seeds the follower from a snapshot container +
  /// dedup sidecar; PROMOTE turns the standby into a serving primary.
  ReplHello = 8,
  ReplAppend = 9,
  ReplAck = 10,
  ReplSnapshot = 11,
  Promote = 12,
};
inline constexpr std::size_t kNetOpCount = 13;  ///< incl. slot 0 = unknown

[[nodiscard]] const char* to_string(NetOp op) noexcept;

enum class NetStatus : std::uint8_t {
  Ok = 0,
  Rejected = 1,       ///< admission test ran and said no (certified)
  Shed = 2,           ///< backpressure: not tested; retry_after_ms set
  BadRequest = 3,     ///< undecodable body or invalid task parameters
  BadVersion = 4,     ///< unsupported protocol version
  UnknownOp = 5,
  NeedHello = 6,      ///< tenant-scoped op before HELLO
  InternalError = 7,
  /// The tenant is quarantined (its durability artifacts failed and a
  /// background re-probe is trying to recover them): the op was NOT
  /// applied; retry after retry_after_ms. Distinct from Shed (healthy
  /// but overloaded — backpressure) and from the certified Rejected
  /// (the admission test ran and said no).
  Unavailable = 8,
};

[[nodiscard]] const char* to_string(NetStatus s) noexcept;

/// Request flags.
inline constexpr std::uint8_t kFlagWantCertificate = 1u << 0;
/// HELLO only: opt this connection into speculative batch-fusing of
/// consecutive ADMITs (decision-equivalent, not journal-bit-identical —
/// see net/server.hpp).
inline constexpr std::uint8_t kFlagBatchFuse = 1u << 1;
/// HELLO only: build certificates for every decision of this tenant
/// (AdmissionOptions::return_certificate on the tenant's controller).
inline constexpr std::uint8_t kFlagCertifiedTenant = 1u << 2;
/// Response flags.
inline constexpr std::uint8_t kFlagHasCertificate = 1u << 0;

/// REPL_ACK condition flags (NetResponse::repl_flags).
/// The follower cannot apply from the shipped LSN (gap, unknown
/// tenant, or fresh follower behind the primary's rotated journal) —
/// the shipper must REPL_SNAPSHOT before appending further.
inline constexpr std::uint8_t kReplNeedSnapshot = 1u << 0;
/// A digest check failed: the follower's store is NOT bit-identical.
/// It refuses further appends (and promotion) for this tenant until
/// re-seeded — divergence is a hard fault, never served.
inline constexpr std::uint8_t kReplDiverged = 1u << 1;

struct MessageHeader {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t op = 0;
  std::uint8_t status = 0;  ///< NetStatus; zero in requests
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
};

/// One request, union-style: only the op's fields are meaningful
/// (the Record idiom of admission/snapshot.cpp).
struct NetRequest {
  MessageHeader hdr;
  // Hello
  std::string tenant;
  std::uint8_t durability = 0;  ///< persist::FsyncPolicy as u8
  std::uint64_t fsync_interval = 64;
  /// Optional stable client identity (HELLO). Naming one opts the
  /// connection into exactly-once retry: the server keeps a per-tenant
  /// sliding window of applied (client, request_id) results, so a
  /// resent ADMIT/REMOVE after a lost reply is answered from the
  /// applied result instead of being applied twice. Mutually exclusive
  /// with kFlagBatchFuse. Empty (the default) = anonymous, no dedup.
  std::string client;
  /// HELLO (v2, trailing): processor count the tenant admits against.
  /// 1 (the v1 default) = the classic uniprocessor ladder; m > 1 puts
  /// the tenant's controller in global admission mode (global-EDF test
  /// cascade over m identical processors). Like durability, the value
  /// is fixed by the tenant's *first* HELLO; later HELLOs attach.
  std::uint32_t platform_m = 1;
  // Admit
  Task task;
  // AdmitGroup
  std::vector<Task> group;
  // Remove
  TaskId id = 0;
  // RemoveGroup
  std::vector<TaskId> ids;
  // ReplAppend: LSN of repl_records[0]; ReplSnapshot: the journal LSN
  // the snapshot reflects (the follower's journal restarts there).
  std::uint64_t repl_lsn = 0;
  /// ReplAppend: raw journal record payloads (exactly the bytes the
  /// primary journaled — the follower appends them verbatim, keeping
  /// its WAL byte-identical), consecutive from repl_lsn.
  std::vector<std::vector<std::uint8_t>> repl_records;
  /// ReplAppend: primary store digest taken at digest_lsn (0 = none
  /// attached). The follower recomputes when its applied LSN reaches
  /// digest_lsn — possibly mid-batch — and flags kReplDiverged on
  /// mismatch. A 0-record append with a digest is a pure check (idle
  /// primaries still verify within one interval).
  std::uint64_t digest_lsn = 0;
  std::uint32_t digest = 0;
  /// ReplSnapshot: snapshot container bytes (empty = reset the
  /// follower tenant to empty at repl_lsn 0) + dedup sidecar bytes
  /// (empty = no sessions), as written by the primary's checkpoint.
  std::vector<std::uint8_t> repl_snapshot;
  std::vector<std::uint8_t> repl_dedup;
};

/// One response, union-style.
struct NetResponse {
  MessageHeader hdr;
  // Admit / AdmitGroup
  TaskId id = 0;
  std::vector<TaskId> ids;
  std::uint8_t rung = 0;     ///< AdmissionRung of the settled decision
  std::uint8_t verdict = 0;  ///< Verdict of the analysis record
  Certificate certificate;   ///< present iff kFlagHasCertificate
  // Remove / RemoveGroup
  std::uint64_t removed = 0;
  // Stats
  StoreHeader stats;
  std::string stats_json;
  // Hello: the tenant journal's durable window (0/0 when not journaled)
  std::uint64_t base_lsn = 0;
  std::uint64_t lsn = 0;
  /// Hello: the tenant's session epoch — a random nonce minted when the
  /// tenant is (re)opened. A retrying client compares it across
  /// reconnects: a changed epoch means the server restarted and
  /// recovered, so the dedup window was rebuilt from the journal.
  std::uint64_t epoch = 0;
  /// Hello: highest request_id already applied for this client (0 when
  /// anonymous or never seen). The client resumes ids above this.
  std::uint64_t highest_applied = 0;
  /// Hello + Stats (v2, trailing): the processor count the tenant's
  /// controller actually admits against. A HELLO that *attached* to an
  /// existing tenant echoes the tenant's platform, which may differ
  /// from the request's platform_m — clients should check.
  std::uint32_t platform_m = 1;
  // Shed / Unavailable
  std::uint32_t retry_after_ms = 0;
  /// ReplAck (reusing base_lsn/lsn for the follower's on-disk window
  /// and applied LSN): condition flags, kRepl* above.
  std::uint8_t repl_flags = 0;
  /// Promote: tenants switched to serving.
  std::uint64_t promoted = 0;
};

// ----------------------------------------------------------- framing

/// Append one complete frame (header + payload) to `out`.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

enum class FrameStatus : std::uint8_t {
  Ok,        ///< one complete, CRC-verified frame parsed
  NeedMore,  ///< buffer ends mid-frame; read more and retry
  TooLarge,  ///< length prefix exceeds kMaxFrameBytes — unrecoverable
  BadCrc,    ///< payload present but corrupt — unrecoverable
};

struct FrameView {
  /// The verified payload, aliasing the input buffer.
  std::span<const std::uint8_t> payload;
  /// Bytes of the input buffer this frame consumed (header included).
  std::size_t consumed = 0;
};

/// Try to parse one frame from the front of `buf`. On Ok, `out` is
/// filled; on NeedMore nothing is consumed; TooLarge/BadCrc mean the
/// stream is unsynchronizable and the connection must be dropped.
[[nodiscard]] FrameStatus try_parse_frame(
    std::span<const std::uint8_t> buf, FrameView& out);

// ------------------------------------------------------------ codecs

/// Encode a request/response payload (header + op body). Frame it with
/// append_frame for the wire.
[[nodiscard]] std::vector<std::uint8_t> encode_request(const NetRequest& r);
[[nodiscard]] std::vector<std::uint8_t> encode_response(const NetResponse& r);

/// Decode a verified frame payload. \throws std::out_of_range when the
/// body is shorter than its op demands (the caller answers BadRequest).
/// An unknown op decodes to just the header — the caller inspects
/// hdr.op and answers UnknownOp; the body is not touched.
[[nodiscard]] NetRequest decode_request(std::span<const std::uint8_t> payload);
[[nodiscard]] NetResponse decode_response(
    std::span<const std::uint8_t> payload);

}  // namespace edfkit::net
