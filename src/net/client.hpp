/// \file client.hpp
/// Minimal blocking client for the admission wire protocol: connect,
/// frame-encode requests, reassemble framed responses. One connection,
/// synchronous by default, with explicit send()/receive() split for
/// pipelining (the server matches requests to responses by request_id,
/// answering a connection's requests in order).
///
/// This is the client the load driver (examples/admission_client.cpp)
/// and the end-to-end tests build on — deliberately simple: blocking
/// socket, no internal threads, request ids assigned monotonically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "persist/journal.hpp"

namespace edfkit::net {

class Client {
 public:
  /// Connect to host:port. \throws std::system_error on failure.
  [[nodiscard]] static Client connect(const std::string& host,
                                      std::uint16_t port);

  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Send one request (assigns hdr.request_id; returns it).
  /// \throws std::system_error when the connection is gone.
  std::uint64_t send(NetRequest req);

  /// Block until the next complete response frame.
  /// \throws std::system_error on EOF/error,
  /// std::runtime_error on a framing violation from the server.
  [[nodiscard]] NetResponse receive();

  /// send() + receive() — the synchronous round trip.
  [[nodiscard]] NetResponse call(NetRequest req);

  /// Convenience HELLO. `flags` are the kFlag* HELLO bits.
  [[nodiscard]] NetResponse hello(const std::string& tenant,
                                  persist::FsyncPolicy fsync =
                                      persist::FsyncPolicy::None,
                                  std::uint64_t fsync_interval = 64,
                                  std::uint8_t flags = 0);

  void close() noexcept;

  /// The raw socket (tests poke torn/corrupt bytes through it).
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> rbuf_;
};

}  // namespace edfkit::net
