/// \file client.hpp
/// Minimal blocking client for the admission wire protocol: connect,
/// frame-encode requests, reassemble framed responses. One connection,
/// synchronous by default, with explicit send()/receive() split for
/// pipelining (the server matches requests to responses by request_id,
/// answering a connection's requests in order).
///
/// This is the client the load driver (examples/admission_client.cpp)
/// and the end-to-end tests build on — deliberately simple: blocking
/// socket, no internal threads, request ids assigned monotonically.
///
/// RetryingClient wraps it with deadlines + exactly-once retry: every
/// request keeps its id across reconnects, the server's per-client
/// dedup window (HELLO `client`, net/tenant.hpp) answers resends from
/// the applied result, and transient failures (timeouts, resets,
/// Unavailable, Shed) back off with decorrelated jitter.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "persist/journal.hpp"

namespace edfkit::net {

/// A poll(2) deadline expired before the socket was ready. Distinct
/// from std::system_error so callers can retry timeouts specifically.
class NetTimeout : public std::runtime_error {
 public:
  explicit NetTimeout(const std::string& what)
      : std::runtime_error(what) {}
};

class Client {
 public:
  /// A disconnected client (connected() == false); assign a
  /// connect()ed one into it to go live.
  Client() noexcept = default;

  /// Connect to host:port. `connect_timeout_ms` bounds the TCP
  /// handshake (0 = OS default, blocking). \throws std::system_error
  /// on failure, NetTimeout when the deadline expires.
  [[nodiscard]] static Client connect(const std::string& host,
                                      std::uint16_t port,
                                      std::uint64_t connect_timeout_ms = 0);

  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Deadlines for send()/receive() (0 = block forever, the default).
  /// Enforced with poll(2) ahead of each write/read; expiry throws
  /// NetTimeout and leaves the connection open (callers that retry
  /// should close() — a late response would desynchronize the stream).
  void set_timeouts(std::uint64_t send_timeout_ms,
                    std::uint64_t receive_timeout_ms) noexcept {
    send_timeout_ms_ = send_timeout_ms;
    receive_timeout_ms_ = receive_timeout_ms;
  }

  /// Send one request; returns its request_id. A zero hdr.request_id
  /// is assigned from the monotone counter; a pre-set nonzero id is
  /// kept verbatim (the retry path resends under the original id) and
  /// the counter advances past it. \throws std::system_error when the
  /// connection is gone, NetTimeout on the send deadline.
  std::uint64_t send(NetRequest req);

  /// Block until the next complete response frame.
  /// \throws std::system_error on EOF/error, NetTimeout on the receive
  /// deadline, std::runtime_error on a framing violation.
  [[nodiscard]] NetResponse receive();

  /// send() + receive() — the synchronous round trip.
  [[nodiscard]] NetResponse call(NetRequest req);

  /// Convenience HELLO. `flags` are the kFlag* HELLO bits; a nonempty
  /// `client` opts into server-side exactly-once dedup; `platform_m`
  /// > 1 asks for global admission mode (m processors) at tenant
  /// creation — the response's platform_m is the tenant's real
  /// platform, which an attach does not change.
  [[nodiscard]] NetResponse hello(const std::string& tenant,
                                  persist::FsyncPolicy fsync =
                                      persist::FsyncPolicy::None,
                                  std::uint64_t fsync_interval = 64,
                                  std::uint8_t flags = 0,
                                  const std::string& client = "",
                                  std::uint32_t platform_m = 1);

  void close() noexcept;

  /// The raw socket (tests poke torn/corrupt bytes through it).
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t send_timeout_ms_ = 0;
  std::uint64_t receive_timeout_ms_ = 0;
  std::vector<std::uint8_t> rbuf_;
};

/// Knobs for RetryingClient. Defaults suit tests and LAN services;
/// production callers tune deadlines to their latency budget.
struct RetryPolicy {
  std::uint64_t connect_timeout_ms = 1000;
  std::uint64_t send_timeout_ms = 1000;
  std::uint64_t receive_timeout_ms = 1000;
  /// Attempts per request (first try included). Exhaustion rethrows
  /// the last failure.
  std::size_t max_attempts = 8;
  /// Decorrelated-jitter backoff (AWS architecture blog shape):
  /// sleep = min(cap, uniform(base, prev * 3)) — except that a server
  /// retry_after_ms hint is a hard floor, even above the cap (the
  /// server knows when it will be ready; sleeping less only burns
  /// attempts).
  std::uint64_t backoff_base_ms = 10;
  std::uint64_t backoff_cap_ms = 2000;
  /// Jitter RNG seed; 0 = seed from std::random_device.
  std::uint64_t seed = 0;
  /// Failover: consecutive Unavailable answers from one endpoint
  /// before rotating to the next (a standby answers every mutating op
  /// Unavailable until promoted, so a client that lands on one walks
  /// on after this many; a primary's transient quarantine rides out
  /// shorter streaks in place). Connect failures rotate immediately.
  std::size_t failover_after_unavailable = 3;
};

/// One server address. RetryingClient accepts a list: the first is the
/// primary, the rest are standbys in preference order.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Exactly-once calls over an unreliable server: each request gets a
/// stable id, and any transient failure — connect/send/receive
/// timeout, connection reset, server restart, Unavailable (tenant
/// quarantined), Shed (backpressure) — reconnects (re-HELLOing under
/// the same client id) and resends the SAME id after a jittered
/// backoff. The server's dedup window answers already-applied resends
/// from the cached result, so an op is never applied twice even when
/// only the response was lost. Non-transient statuses (BadRequest,
/// Rejected, ...) are returned to the caller, not retried.
///
/// Failover: constructed with an endpoint list, the client walks it —
/// a connect failure rotates immediately, a persistent-Unavailable
/// streak (RetryPolicy::failover_after_unavailable) rotates too — and
/// resends in-flight requests under their original ids. Because the
/// standby's dedup windows replicate from the primary (ClientMark
/// records + snapshot sidecars, src/repl/), an op the primary applied
/// before dying is answered from the standby's cache, and one it never
/// applied executes exactly once on the promoted standby.
class RetryingClient {
 public:
  RetryingClient(std::string host, std::uint16_t port, std::string tenant,
                 std::string client_id, RetryPolicy policy = {},
                 persist::FsyncPolicy fsync = persist::FsyncPolicy::None,
                 std::uint64_t fsync_interval = 64,
                 std::uint8_t hello_flags = 0,
                 std::uint32_t platform_m = 1);
  /// Failover-aware: `endpoints` in preference order (front first).
  /// \throws std::invalid_argument when the list is empty.
  RetryingClient(std::vector<Endpoint> endpoints, std::string tenant,
                 std::string client_id, RetryPolicy policy = {},
                 persist::FsyncPolicy fsync = persist::FsyncPolicy::None,
                 std::uint64_t fsync_interval = 64,
                 std::uint8_t hello_flags = 0,
                 std::uint32_t platform_m = 1);

  /// One exactly-once round trip. Fills hdr.request_id itself when the
  /// caller leaves it zero; a pre-set nonzero id is kept verbatim — the
  /// failover re-drive path resends lost acked operations under their
  /// original ids this way. \throws the last transport error
  /// (std::system_error / NetTimeout) after max_attempts,
  /// std::runtime_error on framing violations.
  [[nodiscard]] NetResponse call(NetRequest req);

  /// Convenience wrappers over call().
  [[nodiscard]] NetResponse admit(const Task& t, std::uint8_t flags = 0);
  [[nodiscard]] NetResponse remove(TaskId id);

  /// Drop the connection (the next call reconnects). Chaos tests use
  /// this to exercise the resend path deliberately.
  void disconnect() noexcept { conn_.close(); }

  /// Session epoch from the most recent HELLO (0 before the first).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  /// Times the HELLO epoch changed — i.e. observed server restarts.
  [[nodiscard]] std::uint64_t epoch_changes() const noexcept {
    return epoch_changes_;
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }
  /// Resends after a transport failure or Unavailable/Shed answer.
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  /// Endpoint rotations (0 with a single endpoint).
  [[nodiscard]] std::uint64_t failovers() const noexcept {
    return failovers_;
  }
  /// The endpoint the connection currently targets.
  [[nodiscard]] const Endpoint& endpoint() const noexcept {
    return endpoints_[endpoint_idx_];
  }
  /// highest_applied from the most recent HELLO: the server-side
  /// watermark of this client's applied ids. After a failover the
  /// caller compares it against its own last-acked id and re-drives
  /// the gap (ids above the watermark were lost with the primary).
  [[nodiscard]] std::uint64_t highest_applied() const noexcept {
    return highest_applied_;
  }
  /// The request_id the most recent call() used (0 before the first).
  /// Failover drivers record it per request so the re-drive hook can
  /// resend lost acked operations under their original ids.
  [[nodiscard]] std::uint64_t last_request_id() const noexcept {
    return last_id_;
  }
  /// Invoked after every successful (re)connect + HELLO, *before* the
  /// in-flight request is resent — the failover re-drive hook. The
  /// callback typically compares highest_applied() against its own
  /// last-acked id and re-calls the gap under original ids (calling
  /// back into call() is supported; a reconnect that happens inside
  /// the callback does not re-fire it, so re-drive cannot recurse).
  void set_on_reconnect(std::function<void()> cb) {
    on_reconnect_ = std::move(cb);
  }

 private:
  void ensure_connected();
  void backoff_sleep(std::uint64_t floor_ms);
  void rotate_endpoint();

  std::vector<Endpoint> endpoints_;
  std::size_t endpoint_idx_ = 0;
  std::string tenant_;
  std::string client_id_;
  RetryPolicy policy_;
  persist::FsyncPolicy fsync_;
  std::uint64_t fsync_interval_;
  std::uint8_t hello_flags_;
  std::uint32_t platform_m_ = 1;
  Client conn_;
  std::uint64_t next_id_ = 1;
  std::uint64_t epoch_ = 0;
  std::uint64_t epoch_changes_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t highest_applied_ = 0;
  std::uint64_t last_id_ = 0;
  std::size_t unavailable_streak_ = 0;
  std::function<void()> on_reconnect_;
  bool in_reconnect_cb_ = false;
  std::uint64_t prev_sleep_ms_ = 0;
  std::mt19937_64 rng_;
};

}  // namespace edfkit::net
