/// \file client.hpp
/// Minimal blocking client for the admission wire protocol: connect,
/// frame-encode requests, reassemble framed responses. One connection,
/// synchronous by default, with explicit send()/receive() split for
/// pipelining (the server matches requests to responses by request_id,
/// answering a connection's requests in order).
///
/// This is the client the load driver (examples/admission_client.cpp)
/// and the end-to-end tests build on — deliberately simple: blocking
/// socket, no internal threads, request ids assigned monotonically.
///
/// RetryingClient wraps it with deadlines + exactly-once retry: every
/// request keeps its id across reconnects, the server's per-client
/// dedup window (HELLO `client`, net/tenant.hpp) answers resends from
/// the applied result, and transient failures (timeouts, resets,
/// Unavailable, Shed) back off with decorrelated jitter.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "persist/journal.hpp"

namespace edfkit::net {

/// A poll(2) deadline expired before the socket was ready. Distinct
/// from std::system_error so callers can retry timeouts specifically.
class NetTimeout : public std::runtime_error {
 public:
  explicit NetTimeout(const std::string& what)
      : std::runtime_error(what) {}
};

class Client {
 public:
  /// A disconnected client (connected() == false); assign a
  /// connect()ed one into it to go live.
  Client() noexcept = default;

  /// Connect to host:port. `connect_timeout_ms` bounds the TCP
  /// handshake (0 = OS default, blocking). \throws std::system_error
  /// on failure, NetTimeout when the deadline expires.
  [[nodiscard]] static Client connect(const std::string& host,
                                      std::uint16_t port,
                                      std::uint64_t connect_timeout_ms = 0);

  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Deadlines for send()/receive() (0 = block forever, the default).
  /// Enforced with poll(2) ahead of each write/read; expiry throws
  /// NetTimeout and leaves the connection open (callers that retry
  /// should close() — a late response would desynchronize the stream).
  void set_timeouts(std::uint64_t send_timeout_ms,
                    std::uint64_t receive_timeout_ms) noexcept {
    send_timeout_ms_ = send_timeout_ms;
    receive_timeout_ms_ = receive_timeout_ms;
  }

  /// Send one request; returns its request_id. A zero hdr.request_id
  /// is assigned from the monotone counter; a pre-set nonzero id is
  /// kept verbatim (the retry path resends under the original id) and
  /// the counter advances past it. \throws std::system_error when the
  /// connection is gone, NetTimeout on the send deadline.
  std::uint64_t send(NetRequest req);

  /// Block until the next complete response frame.
  /// \throws std::system_error on EOF/error, NetTimeout on the receive
  /// deadline, std::runtime_error on a framing violation.
  [[nodiscard]] NetResponse receive();

  /// send() + receive() — the synchronous round trip.
  [[nodiscard]] NetResponse call(NetRequest req);

  /// Convenience HELLO. `flags` are the kFlag* HELLO bits; a nonempty
  /// `client` opts into server-side exactly-once dedup.
  [[nodiscard]] NetResponse hello(const std::string& tenant,
                                  persist::FsyncPolicy fsync =
                                      persist::FsyncPolicy::None,
                                  std::uint64_t fsync_interval = 64,
                                  std::uint8_t flags = 0,
                                  const std::string& client = "");

  void close() noexcept;

  /// The raw socket (tests poke torn/corrupt bytes through it).
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t send_timeout_ms_ = 0;
  std::uint64_t receive_timeout_ms_ = 0;
  std::vector<std::uint8_t> rbuf_;
};

/// Knobs for RetryingClient. Defaults suit tests and LAN services;
/// production callers tune deadlines to their latency budget.
struct RetryPolicy {
  std::uint64_t connect_timeout_ms = 1000;
  std::uint64_t send_timeout_ms = 1000;
  std::uint64_t receive_timeout_ms = 1000;
  /// Attempts per request (first try included). Exhaustion rethrows
  /// the last failure.
  std::size_t max_attempts = 8;
  /// Decorrelated-jitter backoff (AWS architecture blog shape):
  /// sleep = min(cap, uniform(base, prev * 3)).
  std::uint64_t backoff_base_ms = 10;
  std::uint64_t backoff_cap_ms = 2000;
  /// Jitter RNG seed; 0 = seed from std::random_device.
  std::uint64_t seed = 0;
};

/// Exactly-once calls over an unreliable server: each request gets a
/// stable id, and any transient failure — connect/send/receive
/// timeout, connection reset, server restart, Unavailable (tenant
/// quarantined), Shed (backpressure) — reconnects (re-HELLOing under
/// the same client id) and resends the SAME id after a jittered
/// backoff. The server's dedup window answers already-applied resends
/// from the cached result, so an op is never applied twice even when
/// only the response was lost. Non-transient statuses (BadRequest,
/// Rejected, ...) are returned to the caller, not retried.
class RetryingClient {
 public:
  RetryingClient(std::string host, std::uint16_t port, std::string tenant,
                 std::string client_id, RetryPolicy policy = {},
                 persist::FsyncPolicy fsync = persist::FsyncPolicy::None,
                 std::uint64_t fsync_interval = 64,
                 std::uint8_t hello_flags = 0);

  /// One exactly-once round trip. Fills hdr.request_id itself (callers
  /// leave it zero). \throws the last transport error (std::system_error
  /// / NetTimeout) after max_attempts, std::runtime_error on framing
  /// violations.
  [[nodiscard]] NetResponse call(NetRequest req);

  /// Convenience wrappers over call().
  [[nodiscard]] NetResponse admit(const Task& t, std::uint8_t flags = 0);
  [[nodiscard]] NetResponse remove(TaskId id);

  /// Drop the connection (the next call reconnects). Chaos tests use
  /// this to exercise the resend path deliberately.
  void disconnect() noexcept { conn_.close(); }

  /// Session epoch from the most recent HELLO (0 before the first).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  /// Times the HELLO epoch changed — i.e. observed server restarts.
  [[nodiscard]] std::uint64_t epoch_changes() const noexcept {
    return epoch_changes_;
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }
  /// Resends after a transport failure or Unavailable/Shed answer.
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }

 private:
  void ensure_connected();
  void backoff_sleep(std::uint64_t floor_ms);

  std::string host_;
  std::uint16_t port_;
  std::string tenant_;
  std::string client_id_;
  RetryPolicy policy_;
  persist::FsyncPolicy fsync_;
  std::uint64_t fsync_interval_;
  std::uint8_t hello_flags_;
  Client conn_;
  std::uint64_t next_id_ = 1;
  std::uint64_t epoch_ = 0;
  std::uint64_t epoch_changes_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t prev_sleep_ms_ = 0;
  std::mt19937_64 rng_;
};

}  // namespace edfkit::net
