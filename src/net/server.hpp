/// \file server.hpp
/// Single-threaded epoll event loop serving the admission wire
/// protocol (net/protocol.hpp) over TCP.
///
/// Design: one thread owns everything — the listener, every
/// connection, every tenant controller. Admission decisions are
/// microseconds (the ladder settles most arrivals at rung 1/2), so a
/// single loop sustains tens of thousands of decisions per second
/// without locks, and the controllers' single-mutator contract holds
/// by construction. The loop is level-triggered and non-blocking
/// throughout: accept/read/write never block, torn frames reassemble
/// across reads in per-connection buffers, and short writes park their
/// tail in a per-connection write buffer drained on EPOLLOUT.
///
/// Per-tick batching: each poll tick drains every readable connection,
/// decodes all complete frames into one pending queue, then serves the
/// queue. The queue depth at decode time is the backpressure signal
/// (net/shed.hpp). With batch-fusing (HELLO kFlagBatchFuse), runs of
/// consecutive single ADMITs for the same tenant inside one tick are
/// fused into one admit_group call — one certified scan for the run
/// instead of one per request. A fused accept is decision-equivalent
/// to the sequential accepts (subsets of a feasible set are feasible);
/// a fused reject falls back to serving the run sequentially, so no
/// request is rejected that sequential serving would have admitted.
/// The journal records the fused shape (one AdmitGroup vs N Admits),
/// so fusing is opt-in and off for bit-identical replay comparisons.
///
/// Failure domains: a PersistError from one tenant's journal or
/// checkpoint quarantines *that tenant* — its mutating ops answer
/// Unavailable (with a retry_after_ms hint) while STATS/PING/HELLO
/// keep working — and a background probe re-runs a full recovery every
/// reprobe_interval_ms until the fault clears. Other tenants, and the
/// event loop itself, are unaffected: no per-request exception escapes
/// serve_pending().
///
/// Exactly-once retry: a connection that HELLOs with a client id gets
/// a per-tenant dedup window — the server journals a ClientMark ahead
/// of each operation record and caches the encoded response, so a
/// resent request (lost reply, reconnect, even a server restart, via
/// journal replay) is answered from the applied result, never applied
/// twice. See net/tenant.hpp; net/client.hpp's RetryingClient is the
/// matching caller.
///
/// Shutdown: stop() is async-signal-safe (one eventfd write). The loop
/// drains on exit — flushes every tenant journal — before run()
/// returns; the caller (examples/admission_server.cpp) then dumps
/// final metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "net/shed.hpp"
#include "net/tenant.hpp"

namespace edfkit::obs {
class Obs;
struct NetInstruments;
struct ReplInstruments;
}  // namespace edfkit::obs

namespace edfkit::repl {
class Shipper;
}

namespace edfkit::net {

struct ServerOptions {
  /// IPv4 address to bind. Loopback by default: the protocol carries
  /// no authentication; anything wider is a deployment's TLS/proxy
  /// problem (see ROADMAP follow-ons).
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the actual port back via port().
  std::uint16_t port = 0;
  int backlog = 64;
  std::size_t max_connections = 256;
  /// Close connections idle longer than this. 0 = never.
  std::uint64_t idle_timeout_ms = 0;
  /// Cap on single ADMITs fused into one admit_group per run.
  std::size_t max_fuse = 64;
  /// Milliseconds between recovery probes of quarantined tenants (and
  /// the retry_after_ms hint Unavailable responses carry). 0 = never
  /// re-probe automatically.
  std::uint64_t reprobe_interval_ms = 200;
  /// Close a connection whose outbound buffer exceeds this (a consumer
  /// that stopped reading must not grow server memory without bound).
  std::size_t max_outbound_bytes = 4u << 20;
  TenantOptions tenants;
  ShedOptions shed;
  /// Primary side of replication: when a shipper is attached
  /// (src/repl/shipper.hpp, owned by the caller, outliving the
  /// server), the loop pushes a store digest per journaled tenant into
  /// it every digest_interval_ms — the standby verifies bit-identity
  /// within one interval of any divergence. 0 disables digests.
  repl::Shipper* shipper = nullptr;
  std::uint64_t digest_interval_ms = 250;
};

class Server {
 public:
  /// Binds and listens immediately (so port() is valid before run()).
  /// \throws std::system_error on socket failures.
  explicit Server(ServerOptions opts, obs::Obs* obs = nullptr);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// The bound port (resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serve until stop(). Drains (journal flush) before returning.
  void run();

  /// One event-loop tick: wait up to `timeout_ms` for events, then
  /// drain reads, serve decoded requests, flush writes, and sweep idle
  /// connections. Returns true if any request was served. run() is
  /// this in a loop; tests drive ticks directly.
  bool poll_once(int timeout_ms);

  /// Request run() to exit. Async-signal-safe (one eventfd write).
  void stop() noexcept;

  [[nodiscard]] TenantTable& tenants() noexcept { return tenants_; }
  [[nodiscard]] std::size_t connections() const noexcept {
    return conns_.size();
  }

  /// True while this server is a replication standby
  /// (ServerOptions::tenants.standby): it applies REPL_* ops and
  /// answers every mutating client op Unavailable.
  [[nodiscard]] bool standby() const noexcept { return standby_; }

  /// Flip standby -> serving primary: every follower tenant attaches
  /// its controller to the WAL it has been mirroring and mints a fresh
  /// session epoch; later tenants are created as primaries. Returns
  /// the number of tenants promoted (0 when already a primary — the
  /// call is idempotent). The wire PROMOTE op and the server binary's
  /// promote-on-signal path both land here. Callers must check that no
  /// tenant is diverged first (the wire handler refuses; direct callers
  /// share that responsibility).
  std::uint64_t promote();

 private:
  struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> wbuf;
    std::size_t woff = 0;  ///< bytes of wbuf already written
    Tenant* tenant = nullptr;
    std::string client_id;        ///< HELLO client (exactly-once dedup)
    bool fuse = false;            ///< HELLO kFlagBatchFuse
    bool want_epollout = false;   ///< EPOLLOUT currently armed
    std::uint64_t last_activity_ns = 0;
  };

  /// One decoded request awaiting service this tick.
  struct Pending {
    int fd = -1;  ///< by fd, not pointer: the conn may die mid-tick
    NetRequest req;
  };

  void accept_ready();
  void read_ready(Connection& c);
  void write_ready(Connection& c);
  void drain_frames(Connection& c);
  void serve_pending();
  void serve_one(Connection& c, const NetRequest& req,
                 std::size_t queue_depth);
  /// Serve pending_[i, i+n) as one fused admit_group on `tenant`.
  void serve_fused(Tenant& tenant, std::size_t i, std::size_t n,
                   std::size_t queue_depth);
  void send_response(Connection& c, const NetResponse& resp);
  /// Queue an already-encoded response payload (the dedup-cache resend
  /// path; send_response goes through here too). Enforces the outbound
  /// cap and the net.server.drop_response failpoint.
  void send_payload(Connection& c, std::span<const std::uint8_t> payload);
  /// Move the tenant into quarantine (Unavailable until a re-probe
  /// recovers it) and bump the metrics.
  void quarantine_tenant(Tenant& t, const persist::PersistError& e);
  /// Periodic try_recover() pass over quarantined tenants.
  void reprobe_quarantined();
  void close_connection(int fd);
  void update_epollout(Connection& c);
  void sweep_idle();
  /// Periodic digest push into the attached shipper (primary only).
  void push_digests();
  /// REPL_* op bodies (serve_one dispatches here; standby only).
  void serve_repl_hello(const NetRequest& req, NetResponse& resp);
  void serve_repl_append(const NetRequest& req, NetResponse& resp);
  void serve_repl_snapshot(const NetRequest& req, NetResponse& resp);

  ServerOptions opts_;
  obs::Obs* obs_ = nullptr;
  obs::NetInstruments* metrics_ = nullptr;
  obs::ReplInstruments* repl_ins_ = nullptr;
  TenantTable tenants_;
  ShedPolicy shed_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int stop_fd_ = -1;  ///< eventfd; stop() writes, the loop exits
  std::uint16_t port_ = 0;
  bool stop_requested_ = false;
  bool standby_ = false;
  std::uint64_t next_reprobe_ns_ = 0;
  std::uint64_t next_digest_ns_ = 0;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::vector<Pending> pending_;
};

}  // namespace edfkit::net
