#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "admission/snapshot.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "persist/format.hpp"
#include "repl/shipper.hpp"

namespace edfkit::net {

// The obs layer mirrors the op count for its per-op histograms; keep
// the mirror honest where both headers are visible.
static_assert(obs::kNetOps == kNetOpCount,
              "obs::kNetOps must mirror net::kNetOpCount");

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// The server speaks every version from kMinProtocolVersion up: all v2
/// additions are trailing fields, so a v1 request decodes to the same
/// struct with the defaults (platform_m = 1) and a v2 response's extra
/// bytes are ignored by a v1 client.
constexpr bool version_ok(std::uint8_t v) noexcept {
  return v >= kMinProtocolVersion && v <= kProtocolVersion;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

}  // namespace

Server::Server(ServerOptions opts, obs::Obs* obs)
    : opts_(std::move(opts)),
      obs_(obs),
      metrics_(obs != nullptr && obs->config().metrics ? obs->net()
                                                       : nullptr),
      repl_ins_(obs != nullptr && obs->config().metrics ? obs->repl()
                                                        : nullptr),
      tenants_(opts_.tenants, obs),
      shed_(opts_.shed),
      standby_(opts_.tenants.standby) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    throw std::invalid_argument("Server: bad bind address " +
                                opts_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  if (::listen(listen_fd_, opts_.backlog) != 0) throw_errno("listen");

  stop_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (stop_fd_ < 0) throw_errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    throw_errno("epoll_ctl listen");
  }
  ev.data.fd = stop_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, stop_fd_, &ev) != 0) {
    throw_errno("epoll_ctl eventfd");
  }
}

Server::~Server() {
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) close_connection(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_fd_ >= 0) ::close(stop_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Server::run() {
  while (!stop_requested_) {
    (void)poll_once(100);
  }
  // Drain: a SIGTERM must not strand buffered journal tails.
  tenants_.flush_all();
}

void Server::stop() noexcept {
  const std::uint64_t one = 1;
  // Async-signal-safe: one write(2) on an eventfd.
  (void)!::write(stop_fd_, &one, sizeof one);
}

bool Server::poll_once(int timeout_ms) {
  std::array<epoll_event, 64> events;
  const int n =
      ::epoll_wait(epoll_fd_, events.data(),
                   static_cast<int>(events.size()), timeout_ms);
  if (n < 0 && errno != EINTR) throw_errno("epoll_wait");
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == listen_fd_) {
      accept_ready();
      continue;
    }
    if (fd == stop_fd_) {
      std::uint64_t drain = 0;
      (void)!::read(stop_fd_, &drain, sizeof drain);
      stop_requested_ = true;
      continue;
    }
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;  // closed earlier this tick
    Connection& c = *it->second;
    if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
      close_connection(fd);
      continue;
    }
    if ((events[i].events & EPOLLOUT) != 0) write_ready(c);
    if (conns_.find(fd) == conns_.end()) continue;
    if ((events[i].events & EPOLLIN) != 0) read_ready(c);
  }
  const bool served = !pending_.empty();
  serve_pending();
  sweep_idle();
  reprobe_quarantined();
  push_digests();
  return served;
}

void Server::push_digests() {
  if (opts_.shipper == nullptr || standby_ ||
      opts_.digest_interval_ms == 0) {
    return;
  }
  const std::uint64_t now = obs::now_ns();
  if (now < next_digest_ns_) return;
  next_digest_ns_ = now + opts_.digest_interval_ms * 1000000ull;
  tenants_.for_each([&](Tenant& t) {
    if (!t.journaled() || t.quarantined()) return;
    opts_.shipper->push_digest(t.name(), t.journal_lsn(),
                               store_digest(t.controller()));
  });
}

std::uint64_t Server::promote() {
  if (!standby_) return 0;
  std::uint64_t n = 0;
  tenants_.for_each([&](Tenant& t) {
    if (t.standby()) {
      t.promote();
      ++n;
    }
  });
  tenants_.set_standby(false);
  standby_ = false;
  return n;
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failures must not kill the loop
    }
    if (conns_.size() >= opts_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity_ns = obs::now_ns();
    conns_.emplace(fd, std::move(conn));
    if (metrics_ != nullptr) {
      metrics_->accepted.add();
      metrics_->connections.set(static_cast<double>(conns_.size()));
    }
  }
}

void Server::read_ready(Connection& c) {
  const int fd = c.fd;
  bool closed = false;
  for (;;) {
    std::uint8_t chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      c.rbuf.insert(c.rbuf.end(), chunk, chunk + n);
      if (metrics_ != nullptr) {
        metrics_->bytes_in.add(static_cast<std::uint64_t>(n));
      }
      continue;
    }
    if (n == 0) {
      closed = true;  // orderly EOF
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    closed = true;
    break;
  }
  c.last_activity_ns = obs::now_ns();
  drain_frames(c);
  // drain_frames may have closed on a framing violation.
  if (conns_.find(fd) == conns_.end()) return;
  if (closed) close_connection(fd);
}

void Server::drain_frames(Connection& c) {
  std::size_t off = 0;
  for (;;) {
    FrameView frame;
    const FrameStatus st = try_parse_frame(
        std::span<const std::uint8_t>(c.rbuf).subspan(off), frame);
    if (st == FrameStatus::NeedMore) break;
    if (st != FrameStatus::Ok) {
      // TooLarge / BadCrc: the stream cannot be resynchronized — every
      // later length prefix is untrustworthy. Drop the connection.
      if (metrics_ != nullptr) metrics_->protocol_errors.add();
      close_connection(c.fd);
      return;
    }
    try {
      Pending p;
      p.fd = c.fd;
      p.req = decode_request(frame.payload);
      pending_.push_back(std::move(p));
    } catch (const std::out_of_range&) {
      // The frame was intact (length + CRC verified) but the body is
      // shorter than its op demands: a malformed request, not a broken
      // stream. Answer BadRequest and keep the connection — the next
      // frame boundary is still trustworthy.
      if (metrics_ != nullptr) metrics_->protocol_errors.add();
      NetResponse resp;
      if (frame.payload.size() >= kMessageHeaderBytes) {
        // Header-only parse (no body decode — that is what just threw).
        ByteReader hdr{frame.payload};
        resp.hdr.version = hdr.u8();
        resp.hdr.op = hdr.u8();
        (void)hdr.u8();  // status, zero in requests
        (void)hdr.u8();  // request flags are not echoed
        resp.hdr.request_id = hdr.u64();
      }
      resp.hdr.status = static_cast<std::uint8_t>(NetStatus::BadRequest);
      send_response(c, resp);
      if (conns_.find(c.fd) == conns_.end()) return;
    }
    off += frame.consumed;
  }
  if (off != 0) {
    c.rbuf.erase(c.rbuf.begin(),
                 c.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

void Server::serve_pending() {
  const std::size_t depth = pending_.size();
  for (std::size_t i = 0; i < pending_.size();) {
    const auto it = conns_.find(pending_[i].fd);
    if (it == conns_.end()) {  // connection died earlier this tick
      ++i;
      continue;
    }
    Connection& c = *it->second;
    const NetRequest& req = pending_[i].req;
    // Containment: no per-request failure may take down the event loop
    // (persist failures are handled — and quarantined — inside
    // serve_one; this is the backstop for everything else).
    if (!standby_ && c.fuse && c.tenant != nullptr &&
        c.client_id.empty() && !c.tenant->quarantined() &&
        req.hdr.op == static_cast<std::uint8_t>(NetOp::Admit) &&
        version_ok(req.hdr.version)) {
      // Extend the fuse run: consecutive single ADMITs for the same
      // tenant from fuse-enabled connections. (Dedup connections never
      // fuse — the fused journal shape could not rebuild their cached
      // responses on replay — and HELLO rejects the combination.)
      std::size_t run = 1;
      while (i + run < pending_.size() && run < opts_.max_fuse) {
        const Pending& p = pending_[i + run];
        const auto jt = conns_.find(p.fd);
        if (jt == conns_.end()) break;
        const Connection& c2 = *jt->second;
        if (!c2.fuse || c2.tenant != c.tenant || !c2.client_id.empty()) {
          break;
        }
        if (p.req.hdr.op != static_cast<std::uint8_t>(NetOp::Admit) ||
            !version_ok(p.req.hdr.version)) {
          break;
        }
        ++run;
      }
      if (run > 1) {
        try {
          serve_fused(*c.tenant, i, run, depth);
        } catch (...) {
          if (metrics_ != nullptr) metrics_->protocol_errors.add();
        }
        i += run;
        continue;
      }
    }
    try {
      serve_one(c, req, depth);
    } catch (...) {
      if (metrics_ != nullptr) metrics_->protocol_errors.add();
      const auto jt = conns_.find(pending_[i].fd);
      if (jt != conns_.end()) {
        NetResponse resp;
        resp.hdr.op = req.hdr.op;
        resp.hdr.request_id = req.hdr.request_id;
        resp.hdr.status =
            static_cast<std::uint8_t>(NetStatus::InternalError);
        send_response(*jt->second, resp);
      }
    }
    ++i;
  }
  pending_.clear();
}

void Server::serve_one(Connection& c, const NetRequest& req,
                       std::size_t queue_depth) {
  const std::uint64_t t0 = metrics_ != nullptr ? obs::now_ns() : 0;
  const NetOp op = static_cast<NetOp>(req.hdr.op);
  const std::size_t op_slot =
      req.hdr.op < kNetOpCount && req.hdr.op != 0 ? req.hdr.op : 0;
  if (metrics_ != nullptr) metrics_->requests.add();

  // send_payload may close the connection (outbound cap, write error),
  // invalidating `c`; the tenant outlives it — keep a stable handle
  // for the post-send checkpoint hook.
  Tenant* tenant = c.tenant;
  const auto finish_op_ns = [&] {
    if (metrics_ != nullptr) {
      metrics_->op_ns[op_slot].record(obs::now_ns() - t0);
    }
  };

  NetResponse resp;
  resp.hdr.op = req.hdr.op;
  resp.hdr.request_id = req.hdr.request_id;
  const auto fail = [&](NetStatus s) {
    resp.hdr.status = static_cast<std::uint8_t>(s);
  };
  const auto unavailable = [&] {
    fail(NetStatus::Unavailable);
    resp.retry_after_ms =
        static_cast<std::uint32_t>(opts_.reprobe_interval_ms);
    if (metrics_ != nullptr) metrics_->unavailable.add();
  };

  const bool mutating =
      op == NetOp::Admit || op == NetOp::AdmitGroup ||
      op == NetOp::Remove || op == NetOp::RemoveGroup;
  const bool marked = mutating && !c.client_id.empty();

  // Standby gate, ahead of even the dedup lookup: a follower must not
  // answer mutating client ops at all before promotion — not even from
  // its dedup cache, whose authoritative copy is still the primary's.
  // HELLO/STATS/PING stay up (health checks, pre-failover probes).
  if (standby_ && mutating && version_ok(req.hdr.version)) {
    unavailable();
    finish_op_ns();
    send_response(c, resp);
    return;
  }

  // Exactly-once and failure-domain gates, ahead of op dispatch.
  if (version_ok(req.hdr.version) && mutating &&
      tenant != nullptr) {
    if (marked && req.hdr.request_id == 0) {
      fail(NetStatus::BadRequest);  // dedup needs real ids (>= 1)
      finish_op_ns();
      send_response(c, resp);
      return;
    }
    if (marked) {
      // Dedup BEFORE the quarantine gate: an op applied before the
      // fault can answer its retry even while quarantined.
      const std::vector<std::uint8_t>* cached = nullptr;
      switch (
          tenant->dedup_lookup(c.client_id, req.hdr.request_id, &cached)) {
        case Tenant::DedupResult::Hit:
          if (metrics_ != nullptr) metrics_->dedup_hits.add();
          finish_op_ns();
          send_payload(c, *cached);
          return;
        case Tenant::DedupResult::Evicted:
          // Applied, but the response fell off the window. Anything
          // but an error risks a double-apply; the client surfaces it.
          fail(NetStatus::InternalError);
          finish_op_ns();
          send_response(c, resp);
          return;
        case Tenant::DedupResult::Miss:
          break;
      }
    }
    if (tenant->quarantined()) {
      unavailable();
      finish_op_ns();
      send_response(c, resp);
      return;
    }
  }

  bool applied = false;  // run the checkpoint hook after sending

  if (!version_ok(req.hdr.version)) {
    fail(NetStatus::BadVersion);
  } else {
    switch (op) {
      case NetOp::Hello: {
        if (req.durability >
            static_cast<std::uint8_t>(persist::FsyncPolicy::EveryN)) {
          fail(NetStatus::BadRequest);
          break;
        }
        // A client id opts into exactly-once dedup; it is journaled
        // and persisted, so it obeys the tenant-name rule, and it is
        // mutually exclusive with batch-fusing (a fused run journals
        // one AdmitGroup, which replay could not split back into the
        // per-request responses the dedup cache needs).
        if (!req.client.empty() &&
            (!valid_tenant_name(req.client) ||
             (req.hdr.flags & kFlagBatchFuse) != 0)) {
          fail(NetStatus::BadRequest);
          break;
        }
        try {
          Tenant& t = tenants_.get_or_create(
              req.tenant,
              static_cast<persist::FsyncPolicy>(req.durability),
              req.fsync_interval,
              (req.hdr.flags & kFlagCertifiedTenant) != 0,
              req.platform_m);
          c.tenant = &t;
          tenant = &t;
          c.client_id = req.client;
          c.fuse = (req.hdr.flags & kFlagBatchFuse) != 0;
          resp.base_lsn = t.journal_base_lsn();
          resp.lsn = t.journal_lsn();
          resp.epoch = t.epoch();
          resp.highest_applied =
              req.client.empty() ? 0 : t.highest_applied(req.client);
          // Echo the platform the tenant *actually* admits against —
          // an attach to an existing tenant keeps its platform, like
          // its durability class.
          resp.platform_m = t.controller().platform().m;
        } catch (const std::invalid_argument&) {
          fail(NetStatus::BadRequest);
        } catch (const persist::PersistError&) {
          fail(NetStatus::InternalError);
        }
        break;
      }
      case NetOp::Ping:
        break;
      case NetOp::Admit: {
        if (tenant == nullptr) {
          fail(NetStatus::NeedHello);
          break;
        }
        AdmissionController& ctl = tenant->controller();
        if (shed_.should_shed(op, queue_depth, ctl.demand_header())) {
          fail(NetStatus::Shed);
          resp.retry_after_ms = shed_.options().retry_after_ms;
          if (metrics_ != nullptr) metrics_->sheds.add();
          break;
        }
        try {
          if (marked) {
            // Validate before journaling the mark, keeping orphan
            // marks out of the journal on malformed requests.
            req.task.validate();
            tenant->append_mark(c.client_id, req.hdr.request_id,
                                req.hdr.flags);
          }
          const AdmissionDecision d = ctl.try_admit(req.task);
          resp = make_admit_response(req.hdr.request_id, req.hdr.flags, d);
          applied = true;
        } catch (const std::invalid_argument&) {
          fail(NetStatus::BadRequest);
        } catch (const persist::PersistError& e) {
          quarantine_tenant(*tenant, e);
          unavailable();
        }
        break;
      }
      case NetOp::AdmitGroup: {
        if (tenant == nullptr) {
          fail(NetStatus::NeedHello);
          break;
        }
        AdmissionController& ctl = tenant->controller();
        if (shed_.should_shed(op, queue_depth, ctl.demand_header())) {
          fail(NetStatus::Shed);
          resp.retry_after_ms = shed_.options().retry_after_ms;
          if (metrics_ != nullptr) metrics_->sheds.add();
          break;
        }
        try {
          if (marked) {
            for (const Task& t : req.group) t.validate();
            tenant->append_mark(c.client_id, req.hdr.request_id,
                                req.hdr.flags);
          }
          const GroupDecision d = ctl.admit_group(req.group);
          resp = make_admit_group_response(req.hdr.request_id,
                                           req.hdr.flags, d);
          applied = true;
        } catch (const std::invalid_argument&) {
          fail(NetStatus::BadRequest);
        } catch (const persist::PersistError& e) {
          quarantine_tenant(*tenant, e);
          unavailable();
        }
        break;
      }
      case NetOp::Remove: {
        if (tenant == nullptr) {
          fail(NetStatus::NeedHello);
          break;
        }
        try {
          if (marked) {
            tenant->append_mark(c.client_id, req.hdr.request_id,
                                req.hdr.flags);
          }
          const bool removed = tenant->controller().remove(req.id);
          resp = make_remove_response(NetOp::Remove, req.hdr.request_id,
                                      removed ? 1 : 0);
          applied = true;
        } catch (const persist::PersistError& e) {
          quarantine_tenant(*tenant, e);
          unavailable();
        }
        break;
      }
      case NetOp::RemoveGroup: {
        if (tenant == nullptr) {
          fail(NetStatus::NeedHello);
          break;
        }
        try {
          if (marked) {
            tenant->append_mark(c.client_id, req.hdr.request_id,
                                req.hdr.flags);
          }
          const std::uint64_t removed =
              tenant->controller().remove_group(req.ids);
          resp = make_remove_response(NetOp::RemoveGroup,
                                      req.hdr.request_id, removed);
          applied = true;
        } catch (const persist::PersistError& e) {
          quarantine_tenant(*tenant, e);
          unavailable();
        }
        break;
      }
      case NetOp::Stats: {
        if (tenant == nullptr) {
          fail(NetStatus::NeedHello);
          break;
        }
        const AdmissionController& ctl = tenant->controller();
        resp.stats = ctl.demand_header();
        resp.stats_json = ctl.stats().to_json();
        resp.platform_m = ctl.platform().m;
        break;
      }
      case NetOp::ReplHello:
        serve_repl_hello(req, resp);
        break;
      case NetOp::ReplAppend:
        serve_repl_append(req, resp);
        break;
      case NetOp::ReplSnapshot:
        serve_repl_snapshot(req, resp);
        break;
      case NetOp::Promote: {
        if (standby_) {
          // A diverged follower must never serve: refuse until the
          // shipper re-seeds it (or an operator intervenes).
          bool diverged = false;
          tenants_.for_each(
              [&](Tenant& t) { diverged = diverged || t.diverged(); });
          if (diverged) {
            unavailable();
            break;
          }
        }
        resp.promoted = promote();
        break;
      }
      default:
        fail(NetStatus::UnknownOp);
        break;
    }
  }

  finish_op_ns();
  const std::vector<std::uint8_t> payload = encode_response(resp);
  if (applied && marked) {
    tenant->record_applied(c.client_id, req.hdr.request_id, payload);
  }
  send_payload(c, payload);
  // The checkpoint cycle runs after the response is queued: a failing
  // checkpoint quarantines the tenant for *later* operations instead
  // of clobbering an already-successful decision.
  if (applied && tenant != nullptr && !tenant->quarantined()) {
    try {
      tenant->on_operation();
    } catch (const persist::PersistError& e) {
      quarantine_tenant(*tenant, e);
    }
  }
}

void Server::serve_repl_hello(const NetRequest& req, NetResponse& resp) {
  const auto fail = [&](NetStatus s) {
    resp.hdr.status = static_cast<std::uint8_t>(s);
  };
  if (!standby_) {
    fail(NetStatus::BadRequest);  // repl ops address followers only
    return;
  }
  if (req.durability >
      static_cast<std::uint8_t>(persist::FsyncPolicy::EveryN)) {
    fail(NetStatus::BadRequest);
    return;
  }
  try {
    Tenant& t = tenants_.get_or_create(
        req.tenant, static_cast<persist::FsyncPolicy>(req.durability),
        req.fsync_interval, false);
    resp.base_lsn = t.journal_base_lsn();
    resp.lsn = t.replica_lsn();
    resp.epoch = t.epoch();
    if (t.diverged()) resp.repl_flags |= kReplDiverged;
    if (t.quarantined()) {
      fail(NetStatus::Unavailable);
      resp.retry_after_ms =
          static_cast<std::uint32_t>(opts_.reprobe_interval_ms);
      if (metrics_ != nullptr) metrics_->unavailable.add();
    }
  } catch (const std::invalid_argument&) {
    fail(NetStatus::BadRequest);
  } catch (const persist::PersistError&) {
    fail(NetStatus::InternalError);
  }
}

void Server::serve_repl_append(const NetRequest& req, NetResponse& resp) {
  const auto fail = [&](NetStatus s) {
    resp.hdr.status = static_cast<std::uint8_t>(s);
  };
  if (!standby_) {
    fail(NetStatus::BadRequest);
    return;
  }
  Tenant* t = tenants_.find(req.tenant);
  if (t == nullptr) {
    // The shipper skipped REPL_HELLO (or we restarted): make it seed.
    resp.repl_flags |= kReplNeedSnapshot;
    return;
  }
  if (t->quarantined()) {
    fail(NetStatus::Unavailable);
    resp.retry_after_ms =
        static_cast<std::uint32_t>(opts_.reprobe_interval_ms);
    if (metrics_ != nullptr) metrics_->unavailable.add();
    return;
  }
  resp.base_lsn = t->journal_base_lsn();
  resp.lsn = t->replica_lsn();
  if (t->diverged()) {
    resp.repl_flags |= kReplDiverged;
    return;
  }
  // Verify an attached digest whenever the applied LSN reaches its LSN
  // — before the batch (a pure check), between records (mid-batch), or
  // after the last one.
  const auto check_digest = [&] {
    if (req.digest_lsn == 0 || t->replica_lsn() != req.digest_lsn ||
        (resp.repl_flags & kReplDiverged) != 0) {
      return;
    }
    if (repl_ins_ != nullptr) repl_ins_->digests_checked.add();
    const std::uint32_t mine = store_digest(t->controller());
    if (mine != req.digest) {
      t->mark_diverged("store digest mismatch at lsn " +
                       std::to_string(req.digest_lsn));
      resp.repl_flags |= kReplDiverged;
    }
  };
  check_digest();
  std::uint64_t rlsn = req.repl_lsn;
  try {
    for (const auto& record : req.repl_records) {
      if ((resp.repl_flags & kReplDiverged) != 0) break;
      if (rlsn < t->replica_lsn()) {
        ++rlsn;  // idempotent resend of an already-applied prefix
        continue;
      }
      if (rlsn > t->replica_lsn()) {
        resp.repl_flags |= kReplNeedSnapshot;  // gap — records were lost
        break;
      }
      t->apply_replicated(record);
      if (repl_ins_ != nullptr) repl_ins_->applied.add();
      ++rlsn;
      check_digest();
    }
  } catch (const persist::PersistError& e) {
    quarantine_tenant(*t, e);
    fail(NetStatus::Unavailable);
    resp.retry_after_ms =
        static_cast<std::uint32_t>(opts_.reprobe_interval_ms);
    if (metrics_ != nullptr) metrics_->unavailable.add();
  } catch (const std::out_of_range&) {
    // A record that cannot be decoded is corruption the wire CRC did
    // not catch (it was computed over the corrupt bytes): divergence.
    t->mark_diverged("undecodable shipped record at lsn " +
                     std::to_string(rlsn));
    resp.repl_flags |= kReplDiverged;
  }
  resp.base_lsn = t->journal_base_lsn();
  resp.lsn = t->replica_lsn();
}

void Server::serve_repl_snapshot(const NetRequest& req, NetResponse& resp) {
  const auto fail = [&](NetStatus s) {
    resp.hdr.status = static_cast<std::uint8_t>(s);
  };
  if (!standby_) {
    fail(NetStatus::BadRequest);
    return;
  }
  Tenant* t = tenants_.find(req.tenant);
  try {
    if (t == nullptr) {
      t = &tenants_.get_or_create(req.tenant, persist::FsyncPolicy::None,
                                  64, false);
    }
  } catch (const std::invalid_argument&) {
    fail(NetStatus::BadRequest);
    return;
  } catch (const persist::PersistError&) {
    fail(NetStatus::InternalError);
    return;
  }
  try {
    t->seed_from(req.repl_snapshot, req.repl_dedup, req.repl_lsn);
    if (repl_ins_ != nullptr) repl_ins_->seeds_applied.add();
    resp.base_lsn = t->journal_base_lsn();
    resp.lsn = t->replica_lsn();
  } catch (const persist::PersistError& e) {
    quarantine_tenant(*t, e);
    fail(NetStatus::Unavailable);
    resp.retry_after_ms =
        static_cast<std::uint32_t>(opts_.reprobe_interval_ms);
    if (metrics_ != nullptr) metrics_->unavailable.add();
  } catch (const std::out_of_range&) {
    fail(NetStatus::BadRequest);  // malformed container
  }
}

void Server::serve_fused(Tenant& tenant, std::size_t i, std::size_t n,
                         std::size_t queue_depth) {
  const std::uint64_t t0 = metrics_ != nullptr ? obs::now_ns() : 0;
  AdmissionController& ctl = tenant.controller();

  const auto respond = [&](std::size_t k, const NetResponse& resp) {
    const auto it = conns_.find(pending_[i + k].fd);
    if (it != conns_.end()) send_response(*it->second, resp);
  };
  const auto base_response = [&](std::size_t k) {
    NetResponse resp;
    resp.hdr.op = static_cast<std::uint8_t>(NetOp::Admit);
    resp.hdr.request_id = pending_[i + k].req.hdr.request_id;
    return resp;
  };

  if (shed_.should_shed(NetOp::Admit, queue_depth, ctl.demand_header())) {
    if (metrics_ != nullptr) {
      metrics_->requests.add(n);
      metrics_->sheds.add(n);
    }
    for (std::size_t k = 0; k < n; ++k) {
      NetResponse resp = base_response(k);
      resp.hdr.status = static_cast<std::uint8_t>(NetStatus::Shed);
      resp.retry_after_ms = shed_.options().retry_after_ms;
      respond(k, resp);
    }
    return;
  }

  // Speculative fuse: one admit_group (one certified scan) for the
  // whole run. Sound because subsets of a feasible set are feasible —
  // an all-or-nothing accept admits exactly what sequential accepts
  // would. A group reject proves nothing about individual members, so
  // fall back to serving them sequentially.
  std::vector<Task> tasks;
  tasks.reserve(n);
  bool invalid = false;
  for (std::size_t k = 0; k < n; ++k) {
    tasks.push_back(pending_[i + k].req.task);
    try {
      tasks.back().validate();
    } catch (const std::invalid_argument&) {
      invalid = true;
    }
  }

  if (!invalid) {
    try {
      const GroupDecision d = ctl.admit_group(tasks);
      if (d.admitted) {
        if (metrics_ != nullptr) {
          metrics_->requests.add(n);
          metrics_->fused_admits.add(n);
          const std::uint64_t dt = obs::now_ns() - t0;
          for (std::size_t k = 0; k < n; ++k) {
            metrics_->op_ns[static_cast<std::size_t>(NetOp::Admit)]
                .record(dt / n);
          }
        }
        for (std::size_t k = 0; k < n; ++k) {
          NetResponse resp = base_response(k);
          resp.id = d.ids[k];
          resp.rung = static_cast<std::uint8_t>(d.rung);
          resp.verdict = static_cast<std::uint8_t>(d.analysis.verdict);
          if ((pending_[i + k].req.hdr.flags & kFlagWantCertificate) !=
                  0 &&
              d.certificate.present()) {
            resp.hdr.flags |= kFlagHasCertificate;
            resp.certificate = d.certificate;
          }
          respond(k, resp);
        }
        // Checkpoint after the responses are queued (see serve_one):
        // a failing checkpoint quarantines, never clobbers decisions.
        try {
          tenant.on_operation();
        } catch (const persist::PersistError& e) {
          quarantine_tenant(tenant, e);
        }
        return;
      }
    } catch (const persist::PersistError&) {
      // Journal failure mid-fuse: fall through to the sequential path,
      // which quarantines the tenant as it hits the fault again and
      // answers every request Unavailable.
    }
  }

  // Sequential fallback (group rejected, or a member failed
  // validation): every request gets the decision sequential serving
  // would have produced.
  if (metrics_ != nullptr) metrics_->fuse_fallbacks.add();
  for (std::size_t k = 0; k < n; ++k) {
    const auto it = conns_.find(pending_[i + k].fd);
    if (it == conns_.end()) continue;
    serve_one(*it->second, pending_[i + k].req, queue_depth);
  }
}

void Server::send_response(Connection& c, const NetResponse& resp) {
  send_payload(c, encode_response(resp));
}

void Server::send_payload(Connection& c,
                          std::span<const std::uint8_t> payload) {
  // Chaos hook: swallow the response after the operation applied — the
  // client times out and retries, and the retry must dedup-hit.
  fault::FailPoint& fp_drop = EDFKIT_FAULT_POINT(fault::kDropResponseSite);
  if (fp_drop.armed() && fp_drop.should_fail()) return;
  append_frame(c.wbuf, payload);
  if (c.wbuf.size() - c.woff > opts_.max_outbound_bytes) {
    // A consumer that stopped reading while we kept answering must not
    // grow server memory without bound.
    if (metrics_ != nullptr) metrics_->protocol_errors.add();
    close_connection(c.fd);
    return;
  }
  write_ready(c);  // opportunistic immediate flush
}

void Server::write_ready(Connection& c) {
  const int fd = c.fd;
  while (c.woff < c.wbuf.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE
    // here, not as a process-wide SIGPIPE.
    const ssize_t n = ::send(fd, c.wbuf.data() + c.woff,
                             c.wbuf.size() - c.woff, MSG_NOSIGNAL);
    if (n > 0) {
      c.woff += static_cast<std::size_t>(n);
      if (metrics_ != nullptr) {
        metrics_->bytes_out.add(static_cast<std::uint64_t>(n));
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(fd);
    return;
  }
  if (c.woff == c.wbuf.size()) {
    c.wbuf.clear();
    c.woff = 0;
  }
  c.last_activity_ns = obs::now_ns();
  update_epollout(c);
}

void Server::update_epollout(Connection& c) {
  const bool want = c.woff < c.wbuf.size();
  if (want == c.want_epollout) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
    c.want_epollout = want;
  }
}

void Server::close_connection(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
  if (metrics_ != nullptr) {
    metrics_->closed.add();
    metrics_->connections.set(static_cast<double>(conns_.size()));
  }
}

void Server::quarantine_tenant(Tenant& t, const persist::PersistError& e) {
  const bool was = t.quarantined();
  t.quarantine(e);
  if (!was && metrics_ != nullptr) {
    metrics_->quarantines.add();
    std::size_t q = 0;
    tenants_.for_each([&](Tenant& x) { q += x.quarantined() ? 1 : 0; });
    metrics_->quarantined.set(static_cast<double>(q));
  }
}

void Server::reprobe_quarantined() {
  if (opts_.reprobe_interval_ms == 0) return;
  const std::uint64_t now = obs::now_ns();
  if (now < next_reprobe_ns_) return;
  next_reprobe_ns_ = now + opts_.reprobe_interval_ms * 1000000ull;
  std::size_t quarantined = 0;
  tenants_.for_each([&](Tenant& t) {
    if (t.quarantined() && t.quarantine_retryable()) {
      if (t.try_recover()) {
        if (metrics_ != nullptr) metrics_->unquarantines.add();
      } else if (metrics_ != nullptr) {
        metrics_->reprobe_failures.add();
      }
    }
    quarantined += t.quarantined() ? 1 : 0;
  });
  if (metrics_ != nullptr) {
    metrics_->quarantined.set(static_cast<double>(quarantined));
  }
}

void Server::sweep_idle() {
  if (opts_.idle_timeout_ms == 0) return;
  const std::uint64_t now = obs::now_ns();
  const std::uint64_t limit = opts_.idle_timeout_ms * 1000000ull;
  std::vector<int> stale;
  for (const auto& [fd, conn] : conns_) {
    if (now - conn->last_activity_ns > limit) stale.push_back(fd);
  }
  for (const int fd : stale) close_connection(fd);
}

}  // namespace edfkit::net
