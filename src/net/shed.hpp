/// \file shed.hpp
/// Load-shedding policy for the admission server: decide, *before*
/// running any admission analysis, whether to reject-fast with a
/// RETRY_AFTER hint instead.
///
/// Two cheap signals drive the decision:
///   * pending-queue depth — how many decoded requests this event-loop
///     tick is already committed to serving. Admission decisions are
///     the only expensive work on the loop; a deep queue means arrival
///     rate is outrunning decision throughput and latency is about to
///     compound.
///   * the tenant's StoreHeader — the wait-free epoch-consistent
///     aggregate snapshot (admission/incremental_dbf.hpp header()):
///     resident count and the certified utilization upper bound. Past
///     a configured headroom the ladder would almost certainly run its
///     expensive rungs just to reject; shedding there converts a slow
///     certain-reject into a fast retryable one.
///
/// Only admit-type ops are ever shed. Removals shrink the resident set
/// (they are how load *drains*), STATS/PING are O(1), and HELLO must
/// always succeed or clients cannot even be told to back off.
#pragma once

#include <cstddef>
#include <cstdint>

#include "admission/incremental_dbf.hpp"
#include "net/protocol.hpp"

namespace edfkit::net {

struct ShedOptions {
  /// Shed admits when the tick's pending-request queue is this deep.
  /// 0 disables depth shedding.
  std::size_t max_pending = 1024;
  /// Shed admits for a tenant whose resident count reached this. 0
  /// disables. (Distinct from AdmissionOptions::max_tasks: that is a
  /// *policy reject* — final, certified "no" — while shedding is "not
  /// now", invisible to admission stats.)
  std::size_t max_residents = 0;
  /// Shed admits for a tenant whose certified utilization upper bound
  /// reached this. >= 1.0 disables (the ladder itself settles U >= 1).
  double utilization_headroom = 1.0;
  /// Retry hint stamped into Shed responses.
  std::uint32_t retry_after_ms = 50;
};

class ShedPolicy {
 public:
  explicit ShedPolicy(ShedOptions opts) noexcept : opts_(opts) {}

  [[nodiscard]] const ShedOptions& options() const noexcept { return opts_; }

  /// Should this request be shed? `pending` is the depth of the
  /// current tick's decoded-request queue; `header` the tenant's
  /// wait-free store header.
  [[nodiscard]] bool should_shed(NetOp op, std::size_t pending,
                                 const StoreHeader& header) const noexcept;

 private:
  ShedOptions opts_;
};

}  // namespace edfkit::net
