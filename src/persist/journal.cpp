#include "persist/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "fault/fault.hpp"
#include "obs/obs.hpp"

namespace edfkit::persist {
namespace {

constexpr std::size_t kJournalHeaderV1Bytes = 8 + 4 + 4;
constexpr std::size_t kJournalHeaderBytes =
    kJournalHeaderV1Bytes + 8;  // v2 appends base_lsn
constexpr std::size_t kRecordFrameBytes = 4 + 4;  // len + crc

[[nodiscard]] std::size_t header_bytes(std::uint32_t version) noexcept {
  return version == 1 ? kJournalHeaderV1Bytes : kJournalHeaderBytes;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw PersistError(PersistErrc::IoError,
                     what + ": " + std::strerror(errno));
}

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::string& path) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write " + path);
    }
    off += static_cast<std::size_t>(n);
  }
}

/// write_all with an injectable failure: when the named failpoint
/// fires with short=K, the first K bytes are written for real before
/// the error — a genuine torn frame on disk, the crash-mid-append
/// shape the torn-tail recovery machinery must absorb.
void write_all_faultable(fault::FailPoint& fp, int fd,
                         const std::uint8_t* data, std::size_t len,
                         const std::string& path) {
  if (fp.armed()) {
    const fault::FaultResult r = fp.consume();
    if (r.fire) {
      const std::size_t torn = std::min(r.short_len, len);
      if (torn != 0 && torn != static_cast<std::size_t>(-1)) {
        write_all(fd, data, torn, path);
      }
      errno = r.err;
      throw_errno("write " + path);
    }
  }
  write_all(fd, data, len, path);
}

}  // namespace

JournalScan scan_journal(const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  JournalScan out;
  if (bytes.size() < kJournalHeaderV1Bytes) {
    // Even the header is cut: treat a partial header as a torn creation
    // (nothing was ever committed), but a wrong magic as corruption.
    if (!bytes.empty() &&
        std::memcmp(bytes.data(), kJournalMagic,
                    std::min<std::size_t>(bytes.size(), 8)) != 0) {
      throw PersistError(PersistErrc::BadMagic, path);
    }
    out.torn_tail = !bytes.empty();
    return out;
  }
  if (std::memcmp(bytes.data(), kJournalMagic, 8) != 0) {
    throw PersistError(PersistErrc::BadMagic, path);
  }
  ByteReader hdr{std::span<const std::uint8_t>(bytes).subspan(8)};
  const std::uint32_t version = hdr.u32();
  if (version != 1 && version != kJournalVersion) {
    throw PersistError(PersistErrc::BadVersion,
                       path + ": journal version " +
                           std::to_string(version));
  }
  if (version >= 2) {
    (void)hdr.u32();  // reserved
    if (bytes.size() < kJournalHeaderBytes) {
      out.torn_tail = true;  // base_lsn field cut mid-creation
      return out;
    }
    out.base_lsn = hdr.u64();
  }
  std::size_t off = header_bytes(version);
  out.valid_bytes = off;
  while (off < bytes.size()) {
    if (bytes.size() - off < kRecordFrameBytes) {
      out.torn_tail = true;  // frame header cut mid-write
      break;
    }
    ByteReader frame{std::span<const std::uint8_t>(bytes).subspan(off)};
    const std::uint32_t len = frame.u32();
    const std::uint32_t crc = frame.u32();
    if (bytes.size() - off - kRecordFrameBytes < len) {
      out.torn_tail = true;  // payload cut mid-write
      break;
    }
    const std::uint8_t* payload = bytes.data() + off + kRecordFrameBytes;
    if (crc32(payload, len) != crc) {
      // The record is fully present, so this is not a torn append —
      // the bits changed underneath us. Do not silently drop the
      // suffix.
      throw PersistError(
          PersistErrc::BadCrc,
          path + ": record " + std::to_string(out.records.size()));
    }
    out.records.emplace_back(payload, payload + len);
    off += kRecordFrameBytes + len;
    out.valid_bytes = off;
  }
  return out;
}

Journal::Journal(int fd, std::string path, JournalOptions opts,
                 std::uint64_t next_lsn, std::uint64_t base_lsn,
                 std::uint64_t committed_bytes) noexcept
    : fd_(fd),
      path_(std::move(path)),
      opts_(opts),
      next_lsn_(next_lsn),
      base_lsn_(base_lsn),
      committed_bytes_(committed_bytes) {}

Journal::Journal(Journal&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      path_(std::move(o.path_)),
      opts_(o.opts_),
      next_lsn_(o.next_lsn_),
      base_lsn_(o.base_lsn_),
      unsynced_(o.unsynced_),
      committed_bytes_(o.committed_bytes_),
      poisoned_(o.poisoned_),
      metrics_(std::exchange(o.metrics_, nullptr)) {}

Journal::~Journal() {
  if (fd_ >= 0) {
    (void)::fdatasync(fd_);
    ::close(fd_);
  }
}

namespace {

[[nodiscard]] std::vector<std::uint8_t> encode_header(
    std::uint64_t base_lsn) {
  ByteWriter hdr;
  hdr.bytes(kJournalMagic, sizeof kJournalMagic);
  hdr.u32(kJournalVersion);
  hdr.u32(0);  // reserved
  hdr.u64(base_lsn);
  return hdr.take();
}

}  // namespace

Journal Journal::create(const std::string& path, JournalOptions opts,
                        std::uint64_t base_lsn) {
  fault::FailPoint& fp_open = EDFKIT_FAULT_POINT("journal.create.open");
  fault::FailPoint& fp_write = EDFKIT_FAULT_POINT("journal.create.write");
  fault::FailPoint& fp_fsync = EDFKIT_FAULT_POINT("journal.create.fsync");
  if (fp_open.armed() && fp_open.should_fail()) throw_errno("open " + path);
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open " + path);
  const std::vector<std::uint8_t> hdr = encode_header(base_lsn);
  try {
    write_all_faultable(fp_write, fd, hdr.data(), hdr.size(), path);
    if ((fp_fsync.armed() && fp_fsync.should_fail()) ||
        ::fdatasync(fd) != 0) {
      throw_errno("fdatasync " + path);
    }
  } catch (...) {
    // A torn creation (partial header) is what open_append() treats as
    // "nothing committed, start over" — recoverable by construction.
    ::close(fd);
    throw;
  }
  return Journal(fd, path, opts, base_lsn, base_lsn, hdr.size());
}

Journal Journal::open_append(const std::string& path, JournalOptions opts) {
  fault::FailPoint& fp_open = EDFKIT_FAULT_POINT("journal.open.open");
  fault::FailPoint& fp_trunc = EDFKIT_FAULT_POINT("journal.open.truncate");
  if (!file_exists(path)) return create(path, opts);
  const JournalScan scan = scan_journal(path);
  if (scan.valid_bytes < kJournalHeaderV1Bytes) {
    // Header itself torn: nothing committed — start over.
    return create(path, opts);
  }
  if (fp_open.armed() && fp_open.should_fail()) throw_errno("open " + path);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open " + path);
  if (scan.torn_tail &&
      ((fp_trunc.armed() && fp_trunc.should_fail()) ||
       ::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0)) {
    ::close(fd);
    throw_errno("ftruncate " + path);
  }
  if (::lseek(fd, static_cast<off_t>(scan.valid_bytes), SEEK_SET) < 0) {
    ::close(fd);
    throw_errno("lseek " + path);
  }
  return Journal(fd, path, opts, scan.base_lsn + scan.records.size(),
                 scan.base_lsn, scan.valid_bytes);
}

std::uint64_t Journal::base_lsn() const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_;
}

std::uint64_t Journal::rotate(std::uint64_t keep_from_lsn) {
  fault::FailPoint& fp_fsync = EDFKIT_FAULT_POINT("journal.rotate.fsync");
  fault::FailPoint& fp_open = EDFKIT_FAULT_POINT("journal.rotate.open");
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t cut =
      std::min(std::max(keep_from_lsn, base_lsn_), next_lsn_);
  if (cut == base_lsn_) return 0;  // nothing below the cut to drop
  // Settle the current file before re-reading it: every record with
  // LSN < next_lsn_ must be intact on disk for the scan below.
  if ((fp_fsync.armed() && fp_fsync.should_fail()) ||
      ::fdatasync(fd_) != 0) {
    throw_errno("fdatasync " + path_);
  }
  const JournalScan scan = scan_journal(path_);
  if (scan.base_lsn != base_lsn_ ||
      scan.base_lsn + scan.records.size() != next_lsn_) {
    throw PersistError(PersistErrc::BadValue,
                       path_ + ": journal changed underneath rotate()");
  }
  const std::uint64_t dropped = cut - base_lsn_;

  // Rewrite header + surviving suffix to a sibling and rename over the
  // live file — a crash at any point leaves a valid journal (old or
  // new, never torn).
  ByteWriter out;
  {
    const std::vector<std::uint8_t> hdr = encode_header(cut);
    out.bytes(hdr.data(), hdr.size());
  }
  for (std::uint64_t i = dropped; i < scan.records.size(); ++i) {
    const std::vector<std::uint8_t>& payload = scan.records[i];
    out.u32(static_cast<std::uint32_t>(payload.size()));
    out.u32(crc32(payload));
    out.bytes(payload.data(), payload.size());
  }
  write_file_atomic(path_, out.data());

  // Swap the append fd to the new inode (the old fd still points at
  // the unlinked pre-rotation file). Failing to reopen here poisons
  // the handle: the rename already landed, so appending through the
  // old fd would write into the unlinked inode and silently vanish on
  // the next open. The on-disk journal itself is valid — a reopen
  // recovers fully.
  if ((fp_open.armed() && fp_open.should_fail()) ||
      [&] {
        const int nfd = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
        if (nfd < 0) return true;
        const off_t e = ::lseek(nfd, 0, SEEK_END);
        if (e < 0) {
          ::close(nfd);
          return true;
        }
        ::close(fd_);
        fd_ = nfd;
        committed_bytes_ = static_cast<std::uint64_t>(e);
        return false;
      }()) {
    poisoned_ = true;
    throw PersistError(PersistErrc::IoError,
                       path_ + ": rotate renamed but reopen failed — "
                               "journal poisoned (reopen to recover)",
                       /*retryable=*/false);
  }
  base_lsn_ = cut;
  unsynced_ = 0;  // write_file_atomic fsynced the new file
  return dropped;
}

std::uint64_t Journal::append(std::span<const std::uint8_t> payload) {
  fault::FailPoint& fp_write = EDFKIT_FAULT_POINT("journal.append.write");
  fault::FailPoint& fp_fsync = EDFKIT_FAULT_POINT("journal.append.fsync");
  fault::FailPoint& fp_tback =
      EDFKIT_FAULT_POINT("journal.append.truncate_back");
  const std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    throw PersistError(PersistErrc::IoError,
                       path_ + ": journal poisoned by an earlier failed "
                               "append (reopen to recover)",
                       /*retryable=*/false);
  }
  const std::uint64_t t0 = metrics_ != nullptr ? obs::now_ns() : 0;
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32(payload));
  frame.bytes(payload.data(), payload.size());
  try {
    write_all_faultable(fp_write, fd_, frame.data().data(), frame.size(),
                        path_);
  } catch (...) {
    // Roll the torn frame back to the committed prefix so the journal
    // stays appendable and the failure is retryable. If even that
    // fails, the file may end mid-frame with the fd past the tear:
    // poison this handle — only a reopen (which re-scans and
    // truncates) makes the journal writable again.
    const bool torn_remains =
        (fp_tback.armed() && fp_tback.should_fail()) ||
        ::ftruncate(fd_, static_cast<off_t>(committed_bytes_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(committed_bytes_), SEEK_SET) < 0;
    if (torn_remains) {
      poisoned_ = true;
      throw PersistError(
          PersistErrc::IoError,
          path_ + ": append failed and truncate-back failed — journal "
                  "poisoned (reopen to recover)",
          /*retryable=*/false);
    }
    throw;
  }
  committed_bytes_ += frame.size();
  if (metrics_ != nullptr) {
    metrics_->appends.add();
    metrics_->append_ns.record(obs::now_ns() - t0);
  }
  const std::uint64_t lsn = next_lsn_++;
  ++unsynced_;
  const bool flush =
      opts_.fsync == FsyncPolicy::EveryRecord ||
      (opts_.fsync == FsyncPolicy::EveryN &&
       unsynced_ >= std::max<std::uint64_t>(1, opts_.fsync_interval));
  if (flush) {
    const std::uint64_t f0 = metrics_ != nullptr ? obs::now_ns() : 0;
    // The record is fully written and the LSN advanced: an fsync
    // failure here means "committed but not yet durable" — the page
    // cache still holds the bytes, a crash-free process keeps serving
    // from them, and recovery replays the record if it reached disk.
    // Retryable by classification; a caller that degrades re-probes.
    if ((fp_fsync.armed() && fp_fsync.should_fail()) ||
        ::fdatasync(fd_) != 0) {
      throw_errno("fdatasync " + path_);
    }
    if (metrics_ != nullptr) {
      metrics_->fsyncs.add();
      metrics_->fsync_ns.record(obs::now_ns() - f0);
    }
    unsynced_ = 0;
  }
  return lsn;
}

std::uint64_t Journal::lsn() const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

void Journal::sync() {
  fault::FailPoint& fp = EDFKIT_FAULT_POINT("journal.sync.fsync");
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    const std::uint64_t f0 = metrics_ != nullptr ? obs::now_ns() : 0;
    if ((fp.armed() && fp.should_fail()) || ::fdatasync(fd_) != 0) {
      throw_errno("fdatasync " + path_);
    }
    if (metrics_ != nullptr) {
      metrics_->fsyncs.add();
      metrics_->fsync_ns.record(obs::now_ns() - f0);
    }
  }
  unsynced_ = 0;
}

}  // namespace edfkit::persist
