/// \file tailer.hpp
/// Incremental read-side of the journal: follow a live journal file
/// record by record while a writer keeps appending to it — the feed
/// for primary→standby replication (src/repl/), where the shipper
/// tails each tenant's WAL out-of-process from the serving thread.
///
/// A tailer owns its own O_RDONLY fd and a byte offset; poll() parses
/// the next complete [len][crc][payload] frame and hands the payload
/// out with its LSN. The three non-record outcomes mirror the journal
/// failure taxonomy:
///
///   * CaughtUp  — no complete frame past the offset. Either the
///     writer is idle or a frame is mid-write (a transient torn tail:
///     the bytes will complete). Also returned while the file does not
///     exist yet.
///   * RotatedPast — the writer rotated (new inode) and the new file's
///     base_lsn is above our next LSN: the records we still needed
///     were garbage-collected. The caller must re-seed from a snapshot
///     (seek() repositions after it does).
///   * corruption — a fully-present record whose CRC fails throws
///     PersistError{BadCrc}, exactly like scan_journal(): bit rot is
///     never silently skipped.
///
/// Rotation with a surviving suffix (new base_lsn <= next LSN) is
/// handled transparently: the tailer reopens the new inode and skips
/// forward to where it left off — LSNs are stable across rotation by
/// the journal's contract. A same-inode shrink (the writer's
/// truncate-back of a torn append) below the consumed offset likewise
/// forces a clean rescan.
///
/// Single-threaded: one tailer per (thread, file). The writer may be
/// any thread or another process; only append/rotate semantics are
/// assumed.
#pragma once

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "persist/format.hpp"
#include "persist/journal.hpp"

namespace edfkit::persist {

enum class TailStatus : std::uint8_t {
  Record,       ///< `out` holds the next record
  CaughtUp,     ///< nothing complete to read (yet)
  RotatedPast,  ///< journal rotated beyond us — re-seed, then seek()
};

struct TailedRecord {
  std::uint64_t lsn = 0;
  std::vector<std::uint8_t> payload;
};

class JournalTailer {
 public:
  /// Tail `path` starting at LSN `from_lsn`. The file need not exist
  /// yet (poll() reports CaughtUp until it does).
  explicit JournalTailer(std::string path, std::uint64_t from_lsn = 0);
  JournalTailer(const JournalTailer&) = delete;
  JournalTailer& operator=(const JournalTailer&) = delete;
  ~JournalTailer();

  /// Advance by at most one record. \throws PersistError on CRC
  /// corruption, bad magic/version, or I/O errors (failpoints
  /// journal.tail.open / journal.tail.read inject the latter).
  [[nodiscard]] TailStatus poll(TailedRecord& out);

  /// Next LSN poll() would deliver.
  [[nodiscard]] std::uint64_t next_lsn() const noexcept {
    return next_lsn_;
  }

  /// Reposition at `lsn` (after a re-seed) and force a fresh open.
  void seek(std::uint64_t lsn);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  /// Returns false while the file is missing or its header is still
  /// incomplete (both CaughtUp shapes); true once positioned.
  bool ensure_open(TailStatus& rotated);
  void close_fd() noexcept;

  std::string path_;
  int fd_ = -1;
  ino_t ino_ = 0;
  std::uint64_t next_lsn_ = 0;
  /// Records still to skip after an open before delivery resumes
  /// (reopening mid-file rescans from the header).
  std::uint64_t skip_ = 0;
  /// Byte offset of the next unread byte in the current file.
  std::uint64_t read_off_ = 0;
  /// Unparsed bytes already read from [read_off_ - buf_.size(),
  /// read_off_).
  std::vector<std::uint8_t> buf_;
  /// One CRC mismatch at crc_retry_lsn_ already triggered a rescan
  /// (stale-buffer suppression); a second mismatch at the SAME lsn is
  /// real corruption. Tracked per-lsn: the rescan re-verifies earlier
  /// records, and their passing must not re-arm the suspect's retry.
  bool crc_retried_ = false;
  std::uint64_t crc_retry_lsn_ = 0;
};

}  // namespace edfkit::persist
