#include "persist/format.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/fault.hpp"

namespace edfkit::persist {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw PersistError(PersistErrc::IoError,
                     what + ": " + std::strerror(errno));
}

/// Directory part of `path` ("." when none) for the post-rename fsync.
std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

const char* to_string(PersistErrc e) noexcept {
  switch (e) {
    case PersistErrc::IoError: return "io error";
    case PersistErrc::BadMagic: return "bad magic";
    case PersistErrc::BadVersion: return "bad version";
    case PersistErrc::BadCrc: return "crc mismatch";
    case PersistErrc::Truncated: return "truncated";
    case PersistErrc::BadSection: return "missing section";
    case PersistErrc::BadValue: return "bad value";
  }
  return "?";
}

bool file_exists(const std::string& path) noexcept {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open " + path);
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("read " + path);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  // Injected failures at any of these four sites leave `path` exactly
  // as it was: everything up to the rename touches only the sibling
  // tmp file, and a failed rename leaves the old target in place —
  // the same guarantee a real crash gets (tests/fault asserts it).
  fault::FailPoint& fp_open = EDFKIT_FAULT_POINT("snapshot.tmp.open");
  fault::FailPoint& fp_write = EDFKIT_FAULT_POINT("snapshot.tmp.write");
  fault::FailPoint& fp_fsync = EDFKIT_FAULT_POINT("snapshot.tmp.fsync");
  fault::FailPoint& fp_rename = EDFKIT_FAULT_POINT("snapshot.rename");

  const std::string tmp = path + ".tmp";
  if (fp_open.armed() && fp_open.should_fail()) throw_errno("open " + tmp);
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open " + tmp);
  std::size_t off = 0;
  if (fp_write.armed()) {
    const fault::FaultResult r = fp_write.consume();
    if (r.fire) {
      // A torn tmp write: put short_len real bytes down, then fail.
      // The torn file is the *sibling*, so the live snapshot is safe.
      const std::size_t torn = std::min(r.short_len, bytes.size());
      if (torn != 0 && torn != static_cast<std::size_t>(-1)) {
        (void)!::write(fd, bytes.data(), torn);
      }
      ::close(fd);
      errno = r.err;
      throw_errno("write " + tmp);
    }
  }
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("write " + tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if ((fp_fsync.armed() && fp_fsync.should_fail()) || ::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync " + tmp);
  }
  ::close(fd);
  if ((fp_rename.armed() && fp_rename.should_fail()) ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("rename " + tmp);
  }
  // Make the rename itself durable: fsync the containing directory.
  const int dirfd =
      ::open(dirname_of(path).c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    ::close(dirfd);
  }
}

ByteWriter& SectionWriter::begin(std::uint32_t id) {
  sections_.emplace_back(id, ByteWriter{});
  return sections_.back().second;
}

std::vector<std::uint8_t> SectionWriter::encode() const {
  ByteWriter out;
  out.bytes(kSnapshotMagic, sizeof kSnapshotMagic);
  out.u32(kFormatVersion);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [id, w] : sections_) {
    out.u32(id);
    out.u64(w.size());
    out.u32(crc32(w.data()));
    out.bytes(w.data().data(), w.size());
  }
  return std::move(out).take();
}

void SectionWriter::finish(const std::string& path) const {
  write_file_atomic(path, encode());
}

SectionReader::SectionReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes)) {
  try {
    ByteReader r{std::span<const std::uint8_t>(bytes_)};
    char magic[8];
    for (char& c : magic) c = static_cast<char>(r.u8());
    if (std::memcmp(magic, kSnapshotMagic, sizeof magic) != 0) {
      throw PersistError(PersistErrc::BadMagic, "not an edfkit snapshot");
    }
    const std::uint32_t version = r.u32();
    if (version != kFormatVersion) {
      throw PersistError(PersistErrc::BadVersion,
                         "format version " + std::to_string(version) +
                             " (expected " +
                             std::to_string(kFormatVersion) + ")");
    }
    const std::uint32_t count = r.u32();
    std::size_t off = bytes_.size() - r.remaining();
    for (std::uint32_t i = 0; i < count; ++i) {
      ByteReader h{std::span<const std::uint8_t>(bytes_).subspan(off)};
      const std::uint32_t id = h.u32();
      const std::uint64_t len = h.u64();
      const std::uint32_t crc = h.u32();
      const std::size_t payload = off + 16;
      if (payload + len > bytes_.size()) {
        throw PersistError(PersistErrc::Truncated,
                           "section " + std::to_string(id) +
                               " extends past end of file");
      }
      if (crc32(bytes_.data() + payload, len) != crc) {
        throw PersistError(PersistErrc::BadCrc,
                           "section " + std::to_string(id));
      }
      ids_.push_back(id);
      spans_.emplace_back(payload, static_cast<std::size_t>(len));
      off = payload + len;
    }
  } catch (const std::out_of_range&) {
    throw PersistError(PersistErrc::Truncated, "snapshot header");
  }
}

bool SectionReader::has_section(std::uint32_t id) const noexcept {
  for (const std::uint32_t i : ids_) {
    if (i == id) return true;
  }
  return false;
}

ByteReader SectionReader::section(std::uint32_t id) const {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) return section_at(i);
  }
  throw PersistError(PersistErrc::BadSection,
                     "section " + std::to_string(id));
}

ByteReader SectionReader::section_at(std::size_t i) const {
  const auto [off, len] = spans_.at(i);
  return ByteReader{std::span<const std::uint8_t>(bytes_).subspan(off, len)};
}

}  // namespace edfkit::persist
