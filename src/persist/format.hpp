/// \file format.hpp
/// Versioned, CRC-framed binary container shared by every durable
/// artifact the admission subsystem writes (snapshots today; any future
/// on-disk state should reuse it).
///
/// File layout (all integers little-endian):
///
///   [magic 8B "EDFKSNAP"] [version u32] [section_count u32]
///   section*: [id u32] [len u64] [crc32 u32 of payload] [payload]
///
/// Every section is independently CRC-checked on open, so a bit flip is
/// detected before any payload byte is decoded. Writers publish
/// atomically: the bytes go to `path.tmp`, are fsynced, and rename(2)
/// over `path` — a crash mid-write leaves either the old snapshot or
/// the new one, never a torn file. Readers pull the whole file into
/// memory first (snapshots are small relative to the store they
/// serialize) and hand out bounds-checked ByteReaders per section.
///
/// Error taxonomy: every failure throws PersistError carrying a
/// PersistErrc — callers distinguish "no file" (fine: cold start) from
/// "corrupt file" (must not be silently ignored).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/binio.hpp"

namespace edfkit::persist {

inline constexpr char kSnapshotMagic[8] = {'E', 'D', 'F', 'K',
                                           'S', 'N', 'A', 'P'};
/// v2: AdmissionOptions grew the execution platform (processor count)
/// for global admission mode. v1 snapshots predate the field and are
/// rejected (re-seed from the journal, which is operation-level and
/// version-independent).
inline constexpr std::uint32_t kFormatVersion = 2;

enum class PersistErrc : std::uint8_t {
  IoError,     ///< open/read/write/rename/fsync failed
  BadMagic,    ///< not one of our files
  BadVersion,  ///< a future (or mangled) format version
  BadCrc,      ///< framing intact but payload bits changed
  Truncated,   ///< file ends inside a declared frame
  BadSection,  ///< a required section is missing
  BadValue,    ///< decoded payload violates an invariant
};

[[nodiscard]] const char* to_string(PersistErrc e) noexcept;

/// Whether a failure class is worth retrying. IoError is transient by
/// default (ENOSPC clears when space frees, EIO when the device
/// recovers — the atomic-write discipline means the on-disk artifacts
/// are still consistent, so a later recovery pass can succeed).
/// Everything else describes *content* — wrong magic, corrupt CRC,
/// invariant violations — which no retry repairs.
[[nodiscard]] constexpr bool default_retryable(PersistErrc e) noexcept {
  return e == PersistErrc::IoError;
}

/// The persistence layer's typed exception, carrying both the failure
/// class and its retryability. Callers that degrade on failure (the
/// server's tenant quarantine) re-probe retryable errors and leave
/// fatal ones dark; sites that know better than the default — e.g. a
/// failed truncate-back that leaves a journal poisoned — override it.
class PersistError : public std::runtime_error {
 public:
  PersistError(PersistErrc code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what),
        code_(code),
        retryable_(default_retryable(code)) {}

  PersistError(PersistErrc code, const std::string& what, bool retryable)
      : std::runtime_error(std::string(to_string(code)) + ": " + what),
        code_(code),
        retryable_(retryable) {}

  [[nodiscard]] PersistErrc code() const noexcept { return code_; }
  [[nodiscard]] bool retryable() const noexcept { return retryable_; }

 private:
  PersistErrc code_;
  bool retryable_;
};

/// Write `bytes` to `path` atomically (tmp + fsync + rename + directory
/// fsync). \throws PersistError{IoError}
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Read a whole file. \throws PersistError{IoError} (missing files
/// included — probe with file_exists() for optional artifacts).
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

[[nodiscard]] bool file_exists(const std::string& path) noexcept;

/// Accumulates CRC-framed sections and writes the container atomically.
class SectionWriter {
 public:
  /// Start a section; returns the writer to fill its payload with.
  /// Sections are emitted in begin() order.
  ByteWriter& begin(std::uint32_t id);

  /// Serialize header + all sections into one buffer.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// encode() + write_file_atomic().
  void finish(const std::string& path) const;

 private:
  std::vector<std::pair<std::uint32_t, ByteWriter>> sections_;
};

/// Parses + CRC-verifies a container; hands out per-section readers.
class SectionReader {
 public:
  /// \throws PersistError on any framing/CRC problem.
  explicit SectionReader(std::vector<std::uint8_t> bytes);

  /// Reader over the payload of the first section with `id`.
  /// \throws PersistError{BadSection} when absent.
  [[nodiscard]] ByteReader section(std::uint32_t id) const;
  [[nodiscard]] bool has_section(std::uint32_t id) const noexcept;
  /// Section ids in file order (duplicates allowed — the engine writes
  /// one shard section per shard under the same id family).
  [[nodiscard]] const std::vector<std::uint32_t>& ids() const noexcept {
    return ids_;
  }
  /// Reader over the i-th section (file order). \pre i < ids().size()
  [[nodiscard]] ByteReader section_at(std::size_t i) const;

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint32_t> ids_;
  std::vector<std::pair<std::size_t, std::size_t>> spans_;  ///< offset, len
};

}  // namespace edfkit::persist
