#include "persist/tailer.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/fault.hpp"

namespace edfkit::persist {
namespace {

constexpr std::size_t kHeaderV1Bytes = 8 + 4 + 4;
constexpr std::size_t kHeaderV2Bytes = kHeaderV1Bytes + 8;
constexpr std::size_t kRecordFrameBytes = 4 + 4;  // len + crc
constexpr std::size_t kReadChunk = 64 * 1024;

[[noreturn]] void throw_errno(const std::string& what) {
  throw PersistError(PersistErrc::IoError,
                     what + ": " + std::strerror(errno));
}

/// pread the full range or up to EOF; EINTR-safe.
[[nodiscard]] std::size_t pread_some(int fd, std::uint8_t* dst,
                                     std::size_t len, std::uint64_t off,
                                     const std::string& path) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::pread(fd, dst + got, len - got,
                              static_cast<off_t>(off + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read " + path);
    }
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

JournalTailer::JournalTailer(std::string path, std::uint64_t from_lsn)
    : path_(std::move(path)), next_lsn_(from_lsn) {}

JournalTailer::~JournalTailer() { close_fd(); }

void JournalTailer::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ino_ = 0;
  read_off_ = 0;
  skip_ = 0;
  buf_.clear();
}

void JournalTailer::seek(std::uint64_t lsn) {
  next_lsn_ = lsn;
  close_fd();
}

bool JournalTailer::ensure_open(TailStatus& rotated) {
  if (fd_ >= 0) {
    // The writer rotates by rename (new inode) and rolls torn appends
    // back by truncating in place — detect both and rescan.
    struct stat st{};
    if (::stat(path_.c_str(), &st) != 0) {
      if (errno == ENOENT) {
        close_fd();  // mid-rename window; retry next poll
        return false;
      }
      throw_errno("stat " + path_);
    }
    const std::uint64_t consumed = read_off_ - buf_.size();
    if (st.st_ino == ino_ &&
        static_cast<std::uint64_t>(st.st_size) >= consumed) {
      return true;
    }
    close_fd();
  }

  fault::FailPoint& fp_open = EDFKIT_FAULT_POINT("journal.tail.open");
  if (fp_open.armed() && fp_open.should_fail()) {
    throw_errno("open " + path_);
  }
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return false;  // journal not created yet
    throw_errno("open " + path_);
  }
  fd_ = fd;
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    const int saved = errno;
    close_fd();
    errno = saved;
    throw_errno("fstat " + path_);
  }
  ino_ = st.st_ino;

  std::uint8_t hdr[kHeaderV2Bytes];
  const std::size_t got = pread_some(fd_, hdr, sizeof hdr, 0, path_);
  if (got < kHeaderV1Bytes) {
    // Torn creation — the writer has not committed a header yet.
    if (got != 0 &&
        std::memcmp(hdr, kJournalMagic,
                    std::min<std::size_t>(got, 8)) != 0) {
      close_fd();
      throw PersistError(PersistErrc::BadMagic, path_);
    }
    close_fd();
    return false;
  }
  if (std::memcmp(hdr, kJournalMagic, 8) != 0) {
    close_fd();
    throw PersistError(PersistErrc::BadMagic, path_);
  }
  ByteReader r{std::span<const std::uint8_t>(hdr, got).subspan(8)};
  const std::uint32_t version = r.u32();
  std::uint64_t base = 0;
  std::size_t header_bytes = kHeaderV1Bytes;
  if (version == kJournalVersion) {
    if (got < kHeaderV2Bytes) {
      close_fd();  // base_lsn field still mid-write
      return false;
    }
    (void)r.u32();  // reserved
    base = r.u64();
    header_bytes = kHeaderV2Bytes;
  } else if (version != 1) {
    close_fd();
    throw PersistError(PersistErrc::BadVersion,
                       path_ + ": journal version " +
                           std::to_string(version));
  }
  if (next_lsn_ < base) {
    // Rotated past us: the records we still need are gone. Only a
    // snapshot re-seed (then seek()) can resume.
    close_fd();
    rotated = TailStatus::RotatedPast;
    return false;
  }
  skip_ = next_lsn_ - base;
  read_off_ = header_bytes;
  buf_.clear();
  return true;
}

TailStatus JournalTailer::poll(TailedRecord& out) {
  fault::FailPoint& fp_read = EDFKIT_FAULT_POINT("journal.tail.read");
  const auto fill = [&]() -> bool {
    if (fp_read.armed() && fp_read.should_fail()) {
      throw_errno("read " + path_);
    }
    std::uint8_t chunk[kReadChunk];
    const std::size_t n =
        pread_some(fd_, chunk, sizeof chunk, read_off_, path_);
    if (n == 0) return false;
    buf_.insert(buf_.end(), chunk, chunk + n);
    read_off_ += n;
    return true;
  };
  // Never cache a partial frame across polls: the writer may truncate
  // a torn append back and overwrite those bytes with a fresh record,
  // and if the file regrows past our offset the stat-based rescan in
  // ensure_open() cannot tell. Rewinding to the frame boundary makes
  // the next poll re-read the tail bytes fresh (page-cached, cheap).
  const auto caught_up = [&]() -> TailStatus {
    read_off_ -= buf_.size();
    buf_.clear();
    return TailStatus::CaughtUp;
  };
  for (;;) {
    TailStatus shape = TailStatus::CaughtUp;
    if (!ensure_open(shape)) return shape;
    while (buf_.size() < kRecordFrameBytes) {
      if (!fill()) return caught_up();  // idle or torn frame
    }
    ByteReader fr{std::span<const std::uint8_t>(buf_)};
    const std::uint32_t len = fr.u32();
    const std::uint32_t crc = fr.u32();
    while (buf_.size() < kRecordFrameBytes + len) {
      if (!fill()) return caught_up();  // payload mid-write
    }
    const std::uint8_t* payload = buf_.data() + kRecordFrameBytes;
    const std::uint64_t lsn = next_lsn_ - skip_;
    if (crc32(payload, len) != crc) {
      // A live writer may have truncated a torn append back AFTER we
      // buffered its bytes, then appended fresh ones — our buffer is
      // stale, not the file. One full rescan settles it; a mismatch
      // that survives the rescan at the SAME lsn is real corruption,
      // never skipped (same contract as scan_journal()). The retry is
      // tracked per-lsn: the rescan re-verifies every earlier record,
      // and those passing must not grant the suspect a fresh retry.
      if (!crc_retried_ || crc_retry_lsn_ != lsn) {
        crc_retried_ = true;
        crc_retry_lsn_ = lsn;
        close_fd();
        continue;
      }
      throw PersistError(PersistErrc::BadCrc,
                         path_ + ": record at lsn " + std::to_string(lsn));
    }
    if (crc_retried_ && lsn >= crc_retry_lsn_) crc_retried_ = false;
    const bool deliver = skip_ == 0;
    if (deliver) {
      out.lsn = next_lsn_++;
      out.payload.assign(payload, payload + len);
    } else {
      --skip_;
    }
    buf_.erase(buf_.begin(),
               buf_.begin() +
                   static_cast<std::ptrdiff_t>(kRecordFrameBytes + len));
    if (deliver) return TailStatus::Record;
  }
}

}  // namespace edfkit::persist
