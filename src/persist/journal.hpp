/// \file journal.hpp
/// Append-only, CRC-per-record operation journal — the write-ahead half
/// of the admission subsystem's durability story (snapshots are the
/// checkpoint half; recover() composes the two).
///
/// File layout (little-endian):
///
///   [magic 8B "EDFKJRNL"] [version u32] [reserved u32] [base_lsn u64]
///   record*: [len u32] [crc32 u32 of payload] [payload len bytes]
///
/// (Version 1 files — no base_lsn field, implicitly base 0 — are still
/// readable; rotate() and create() write version 2.)
///
/// Records are opaque byte payloads here; the admission layer defines
/// their encoding (admission/snapshot.hpp). Each record carries its own
/// CRC, so recovery distinguishes the two failure shapes precisely:
///
///   * torn tail — the file ends inside the final record's frame (the
///     classic crash-mid-append). The partial record is DROPPED, not
///     fatal: the operation never committed. open_append() truncates
///     the tail so subsequent appends extend a clean prefix.
///   * corruption — a record is fully present but its CRC does not
///     match. That is bit rot, not a crash artifact; scan_journal()
///     throws PersistError{BadCrc} rather than silently losing suffix
///     operations.
///
/// The fsync policy knob trades durability for append latency:
///   None        — rely on the OS page cache (a *process* crash loses
///                 nothing; an OS/power crash may lose the tail).
///   EveryRecord — fdatasync per append: a committed decision survives
///                 power loss, at ~one device flush per operation.
///   EveryN      — fdatasync every `fsync_interval` records: bounded
///                 loss window, amortized flush cost.
///
/// append() is thread-safe (internal mutex): the engine journals from
/// concurrent admit paths. LSNs are record indices (0-based): a
/// snapshot taken at lsn L reflects exactly records [0, L), and
/// recovery replays [L, end).
///
/// Compaction: rotate(L) garbage-collects every record below LSN L —
/// the prefix a snapshot at LSN >= L has already folded in — by
/// rewriting the file (atomic tmp + rename) with base_lsn = L and only
/// the surviving suffix. LSNs are stable across rotation: the i-th
/// record of a rotated file has LSN base_lsn + i, so a snapshot/journal
/// pair keeps composing exactly as before while long-lived journals
/// stop growing without bound.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "persist/format.hpp"

namespace edfkit::obs {
struct JournalInstruments;
}

namespace edfkit::persist {

inline constexpr char kJournalMagic[8] = {'E', 'D', 'F', 'K',
                                          'J', 'R', 'N', 'L'};
inline constexpr std::uint32_t kJournalVersion = 2;

enum class FsyncPolicy : std::uint8_t { None, EveryRecord, EveryN };

struct JournalOptions {
  FsyncPolicy fsync = FsyncPolicy::None;
  /// Records between fdatasyncs under FsyncPolicy::EveryN.
  std::uint64_t fsync_interval = 64;
};

/// Result of scanning a journal file front to back.
struct JournalScan {
  /// Every intact record's payload, in append order. records[i] has
  /// LSN base_lsn + i.
  std::vector<std::vector<std::uint8_t>> records;
  /// LSN of the first record in the file: 0 for a never-rotated
  /// journal, the GC cut for a rotated one.
  std::uint64_t base_lsn = 0;
  /// The file ended inside the final record's frame; the partial
  /// record was dropped (crash mid-append, not an error).
  bool torn_tail = false;
  /// Bytes of the valid prefix (header + intact records) — what
  /// open_append() truncates to.
  std::uint64_t valid_bytes = 0;
};

/// Read + verify a journal front to back. Torn tails are dropped (see
/// file header); CRC corruption throws PersistError{BadCrc}; a missing
/// file throws PersistError{IoError}.
[[nodiscard]] JournalScan scan_journal(const std::string& path);

class Journal {
 public:
  /// Create (or truncate) a fresh journal at `path`. A nonzero
  /// `base_lsn` creates it empty-but-rotated — the first append gets
  /// LSN base_lsn, exactly as if records [0, base_lsn) had been
  /// garbage-collected. A replication follower seeded from a snapshot
  /// at LSN L starts its local journal this way, so the LSN spaces of
  /// primary and standby stay aligned.
  [[nodiscard]] static Journal create(const std::string& path,
                                      JournalOptions opts = {},
                                      std::uint64_t base_lsn = 0);
  /// Open an existing journal for append: scans it (throwing on
  /// corruption), truncates any torn tail, and resumes LSNs after the
  /// last intact record.
  [[nodiscard]] static Journal open_append(const std::string& path,
                                           JournalOptions opts = {});

  Journal(Journal&& o) noexcept;
  Journal& operator=(Journal&&) = delete;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Append one record; returns its LSN. Thread-safe. Durability per
  /// the fsync policy. \throws PersistError{IoError}
  ///
  /// Failure atomicity: a failed (or torn) frame write is rolled back
  /// by truncating the file to the last committed record before the
  /// error propagates, so the journal stays appendable and a scan sees
  /// exactly the committed prefix — the error is *retryable*. If the
  /// truncate-back itself fails the file may end mid-frame with the fd
  /// past the torn bytes; the journal marks itself poisoned and every
  /// later append throws a *fatal* PersistError (recovery via
  /// open_append(), which re-scans and truncates, is the only way
  /// forward — exactly what the server's tenant quarantine does).
  std::uint64_t append(std::span<const std::uint8_t> payload);

  /// Next LSN to be assigned == records committed so far (across every
  /// rotation — LSNs are stable).
  [[nodiscard]] std::uint64_t lsn() const noexcept;

  /// LSN of the oldest record still in the file (== the last rotate()
  /// cut, 0 if never rotated). Records [base_lsn, lsn()) are on disk.
  [[nodiscard]] std::uint64_t base_lsn() const noexcept;

  /// Garbage-collect every record below `keep_from_lsn` — the prefix a
  /// snapshot taken at LSN >= keep_from_lsn has already folded in. The
  /// surviving suffix is rewritten to a fresh file with
  /// base_lsn = keep_from_lsn and atomically renamed over path()
  /// (a crash mid-rotate leaves the old journal intact). The cut is
  /// clamped to [base_lsn(), lsn()]; rotating at or below the current
  /// base is a no-op. Thread-safe (appends block for the duration).
  /// \returns the number of records dropped.
  /// \throws PersistError{IoError} on any filesystem failure (the
  /// original journal is still valid in that case).
  std::uint64_t rotate(std::uint64_t keep_from_lsn);

  /// Force an fdatasync now (e.g. a SIGTERM flush), regardless of
  /// policy.
  void sync();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Observability (src/obs/): while attached, every append records
  /// its frame-write latency (journal_append_ns, fdatasync excluded)
  /// and every policy- or sync()-triggered flush its fdatasync latency
  /// (journal_fsync_ns). Pass nullptr to detach. The instruments must
  /// outlive the attachment.
  void attach_obs(const obs::JournalInstruments* metrics) noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    metrics_ = metrics;
  }

  /// True when a failed append could not be rolled back (see append());
  /// the file may end mid-frame and this handle refuses further writes.
  [[nodiscard]] bool poisoned() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return poisoned_;
  }

 private:
  Journal(int fd, std::string path, JournalOptions opts,
          std::uint64_t next_lsn, std::uint64_t base_lsn,
          std::uint64_t committed_bytes) noexcept;

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  JournalOptions opts_;
  std::uint64_t next_lsn_ = 0;
  std::uint64_t base_lsn_ = 0;
  std::uint64_t unsynced_ = 0;
  /// File size through the last fully-written record — the
  /// truncate-back target when an append fails partway.
  std::uint64_t committed_bytes_ = 0;
  bool poisoned_ = false;
  const obs::JournalInstruments* metrics_ = nullptr;
};

}  // namespace edfkit::persist
