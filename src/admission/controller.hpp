/// \file controller.hpp
/// Online admission controller: a long-lived, mutable task-set that
/// answers admit/remove/query requests through an escalation ladder
/// instead of a from-scratch analysis per decision.
///
/// Ladder (cheapest rung that decides wins):
///   1. Utilization — O(1) from the incrementally maintained exact
///      utilization: U > 1 rejects with proof; U <= 1 with no
///      constrained-deadline resident accepts with proof (EDF
///      optimality, cf. liu_layland_test).
///   2. Approximate demand — one O(n*k) checkpoint scan of the
///      epsilon-approximated dbf' (incremental_dbf.hpp). A pass is a
///      feasibility proof (sound accept); a fail escalates.
///   3. Exact fallback — a configurable exact test (QPA by default)
///      over a materialized snapshot; this is the only rung that pays
///      from-scratch cost, and only borderline sets reach it.
///
/// Removals are free: the demand bound function decreases pointwise and
/// utilization decreases, so a feasible resident set stays feasible —
/// the controller's standing invariant. Every decision returns a
/// FeasibilityResult-compatible instrumentation record.
///
/// Global mode (AdmissionOptions::platform.m > 1): one controller admits
/// against m identical processors under global EDF. The ladder reshapes
/// onto the multiprocessor portfolio (analysis/multi/global_tests.hpp),
/// mapped onto the same rung names so stats, traces, and wire STATS stay
/// comparable with partitioned deployments:
///   Utilization — U > m capacity reject (exact rationals) + the GFB
///                 density accept, both O(n);
///   Approximate — the window sufficient tests (BCL, iterated BCL,
///                 load/busy-window), cheapest first;
///   Exact       — global RTA, then the decisive m-processor simulation
///                 rung (a sim miss is an infeasibility proof; accepts
///                 carry periodic-interpretation semantics, see
///                 sim/oracle.hpp).
/// Monotone removal safety holds unchanged: every global sufficient
/// condition is monotone in the task set, so the standing invariant
/// survives removals. With return_certificate, every decided outcome
/// carries a MultiprocessorCertificate (query/certificate.hpp) built
/// over the widened set while it is still materialized.
///
/// Not thread-safe; AdmissionEngine provides sharding + locking.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "admission/incremental_dbf.hpp"
#include "core/analyzer.hpp"
#include "model/platform.hpp"
#include "query/certificate.hpp"

namespace edfkit {

namespace persist {
class Journal;
}

namespace obs {
class Obs;
class TraceRing;
struct AdmissionInstruments;
}  // namespace obs

/// Which ladder rung produced a decision.
enum class AdmissionRung : std::uint8_t {
  Structural,   ///< capacity policy (max_tasks / utilization_cap), no analysis
  Utilization,  ///< rung 1: exact U-vs-1 classification
  Approximate,  ///< rung 2: epsilon-approximate demand scan
  Exact,        ///< rung 3: exact fallback test
};
inline constexpr std::size_t kAdmissionRungs = 4;

[[nodiscard]] const char* to_string(AdmissionRung r) noexcept;

struct AdmissionOptions {
  /// Accuracy of the approximate rung; k = ceil(1/epsilon) checkpoints
  /// per task. Smaller epsilon accepts more sets without escalating but
  /// scans more checkpoints. (Refinement deepens individual tasks on
  /// demand, so the paper's standard 0.25 is a good default.)
  double epsilon = 0.25;
  /// Exact test run when the approximate rung cannot accept. Must be a
  /// kind with is_exact() == true (checked at construction).
  TestKind exact_fallback = TestKind::Qpa;
  /// Options forwarded to the fallback test.
  AnalyzerOptions analyzer;
  /// Policy headroom: reject arrivals that would push the utilization
  /// estimate above this value, before any analysis. 1.0 disables.
  double utilization_cap = 1.0;
  /// Reject arrivals beyond this resident count. 0 disables.
  std::size_t max_tasks = 0;
  /// Skip rung 3 entirely: borderline arrivals are rejected after the
  /// approximate scan (bounded worst-case decision latency).
  bool skip_exact = false;
  /// Cached-slack index for the approximate rung (incremental_dbf.hpp):
  /// scans fast-forward over checkpoint buckets proven slack by earlier
  /// scans. On, the index engages adaptively by resident count (small
  /// sets never pay its maintenance). Off = the pre-index full-rescan
  /// behavior (the perf_suite baseline); verdicts are identical either
  /// way.
  bool use_slack_index = true;
  /// Compact the checkpoint store on every removal instead of
  /// tombstoning emptied checkpoints (the pre-tombstone behavior, kept
  /// selectable for the perf_suite removal baseline and differential
  /// tests). Verdicts are identical either way.
  bool eager_compaction = false;
  /// On a rejected admit_group, also restore the refinement levels the
  /// failing scan raised, leaving the store bit-identical to its
  /// pre-call state. Off (default), a rejected group keeps the learned
  /// refinement — exactly like single-task rejects — which is what
  /// keeps steady-state scans cheap under sustained group churn;
  /// membership and aggregates are restored exact-inverse either way.
  bool rollback_refinements = false;
  /// Attach a machine-checkable certificate (query/certificate.hpp) to
  /// every decision that proves something: a feasibility certificate on
  /// admits, an infeasibility certificate on proven rejects (policy and
  /// Unknown rejects carry none). The caller — or a remote client, over
  /// the wire — can then verify() the verdict independently against its
  /// own view of the set. Off by default: each admit pays one
  /// certificate-construction sweep over the resident set, and journal
  /// replay re-pays it (the option is serialized with the controller).
  bool return_certificate = false;
  /// Execution platform. m == 1 (default) is the classic uniprocessor
  /// ladder; m > 1 switches the controller into *global* admission mode
  /// (see the file comment). The utilization_cap policy gate scales with
  /// m (a cap of 0.9 means 0.9 * m admitted utilization); epsilon and
  /// exact_fallback apply only to the uniprocessor ladder. Serialized
  /// with the controller (snapshot format v2).
  Platform platform;
};

/// One admit/reject decision, instrumented like the offline tests.
struct AdmissionDecision {
  bool admitted = false;
  /// Handle for a later remove(); kInvalidTaskId when rejected.
  TaskId id = kInvalidTaskId;
  AdmissionRung rung = AdmissionRung::Structural;
  /// Verdict semantics: Feasible = proof the widened set is feasible;
  /// Infeasible = proof it is not; Unknown = rejected by policy or by a
  /// sufficient rung without an infeasibility proof.
  FeasibilityResult analysis;
  /// Monotone per-controller decision counter.
  std::uint64_t sequence = 0;
  /// With AdmissionOptions::return_certificate: feasibility certificate
  /// over the post-admit resident set, or infeasibility certificate for
  /// a proven reject. kind == None otherwise (option off, policy gate,
  /// or Unknown verdict).
  Certificate certificate;

  [[nodiscard]] std::string to_string() const;
};

/// One all-or-nothing group decision: either every task of the group
/// was admitted (ids in group order) or the resident set is unchanged.
struct GroupDecision {
  bool admitted = false;
  /// One handle per group member, in order; empty when rejected.
  std::vector<TaskId> ids;
  AdmissionRung rung = AdmissionRung::Structural;
  /// Verdict semantics as AdmissionDecision, for the *whole widened
  /// set* (resident + group): one scan decides the group.
  FeasibilityResult analysis;
  std::uint64_t sequence = 0;
  /// Certificate semantics as AdmissionDecision, for the whole widened
  /// set.
  Certificate certificate;

  [[nodiscard]] std::string to_string() const;
};

/// Running controller counters.
struct AdmissionStats {
  std::uint64_t arrivals = 0;  ///< tasks offered (group members count)
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t removals = 0;
  /// Group decisions taken (each also counts its tasks in arrivals and
  /// one decision in by_rung).
  std::uint64_t groups = 0;
  /// Decisions settled per rung (indexed by AdmissionRung).
  std::array<std::uint64_t, kAdmissionRungs> by_rung{};
  /// Sum of FeasibilityResult::effort() over all decisions.
  std::uint64_t total_effort = 0;

  [[nodiscard]] std::string to_string() const;
  /// Machine-readable rendering (keys mirror the field names; by_rung
  /// is an object keyed by rung name).
  [[nodiscard]] std::string to_json() const;
};

class AdmissionController {
 public:
  /// \throws std::invalid_argument on non-exact fallback kind, an
  /// epsilon outside (0, 1], or an invalid platform.
  explicit AdmissionController(AdmissionOptions opts = {});

  /// True when the controller admits against m > 1 processors under
  /// global EDF (AdmissionOptions::platform).
  [[nodiscard]] bool global_mode() const noexcept {
    return !opts_.platform.uniprocessor();
  }
  [[nodiscard]] const Platform& platform() const noexcept {
    return opts_.platform;
  }

  /// Admit `t` iff the widened resident set is provably EDF-feasible
  /// (subject to the policy gates). On rejection the resident set is
  /// unchanged. \throws std::invalid_argument for invalid tasks.
  [[nodiscard]] AdmissionDecision try_admit(const Task& t);

  /// Admit the whole group atomically (all-or-nothing): the group's
  /// checkpoints are inserted in one pass and a *single* certified scan
  /// decides the widened set — one scan for g tasks instead of g scans.
  /// On rejection every insertion is rolled back exact-inverse: the
  /// resident membership and every aggregate return to their pre-call
  /// values (with rollback_refinements, the refinement levels raised by
  /// the failing scan too — a fully bit-identical store). An empty
  /// group is trivially admitted. \throws std::invalid_argument for
  /// invalid tasks (before any mutation).
  [[nodiscard]] GroupDecision admit_group(std::span<const Task> group);

  /// Withdraw a resident task. Feasibility is preserved by
  /// monotonicity; with deferred compaction this is O(level) amortized.
  /// \returns false for unknown ids.
  bool remove(TaskId id);

  /// Withdraw a whole group (unknown ids skipped) with the per-update
  /// overhead amortized across the group — the departure path for
  /// group-admitted tasks. \returns the number withdrawn.
  std::size_t remove_group(std::span<const TaskId> ids);

  [[nodiscard]] const Task* find(TaskId id) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return demand_.size(); }
  [[nodiscard]] bool empty() const noexcept { return demand_.empty(); }
  [[nodiscard]] double utilization() const noexcept {
    return demand_.utilization_double();
  }
  [[nodiscard]] const AdmissionOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] const AdmissionStats& stats() const noexcept { return stats_; }

  /// The resident set, zero-copy (see IncrementalDemand::resident).
  [[nodiscard]] const TaskSet& resident() const noexcept {
    return demand_.resident();
  }

  /// Wait-free epoch-consistent snapshot of the demand store's
  /// aggregates — safe to call concurrently with the one mutating
  /// thread (the engine's wait-free stats path reads this without the
  /// shard mutex).
  [[nodiscard]] StoreHeader demand_header() const noexcept {
    return demand_.header();
  }

  /// Materialize a copy of the resident set. O(n).
  [[nodiscard]] TaskSet snapshot() const { return demand_.snapshot(); }

  /// From-scratch analysis of the resident set (verification path; the
  /// standing invariant is that this is Feasible for exact kinds).
  [[nodiscard]] FeasibilityResult analyze_resident(
      TestKind kind = TestKind::ProcessorDemand) const;

  /// Verify the incremental aggregates against a from-scratch rebuild.
  [[nodiscard]] bool verify_consistency() const {
    return demand_.matches_rebuild();
  }

  /// Write-ahead journaling (admission/snapshot.hpp): while attached,
  /// every offered operation — try_admit, admit_group, remove,
  /// remove_group, *including* rejected admits, whose tentative
  /// insert/remove cycle consumes a TaskId and may refine levels —
  /// appends one record before it executes, so replaying the journal
  /// through these same entry points reproduces the store
  /// bit-identically. Pass nullptr to detach (recovery replays
  /// detached). The journal must outlive the attachment.
  void attach_journal(persist::Journal* journal) noexcept {
    journal_ = journal;
  }
  [[nodiscard]] persist::Journal* journal() const noexcept {
    return journal_;
  }

  /// Observability (src/obs/): while attached, every decision updates
  /// the ladder's per-rung counters + cost histograms and pushes one
  /// DecisionTrace into the recorder's ring for `shard`. Purely
  /// read-side — verdicts, ids and the serialized store are unchanged,
  /// so a recovered controller may attach where its crashed twin did
  /// not. Pass nullptr (or a disabled Obs) to detach. The Obs must
  /// outlive the attachment.
  void attach_obs(obs::Obs* obs, std::size_t shard = 0);

 private:
  /// Snapshot save/load reaches every field (admission/snapshot.cpp).
  friend struct SnapshotCodec;

  AdmissionOptions opts_;
  IncrementalDemand demand_;
  AdmissionStats stats_;
  std::uint64_t sequence_ = 0;
  persist::Journal* journal_ = nullptr;
  /// Not serialized: observability is runtime wiring, not store state.
  const obs::AdmissionInstruments* metrics_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
};

/// The ladder's test selection as analyzer kinds, in escalation order —
/// feed to BatchConfig::tests to preview offline what the online
/// controller would run (see examples/batch_analyze.cpp --ladder).
[[nodiscard]] std::vector<TestKind> admission_ladder_tests(
    const AdmissionOptions& opts = {});

}  // namespace edfkit
