#include "admission/replay.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "admission/snapshot.hpp"
#include "gen/scenario.hpp"
#include "obs/obs.hpp"

namespace edfkit {
namespace {

/// Fold one finished replay's counters into the replay_* metrics —
/// zero hot-path cost: the driver's own bookkeeping already holds
/// every number.
void record_replay(obs::Obs* obs, std::size_t trace_events,
                   const ReplayStats& out) {
  if (obs == nullptr || !obs->config().metrics) return;
  obs::ReplayInstruments* const r = obs->replay();
  r->events.add(trace_events);
  r->arrivals.add(out.arrivals);
  r->departures.add(out.departures);
  r->crashes.add(out.crashes);
  r->snapshots.add(out.snapshots);
}

/// Refill the arrival pool by flattening one scenario set.
void refill_pool(std::vector<Task>& pool, Rng& rng, const ChurnConfig& cfg) {
  TaskSet set;
  switch (cfg.family) {
    case ChurnConfig::Family::Small:
      set = draw_small_set(rng, cfg.pool_utilization);
      break;
    case ChurnConfig::Family::Paper:
      set = draw_fig8_set(rng, cfg.pool_utilization);
      break;
    case ChurnConfig::Family::Fixed: {
      GeneratorConfig g;
      g.tasks = cfg.fixed_tasks;
      g.utilization = cfg.pool_utilization;
      set = generate_task_set(rng, g);
      break;
    }
  }
  pool.insert(pool.end(), set.begin(), set.end());
}

/// Shared replay core: `admit` returns (admitted, rung, effort) for an
/// arrival event (single or group — the event says which); `depart`
/// returns the number of tasks withdrawn (0 = the key was never
/// admitted or already left); `utilization` is a cheap (lock-free)
/// load probe — resident counts derive from the replay's own
/// bookkeeping.
template <typename AdmitFn, typename DepartFn, typename UtilFn,
          typename CrashFn>
ReplayStats replay_core(const std::vector<TraceEvent>& trace, AdmitFn admit,
                        DepartFn depart, UtilFn utilization,
                        CrashFn crash) {
  ReplayStats out;
  std::size_t resident = 0;
  for (const TraceEvent& ev : trace) {
    if (ev.op == TraceOp::Crash) {
      ++out.crashes;
      crash();
      continue;
    }
    if (ev.op != TraceOp::Depart) {
      const std::size_t tasks =
          ev.op == TraceOp::Arrive ? 1 : ev.group.size();
      out.arrivals += tasks;
      if (ev.op == TraceOp::ArriveGroup) ++out.groups;
      const auto [admitted, rung, effort] = admit(ev);
      ++out.by_rung[static_cast<std::size_t>(rung)];
      out.total_effort += effort;
      (admitted ? out.admitted : out.rejected) += tasks;
      if (admitted) {
        resident += tasks;
        out.peak_utilization =
            std::max(out.peak_utilization, utilization());
      }
    } else {
      ++out.departures;
      const std::size_t gone = depart(ev);
      if (gone == 0) {
        ++out.skipped_departures;
      } else {
        resident -= gone;
      }
    }
    out.peak_resident = std::max(out.peak_resident, resident);
  }
  return out;
}

}  // namespace

void ChurnConfig::validate() const {
  if (depart_probability < 0.0 || depart_probability > 1.0) {
    throw std::invalid_argument(
        "ChurnConfig: depart_probability in [0,1] required");
  }
  if (!(pool_utilization > 0.0)) {
    throw std::invalid_argument(
        "ChurnConfig: pool_utilization > 0 required");
  }
  if (group_probability < 0.0 || group_probability > 1.0) {
    throw std::invalid_argument(
        "ChurnConfig: group_probability in [0,1] required");
  }
  if (group_probability > 0.0 && group_size == 0) {
    throw std::invalid_argument("ChurnConfig: group_size >= 1 required");
  }
  if (crash_probability < 0.0 || crash_probability > 1.0) {
    throw std::invalid_argument(
        "ChurnConfig: crash_probability in [0,1] required");
  }
}

std::vector<TraceEvent> generate_churn_trace(Rng& rng,
                                             const ChurnConfig& cfg) {
  cfg.validate();
  std::vector<TraceEvent> trace;
  trace.reserve(cfg.warmup_arrivals + cfg.events);
  std::vector<Task> pool;
  std::size_t pool_next = 0;
  std::vector<std::uint64_t> live;  // keys arrivable to a departure
  std::uint64_t next_key = 1;

  const auto draw_task = [&]() -> const Task& {
    if (pool_next == pool.size()) refill_pool(pool, rng, cfg);
    return pool[pool_next++];
  };
  const auto arrive = [&] {
    TraceEvent ev;
    ev.key = next_key++;
    if (cfg.group_probability > 0.0 &&
        rng.bernoulli(cfg.group_probability)) {
      ev.op = TraceOp::ArriveGroup;
      ev.group.reserve(cfg.group_size);
      for (std::size_t i = 0; i < cfg.group_size; ++i) {
        ev.group.push_back(draw_task());
      }
    } else {
      ev.op = TraceOp::Arrive;
      ev.task = draw_task();
    }
    live.push_back(ev.key);
    trace.push_back(std::move(ev));
  };

  for (std::size_t i = 0; i < cfg.warmup_arrivals; ++i) arrive();
  for (std::size_t i = 0; i < cfg.events; ++i) {
    if (cfg.crash_probability > 0.0 &&
        rng.bernoulli(cfg.crash_probability)) {
      TraceEvent ev;
      ev.op = TraceOp::Crash;
      trace.push_back(std::move(ev));
      continue;
    }
    if (!live.empty() && rng.bernoulli(cfg.depart_probability)) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_time(0, static_cast<Time>(live.size()) - 1));
      TraceEvent ev;
      ev.op = TraceOp::Depart;
      ev.key = live[pick];
      live[pick] = live.back();
      live.pop_back();
      trace.push_back(ev);
    } else {
      arrive();
    }
  }
  return trace;
}

std::string ReplayStats::to_string() const {
  std::ostringstream os;
  os << "arrivals=" << arrivals << " admitted=" << admitted << " rejected="
     << rejected << " groups=" << groups << " departures=" << departures
     << " (skipped " << skipped_departures << ") peak-resident="
     << peak_resident
     << " peak-U=" << peak_utilization << " effort=" << total_effort
     << " rungs[";
  for (std::size_t i = 0; i < by_rung.size(); ++i) {
    if (i != 0) os << " ";
    os << edfkit::to_string(static_cast<AdmissionRung>(i)) << "="
       << by_rung[i];
  }
  os << "]";
  if (crashes != 0) os << " crashes=" << crashes;
  if (snapshots != 0) os << " snapshots=" << snapshots;
  return os.str();
}

namespace {

/// Controller replay body shared by the plain and persistence-enabled
/// entries: `crash` handles TraceOp::Crash, `after_event` runs once per
/// non-crash event (the snapshot cadence hook).
template <typename CrashFn, typename AfterFn>
ReplayStats replay_controller(const std::vector<TraceEvent>& trace,
                              AdmissionController& controller,
                              CrashFn crash, AfterFn after_event) {
  std::unordered_map<std::uint64_t, std::vector<TaskId>> resident;
  return replay_core(
      trace,
      [&](const TraceEvent& ev) {
        if (ev.op == TraceOp::ArriveGroup) {
          GroupDecision g = controller.admit_group(ev.group);
          if (g.admitted) resident.emplace(ev.key, std::move(g.ids));
          after_event();
          return std::tuple(g.admitted, g.rung, g.analysis.effort());
        }
        const AdmissionDecision d = controller.try_admit(ev.task);
        if (d.admitted) {
          resident.emplace(ev.key, std::vector<TaskId>{d.id});
        }
        after_event();
        return std::tuple(d.admitted, d.rung, d.analysis.effort());
      },
      [&](const TraceEvent& ev) {
        const auto it = resident.find(ev.key);
        if (it == resident.end()) {
          after_event();
          return std::size_t{0};
        }
        const std::size_t gone = controller.remove_group(it->second);
        resident.erase(it);
        after_event();
        return gone;
      },
      [&] { return controller.utilization(); }, crash);
}

}  // namespace

ReplayStats replay_trace(const std::vector<TraceEvent>& trace,
                         AdmissionController& controller, obs::Obs* obs) {
  const ReplayStats out =
      replay_controller(trace, controller, [] {}, [] {});
  record_replay(obs, trace.size(), out);
  return out;
}

ReplayStats replay_trace(const std::vector<TraceEvent>& trace,
                         AdmissionController& controller,
                         const ReplayPersistence& persistence,
                         obs::Obs* obs) {
  persist::JournalOptions jopts;
  jopts.fsync = persistence.fsync;
  std::optional<persist::Journal> journal;
  const auto open_journal = [&] {
    if (persistence.journal_path.empty()) return;
    journal.emplace(
        persist::Journal::open_append(persistence.journal_path, jopts));
    if (obs != nullptr && obs->config().metrics) {
      journal->attach_obs(obs->journal());
    }
    controller.attach_journal(&*journal);
  };
  open_journal();

  std::size_t since_snapshot = 0;
  std::uint64_t snapshots = 0;
  const auto maybe_snapshot = [&] {
    if (persistence.snapshot_path.empty() ||
        persistence.snapshot_every == 0) {
      return;
    }
    if (++since_snapshot < persistence.snapshot_every) return;
    since_snapshot = 0;
    save_snapshot(controller, persistence.snapshot_path,
                  journal.has_value() ? journal->lsn() : 0);
    ++snapshots;
  };

  ReplayStats out;
  try {
    out = replay_controller(
        trace, controller,
        [&] {
          // Simulated process death: drop the journal handle, recover
          // the controller in place from the durable artifacts, and
          // resume. Recovered ids are bit-identical, so the
          // caller-visible key bookkeeping stays valid across the
          // crash.
          controller.attach_journal(nullptr);
          journal.reset();
          (void)recover(controller, persistence.snapshot_path,
                        persistence.journal_path);
          open_journal();
        },
        maybe_snapshot);
  } catch (...) {
    // The journal dies with this scope — never leave the controller
    // holding a pointer to it.
    controller.attach_journal(nullptr);
    throw;
  }
  out.snapshots = snapshots;
  controller.attach_journal(nullptr);
  record_replay(obs, trace.size(), out);
  return out;
}

ReplayStats replay_trace(const std::vector<TraceEvent>& trace,
                         AdmissionEngine& engine, obs::Obs* obs) {
  std::unordered_map<std::uint64_t, std::vector<GlobalTaskId>> resident;
  const ReplayStats out = replay_core(
      trace,
      [&](const TraceEvent& ev) {
        if (ev.op == TraceOp::ArriveGroup) {
          GroupPlacement g = engine.admit_group(ev.group);
          if (g.admitted) resident.emplace(ev.key, std::move(g.ids));
          return std::tuple(g.admitted, g.rung, g.analysis.effort());
        }
        const PlacementDecision d = engine.admit(ev.task);
        if (d.admitted) {
          resident.emplace(ev.key, std::vector<GlobalTaskId>{d.id});
        }
        return std::tuple(d.admitted, d.rung, d.analysis.effort());
      },
      [&](const TraceEvent& ev) {
        const auto it = resident.find(ev.key);
        if (it == resident.end()) return std::size_t{0};
        std::size_t gone = 0;
        for (const GlobalTaskId id : it->second) {
          gone += engine.remove(id) ? 1 : 0;
        }
        resident.erase(it);
        return gone;
      },
      [&] { return engine.utilization_estimate(); }, [] {});
  record_replay(obs, trace.size(), out);
  return out;
}

}  // namespace edfkit
