/// \file engine.hpp
/// Sharded multi-processor admission engine.
///
/// Partitioned EDF: N shards, each a uniprocessor AdmissionController
/// behind its own mutex, so concurrent admission streams scale across
/// cores. An arrival is placed by a heuristic (first-fit / worst-fit /
/// best-fit over the shards' load estimates) and tried against shards in
/// that order until one admits it — the classic partitioned test-cascade
/// (cf. schedcat's partitioned heuristics).
///
/// Two entry points:
///   admit()/admit_group()/remove() — synchronous, thread-safe,
///     callable from any number of client threads concurrently;
///   submit() — enqueue onto the engine's worker-thread pool and get a
///     std::future, for callers that want pipelined decisions.
///
/// Reads do not convoy on the shard mutexes: every mutation publishes
/// the shard's counters into a double-buffered set of epoch-versioned
/// atomic headers, and stats() composes per-shard snapshots from them
/// wait-free — a monitoring loop polling stats() at high rate costs
/// the admit path nothing. stats_locked() remains for callers that
/// need fully up-to-the-instant counters.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "admission/controller.hpp"
#include "util/seqlock.hpp"

namespace edfkit {

namespace obs {
class Obs;
struct EngineInstruments;
}  // namespace obs

/// Shard-qualified task handle.
struct GlobalTaskId {
  std::uint32_t shard = UINT32_MAX;
  TaskId local = kInvalidTaskId;

  [[nodiscard]] bool valid() const noexcept {
    return local != kInvalidTaskId;
  }
  [[nodiscard]] bool operator==(const GlobalTaskId& o) const noexcept {
    return shard == o.shard && local == o.local;
  }
};

enum class PlacementPolicy : std::uint8_t {
  FirstFit,  ///< shards in index order (stable packing)
  WorstFit,  ///< least-loaded shard first (load balancing)
  BestFit,   ///< most-loaded shard that still fits first (tight packing)
};

[[nodiscard]] const char* to_string(PlacementPolicy p) noexcept;

struct EngineOptions {
  std::size_t shards = 4;  ///< partitions (processors); >= 1
  PlacementPolicy placement = PlacementPolicy::FirstFit;
  /// Per-shard controller options. When `admission.platform.m > 1`
  /// the engine runs in *global* mode: one controller admits the whole
  /// set against m processors (global EDF), so `shards` is coerced to
  /// 1 and `placement` is irrelevant — partitioned sharding and global
  /// admission are mutually exclusive views of the same m processors.
  AdmissionOptions admission;
  /// Worker threads behind submit(); 0 = hardware_concurrency.
  std::size_t workers = 0;
};

/// Outcome of one placement attempt.
struct PlacementDecision {
  bool admitted = false;
  GlobalTaskId id;  ///< valid iff admitted
  /// Rung that settled the decision on the admitting shard (or on the
  /// last shard tried when rejected everywhere).
  AdmissionRung rung = AdmissionRung::Structural;
  std::uint32_t shards_tried = 0;
  FeasibilityResult analysis;  ///< from the same shard as `rung`
};

/// Outcome of one all-or-nothing group placement: the whole group lands
/// on a single shard (co-scheduled partitioned EDF) or nowhere.
struct GroupPlacement {
  bool admitted = false;
  std::uint32_t shard = UINT32_MAX;     ///< valid iff admitted
  std::vector<GlobalTaskId> ids;        ///< group order; empty on reject
  AdmissionRung rung = AdmissionRung::Structural;
  std::uint32_t shards_tried = 0;
  FeasibilityResult analysis;
};

/// Aggregate snapshot across shards.
struct EngineStats {
  AdmissionStats admission;  ///< merged controller counters
  std::size_t resident = 0;
  double total_utilization = 0.0;  ///< sum over shards
  std::vector<double> shard_utilization;
  std::vector<std::size_t> shard_resident;
  /// Platform the counters were earned against: partitioned engines
  /// report one processor per shard; a global engine reports its
  /// controller's platform width.
  std::uint32_t processors = 1;
  bool global = false;  ///< global-EDF mode (one m-processor controller)
  /// Cumulative seqlock read retries ("lapped reader" count) the
  /// wait-free stats path has paid across the engine's lifetime, as of
  /// this snapshot: each retry is a publication that landed while a
  /// header copy was in flight. stats_locked() reports the running
  /// total without adding to it.
  std::uint64_t stats_read_retries = 0;

  [[nodiscard]] std::string to_string() const;
  /// Machine-readable rendering (nests AdmissionStats::to_json()).
  [[nodiscard]] std::string to_json() const;
};

class AdmissionEngine {
 public:
  /// \throws std::invalid_argument for shards == 0 or bad controller
  /// options. Worker threads are spawned lazily on the first submit();
  /// synchronous-only users never pay for a parked pool.
  explicit AdmissionEngine(EngineOptions opts = {});
  ~AdmissionEngine();

  AdmissionEngine(const AdmissionEngine&) = delete;
  AdmissionEngine& operator=(const AdmissionEngine&) = delete;

  /// Place one task; thread-safe. Tries shards in placement order until
  /// one admits.
  [[nodiscard]] PlacementDecision admit(const Task& t);

  /// Place a whole group atomically on one shard; thread-safe. Tries
  /// shards in placement order (by the group's summed utilization)
  /// until one admits the group all-or-nothing with a single scan —
  /// see AdmissionController::admit_group.
  [[nodiscard]] GroupPlacement admit_group(std::span<const Task> group);

  /// Withdraw a placed task; thread-safe.
  bool remove(GlobalTaskId id);

  /// Enqueue a placement onto the worker pool.
  [[nodiscard]] std::future<PlacementDecision> submit(Task t);

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  /// Global-EDF mode: one controller, m processors (see EngineOptions).
  [[nodiscard]] bool global_mode() const noexcept {
    return !opts_.admission.platform.uniprocessor();
  }
  /// Processor count the engine admits against: shard count when
  /// partitioned, the platform width when global.
  [[nodiscard]] std::uint32_t processors() const noexcept {
    return global_mode() ? opts_.admission.platform.m
                         : static_cast<std::uint32_t>(shards_.size());
  }
  /// Worker threads currently running (0 until the first submit()).
  [[nodiscard]] std::size_t workers() const {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    return workers_.size();
  }
  /// Lock-free sum of the shards' load estimates. May lag concurrent
  /// mutations slightly — use stats() for a consistent snapshot.
  [[nodiscard]] double utilization_estimate() const noexcept;
  /// Aggregate snapshot from the shards' epoch-versioned headers: no
  /// shard mutex is taken, so readers never convoy behind admits (and
  /// never slow them down). Each shard's numbers are internally
  /// consistent (one publication); cross-shard composition may span
  /// publications. A reader overlapping one whole publication returns
  /// without re-copying; it only spins across the writer's brief store
  /// window or when lapped mid-copy.
  [[nodiscard]] EngineStats stats() const;
  /// Fully synchronous snapshot (locks shards one at a time) — strictly
  /// current counters, at the cost of contending with admits.
  [[nodiscard]] EngineStats stats_locked() const;
  /// Allocation-free variants for monitoring loops: refill `out`
  /// in place (vector capacity is reused across calls). A poller
  /// calling stats_into at high rate neither allocates nor touches a
  /// shard mutex.
  void stats_into(EngineStats& out) const;
  void stats_locked_into(EngineStats& out) const;
  /// Resident snapshot of one shard. \pre i < shards()
  [[nodiscard]] TaskSet shard_snapshot(std::size_t i) const;
  /// From-scratch feasibility of one shard's resident set (verification).
  [[nodiscard]] FeasibilityResult analyze_shard(
      std::size_t i, TestKind kind = TestKind::ProcessorDemand) const;

  /// Engine-level write-ahead journaling (admission/snapshot.hpp):
  /// while attached, every *committed* state change — a successful
  /// admit/admit_group (with the shard it landed on and the ids it was
  /// assigned) or a successful remove — appends one shard-qualified
  /// record from inside the shard's critical section, so the per-shard
  /// record order equals the per-shard apply order. Rejected placements
  /// are not journaled: engine recovery restores the resident sets and
  /// the admission invariant, not the rejected-probe side effects (see
  /// README "Durability" for the contrast with controller-level
  /// journaling, which is bit-identical). The journal must outlive the
  /// attachment; Journal::append is thread-safe.
  void attach_journal(persist::Journal* journal) noexcept {
    journal_.store(journal, std::memory_order_release);
  }

  /// Observability (src/obs/): attaches every shard controller to the
  /// Obs's shared admission instruments + its shard's flight-recorder
  /// ring, and the engine itself to placement latency/fan-out
  /// histograms and the lapped-reader counter. Quiesce concurrent
  /// admits before re-attaching (each shard is swapped under its
  /// mutex, but the set of shards should change atomically from the
  /// caller's view). Pass nullptr (or a disabled Obs) to detach. The
  /// Obs must outlive the attachment.
  void attach_obs(obs::Obs* obs);

 private:
  /// Snapshot save/load composes per-shard sections (admission/snapshot.cpp).
  friend struct SnapshotCodec;

  struct Shard {
    mutable std::mutex mu;
    AdmissionController controller;
    /// Lock-free load estimate for placement ordering (refreshed after
    /// every mutation under mu; staleness only affects heuristic order,
    /// never correctness).
    std::atomic<double> load{0.0};

    /// One buffer of the double-buffered published counters. Plain
    /// atomics keep concurrent reads data-race-free; the epoch protocol
    /// makes them consistent.
    struct Header {
      std::atomic<std::uint64_t> arrivals{0};
      std::atomic<std::uint64_t> admitted{0};
      std::atomic<std::uint64_t> rejected{0};
      std::atomic<std::uint64_t> removals{0};
      std::atomic<std::uint64_t> groups{0};
      std::atomic<std::uint64_t> effort{0};
      std::array<std::atomic<std::uint64_t>, kAdmissionRungs> by_rung{};
      std::atomic<std::uint64_t> resident{0};
      std::atomic<double> utilization{0.0};
    };
    std::array<Header, 2> header;
    SeqlockEpoch epoch;  ///< protocol in util/seqlock.hpp

    explicit Shard(const AdmissionOptions& opts) : controller(opts) {}

    /// Publish the controller's counters into the inactive buffer and
    /// advance the epoch. \pre mu held (the write side is serialized).
    void publish() noexcept;
    /// Epoch-consistent read of the last publication (no mutex);
    /// `retries` accumulates the lapped-reader spins paid.
    void read_stats(AdmissionStats& stats, std::size_t& resident,
                    double& utilization,
                    std::uint64_t& retries) const noexcept;
  };

  [[nodiscard]] std::vector<std::uint32_t> placement_order(
      double candidate_utilization) const;
  void worker_loop();

  EngineOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<persist::Journal*> journal_{nullptr};
  /// Observability wiring (not serialized). metrics_ is read without
  /// the shard mutexes; swap only while admits are quiesced.
  obs::EngineInstruments* metrics_ = nullptr;
  /// Lifetime total of seqlock read retries paid by stats_into.
  mutable std::atomic<std::uint64_t> stats_retries_{0};

  // Worker pool (spawned lazily under queue_mu_ by the first submit).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::packaged_task<PlacementDecision()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace edfkit
