/// \file engine.hpp
/// Sharded multi-processor admission engine.
///
/// Partitioned EDF: N shards, each a uniprocessor AdmissionController
/// behind its own mutex, so concurrent admission streams scale across
/// cores. An arrival is placed by a heuristic (first-fit / worst-fit /
/// best-fit over the shards' load estimates) and tried against shards in
/// that order until one admits it — the classic partitioned test-cascade
/// (cf. schedcat's partitioned heuristics).
///
/// Two entry points:
///   admit()/remove() — synchronous, thread-safe, callable from any
///     number of client threads concurrently;
///   submit() — enqueue onto the engine's worker-thread pool and get a
///     std::future, for callers that want pipelined decisions.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "admission/controller.hpp"

namespace edfkit {

/// Shard-qualified task handle.
struct GlobalTaskId {
  std::uint32_t shard = UINT32_MAX;
  TaskId local = kInvalidTaskId;

  [[nodiscard]] bool valid() const noexcept {
    return local != kInvalidTaskId;
  }
  [[nodiscard]] bool operator==(const GlobalTaskId& o) const noexcept {
    return shard == o.shard && local == o.local;
  }
};

enum class PlacementPolicy : std::uint8_t {
  FirstFit,  ///< shards in index order (stable packing)
  WorstFit,  ///< least-loaded shard first (load balancing)
  BestFit,   ///< most-loaded shard that still fits first (tight packing)
};

[[nodiscard]] const char* to_string(PlacementPolicy p) noexcept;

struct EngineOptions {
  std::size_t shards = 4;  ///< partitions (processors); >= 1
  PlacementPolicy placement = PlacementPolicy::FirstFit;
  AdmissionOptions admission;  ///< per-shard controller options
  /// Worker threads behind submit(); 0 = hardware_concurrency.
  std::size_t workers = 0;
};

/// Outcome of one placement attempt.
struct PlacementDecision {
  bool admitted = false;
  GlobalTaskId id;  ///< valid iff admitted
  /// Rung that settled the decision on the admitting shard (or on the
  /// last shard tried when rejected everywhere).
  AdmissionRung rung = AdmissionRung::Structural;
  std::uint32_t shards_tried = 0;
  FeasibilityResult analysis;  ///< from the same shard as `rung`
};

/// Aggregate snapshot across shards.
struct EngineStats {
  AdmissionStats admission;  ///< merged controller counters
  std::size_t resident = 0;
  double total_utilization = 0.0;  ///< sum over shards
  std::vector<double> shard_utilization;
  std::vector<std::size_t> shard_resident;

  [[nodiscard]] std::string to_string() const;
};

class AdmissionEngine {
 public:
  /// \throws std::invalid_argument for shards == 0 or bad controller
  /// options. Worker threads are spawned lazily on the first submit();
  /// synchronous-only users never pay for a parked pool.
  explicit AdmissionEngine(EngineOptions opts = {});
  ~AdmissionEngine();

  AdmissionEngine(const AdmissionEngine&) = delete;
  AdmissionEngine& operator=(const AdmissionEngine&) = delete;

  /// Place one task; thread-safe. Tries shards in placement order until
  /// one admits.
  [[nodiscard]] PlacementDecision admit(const Task& t);

  /// Withdraw a placed task; thread-safe.
  bool remove(GlobalTaskId id);

  /// Enqueue a placement onto the worker pool.
  [[nodiscard]] std::future<PlacementDecision> submit(Task t);

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  /// Worker threads currently running (0 until the first submit()).
  [[nodiscard]] std::size_t workers() const {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    return workers_.size();
  }
  /// Lock-free sum of the shards' load estimates. May lag concurrent
  /// mutations slightly — use stats() for a consistent snapshot.
  [[nodiscard]] double utilization_estimate() const noexcept;
  /// Consistent aggregate snapshot (locks shards one at a time).
  [[nodiscard]] EngineStats stats() const;
  /// Resident snapshot of one shard. \pre i < shards()
  [[nodiscard]] TaskSet shard_snapshot(std::size_t i) const;
  /// From-scratch feasibility of one shard's resident set (verification).
  [[nodiscard]] FeasibilityResult analyze_shard(
      std::size_t i, TestKind kind = TestKind::ProcessorDemand) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    AdmissionController controller;
    /// Lock-free load estimate for placement ordering (refreshed after
    /// every mutation under mu; staleness only affects heuristic order,
    /// never correctness).
    std::atomic<double> load{0.0};

    explicit Shard(const AdmissionOptions& opts) : controller(opts) {}
  };

  [[nodiscard]] std::vector<std::uint32_t> placement_order(
      double candidate_utilization) const;
  void worker_loop();

  EngineOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Worker pool (spawned lazily under queue_mu_ by the first submit).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::packaged_task<PlacementDecision()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace edfkit
