/// \file snapshot.hpp
/// Durable admission state: versioned binary snapshots of the
/// controller/engine plus the admission journal codec and crash
/// recovery (ROADMAP "Persistence").
///
/// Two composable artifacts:
///
///   * snapshot — a CRC-framed section file (persist/format.hpp)
///     serializing the complete decision-relevant state: every
///     IncrementalDemand field (TaskView rows, id->slot index with its
///     tombstones, refinement levels, the segmented checkpoint/border
///     store including step/border tombstone flags and the per-segment
///     cached-slack ratios, certificate regions, certified scaled
///     aggregates), controller policy options, stats, and the decision
///     sequence counter. load_snapshot() restores a store that makes
///     *bit-identical* admit/reject decisions to the original from that
///     point on (the persist test suite differential-fuzzes this
///     against a never-persisted twin).
///
///   * journal — an append-only record stream (persist/journal.hpp) of
///     the operations offered to a controller. Controller::attach_journal
///     appends a record ahead of every try_admit / admit_group /
///     remove / remove_group (rejected admits included: their tentative
///     insert consumes a TaskId and may leave learned refinement, so
///     replay must re-execute them to stay bit-identical).
///
/// recover() composes the two: load the snapshot (taken at journal LSN
/// L), then replay journal records [L, end) through the normal
/// controller entry points. Cold recovery (journal only, no snapshot)
/// replays from the beginning into a freshly constructed controller;
/// snapshot-only recovery restores the checkpoint and replays nothing.
///
/// Engine-level durability is coarser by design: save_snapshot(engine)
/// briefly locks every shard, composing one section per shard under the
/// shard's published epoch header, and engine journaling records only
/// *committed* placements (shard + assigned ids). Engine recovery
/// restores the resident sets and the admission invariant, but not the
/// id/refinement residue of rejected placement probes — those probe
/// multiple shards in a load-heuristic order that is not deterministic
/// under concurrency. Use controller-level journaling when bit-exact
/// reconstruction matters (the crash-recovery CI harness does).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "admission/engine.hpp"
#include "persist/journal.hpp"

namespace edfkit {

/// Snapshot container kinds (section kSecMeta).
enum class SnapshotKind : std::uint8_t { Controller = 1, Engine = 2 };

struct SnapshotMeta {
  SnapshotKind kind = SnapshotKind::Controller;
  /// Journal LSN the snapshot reflects: records [0, journal_lsn) are
  /// already folded in; recovery replays from journal_lsn.
  std::uint64_t journal_lsn = 0;
};

/// Journal record tags (first payload byte).
enum class JournalOp : std::uint8_t {
  Admit = 1,        ///< controller: one offered task
  AdmitGroup = 2,   ///< controller: one offered group
  Remove = 3,       ///< controller: withdraw one id
  RemoveGroup = 4,  ///< controller: withdraw an id group
  EngineAdmit = 16,       ///< engine: committed single placement
  EngineAdmitGroup = 17,  ///< engine: committed group placement
  EngineRemove = 18,      ///< engine: committed removal
  /// Server-side exactly-once bookkeeping: "the next controller record
  /// was requested by (client, request_id)". Appended by the network
  /// server immediately before the operation record it annotates, so a
  /// recovery replay can rebuild the per-client dedup window and answer
  /// a resent request from the applied result. Pure annotation: replay
  /// applies no state change for it, and a mark with no following
  /// operation record (crash between the two appends) means the op
  /// never committed — the client's retry is correct to re-execute.
  ClientMark = 32,
};

/// Record encoders (the attach_journal hooks call these; tests build
/// records directly).
namespace journal_codec {
[[nodiscard]] std::vector<std::uint8_t> admit(const Task& t);
[[nodiscard]] std::vector<std::uint8_t> admit_group(
    std::span<const Task> group);
[[nodiscard]] std::vector<std::uint8_t> remove(TaskId id);
[[nodiscard]] std::vector<std::uint8_t> remove_group(
    std::span<const TaskId> ids);
[[nodiscard]] std::vector<std::uint8_t> engine_admit(std::uint32_t shard,
                                                     TaskId assigned,
                                                     const Task& t);
[[nodiscard]] std::vector<std::uint8_t> engine_admit_group(
    std::uint32_t shard, std::span<const GlobalTaskId> assigned,
    std::span<const Task> group);
[[nodiscard]] std::vector<std::uint8_t> engine_remove(GlobalTaskId id);
[[nodiscard]] std::vector<std::uint8_t> client_mark(
    const std::string& client, std::uint64_t request_id,
    std::uint8_t flags);
}  // namespace journal_codec

/// Serialize the controller (options + stats + sequence + the complete
/// demand store) to `path`, atomically. `journal_lsn` records which
/// journal prefix the snapshot reflects (0 when not journaling).
/// Not safe concurrently with controller mutation (the controller
/// itself is single-mutator; snapshot between operations).
void save_snapshot(const AdmissionController& controller,
                   const std::string& path, std::uint64_t journal_lsn = 0);

/// Serialize the engine: engine options plus one section per shard
/// (each taken under its shard mutex; all shards are held across the
/// journal-LSN capture so the snapshot matches one journal cut).
/// Safe concurrently with serving threads.
void save_snapshot(const AdmissionEngine& engine, const std::string& path,
                   const persist::Journal* journal = nullptr);

/// Restore `out` from a controller snapshot, overwriting its options
/// and entire store. \throws PersistError on any framing/CRC/value
/// problem or a kind mismatch.
SnapshotMeta load_snapshot(AdmissionController& out,
                           const std::string& path);

/// Restore `out` from an engine snapshot (shard count and options come
/// from the file). \pre the engine is not serving (no worker pool, no
/// concurrent callers). \throws PersistError; BadValue when workers
/// are already running.
SnapshotMeta load_snapshot(AdmissionEngine& out, const std::string& path);

/// Watches a controller recovery replay record by record. The network
/// server implements this to rebuild its per-client exactly-once dedup
/// window: on_mark announces the (client, request_id) a ClientMark
/// record carried, and the following result callback delivers the
/// re-executed operation's outcome — bit-identical to the original run,
/// so the rebuilt cached response matches the one originally sent.
/// Every callback defaults to a no-op.
class ReplayObserver {
 public:
  virtual ~ReplayObserver() = default;
  virtual void on_mark(const std::string& /*client*/,
                       std::uint64_t /*request_id*/, std::uint8_t /*flags*/) {}
  virtual void on_admit(const AdmissionDecision& /*d*/) {}
  virtual void on_admit_group(const GroupDecision& /*d*/) {}
  virtual void on_remove(TaskId /*id*/, bool /*removed*/) {}
  virtual void on_remove_group(std::span<const TaskId> /*ids*/,
                               std::size_t /*removed*/) {}
};

struct RecoveryResult {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_lsn = 0;   ///< journal records folded into it
  std::uint64_t journal_records = 0;  ///< intact records found
  std::uint64_t replayed = 0;       ///< records applied on top
  /// Engine recovery only: replayed records whose effect could not be
  /// reproduced (e.g. a committed admit the recovered shard rejects —
  /// possible only when rejected-probe refinement residue mattered).
  std::uint64_t skipped = 0;
  bool torn_tail = false;  ///< a partial final record was dropped
};

/// Load the snapshot (if `snapshot_path` names an existing file), then
/// replay the journal suffix (if `journal_path` names an existing
/// file) through the normal admission entry points. Either path may be
/// empty/absent: snapshot-only, journal-only (cold), and nothing-at-all
/// recoveries are all valid. Whatever state `out` already holds is
/// discarded — overwritten by the snapshot, or reset to empty (options
/// kept) when there is none, so a cold journal replay never
/// double-applies records on top of live state. The controller's
/// attached journal (if any) is detached for the duration — replay
/// must not re-journal. \throws PersistError on corruption (a torn
/// journal tail is NOT corruption — it is dropped and reported).
/// An optional observer sees every replayed record's outcome (see
/// ReplayObserver) — the network server's dedup-window rebuild.
RecoveryResult recover(AdmissionController& out,
                       const std::string& snapshot_path,
                       const std::string& journal_path,
                       ReplayObserver* observer = nullptr);

/// Engine recovery: snapshot + committed-op replay with id remapping
/// (replayed admits may be assigned fresh local ids; later removes are
/// translated). \pre not serving.
RecoveryResult recover(AdmissionEngine& out,
                       const std::string& snapshot_path,
                       const std::string& journal_path);

/// Apply ONE journal record payload through the normal controller
/// entry points — the body of recover()'s replay loop, exposed so a
/// replication follower (src/repl/) can run the recovery path
/// *continuously*, record by record, as the primary ships them.
/// The caller is responsible for journal discipline: a follower keeps
/// its controller's journal detached and appends the shipped bytes to
/// its local journal itself (byte-identical WAL), then applies here.
/// \throws PersistError on a malformed or engine-level record.
void apply_record(AdmissionController& out,
                  std::span<const std::uint8_t> payload,
                  ReplayObserver* observer = nullptr);

/// save_snapshot()'s container as bytes — what a REPL_SNAPSHOT frame
/// carries when a follower is (re-)seeded.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const AdmissionController& controller, std::uint64_t journal_lsn = 0);

/// load_snapshot() from bytes (same container, no file).
SnapshotMeta load_snapshot_bytes(AdmissionController& out,
                                 std::vector<std::uint8_t> bytes);

/// Decode only the meta section (kind + journal LSN) of a controller
/// snapshot container — how the shipper labels a snapshot it forwards
/// without paying for a store decode.
[[nodiscard]] SnapshotMeta read_snapshot_meta(
    std::vector<std::uint8_t> bytes);

/// CRC32 over the snapshot codec's serialized store: options, stats,
/// decision sequence, and the complete demand store — everything the
/// decision paths read, nothing transient. Two controllers with equal
/// digests are bit-identical deciders from here on; this is the
/// replication divergence check (primary and follower exchange digests
/// at matching journal LSNs).
[[nodiscard]] std::uint32_t store_digest(
    const AdmissionController& controller);

/// Periodic engine checkpointing: a background thread that
/// save_snapshot()s the engine every `interval` (first write one
/// interval after start). flush_now() forces a synchronous checkpoint
/// (the SIGTERM path) and throws on IO failure; the background thread
/// and the destructor instead *absorb* failures (a full disk must
/// degrade the durability sidecar, never terminate the serving
/// process) — `checkpoint_failures()` counts them, the previous
/// on-disk snapshot stays intact (writes are atomic), and the next
/// tick retries. The destructor stops the thread and writes one final
/// snapshot. Writes are serialized internally, so flush_now() never
/// races the periodic write on the same path.
class CheckpointDaemon {
 public:
  CheckpointDaemon(const AdmissionEngine& engine, std::string path,
                   std::chrono::milliseconds interval,
                   const persist::Journal* journal = nullptr);
  ~CheckpointDaemon();

  CheckpointDaemon(const CheckpointDaemon&) = delete;
  CheckpointDaemon& operator=(const CheckpointDaemon&) = delete;

  /// Synchronous checkpoint. \throws PersistError on IO failure.
  void flush_now();
  [[nodiscard]] std::uint64_t checkpoints_written() const noexcept {
    return written_.load(std::memory_order_relaxed);
  }
  /// Periodic/final checkpoints that failed (and were absorbed).
  [[nodiscard]] std::uint64_t checkpoint_failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  /// flush_now() with the failure absorbed into failures_.
  void try_flush() noexcept;

  const AdmissionEngine& engine_;
  std::string path_;
  std::chrono::milliseconds interval_;
  const persist::Journal* journal_;
  std::mutex write_mu_;  ///< serializes snapshot writes to path_
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::thread thread_;
};

}  // namespace edfkit
