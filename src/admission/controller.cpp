#include "admission/controller.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "admission/snapshot.hpp"
#include "analysis/multi/global_tests.hpp"
#include "obs/obs.hpp"
#include "persist/journal.hpp"
#include "query/query.hpp"
#include "sim/oracle.hpp"

namespace edfkit {

// The obs layer is a dependency leaf and mirrors the rung count; keep
// the mirror honest here, where both headers are visible.
static_assert(obs::kTraceRungs == kAdmissionRungs,
              "obs::kTraceRungs must mirror kAdmissionRungs");

namespace {

/// Rung-3 / verification analyses route through the unified query API
/// (certificates off: the controller keeps its own instrumentation and
/// the hot path must not pay a construction sweep). The WorkloadView
/// hands the resident set to the backend zero-copy — escalations no
/// longer materialize a snapshot or copy it into a Workload.
FeasibilityResult query_exact(const TaskSet& ts, TestKind kind,
                              const AnalyzerOptions& opts) {
  if (ts.empty()) return make_verdict(Verdict::Feasible);
  return Query::single(kind, params_from_legacy(kind, opts))
      .with_certificates(false)
      .run(WorkloadView(ts))
      .analysis;
}

/// Per-decision observability probe: collects rung-boundary timestamps
/// and scan internals while the ladder runs, then settles them into
/// the instrument bundle and the flight-recorder ring in one shot.
/// When nothing is attached every method is a single branch — the
/// ObsConfig::disabled() overhead story depends on exactly that.
struct DecisionProbe {
  const obs::AdmissionInstruments* m;
  obs::TraceRing* ring;
  bool active;
  std::uint64_t t0 = 0;
  std::uint64_t t_rung = 0;
  std::uint64_t compactions0 = 0;
  std::uint64_t scan_iters = 0;
  std::size_t cur = 0;  // rung currently on the clock
  std::size_t ws = 0;   // write_shard(), looked up once per decision
  obs::DecisionTrace tr;

  DecisionProbe(const obs::AdmissionInstruments* metrics,
                obs::TraceRing* trace,
                std::uint64_t compactions_now) noexcept
      : m(metrics), ring(trace),
        active(metrics != nullptr || trace != nullptr) {
    if (!active) return;
    t0 = t_rung = obs::now_ticks();
    compactions0 = compactions_now;
    tr.rungs_entered = 1;  // every decision starts on Structural
    if (m != nullptr) ws = obs::write_shard();
  }

  /// The ladder escalated: close the current rung's clock, open `r`'s.
  /// rung_ns accumulates raw ticks until finish() converts in place.
  /// No counter write here: rung attempts are derived at read time
  /// from the rung_ns sample counts (one sample per entered rung).
  void enter(AdmissionRung r) noexcept {
    if (!active) return;
    const std::uint64_t now = obs::now_ticks();
    tr.rung_ns[cur] += now - t_rung;
    t_rung = now;
    cur = static_cast<std::size_t>(r);
    tr.rungs_entered |= static_cast<std::uint8_t>(1u << cur);
  }

  /// Outcome of the rung-2 O(1) certificate-cover test. Only misses
  /// write (amortized into the scan they trigger); hits are derived as
  /// rung-2 attempts minus misses, keeping the O(1) fast path free.
  void cover(bool hit) noexcept {
    if (!active) return;
    tr.cert_cover = hit;
    if (m != nullptr && !hit) m->cert_cover_misses.add_at(ws);
  }

  /// Fold one demand scan's internals into the decision record. The
  /// counters flush once in finish(), not per scan call.
  void scan(const DemandCheck& c) noexcept {
    if (!active) return;
    scan_iters += c.iterations;
    tr.refinements += static_cast<std::uint32_t>(c.revisions);
    tr.segments_walked += c.segments_walked;
    tr.segments_fast_forwarded += c.segments_fast_forwarded;
  }

  void rollback() noexcept {
    if (active) tr.rollback = true;
  }

  void finish(bool admitted, AdmissionRung rung, std::uint64_t sequence,
              TaskId id, std::size_t group_size,
              std::uint64_t compactions_now) noexcept {
    if (!active) return;
    const std::uint64_t now = obs::now_ticks();
    tr.rung_ns[cur] += now - t_rung;
    // Convert tick deltas to ns in place. total_ns is the sum of the
    // converted per-rung values (not the converted t0 delta) so that
    // "entered rung_ns sum exactly to total_ns" survives rounding.
    const double k = obs::ns_per_tick();
    tr.total_ns = 0;
    for (std::size_t r = 0; r < kAdmissionRungs; ++r) {
      tr.rung_ns[r] = static_cast<std::uint64_t>(
          static_cast<double>(tr.rung_ns[r]) * k);
      tr.total_ns += tr.rung_ns[r];
    }
    tr.sequence = sequence;
    tr.task_id = id;
    tr.group_size = static_cast<std::uint32_t>(group_size);
    tr.admitted = admitted;
    tr.rung = static_cast<std::uint8_t>(rung);
    if (m != nullptr) {
      // Rung histograms in ascending order: attempts/settled/rejects
      // are all derived from their sample counts, and recording r
      // before r + 1 keeps those differences non-negative even for a
      // reader racing this flush. The entire outcome tally then costs
      // one RMW (rung_admits on admit, nothing on reject).
      for (std::size_t r = 0; r < kAdmissionRungs; ++r) {
        if (((tr.rungs_entered >> r) & 1u) != 0) {
          m->rung_ns[r].record_at(ws, tr.rung_ns[r]);
        }
      }
      m->decision_ns.record_at(ws, tr.total_ns);
      if (admitted) {
        m->rung_admits[static_cast<std::size_t>(rung)].add_at(ws);
      }
      if (group_size > 0) m->group_decisions.add_at(ws);
      if (tr.rollback) m->rollbacks.add_at(ws);
      const std::uint64_t compacted = compactions_now - compactions0;
      if (compacted != 0) m->tombstone_compactions.add_at(ws, compacted);
      // Scan internals accumulated across the decision's scans flush
      // here once; zero deltas skip the RMW entirely.
      if (scan_iters != 0) m->scan_iterations.add_at(ws, scan_iters);
      if (tr.refinements != 0) {
        m->scan_refinements.add_at(ws, tr.refinements);
      }
      if (tr.segments_walked != 0) {
        m->segments_walked.add_at(ws, tr.segments_walked);
      }
      if (tr.segments_fast_forwarded != 0) {
        m->segments_fast_forwarded.add_at(ws, tr.segments_fast_forwarded);
      }
    }
    if (ring != nullptr) ring->push(tr);
  }
};

/// Build the decision's certificate (opts.return_certificate): the
/// resident set is post-settlement here — it includes an admitted
/// arrival and has rolled back a rejected one. Infeasibility needs only
/// the analysis record; feasibility pays a construction sweep over the
/// residents. A failed construction (pathological U == 1 set past the
/// step cap) leaves kind == None rather than an unsound certificate.
Certificate decision_certificate(const FeasibilityResult& analysis,
                                 bool admitted, const TaskSet& resident) {
  if (!admitted && analysis.verdict == Verdict::Infeasible) {
    return make_infeasibility_certificate(analysis);
  }
  if (admitted) {
    if (std::optional<Certificate> cert =
            build_feasibility_certificate(resident)) {
      return *std::move(cert);
    }
  }
  return Certificate{};
}

/// One settled pass of the global-EDF admission ladder over the widened
/// (candidate-resident) set. Rung mapping mirrors the header comment:
/// Utilization = GFB + its O(n) infeasibility gates, Approximate = the
/// window sufficient tests, Exact = global RTA then the decisive sim.
struct GlobalLadderOutcome {
  bool accept = false;
  AdmissionRung rung = AdmissionRung::Utilization;
  /// The backend whose condition decided (certificate construction
  /// re-derives exactly this condition).
  TestKind decided_by = TestKind::GfbDensity;
  FeasibilityResult analysis;
};

void fold_instrumentation(FeasibilityResult& acc,
                          const FeasibilityResult& r) {
  acc.iterations += r.iterations;
  acc.revisions += r.revisions;
  acc.max_interval_tested =
      std::max(acc.max_interval_tested, r.max_interval_tested);
  acc.degraded = acc.degraded || r.degraded;
}

GlobalLadderOutcome run_global_ladder(const TaskSet& widened,
                                      const Platform& p, bool skip_exact,
                                      DecisionProbe& probe) {
  GlobalLadderOutcome out;

  // Rung 1 (Utilization): GFB density accept + the O(n) infeasibility
  // gates (U > m capacity, C_i > D_i overlong job) it owns.
  const FeasibilityResult gfb = multi::gfb_density_test(widened, p);
  fold_instrumentation(out.analysis, gfb);
  if (gfb.verdict != Verdict::Unknown) {
    out.accept = gfb.verdict == Verdict::Feasible;
    out.analysis.verdict = gfb.verdict;
    out.analysis.witness = gfb.witness;
    return out;
  }

  // Rung 2 (Approximate): window sufficient tests, cheapest first. They
  // answer Feasible or Unknown, never Infeasible.
  probe.enter(AdmissionRung::Approximate);
  using WindowTest = FeasibilityResult (*)(const TaskSet&, const Platform&);
  const std::pair<TestKind, WindowTest> windows[] = {
      {TestKind::GlobalBcl,
       [](const TaskSet& ts, const Platform& pp) {
         return multi::global_bcl_test(ts, pp);
       }},
      {TestKind::GlobalBclIterative,
       [](const TaskSet& ts, const Platform& pp) {
         return multi::global_bcl_iterative_test(ts, pp);
       }},
      {TestKind::GlobalLoad,
       [](const TaskSet& ts, const Platform& pp) {
         return multi::global_load_test(ts, pp);
       }},
  };
  for (const auto& [kind, run] : windows) {
    const FeasibilityResult r = run(widened, p);
    fold_instrumentation(out.analysis, r);
    if (r.verdict == Verdict::Feasible) {
      out.accept = true;
      out.rung = AdmissionRung::Approximate;
      out.decided_by = kind;
      out.analysis.verdict = Verdict::Feasible;
      return out;
    }
  }
  if (skip_exact) {
    out.rung = AdmissionRung::Approximate;
    out.analysis.verdict = Verdict::Unknown;  // no infeasibility proof
    return out;
  }

  // Rung 3 (Exact): global RTA, then the decisive simulation rung.
  probe.enter(AdmissionRung::Exact);
  out.rung = AdmissionRung::Exact;
  const FeasibilityResult rta = multi::global_rta_test(widened, p);
  fold_instrumentation(out.analysis, rta);
  if (rta.verdict == Verdict::Feasible) {
    out.accept = true;
    out.decided_by = TestKind::GlobalRta;
    out.analysis.verdict = Verdict::Feasible;
    return out;
  }
  const FeasibilityResult sim = simulate_global_feasibility(widened, p.m);
  fold_instrumentation(out.analysis, sim);
  out.decided_by = TestKind::GlobalSim;
  out.analysis.verdict = sim.verdict;
  out.analysis.witness = sim.witness;
  out.accept = sim.verdict == Verdict::Feasible;
  return out;
}

}  // namespace

const char* to_string(AdmissionRung r) noexcept {
  switch (r) {
    case AdmissionRung::Structural: return "structural";
    case AdmissionRung::Utilization: return "utilization";
    case AdmissionRung::Approximate: return "approximate";
    case AdmissionRung::Exact: return "exact";
  }
  return "?";
}

std::string AdmissionDecision::to_string() const {
  std::ostringstream os;
  os << "#" << sequence << " " << (admitted ? "admit" : "reject") << " via "
     << edfkit::to_string(rung) << " (" << edfkit::to_string(analysis.verdict)
     << ", effort=" << analysis.effort() << ")";
  return os.str();
}

std::string GroupDecision::to_string() const {
  std::ostringstream os;
  os << "#" << sequence << " group(" << ids.size() << ") "
     << (admitted ? "admit" : "reject") << " via "
     << edfkit::to_string(rung) << " (" << edfkit::to_string(analysis.verdict)
     << ", effort=" << analysis.effort() << ")";
  return os.str();
}

std::string AdmissionStats::to_string() const {
  std::ostringstream os;
  os << "arrivals=" << arrivals << " admitted=" << admitted
     << " rejected=" << rejected << " removals=" << removals
     << " groups=" << groups << " effort=" << total_effort << " rungs[";
  for (std::size_t i = 0; i < by_rung.size(); ++i) {
    if (i != 0) os << " ";
    os << edfkit::to_string(static_cast<AdmissionRung>(i)) << "="
       << by_rung[i];
  }
  os << "]";
  return os.str();
}

std::string AdmissionStats::to_json() const {
  std::ostringstream os;
  os << "{\"arrivals\":" << arrivals << ",\"admitted\":" << admitted
     << ",\"rejected\":" << rejected << ",\"removals\":" << removals
     << ",\"groups\":" << groups << ",\"total_effort\":" << total_effort
     << ",\"by_rung\":{";
  for (std::size_t i = 0; i < by_rung.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << edfkit::to_string(static_cast<AdmissionRung>(i)) << "\":"
       << by_rung[i];
  }
  os << "}}";
  return os.str();
}

AdmissionController::AdmissionController(AdmissionOptions opts)
    : opts_(opts),
      demand_(opts.epsilon, opts.use_slack_index, opts.eager_compaction) {
  if (!platform_valid(opts_.platform)) {
    throw std::invalid_argument("AdmissionController: invalid platform " +
                                edfkit::to_string(opts_.platform));
  }
  // The fallback kind only runs on the uniprocessor ladder; global mode
  // closes with RTA + simulation instead.
  if (!opts_.skip_exact && opts_.platform.uniprocessor() &&
      !is_exact(opts_.exact_fallback)) {
    throw std::invalid_argument(
        "AdmissionController: exact_fallback must be an exact test kind");
  }
}

AdmissionDecision AdmissionController::try_admit(const Task& t) {
  t.validate();
  // Write-ahead: the offered operation is durable before it executes,
  // so journal replay re-runs this exact call (rejections included —
  // their tentative insert consumes a TaskId and may learn refinement).
  if (journal_ != nullptr) journal_->append(journal_codec::admit(t));
  AdmissionDecision d;
  d.sequence = ++sequence_;
  ++stats_.arrivals;
  // Probe clock starts after the WAL append: rung timings measure
  // ladder work; journal latency has its own histograms.
  DecisionProbe probe(metrics_, trace_, demand_.compactions());

  const auto settle = [&](bool admitted, AdmissionRung rung) {
    d.admitted = admitted;
    d.rung = rung;
    ++(admitted ? stats_.admitted : stats_.rejected);
    ++stats_.by_rung[static_cast<std::size_t>(rung)];
    stats_.total_effort += d.analysis.effort();
    if (opts_.return_certificate && opts_.platform.uniprocessor()) {
      d.certificate =
          decision_certificate(d.analysis, admitted, demand_.resident());
    }
    probe.finish(admitted, rung, d.sequence, d.id, 0,
                 demand_.compactions());
    return d;
  };

  // Policy gates: no analysis, verdict stays Unknown. The utilization
  // cap is a fraction of platform capacity (m processors).
  if (opts_.max_tasks != 0 && demand_.size() >= opts_.max_tasks) {
    return settle(false, AdmissionRung::Structural);
  }
  if (opts_.utilization_cap < 1.0 &&
      demand_.utilization_double() + t.utilization_double() >
          opts_.utilization_cap * static_cast<double>(opts_.platform.m)) {
    return settle(false, AdmissionRung::Structural);
  }

  if (global_mode()) {
    // Global ladder over the widened set: tentative insert (the add is
    // journaled above and consumes a TaskId even on reject, exactly
    // like the uniprocessor rung-2 path), one settled ladder pass, and
    // exact-inverse rollback on reject. The demand store's epsilon
    // machinery keeps its aggregates maintained but takes no part in
    // the verdict.
    probe.enter(AdmissionRung::Utilization);
    const TaskId id = demand_.add(t);
    const GlobalLadderOutcome g = run_global_ladder(
        demand_.resident(), opts_.platform, opts_.skip_exact, probe);
    d.analysis = g.analysis;
    if (opts_.return_certificate &&
        (g.accept || d.analysis.verdict == Verdict::Infeasible)) {
      // Certify while the widened set is still materialized: the
      // certificate's claim is about resident + candidate either way.
      if (auto cert = build_multiprocessor_certificate(
              demand_.resident(), opts_.platform, g.decided_by,
              d.analysis)) {
        d.certificate = *std::move(cert);
      }
    }
    if (g.accept) {
      d.id = id;
    } else {
      demand_.remove(id);
    }
    return settle(g.accept, g.rung);
  }

  // Rung 1: exact utilization classification of the widened set, O(1)
  // and mutation-free — saturation rejects touch no demand state at all.
  probe.enter(AdmissionRung::Utilization);
  d.analysis.iterations = 1;
  const UtilizationClass uc = demand_.utilization_class_with(t);
  if (uc == UtilizationClass::AboveOne) {
    d.analysis.verdict = Verdict::Infeasible;
    return settle(false, AdmissionRung::Utilization);
  }
  d.analysis.degraded = (uc == UtilizationClass::Marginal);
  if (uc != UtilizationClass::Marginal &&
      demand_.constrained_tasks() == 0 &&
      t.effective_deadline() >= t.period) {
    // Every deadline (candidate included) is at least its period:
    // U <= 1 is exact (EDF optimality, cf. liu_layland_test).
    d.admitted = true;
    d.id = demand_.add(t);
    d.analysis.verdict = Verdict::Feasible;
    return settle(true, AdmissionRung::Utilization);
  }

  // Rung 2 fast path: the slack certificate from the last scan proves
  // the arrival's density fits — O(1), no scan.
  probe.enter(AdmissionRung::Approximate);
  const bool covered = demand_.certificate_covers(t);
  probe.cover(covered);
  if (covered) {
    d.admitted = true;
    d.id = demand_.add(t);
    d.analysis.verdict = Verdict::Feasible;
    return settle(true, AdmissionRung::Approximate);
  }

  // Rung 2: epsilon-approximate demand scan, O(n*k). Tentatively widen
  // the incremental state; every update is exact-inverse, so a
  // rejecting rung restores it by removal.
  const TaskId id = demand_.add(t);
  const DemandCheck c = demand_.check();
  probe.scan(c);
  d.analysis.iterations += c.iterations;
  d.analysis.revisions += c.revisions;
  d.analysis.max_interval_tested = c.max_interval_tested;
  d.analysis.degraded = d.analysis.degraded || c.degraded;
  if (c.fits) {
    d.admitted = true;
    d.id = id;
    d.analysis.verdict = Verdict::Feasible;
    return settle(true, AdmissionRung::Approximate);
  }
  // The hybrid path found exact dbf(w) > w: a full infeasibility proof
  // with no exact-test escalation.
  if (c.overflow_proof) {
    demand_.remove(id);
    d.analysis.witness = c.witness;
    d.analysis.verdict = Verdict::Infeasible;
    return settle(false, AdmissionRung::Approximate);
  }
  if (opts_.skip_exact) {
    demand_.remove(id);
    d.analysis.witness = c.witness;
    d.analysis.verdict = Verdict::Unknown;  // no infeasibility proof
    return settle(false, AdmissionRung::Approximate);
  }

  // Rung 3: exact fallback over the resident set, zero-copy (includes
  // the candidate) — the only from-scratch rung, for borderline sets.
  probe.enter(AdmissionRung::Exact);
  const FeasibilityResult exact =
      query_exact(demand_.resident(), opts_.exact_fallback, opts_.analyzer);
  d.analysis.verdict = exact.verdict;
  d.analysis.iterations += exact.iterations;
  d.analysis.revisions += exact.revisions;
  d.analysis.witness = exact.witness;
  d.analysis.max_interval_tested =
      std::max(d.analysis.max_interval_tested, exact.max_interval_tested);
  d.analysis.degraded = d.analysis.degraded || exact.degraded;
  if (exact.feasible()) {
    d.admitted = true;
    d.id = id;
    return settle(true, AdmissionRung::Exact);
  }
  demand_.remove(id);
  return settle(false, AdmissionRung::Exact);
}

GroupDecision AdmissionController::admit_group(std::span<const Task> group) {
  for (const Task& t : group) t.validate();  // before any mutation
  if (journal_ != nullptr) {
    journal_->append(journal_codec::admit_group(group));
  }
  GroupDecision d;
  d.sequence = ++sequence_;
  ++stats_.groups;
  stats_.arrivals += group.size();
  DecisionProbe probe(metrics_, trace_, demand_.compactions());

  const auto settle = [&](bool admitted, AdmissionRung rung) {
    d.admitted = admitted;
    d.rung = rung;
    (admitted ? stats_.admitted : stats_.rejected) += group.size();
    ++stats_.by_rung[static_cast<std::size_t>(rung)];
    stats_.total_effort += d.analysis.effort();
    if (!admitted) d.ids.clear();
    if (opts_.return_certificate && opts_.platform.uniprocessor()) {
      d.certificate =
          decision_certificate(d.analysis, admitted, demand_.resident());
    }
    probe.finish(admitted, rung, d.sequence,
                 d.ids.empty() ? kInvalidTaskId : d.ids.front(),
                 group.size(), demand_.compactions());
    return d;
  };

  if (group.empty()) {
    // Vacuous: the resident set is unchanged and (by the standing
    // invariant) feasible.
    d.analysis.verdict = Verdict::Feasible;
    return settle(true, AdmissionRung::Structural);
  }

  // Policy gates over the whole group.
  if (opts_.max_tasks != 0 &&
      demand_.size() + group.size() > opts_.max_tasks) {
    return settle(false, AdmissionRung::Structural);
  }
  if (opts_.utilization_cap < 1.0) {
    double u = demand_.utilization_double();
    for (const Task& t : group) u += t.utilization_double();
    if (u > opts_.utilization_cap * static_cast<double>(opts_.platform.m)) {
      return settle(false, AdmissionRung::Structural);
    }
  }

  if (global_mode()) {
    // All-or-nothing under the global ladder: fused insert, one settled
    // ladder pass over the whole widened set, exact-inverse rollback on
    // reject (membership and aggregates restore to pre-call values).
    probe.enter(AdmissionRung::Utilization);
    demand_.add_group(group, d.ids);
    const GlobalLadderOutcome g = run_global_ladder(
        demand_.resident(), opts_.platform, opts_.skip_exact, probe);
    d.analysis = g.analysis;
    if (opts_.return_certificate &&
        (g.accept || d.analysis.verdict == Verdict::Infeasible)) {
      if (auto cert = build_multiprocessor_certificate(
              demand_.resident(), opts_.platform, g.decided_by,
              d.analysis)) {
        d.certificate = *std::move(cert);
      }
    }
    if (!g.accept) {
      (void)demand_.remove_group(d.ids);
      probe.rollback();
    }
    return settle(g.accept, g.rung);
  }

  // Rung 1: one exact utilization classification of the widened set.
  probe.enter(AdmissionRung::Utilization);
  d.analysis.iterations = 1;
  const UtilizationClass uc = demand_.utilization_class_with(group);
  if (uc == UtilizationClass::AboveOne) {
    d.analysis.verdict = Verdict::Infeasible;
    return settle(false, AdmissionRung::Utilization);
  }
  d.analysis.degraded = (uc == UtilizationClass::Marginal);
  bool implicit = uc != UtilizationClass::Marginal &&
                  demand_.constrained_tasks() == 0;
  if (implicit) {
    for (const Task& t : group) {
      implicit = implicit && t.effective_deadline() >= t.period;
    }
  }
  if (implicit) {
    // Every deadline (group included) is at least its period: U <= 1
    // is exact (EDF optimality, cf. liu_layland_test).
    demand_.add_group(group, d.ids);
    d.analysis.verdict = Verdict::Feasible;
    return settle(true, AdmissionRung::Utilization);
  }

  // Rung 2: certificate-covered members admit O(1) in sequence (each
  // add charges the certificate, so cover-then-add stays sound); from
  // the first uncovered member on, the rest insert fused and *one*
  // certified scan decides the whole widened set. A group of one
  // degenerates exactly to try_admit's ladder.
  probe.enter(AdmissionRung::Approximate);
  std::size_t covered = 0;
  while (covered < group.size() &&
         demand_.certificate_covers(group[covered])) {
    d.ids.push_back(demand_.add(group[covered]));
    ++covered;
  }
  probe.cover(covered == group.size());
  if (covered == group.size()) {
    d.analysis.verdict = Verdict::Feasible;
    return settle(true, AdmissionRung::Approximate);
  }
  demand_.add_group(group.subspan(covered), d.ids);

  // One certified scan for the whole group. With rollback_refinements,
  // refinements are logged so a rejection can restore pre-scan levels
  // (bit-identical rollback); by default a rejected group keeps the
  // learned refinement, like single-task rejects — discarding it would
  // force every subsequent scan to re-learn the tight region.
  IncrementalDemand::RefineLog log;
  const DemandCheck c = demand_.check(
      64 + 8 * static_cast<std::uint64_t>(demand_.size()),
      opts_.rollback_refinements ? &log : nullptr);
  probe.scan(c);
  d.analysis.iterations += c.iterations;
  d.analysis.revisions += c.revisions;
  d.analysis.max_interval_tested = c.max_interval_tested;
  d.analysis.degraded = d.analysis.degraded || c.degraded;
  if (c.fits) {
    d.analysis.verdict = Verdict::Feasible;
    return settle(true, AdmissionRung::Approximate);
  }
  const auto rollback = [&] {
    (void)demand_.remove_group(d.ids);
    demand_.undo_refinements(log);
    probe.rollback();
  };
  if (c.overflow_proof) {
    rollback();
    d.analysis.witness = c.witness;
    d.analysis.verdict = Verdict::Infeasible;
    return settle(false, AdmissionRung::Approximate);
  }
  if (opts_.skip_exact) {
    rollback();
    d.analysis.witness = c.witness;
    d.analysis.verdict = Verdict::Unknown;  // no infeasibility proof
    return settle(false, AdmissionRung::Approximate);
  }

  // Rung 3: one exact fallback over the widened resident set (the
  // group is tentatively resident), zero-copy.
  probe.enter(AdmissionRung::Exact);
  const FeasibilityResult exact =
      query_exact(demand_.resident(), opts_.exact_fallback, opts_.analyzer);
  d.analysis.verdict = exact.verdict;
  d.analysis.iterations += exact.iterations;
  d.analysis.revisions += exact.revisions;
  d.analysis.witness = exact.witness;
  d.analysis.max_interval_tested =
      std::max(d.analysis.max_interval_tested, exact.max_interval_tested);
  d.analysis.degraded = d.analysis.degraded || exact.degraded;
  if (exact.feasible()) {
    return settle(true, AdmissionRung::Exact);
  }
  rollback();
  return settle(false, AdmissionRung::Exact);
}

bool AdmissionController::remove(TaskId id) {
  // Journaled even when the id turns out unknown: replaying a no-op
  // remove is a no-op, and recording before executing keeps the WAL
  // ordering uniform.
  if (journal_ != nullptr) journal_->append(journal_codec::remove(id));
  if (!demand_.remove(id)) return false;
  ++stats_.removals;
  if (metrics_ != nullptr) metrics_->removals.add();
  return true;
}

std::size_t AdmissionController::remove_group(std::span<const TaskId> ids) {
  if (journal_ != nullptr) {
    journal_->append(journal_codec::remove_group(ids));
  }
  const std::size_t gone = demand_.remove_group(ids);
  stats_.removals += gone;
  if (metrics_ != nullptr && gone != 0) metrics_->removals.add(gone);
  return gone;
}

void AdmissionController::attach_obs(obs::Obs* obs, std::size_t shard) {
  if (obs == nullptr || !obs->config().any()) {
    metrics_ = nullptr;
    trace_ = nullptr;
    return;
  }
  metrics_ = obs->config().metrics ? obs->admission() : nullptr;
  trace_ = obs->recorder().ring(shard);
}

const Task* AdmissionController::find(TaskId id) const noexcept {
  return demand_.find(id);
}

FeasibilityResult AdmissionController::analyze_resident(TestKind kind) const {
  return query_exact(demand_.resident(), kind, opts_.analyzer);
}

std::vector<TestKind> admission_ladder_tests(const AdmissionOptions& opts) {
  if (!opts.platform.uniprocessor()) {
    // Global mode: GFB + window tests, then (unless skip_exact) the RTA
    // and decisive simulation rungs — the order run_global_ladder runs.
    std::vector<TestKind> kinds = {
        TestKind::GfbDensity, TestKind::GlobalBcl,
        TestKind::GlobalBclIterative, TestKind::GlobalLoad};
    if (!opts.skip_exact) {
      kinds.push_back(TestKind::GlobalRta);
      kinds.push_back(TestKind::GlobalSim);
    }
    return kinds;
  }
  // The ladder is the query layer's default escalation: the registry's
  // incremental backends, then the configured exact fallback.
  return default_ladder_kinds(opts.exact_fallback, !opts.skip_exact);
}

}  // namespace edfkit
