#include "admission/incremental_dbf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "demand/approx.hpp"
#include "demand/dbf.hpp"

namespace edfkit {
namespace {

constexpr Int128 kS = kFixedPointScale;
constexpr double kInvS = 1.0 / 4611686018427387904.0;  // 2^-62

/// Per-task certified utilization pair. Matches scaled_utilization_bounds
/// term-for-term so incremental sums equal the from-scratch bounds.
ScaledPair task_util_pair(const Task& t) {
  if (is_time_infinite(t.period)) return {0, 0};
  return scale_fraction(static_cast<Int128>(t.wcet),
                        static_cast<Int128>(t.period));
}

/// Per-task certified pair for u * border = C * border / T.
ScaledPair task_offset_pair(const Task& t, Time border) {
  return scale_fraction(static_cast<Int128>(t.wcet) * border,
                        static_cast<Int128>(t.period));
}

/// Per-task certified pair for K_t = C * (T - D_eff) / T = C - C*D_eff/T
/// (a one-shot task's envelope is the constant C, so K_t = C). May be
/// negative for D_eff > T.
ScaledPair task_kay_pair(const Task& t) {
  const Int128 c = static_cast<Int128>(t.wcet) * kS;
  if (is_time_infinite(t.period)) return {c, c};
  const ScaledPair f =
      scale_fraction(static_cast<Int128>(t.wcet) * t.effective_deadline(),
                     static_cast<Int128>(t.period));
  return {c - f.hi, c - f.lo};
}

/// Cheap certified bounds on (num/den)*S via double division: IEEE
/// relative error is ~2^-52, far inside the 1e-9 safety inflation, and
/// the certificate only needs *some* valid bound — int128 divmods here
/// would dominate the per-update cost. \pre num >= 0, den > 0
Int128 frac_upper(Int128 num, Int128 den) {
  const double q = static_cast<double>(num) / static_cast<double>(den);
  return static_cast<Int128>(q * (1.0 + 1e-9) * static_cast<double>(kS)) + 1;
}
Int128 frac_lower(Int128 num, Int128 den) {
  const double q = static_cast<double>(num) / static_cast<double>(den);
  const Int128 v =
      static_cast<Int128>(q * (1.0 - 1e-9) * static_cast<double>(kS)) - 1;
  return v > 0 ? v : 0;
}

/// S-scaled upper bound on the contribution ratio of t at intervals
/// >= x: the envelope ratio u + K_t/I is decreasing for K_t >= 0 (its
/// value at max(x, D_eff)), and at most u for K_t < 0.
Int128 region_charge(const Task& t, Time x) {
  const Time from = std::max(x, t.effective_deadline());
  if (is_time_infinite(t.period)) {
    // One-shot: constant envelope C, ratio C/I decreasing.
    return frac_upper(static_cast<Int128>(t.wcet),
                      static_cast<Int128>(from));
  }
  if (t.effective_deadline() > t.period) {
    return task_util_pair(t).hi;  // K_t < 0: ratio rises toward u
  }
  // u + K_t/from == C*(from - D_eff + T) / (T*from) in one division.
  const Int128 num =
      static_cast<Int128>(t.wcet) *
      (static_cast<Int128>(from) - t.effective_deadline() + t.period);
  const Int128 den =
      static_cast<Int128>(t.period) * static_cast<Int128>(from);
  return frac_upper(num, den);
}

/// S-scaled lower bound on the contribution ratio of t over intervals
/// in [x, to_excl): both its exact steps and its envelope satisfy
/// contribution(I) >= max(C, u*(I - D_eff)) for I >= D_eff, whose two
/// ratio terms are monotone (C/I falls, u*(1 - D_eff/I) rises), so the
/// region minimum is max(C/to_excl, u*(1 - D_eff/x)). Zero if the
/// region reaches below D_eff. Used to credit the certificate when t
/// departs — departures *restore* fast-path headroom.
Int128 region_credit(const Task& t, Time x, Time to_excl) {
  const Time d = t.effective_deadline();
  if (x < d) return 0;
  Int128 credit = 0;
  if (!is_time_infinite(to_excl)) {
    credit = frac_lower(static_cast<Int128>(t.wcet),
                        static_cast<Int128>(to_excl));
  }
  if (!is_time_infinite(t.period) && x > d) {
    const Int128 num =
        static_cast<Int128>(t.wcet) * (static_cast<Int128>(x) - d);
    credit = std::max(credit,
                      frac_lower(num, static_cast<Int128>(t.period) *
                                          static_cast<Int128>(x)));
  }
  return credit;
}

/// Component-wise signed accumulation: lo into lo, hi into hi. This is
/// the exact inverse required for drift-free removal (ScaledPair's -=
/// is interval subtraction, which widens instead).
void accumulate(ScaledPair& dst, const ScaledPair& src, int sign) {
  dst.lo += sign * src.lo;
  dst.hi += sign * src.hi;
}

}  // namespace

IncrementalDemand::IncrementalDemand(double epsilon) {
  if (!(epsilon > 0.0) || epsilon > 1.0) {
    throw std::invalid_argument(
        "IncrementalDemand: epsilon in (0,1] required");
  }
  k_ = static_cast<Time>(std::ceil(1.0 / epsilon));
  cert_x_.fill(0);
  cert_region_.fill(kS);  // the empty set is fully slack everywhere
}

void IncrementalDemand::apply_corners(const Task& t, Time from_level,
                                      Time to_level, int sign) {
  // Corner times of jobs [from_level, to_level), ascending.
  corner_scratch_.clear();
  for (Time j = from_level; j < to_level; ++j) {
    const Time d = t.job_deadline(j);
    if (is_time_infinite(d)) break;
    corner_scratch_.push_back(d);
    if (is_time_infinite(t.period)) break;  // one-shot: single corner
  }
  if (corner_scratch_.empty()) return;

  const auto by_at = [](const StepEntry& e, Time v) { return e.at < v; };
  if (sign > 0) {
    // Update existing checkpoints in place and mark genuinely new
    // times, then splice those in with a single backward merge: one
    // O(n*k + k) move pass instead of k separate O(n*k) inserts.
    std::size_t missing = 0;
    auto it = steps_.begin();
    for (Time& d : corner_scratch_) {
      it = std::lower_bound(it, steps_.end(), d, by_at);
      if (it != steps_.end() && it->at == d) {
        it->refs += 1;
        it->step += t.wcet;
        d = -1;  // handled in place
      } else {
        ++missing;
      }
    }
    if (missing != 0) {
      std::size_t r = steps_.size();  // read cursor into the old tail
      steps_.resize(steps_.size() + missing);
      std::size_t w = steps_.size();  // write cursor
      for (std::size_t j = corner_scratch_.size(); j-- > 0;) {
        const Time d = corner_scratch_[j];
        if (d < 0) continue;
        while (r > 0 && steps_[r - 1].at > d) steps_[--w] = steps_[--r];
        steps_[--w] = StepEntry{d, t.wcet, 1};
      }
    }
  } else {
    // Withdraw the task's contributions; compact once if any checkpoint
    // emptied so the scan length tracks the live set.
    bool emptied = false;
    auto it = steps_.begin();
    for (const Time d : corner_scratch_) {
      it = std::lower_bound(it, steps_.end(), d, by_at);
      it->refs -= 1;
      it->step -= t.wcet;
      emptied = emptied || it->refs == 0;
    }
    if (emptied) {
      std::erase_if(steps_, [](const StepEntry& e) { return e.refs == 0; });
    }
  }
}

void IncrementalDemand::apply_border(const Task& t, Time level, int sign) {
  if (is_time_infinite(t.period)) return;  // one-shot: no envelope
  const Time border = t.job_deadline(level - 1);
  if (is_time_infinite(border)) return;
  const auto bit = std::lower_bound(
      borders_.begin(), borders_.end(), border,
      [](const BorderEntry& e, Time v) { return e.at < v; });
  if (bit != borders_.end() && bit->at == border) {
    bit->refs += sign;
    accumulate(bit->slope, task_util_pair(t), sign);
    accumulate(bit->offset, task_offset_pair(t, border), sign);
    if (bit->refs == 0) borders_.erase(bit);
  } else {
    BorderEntry fresh;
    fresh.at = border;
    fresh.refs = sign;
    accumulate(fresh.slope, task_util_pair(t), sign);
    accumulate(fresh.offset, task_offset_pair(t, border), sign);
    borders_.insert(bit, fresh);
  }
}

void IncrementalDemand::apply_entries(const Task& t, Time level, int sign) {
  apply_corners(t, 0, level, sign);
  apply_border(t, level, sign);
  accumulate(util_scaled_, task_util_pair(t), sign);
  accumulate(kay_, task_kay_pair(t), sign);
  if (sign > 0) {
    d_max_ = std::max(d_max_, t.effective_deadline());
  } else if (t.effective_deadline() == d_max_) {
    d_max_stale_ = true;
  }
  if (t.effective_deadline() < t.period) {
    constrained_ += static_cast<std::size_t>(sign);
  }
  // Maintain the certificate: an arrival shrinks each region's slack
  // ratio by at most its decayed contribution bound there (pointwise),
  // and a departure restores at least its minimum contribution ratio —
  // so under churn the fast path regenerates without a scan. A fully
  // dead certificate (every region -1) has nothing to maintain.
  if (cert_lo_ >= 0 || !cert_dead_) {
    cert_lo_ = kS;
    bool any_valid = false;
    for (std::size_t j = 0; j < kCertCuts; ++j) {
      Int128& c = cert_region_[j];
      if (c >= 0) {
        if (sign > 0) {
          c -= region_charge(t, cert_x_[j]);
          if (c < 0) c = -1;
        } else {
          const Time to_excl =
              j + 1 < kCertCuts ? cert_x_[j + 1] : kTimeInfinity;
          c = std::min(c + region_credit(t, cert_x_[j], to_excl), kS);
        }
      }
      any_valid = any_valid || c >= 0;
      cert_lo_ = std::min(cert_lo_, c);
    }
    cert_dead_ = !any_valid;
  }
  util_valid_ = false;
}

void IncrementalDemand::refine(Resident& r, Time to_level) {
  apply_border(r.task, r.level, -1);
  apply_corners(r.task, r.level, to_level, +1);
  apply_border(r.task, to_level, +1);
  r.level = to_level;
}

void IncrementalDemand::ensure_util() const {
  if (util_valid_) return;
  Rational u;
  for (const auto& [id, r] : tasks_) u += r.task.utilization();
  util_ = u;
  util_valid_ = true;
}

TaskId IncrementalDemand::add(const Task& t) {
  t.validate();
  const TaskId id = next_id_++;
  tasks_.emplace_hint(tasks_.end(), id, Resident{t, k_});  // ids ascend
  apply_entries(t, k_, +1);
  return id;
}

bool IncrementalDemand::remove(TaskId id) {
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) return false;
  const Resident r = it->second;
  tasks_.erase(it);
  apply_entries(r.task, r.level, -1);
  return true;
}

const Task* IncrementalDemand::find(TaskId id) const noexcept {
  const auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second.task;
}

Time IncrementalDemand::level_of(TaskId id) const noexcept {
  const auto it = tasks_.find(id);
  return it == tasks_.end() ? 0 : it->second.level;
}

const Rational& IncrementalDemand::utilization() const {
  ensure_util();
  return util_;
}

double IncrementalDemand::utilization_double() const noexcept {
  return static_cast<double>(util_scaled_.hi) * kInvS;
}

UtilizationClass IncrementalDemand::utilization_class() const noexcept {
  // Certified scaled bounds decide everything but a ~n*2^-62-wide band
  // around exactly 1; only inside it is the exact rational materialized.
  if (util_scaled_.hi < kS) return UtilizationClass::BelowOne;
  if (util_scaled_.lo > kS) return UtilizationClass::AboveOne;
  ensure_util();
  switch (util_.compare(Time{1})) {
    case Ordering::Less: return UtilizationClass::BelowOne;
    case Ordering::Equal: return UtilizationClass::ExactlyOne;
    case Ordering::Greater: return UtilizationClass::AboveOne;
    case Ordering::Unknown: return UtilizationClass::Marginal;
  }
  return UtilizationClass::Marginal;
}

UtilizationClass IncrementalDemand::utilization_class_with(
    const Task& t) const {
  ScaledPair widened = util_scaled_;
  accumulate(widened, task_util_pair(t), +1);
  if (widened.hi < kS) return UtilizationClass::BelowOne;
  if (widened.lo > kS) return UtilizationClass::AboveOne;
  ensure_util();
  switch ((util_ + t.utilization()).compare(Time{1})) {
    case Ordering::Less: return UtilizationClass::BelowOne;
    case Ordering::Equal: return UtilizationClass::ExactlyOne;
    case Ordering::Greater: return UtilizationClass::AboveOne;
    case Ordering::Unknown: return UtilizationClass::Marginal;
  }
  return UtilizationClass::Marginal;
}

bool IncrementalDemand::certificate_covers(const Task& t) const noexcept {
  // The widened set must certainly keep U <= 1 (the certificate's
  // beyond-last-checkpoint argument runs at slope U).
  if (util_scaled_.hi + task_util_pair(t).hi > kS) return false;
  // Per-region test with the decayed charge; regions entirely below
  // the candidate's first deadline see no contribution at all. The
  // segment-endpoint (phi) argument extends checkpoint coverage to
  // every interval, so all-regions-pass proves admissibility.
  const Time d = t.effective_deadline();
  for (std::size_t j = 0; j < kCertCuts; ++j) {
    if (j + 1 < kCertCuts && cert_x_[j + 1] <= d) continue;  // below D
    if (cert_region_[j] < 0) return false;
    if (region_charge(t, cert_x_[j]) > cert_region_[j]) return false;
  }
  return true;
}

Time IncrementalDemand::exact_dbf_at(Time interval) const noexcept {
  Time total = 0;
  for (const auto& [id, r] : tasks_) {
    total = add_saturating(total, dbf(r.task, interval));
  }
  return total;
}

Rational IncrementalDemand::exact_demand_at(Time interval) const {
  Rational total;
  for (const auto& [id, r] : tasks_) {
    const Task& t = r.task;
    if (interval < t.effective_deadline()) continue;
    if (is_time_infinite(t.period) ||
        interval <= t.job_deadline(r.level - 1)) {
      total += Rational(dbf(t, interval));
    } else {
      total += approx_demand(t, interval);
    }
  }
  return total;
}

DemandCheck IncrementalDemand::check() {
  return check(64 + 8 * static_cast<std::uint64_t>(tasks_.size()));
}

DemandCheck IncrementalDemand::check(std::uint64_t max_revisions) {
  DemandCheck out;
  if (tasks_.empty()) {
    out.fits = true;
    cert_lo_ = kS;  // theta = 1
    return out;
  }
  const UtilizationClass uc = utilization_class();
  if (uc == UtilizationClass::AboveOne || uc == UtilizationClass::Marginal) {
    // AboveOne cannot fit. Marginal (certified bounds straddle 1 and
    // the exact rational overflowed) cannot be *proven* to fit either,
    // and fits is a proof — report degraded and let the caller
    // escalate rather than rest an accept on an uncertain U <= 1.
    cert_region_.fill(-1);
    cert_lo_ = -1;
    cert_dead_ = true;
    out.degraded = (uc == UtilizationClass::Marginal);
    return out;
  }
  cert_region_.fill(-1);  // re-established only by a full passing scan
  cert_lo_ = -1;
  cert_dead_ = true;

  if (d_max_stale_) {
    d_max_ = 0;
    for (const auto& [id, r] : tasks_) {
      d_max_ = std::max(d_max_, r.task.effective_deadline());
    }
    d_max_stale_ = false;
  }
  const Time d_max = d_max_;
  // Refinement ceiling: keeps the learned structure at O(n * 4k)
  // checkpoints — scans must stay cheap, so regions needing deeper
  // resolution escalate to the offline exact test instead.
  const Time max_level = 4 * k_;

restart:
  // Per-region minima of the certified slack-ratio lower bounds, for
  // the segmented certificate: region j spans checkpoints in
  // [cuts[j], cuts[j+1]). Cut positions equidistribute checkpoint
  // count. Ratio interpolation (slack ratio of a segment interior is
  // at least the smaller endpoint ratio) makes each region's min valid
  // for every interval in it, provided the straddling segment's left
  // endpoint is carried into the region entered — done at advance.
  //
  // Past the last checkpoint L the demand is exactly U*I + K, so the
  // slack ratio 1 - U - K/I is increasing for K >= 0 (its minimum, at
  // L, is already a measured checkpoint) and approaches 1-U from above
  // for K < 0 — only then does 1-U bind (folded into the last region).
  std::array<Time, kCertCuts> cuts{};
  std::array<double, kCertCuts> region_min;
  region_min.fill(2.0);
  for (std::size_t j = 1; j < kCertCuts; ++j) {
    cuts[j] = steps_[j * steps_.size() / kCertCuts].at;
  }
  if (kay_.lo < 0) {
    region_min.back() = std::min(
        region_min.back(),
        static_cast<double>(kS - util_scaled_.hi) * kInvS);
  }

  const double one_minus_u_d =
      static_cast<double>(kS - util_scaled_.hi) * kInvS;
  const double kay_d = static_cast<double>(kay_.hi) * kInvS;

  // Ascending scan. Demand at checkpoint I (certified S-scaled):
  //   steps_acc * S  +  slope_acc * I  -  offset_acc
  // where slope/offset absorb each envelope *after* its border is
  // compared (the envelope term is zero exactly at the border).
  //
  // The double filter mirrors the hi-bounds in tick units. Magnitudes
  // stay below ~2^63 ticks, so the accumulated IEEE error is below
  // 1e-3 ticks for any realistic workload while certified-interval
  // widths are ~1e-15 ticks: a guard band of 1e-6 relative (min 1e-3
  // absolute) classifies every checkpoint outside the band *provably*;
  // checkpoints inside it re-compare via int128, then exact rationals.
  {
    std::int64_t steps_acc = 0;
    double slope_d = 0.0;
    double offset_d = 0.0;
    ScaledPair slope_acc;
    ScaledPair offset_acc;
    std::size_t bi = 0;  // borders_ consumed (second merge pointer)
    std::size_t rj = 0;  // current certificate region
    double prev_ratio = 2.0;  // left endpoint of the running segment

    for (std::size_t si = 0; si < steps_.size(); ++si) {
      const StepEntry& node = steps_[si];
      const Time i = node.at;
      const double i_d = static_cast<double>(i);
      // Advance the certificate region, carrying the straddling
      // segment's left-endpoint ratio into every region entered.
      while (rj + 1 < kCertCuts && i >= cuts[rj + 1]) {
        ++rj;
        region_min[rj] = std::min(region_min[rj], prev_ratio);
      }
      // Early stop: from any I >= every deadline, dbf'(I) <= U*I + K
      // (every task is at or below its envelope line there). Once
      // (1-U)*I >= K certifiably, this and all later checkpoints fit.
      if (i >= d_max && one_minus_u_d * i_d > kay_d &&
          (kS - util_scaled_.hi) * i >= kay_.hi) {
        double term = one_minus_u_d;
        if (kay_.hi > 0) {
          // Slack ratio on the skipped region is worst at its left
          // edge: theta(I) = 1 - U - K/I is increasing for K > 0.
          const Int128 q = kay_.hi / i;
          const Int128 r = kay_.hi % i;
          term = static_cast<double>(kS - util_scaled_.hi - q -
                                     (r != 0 ? 1 : 0)) *
                 kInvS;
        }
        region_min[rj] = std::min(region_min[rj], prev_ratio);
        for (std::size_t j = rj; j < kCertCuts; ++j) {
          region_min[j] = std::min(region_min[j], term);
        }
        break;
      }
      steps_acc += node.step;
      ++out.iterations;
      out.max_interval_tested = i;

      const double demand_d =
          static_cast<double>(steps_acc) + slope_d * i_d - offset_d;
      const double slack_d = i_d - demand_d;
      const double band = 1e-6 * (demand_d + i_d) + 1e-3;
      if (slack_d < band) {
        // Inside (or below) the guard band: decide with certified
        // arithmetic — int128 bounds, then one exact rational.
        const Int128 cap = static_cast<Int128>(i) * kS;
        const Int128 steps_scaled = static_cast<Int128>(steps_acc) * kS;
        const Int128 hi = steps_scaled + slope_acc.hi * i - offset_acc.lo;
        Int128 lo = steps_scaled + slope_acc.lo * i - offset_acc.hi;
        if (lo < steps_scaled) lo = steps_scaled;  // envelopes are >= 0
        if (hi > cap) {
          bool fits_here = false;
          if (lo <= cap) {
            const Rational exact = exact_demand_at(i);
            if (exact.exact()) {
              fits_here = exact.certainly_le(i);
            } else {
              out.degraded = true;
            }
          }
          if (!fits_here) {
            // Approximated overload at i. If no envelope is active
            // below i the value is the exact dbf: infeasibility proof.
            // Otherwise raise the contributing tasks' levels past i
            // and rescan — the refinement persists across decisions.
            bool refined = false;
            bool capped = false;
            for (auto& [id, r] : tasks_) {
              if (is_time_infinite(r.task.period)) continue;
              if (r.task.job_deadline(r.level - 1) >= i) continue;
              const Time want = r.task.jobs_with_deadline_within(i) + 2;
              if (want > max_level || out.revisions >= max_revisions) {
                capped = true;
                continue;
              }
              ++out.revisions;
              refine(r, want);
              refined = true;
            }
            if (!refined) {
              out.witness = i;
              if (!capped) {
                out.overflow_proof = true;  // exact dbf(i) > i
              }
              return out;
            }
            goto restart;
          }
          prev_ratio = 0.0;  // at (or within a unit of) the line
        } else {
          prev_ratio =
              static_cast<double>((cap - hi) / i) * kInvS;
        }
        region_min[rj] = std::min(region_min[rj], prev_ratio);
      } else {
        // Provably fits; the band-subtracted ratio stays a certified
        // lower bound.
        prev_ratio = (slack_d - band) / i_d;
        region_min[rj] = std::min(region_min[rj], prev_ratio);
      }
      // Absorb envelopes whose border is this checkpoint *after* the
      // comparison (the envelope term is zero exactly at the border;
      // every border time is also a step checkpoint, so none is
      // skipped).
      while (bi < borders_.size() && borders_[bi].at <= i) {
        accumulate(slope_acc, borders_[bi].slope, +1);
        accumulate(offset_acc, borders_[bi].offset, +1);
        ++bi;
        slope_d = static_cast<double>(slope_acc.hi) * kInvS;
        offset_d = static_cast<double>(offset_acc.lo) * kInvS;
      }
    }
  }
  // Publish the per-region certificate (cert_region_[j] bounds every
  // checkpoint ratio in [cuts[j], cuts[j+1]); segment interiors follow
  // from the endpoint argument in certificate_covers).
  cert_x_ = cuts;
  for (std::size_t j = 0; j < kCertCuts; ++j) {
    const double r = std::min(region_min[j], 1.0);
    cert_region_[j] =
        r >= 0.0 ? static_cast<Int128>(r * static_cast<double>(kS) *
                                       0.999999)
                 : Int128{-1};
  }
  cert_lo_ = kS;
  cert_dead_ = true;
  for (const Int128 c : cert_region_) {
    cert_lo_ = std::min(cert_lo_, c);
    cert_dead_ = cert_dead_ && c < 0;
  }
  out.fits = true;
  return out;
}

TaskSet IncrementalDemand::snapshot() const {
  std::vector<Task> ts;
  ts.reserve(tasks_.size());
  for (const auto& [id, r] : tasks_) ts.push_back(r.task);
  return TaskSet(std::move(ts));
}

void IncrementalDemand::rebuild() {
  steps_.clear();
  borders_.clear();
  util_valid_ = false;
  util_scaled_ = ScaledPair{};
  kay_ = ScaledPair{};
  d_max_ = 0;
  d_max_stale_ = false;
  cert_x_.fill(0);
  cert_region_.fill(tasks_.empty() ? kS : -1);  // next check() re-certifies
  cert_lo_ = cert_region_[0];
  cert_dead_ = !tasks_.empty();
  const std::map<TaskId, Resident> resident = tasks_;
  for (const auto& [id, r] : resident) apply_entries(r.task, r.level, +1);
}

bool IncrementalDemand::matches_rebuild() const {
  IncrementalDemand fresh(epsilon());
  fresh.k_ = k_;
  for (const auto& [id, r] : tasks_) {
    fresh.tasks_.emplace(id, r);
    fresh.apply_entries(r.task, r.level, +1);
  }
  if (fresh.steps_ != steps_ || fresh.borders_ != borders_) return false;
  if (fresh.util_scaled_.lo != util_scaled_.lo ||
      fresh.util_scaled_.hi != util_scaled_.hi) {
    return false;
  }
  if (fresh.kay_.lo != kay_.lo || fresh.kay_.hi != kay_.hi) return false;
  if (fresh.constrained_ != constrained_) return false;
  const Rational& mine = utilization();
  const Rational& theirs = fresh.utilization();
  if (mine.exact() != theirs.exact()) return false;
  return !mine.exact() || mine.compare(theirs) == Ordering::Equal;
}

}  // namespace edfkit
