#include "admission/incremental_dbf.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "demand/approx.hpp"
#include "demand/dbf.hpp"

namespace edfkit {
namespace {

constexpr Int128 kS = kFixedPointScale;
constexpr double kInvS = 1.0 / 4611686018427387904.0;  // 2^-62

/// Below this many checkpoints the store stays single-segment: one flat
/// array scans faster than any index can save.
constexpr std::size_t kMinIndexSteps = 192;

/// Resident-count hysteresis for index engagement: the per-update bound
/// maintenance (slack_adjust, neighbor discovery) only pays for itself
/// once scans are long. The 16-task gap means churn oscillating around
/// either threshold cannot thrash engage/disengage transitions.
constexpr std::size_t kIndexOnResidents = 48;
constexpr std::size_t kIndexOffResidents = 32;

/// Deferred compaction: a segment (or the id index) compacts once its
/// tombstones are at least this many *and* at least a quarter (half for
/// ids) of the array — amortized O(1) per removal either way.
constexpr std::size_t kMinDeadForCompact = 32;

/// Per-task certified utilization pair. Matches scaled_utilization_bounds
/// term-for-term so incremental sums equal the from-scratch bounds.
ScaledPair task_util_pair(const Task& t) {
  if (is_time_infinite(t.period)) return {0, 0};
  return scale_fraction(static_cast<Int128>(t.wcet),
                        static_cast<Int128>(t.period));
}

/// Per-task certified pair for u * border = C * border / T.
ScaledPair task_offset_pair(const Task& t, Time border) {
  return scale_fraction(static_cast<Int128>(t.wcet) * border,
                        static_cast<Int128>(t.period));
}

/// Per-task certified pair for K_t = C * (T - D_eff) / T = C - C*D_eff/T
/// (a one-shot task's envelope is the constant C, so K_t = C). May be
/// negative for D_eff > T.
ScaledPair task_kay_pair(const Task& t) {
  const Int128 c = static_cast<Int128>(t.wcet) * kS;
  if (is_time_infinite(t.period)) return {c, c};
  const ScaledPair f =
      scale_fraction(static_cast<Int128>(t.wcet) * t.effective_deadline(),
                     static_cast<Int128>(t.period));
  return {c - f.hi, c - f.lo};
}

/// Cheap certified bounds on (num/den)*S via double division: IEEE
/// relative error is ~2^-52, far inside the 1e-9 safety inflation, and
/// the certificate only needs *some* valid bound — int128 divmods here
/// would dominate the per-update cost. \pre num >= 0, den > 0
Int128 frac_upper(Int128 num, Int128 den) {
  const double q = static_cast<double>(num) / static_cast<double>(den);
  return static_cast<Int128>(q * (1.0 + 1e-9) * static_cast<double>(kS)) + 1;
}
Int128 frac_lower(Int128 num, Int128 den) {
  const double q = static_cast<double>(num) / static_cast<double>(den);
  const Int128 v =
      static_cast<Int128>(q * (1.0 - 1e-9) * static_cast<double>(kS)) - 1;
  return v > 0 ? v : 0;
}

/// S-scaled upper bound on the contribution ratio of t at intervals
/// >= x: the envelope ratio u + K_t/I is decreasing for K_t >= 0 (its
/// value at max(x, D_eff)), and at most u for K_t < 0.
Int128 region_charge(const Task& t, Time x) {
  const Time from = std::max(x, t.effective_deadline());
  if (is_time_infinite(t.period)) {
    // One-shot: constant envelope C, ratio C/I decreasing.
    return frac_upper(static_cast<Int128>(t.wcet),
                      static_cast<Int128>(from));
  }
  if (t.effective_deadline() > t.period) {
    return task_util_pair(t).hi;  // K_t < 0: ratio rises toward u
  }
  // u + K_t/from == C*(from - D_eff + T) / (T*from) in one division.
  const Int128 num =
      static_cast<Int128>(t.wcet) *
      (static_cast<Int128>(from) - t.effective_deadline() + t.period);
  const Int128 den =
      static_cast<Int128>(t.period) * static_cast<Int128>(from);
  return frac_upper(num, den);
}

/// S-scaled lower bound on the contribution ratio of t over intervals
/// in [x, to_excl): both its exact steps and its envelope satisfy
/// contribution(I) >= max(C, u*(I - D_eff)) for I >= D_eff, whose two
/// ratio terms are monotone (C/I falls, u*(1 - D_eff/I) rises), so the
/// region minimum is max(C/to_excl, u*(1 - D_eff/x)). Zero if the
/// region reaches below D_eff. Used to credit the certificate (and the
/// slack index) when t departs — departures *restore* fast-path
/// headroom.
Int128 region_credit(const Task& t, Time x, Time to_excl) {
  const Time d = t.effective_deadline();
  if (x < d) return 0;
  Int128 credit = 0;
  if (!is_time_infinite(to_excl)) {
    credit = frac_lower(static_cast<Int128>(t.wcet),
                        static_cast<Int128>(to_excl));
  }
  if (!is_time_infinite(t.period) && x > d) {
    const Int128 num =
        static_cast<Int128>(t.wcet) * (static_cast<Int128>(x) - d);
    credit = std::max(credit,
                      frac_lower(num, static_cast<Int128>(t.period) *
                                          static_cast<Int128>(x)));
  }
  return credit;
}

/// Component-wise signed accumulation: lo into lo, hi into hi. This is
/// the exact inverse required for drift-free removal (ScaledPair's -=
/// is interval subtraction, which widens instead).
void accumulate(ScaledPair& dst, const ScaledPair& src, int sign) {
  dst.lo += sign * src.lo;
  dst.hi += sign * src.hi;
}

}  // namespace

IncrementalDemand::IncrementalDemand(double epsilon, bool use_slack_index,
                                     bool eager_compaction)
    : use_slack_index_(use_slack_index),
      eager_compact_(eager_compaction),
      engage_at_(kIndexOnResidents),
      disengage_below_(kIndexOffResidents) {
  if (!(epsilon > 0.0) || epsilon > 1.0) {
    throw std::invalid_argument(
        "IncrementalDemand: epsilon in (0,1] required");
  }
  k_ = static_cast<Time>(std::ceil(1.0 / epsilon));
  segs_.emplace_back();  // one segment covering [0, infinity)
  cert_x_.fill(0);
  cert_region_.fill(kS);  // the empty set is fully slack everywhere
  publish_header();
}

void IncrementalDemand::set_index_thresholds(std::size_t engage_at,
                                             std::size_t disengage_below) {
  if (disengage_below > engage_at) {
    throw std::invalid_argument(
        "IncrementalDemand: disengage_below <= engage_at required");
  }
  engage_at_ = engage_at;
  disengage_below_ = disengage_below;
  update_index_engagement();
}

void IncrementalDemand::update_index_engagement() {
  if (!use_slack_index_) return;  // manual override: hard off
  if (!index_engaged_ && view_.size() >= engage_at_) {
    index_engaged_ = true;  // bounds start dirty; the next scan measures
  } else if (index_engaged_ && view_.size() < disengage_below_) {
    index_engaged_ = false;
    // Nothing maintains the bounds while disengaged — they must not be
    // trusted if the index later re-engages.
    for (Segment& g : segs_) g.min_ratio = -1.0;
  }
}

std::size_t IncrementalDemand::segment_of(Time at) const noexcept {
  // Last segment with lo <= at (segs_[0].lo is always 0).
  std::size_t lo = 0;
  std::size_t hi = segs_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (segs_[mid].lo <= at) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Time IncrementalDemand::step_time_at(std::size_t idx) const noexcept {
  // Live indexing keeps certificate cut anchors bit-identical between
  // tombstoned and eagerly compacted stores (decision agreement depends
  // on it); the dead-skip walk only runs for segments that hold
  // tombstones, a few per check at most.
  for (const Segment& g : segs_) {
    const std::size_t live = g.steps.size() - g.dead;
    if (idx < live) {
      if (g.dead == 0) return g.steps[idx].at;
      for (const StepEntry& e : g.steps) {
        if (e.refs == 0) continue;
        if (idx == 0) return e.at;
        --idx;
      }
    }
    idx -= live;
  }
  return kTimeInfinity;  // unreachable for idx < total_steps_
}

void IncrementalDemand::slack_note_new_time(std::size_t seg, Time pred,
                                            Time succ) {
  Segment& g = segs_[seg];
  if (g.min_ratio < 0.0) return;  // already dirty
  // A new checkpoint splits an existing demand segment. Demand is
  // affine between existing checkpoints (steps and envelope borders
  // only change at them), so the slack *ratio* is monotone there and
  // the interior is bounded by the smaller endpoint ratio; with no
  // predecessor the demand left of the first checkpoint is zero
  // (ratio 1). A time beyond the last checkpoint has no right anchor:
  // the segment goes dirty and the next scan measures it.
  if (succ < 0) {
    g.min_ratio = -1.0;
    return;
  }
  double m = 1.0;
  const double sm = segs_[segment_of(succ)].min_ratio;
  if (sm < 0.0) {
    g.min_ratio = -1.0;
    return;
  }
  m = std::min(m, sm);
  if (pred >= 0) {
    const double pm = segs_[segment_of(pred)].min_ratio;
    if (pm < 0.0) {
      g.min_ratio = -1.0;
      return;
    }
    m = std::min(m, pm);
  }
  g.min_ratio = std::min(g.min_ratio, m);
}

void IncrementalDemand::slack_adjust(const Task& t, int sign) {
  slack_adjust(std::span<const Task>(&t, 1), sign);
}

void IncrementalDemand::slack_adjust(std::span<const Task> tasks,
                                     int sign) {
  // Double-arithmetic mirror of region_charge/region_credit: this runs
  // per segment on *every* add/remove, so the Int128 helpers are too
  // heavy. IEEE relative error (~2^-52) sits far inside the 1e-9
  // inflation/deflation, so charges stay certified upper bounds and
  // credits certified lower bounds. Group updates walk the segment
  // array once, applying every task's charge/credit to a segment
  // before moving on — same per-task arithmetic, one pass of segment
  // traffic.
  for (Segment& g : segs_) {
    for (const Task& t : tasks) {
      if (g.min_ratio < 0.0) break;
      const Time d = t.effective_deadline();
      if (g.hi <= d) continue;  // the task contributes nothing below D
      const double c_d = static_cast<double>(t.wcet);
      const double t_d = static_cast<double>(t.period);
      const double d_d = static_cast<double>(d);
      const bool one_shot = is_time_infinite(t.period);
      const double from = static_cast<double>(std::max(g.lo, d));
      if (sign > 0) {
        // Upper bound on the contribution ratio at I >= g.lo (the
        // envelope ratio, decreasing for K >= 0; at most u for K < 0).
        double charge;
        if (one_shot) {
          charge = c_d / from;
        } else if (d > t.period) {
          charge = (c_d / t_d) * (1.0 + 1e-9);
        } else {
          charge = c_d * (from - d_d + t_d) / (t_d * from);
        }
        g.min_ratio -= charge * (1.0 + 1e-9) + 1e-15;
        if (g.min_ratio < 0.0) g.min_ratio = -1.0;
      } else {
        // Lower bound on the restored ratio over [lo, hi): max of the
        // monotone pieces C/hi and u*(1 - D/lo), deflated.
        double credit = 0.0;
        if (g.lo >= d) {
          if (!is_time_infinite(g.hi)) {
            credit = c_d / static_cast<double>(g.hi);
          }
          if (!one_shot && g.lo > d) {
            const double lo_d = static_cast<double>(g.lo);
            credit = std::max(credit, (c_d / t_d) * (lo_d - d_d) / lo_d);
          }
          credit = credit * (1.0 - 1e-9) - 1e-15;
          if (credit < 0.0) credit = 0.0;
        }
        g.min_ratio = std::min(g.min_ratio + credit, 2.0);
      }
    }
  }
}

void IncrementalDemand::compact_segment(Segment& g) {
  ++compactions_;
  if (g.dead != 0) {
    std::erase_if(g.steps, [](const StepEntry& e) { return e.refs == 0; });
    dead_steps_ -= g.dead;
    g.dead = 0;
  }
  if (g.dead_borders != 0) {
    std::erase_if(g.borders,
                  [](const BorderEntry& e) { return e.refs == 0; });
    g.dead_borders = 0;
  }
}

void IncrementalDemand::resegment() {
  // Flatten the store (dropping tombstones — resegmentation is a full
  // compaction), pick fresh boundaries that equidistribute the live
  // checkpoints, and redistribute. All cached bounds restart dirty.
  std::vector<StepEntry> steps;
  steps.reserve(total_steps_);
  std::vector<BorderEntry> borders;
  for (Segment& g : segs_) {
    for (const StepEntry& e : g.steps) {
      if (e.refs != 0) steps.push_back(e);
    }
    for (const BorderEntry& e : g.borders) {
      if (e.refs != 0) borders.push_back(e);
    }
  }
  dead_steps_ = 0;
  seg_built_steps_ = steps.size();
  const std::size_t want =
      (!index_engaged_ || steps.size() < kMinIndexSteps)
          ? 1
          : std::clamp<std::size_t>(steps.size() / 24, 4, 64);
  std::vector<Time> los{0};
  for (std::size_t j = 1; j < want; ++j) {
    const Time lo = steps[j * steps.size() / want].at;
    if (lo != los.back()) los.push_back(lo);
  }
  segs_.assign(los.size(), Segment{});
  for (std::size_t j = 0; j < segs_.size(); ++j) {
    segs_[j].lo = los[j];
    segs_[j].hi = j + 1 < segs_.size() ? los[j + 1] : kTimeInfinity;
  }
  std::size_t gi = 0;
  for (const StepEntry& e : steps) {
    while (gi + 1 < segs_.size() && e.at >= segs_[gi + 1].lo) ++gi;
    segs_[gi].steps.push_back(e);
    segs_[gi].step_sum += e.step;
  }
  gi = 0;
  for (const BorderEntry& e : borders) {
    while (gi + 1 < segs_.size() && e.at >= segs_[gi + 1].lo) ++gi;
    segs_[gi].borders.push_back(e);
    accumulate(segs_[gi].slope_sum, e.slope, +1);
    accumulate(segs_[gi].offset_sum, e.offset, +1);
  }
}

void IncrementalDemand::apply_corners(const Task& t, Time from_level,
                                      Time to_level, int sign) {
  // Corner times of jobs [from_level, to_level), ascending.
  corner_scratch_.clear();
  for (Time j = from_level; j < to_level; ++j) {
    const Time d = t.job_deadline(j);
    if (is_time_infinite(d)) break;
    corner_scratch_.push_back(d);
    if (is_time_infinite(t.period)) break;  // one-shot: single corner
  }
  if (corner_scratch_.empty()) return;

  // Nearest *live* neighbors of the position `pos` inside segment
  // `seg_idx` (tombstones are demand-transparent, so the affine-
  // interpolation bound must anchor on live checkpoints). `skip_pos`
  // when pos itself is the entry being resurrected. The walk over
  // tombstone runs is capped: past kNoteWalkCap entries the segment
  // just goes dirty (conservative — the next scan measures it) instead
  // of paying an O(dead-run) search on the insert path.
  constexpr int kNoteWalkCap = 8;
  const auto note_between = [&](std::size_t seg_idx,
                                std::vector<StepEntry>::iterator pos,
                                bool skip_pos) {
    int budget = kNoteWalkCap;
    Time pred = -1;
    for (auto p = pos; p != segs_[seg_idx].steps.begin();) {
      --p;
      if (p->refs != 0) {
        pred = p->at;
        break;
      }
      if (--budget == 0) break;
    }
    if (pred < 0 && budget != 0) {
      for (std::size_t j = seg_idx; j-- > 0 && pred < 0 && budget != 0;) {
        for (auto p = segs_[j].steps.rbegin(); p != segs_[j].steps.rend();
             ++p) {
          if (p->refs != 0) {
            pred = p->at;
            break;
          }
          if (--budget == 0) break;
        }
      }
    }
    if (pred < 0 && budget == 0) {
      segs_[seg_idx].min_ratio = -1.0;
      return;
    }
    budget = kNoteWalkCap;
    Time succ = -1;
    for (auto p = pos + (skip_pos ? 1 : 0);
         p != segs_[seg_idx].steps.end(); ++p) {
      if (p->refs != 0) {
        succ = p->at;
        break;
      }
      if (--budget == 0) break;
    }
    if (succ < 0 && budget != 0) {
      for (std::size_t j = seg_idx + 1;
           j < segs_.size() && succ < 0 && budget != 0; ++j) {
        for (const StepEntry& e : segs_[j].steps) {
          if (e.refs != 0) {
            succ = e.at;
            break;
          }
          if (--budget == 0) break;
        }
      }
    }
    if (succ < 0 && budget == 0) {
      segs_[seg_idx].min_ratio = -1.0;
      return;
    }
    slack_note_new_time(seg_idx, pred, succ);
  };

  // Process the (ascending) corners grouped by segment, so each touched
  // segment pays one in-place pass plus at most one backward splice —
  // the single-segment case is exactly the historical flat-array merge.
  const auto by_at = [](const StepEntry& e, Time v) { return e.at < v; };
  std::size_t c0 = 0;
  std::size_t gi = segment_of(corner_scratch_.front());
  while (c0 < corner_scratch_.size()) {
    while (gi + 1 < segs_.size() &&
           corner_scratch_[c0] >= segs_[gi + 1].lo) {
      ++gi;
    }
    Segment& g = segs_[gi];
    std::size_t c1 = c0 + 1;
    while (c1 < corner_scratch_.size() && corner_scratch_[c1] < g.hi) ++c1;
    g.step_sum +=
        sign * t.wcet * static_cast<std::int64_t>(c1 - c0);
    if (sign > 0) {
      // Update existing checkpoints in place (resurrecting tombstones)
      // and mark genuinely new times, then splice those in with a
      // single backward merge.
      std::size_t missing = 0;
      auto it = g.steps.begin();
      for (std::size_t c = c0; c < c1; ++c) {
        Time& d = corner_scratch_[c];
        it = std::lower_bound(it, g.steps.end(), d, by_at);
        if (it != g.steps.end() && it->at == d) {
          if (it->refs == 0) {
            // Resurrection: demand-wise a brand-new checkpoint time —
            // bound its ratio through its live neighbors.
            --g.dead;
            --dead_steps_;
            ++total_steps_;
            if (index_engaged_ && g.min_ratio >= 0.0) {
              note_between(gi, it, /*skip_pos=*/true);
            }
          }
          it->refs += 1;
          it->step += t.wcet;
          d = -1;  // handled in place
        } else {
          ++missing;
          // Dirty segments need no bound update — skip the (costly)
          // neighbor discovery for them.
          if (index_engaged_ && g.min_ratio >= 0.0) {
            note_between(gi, it, /*skip_pos=*/false);
          }
        }
      }
      if (missing != 0) {
        std::size_t r = g.steps.size();  // read cursor into the old tail
        g.steps.resize(g.steps.size() + missing);
        std::size_t w = g.steps.size();  // write cursor
        for (std::size_t c = c1; c-- > c0;) {
          const Time d = corner_scratch_[c];
          if (d < 0) continue;
          while (r > 0 && g.steps[r - 1].at > d) {
            g.steps[--w] = g.steps[--r];
          }
          g.steps[--w] = StepEntry{d, t.wcet, 1};
        }
        total_steps_ += missing;
      }
    } else {
      // Withdraw the contributions. An emptied checkpoint becomes a
      // tombstone (refs == 0, step == 0) — no memmove; reclamation is
      // deferred until tombstones dominate the segment (or immediate
      // under eager_compaction, the pre-tombstone baseline).
      std::size_t newly_dead = 0;
      auto it = g.steps.begin();
      for (std::size_t c = c0; c < c1; ++c) {
        it = std::lower_bound(it, g.steps.end(), corner_scratch_[c],
                              by_at);
        it->refs -= 1;
        it->step -= t.wcet;
        if (it->refs == 0) ++newly_dead;
      }
      if (newly_dead != 0) {
        total_steps_ -= newly_dead;
        g.dead += newly_dead;
        dead_steps_ += newly_dead;
        if (eager_compact_ ||
            (g.dead >= kMinDeadForCompact &&
             g.dead * 4 >= g.steps.size())) {
          compact_segment(g);
        }
      }
    }
    c0 = c1;
  }
}

void IncrementalDemand::apply_border(const Task& t, Time level, int sign) {
  if (is_time_infinite(t.period)) return;  // one-shot: no envelope
  const Time border = t.job_deadline(level - 1);
  if (is_time_infinite(border)) return;
  // One evaluation of each certified pair (they cost 128-bit divides;
  // this path runs per add/remove/refine).
  const ScaledPair slope_pair = task_util_pair(t);
  const ScaledPair offset_pair = task_offset_pair(t, border);
  Segment& g = segs_[segment_of(border)];
  accumulate(g.slope_sum, slope_pair, sign);
  accumulate(g.offset_sum, offset_pair, sign);
  const auto bit = std::lower_bound(
      g.borders.begin(), g.borders.end(), border,
      [](const BorderEntry& e, Time v) { return e.at < v; });
  if (bit != g.borders.end() && bit->at == border) {
    if (bit->refs == 0) --g.dead_borders;  // resurrection
    bit->refs += sign;
    accumulate(bit->slope, slope_pair, sign);
    accumulate(bit->offset, offset_pair, sign);
    if (bit->refs == 0) {
      // Exact-inverse withdrawal zeroed slope/offset: the entry is a
      // harmless tombstone the scan absorbs as zero. Erasing it here
      // memmoves the border tail (O(n) per removal) — defer instead.
      if (eager_compact_) {
        g.borders.erase(bit);
      } else {
        ++g.dead_borders;
        if (g.dead_borders >= kMinDeadForCompact &&
            g.dead_borders * 4 >= g.borders.size()) {
          std::erase_if(g.borders, [](const BorderEntry& e) {
            return e.refs == 0;
          });
          g.dead_borders = 0;
        }
      }
    }
  } else {
    BorderEntry fresh;
    fresh.at = border;
    fresh.refs = sign;
    accumulate(fresh.slope, slope_pair, sign);
    accumulate(fresh.offset, offset_pair, sign);
    g.borders.insert(bit, fresh);
  }
}

void IncrementalDemand::apply_entries(const Task& t, Time level, int sign,
                                      bool adjust_slack) {
  apply_corners(t, 0, level, sign);
  apply_border(t, level, sign);
  if (adjust_slack && index_engaged_) slack_adjust(t, sign);
  accumulate(util_scaled_, task_util_pair(t), sign);
  accumulate(kay_, task_kay_pair(t), sign);
  if (sign > 0) {
    d_max_ = std::max(d_max_, t.effective_deadline());
  } else if (t.effective_deadline() == d_max_) {
    d_max_stale_ = true;
  }
  if (t.effective_deadline() < t.period) {
    constrained_ += static_cast<std::size_t>(sign);
  }
  // Maintain the certificate: an arrival shrinks each region's slack
  // ratio by at most its decayed contribution bound there (pointwise),
  // and a departure restores at least its minimum contribution ratio —
  // so under churn the fast path regenerates without a scan. A fully
  // dead certificate (every region -1) has nothing to maintain.
  if (cert_lo_ >= 0 || !cert_dead_) {
    cert_lo_ = kS;
    bool any_valid = false;
    for (std::size_t j = 0; j < kCertCuts; ++j) {
      Int128& c = cert_region_[j];
      if (c >= 0) {
        if (sign > 0) {
          c -= region_charge(t, cert_x_[j]);
          if (c < 0) c = -1;
        } else {
          const Time to_excl =
              j + 1 < kCertCuts ? cert_x_[j + 1] : kTimeInfinity;
          c = std::min(c + region_credit(t, cert_x_[j], to_excl), kS);
        }
      }
      any_valid = any_valid || c >= 0;
      cert_lo_ = std::min(cert_lo_, c);
    }
    cert_dead_ = !any_valid;
  }
  util_valid_ = false;
}

void IncrementalDemand::refine(std::size_t row, Time to_level) {
  if (refine_log_ != nullptr && refine_logged_[row] == 0) {
    refine_logged_[row] = 1;
    refine_log_->emplace_back(view_.slot_of(row), levels_[row]);
  }
  const Task& t = view_.tasks()[row];
  apply_border(t, levels_[row], -1);
  apply_corners(t, levels_[row], to_level, +1);
  apply_border(t, to_level, +1);
  levels_[row] = to_level;
  borders_of_row_[row] = is_time_infinite(t.period)
                             ? kTimeInfinity
                             : t.job_deadline(to_level - 1);
  // Refinement only lowers the approximated demand, so cached slack
  // bounds stay conservative — no adjustment needed.
}

void IncrementalDemand::lower_level(std::size_t row, Time to_level) {
  const Task& t = view_.tasks()[row];
  apply_border(t, levels_[row], -1);
  apply_corners(t, to_level, levels_[row], -1);
  apply_border(t, to_level, +1);
  levels_[row] = to_level;
  borders_of_row_[row] = is_time_infinite(t.period)
                             ? kTimeInfinity
                             : t.job_deadline(to_level - 1);
}

void IncrementalDemand::undo_refinements(const RefineLog& log) {
  if (log.empty()) return;
  bool changed = false;
  for (const auto& [slot, old_level] : log) {
    // Slots of tasks removed since the logged check (a rolled-back
    // group's own members) are simply gone — their entries left with
    // them.
    if (!view_.contains(slot)) continue;
    const std::size_t row = view_.row_of(slot);
    if (levels_[row] <= old_level) continue;
    lower_level(row, old_level);
    changed = true;
  }
  if (changed) {
    // Coarser levels raise the approximated demand, so every cached
    // bound measured against the refined structure is now unsafe.
    for (Segment& g : segs_) g.min_ratio = -1.0;
    cert_region_.fill(-1);
    cert_lo_ = -1;
    cert_dead_ = true;
  }
  publish_header();
}

void IncrementalDemand::ensure_util() const {
  if (util_valid_) return;
  Rational u;
  for (const Task& t : view_.tasks()) u += t.utilization();
  util_ = u;
  util_valid_ = true;
}

void IncrementalDemand::reserve(std::size_t n) {
  view_.reserve(n);
  levels_.reserve(n);
  borders_of_row_.reserve(n);
  id_index_.reserve(n);
}

TaskId IncrementalDemand::add_one(const Task& t, bool adjust_slack) {
  const TaskId id = next_id_++;
  const TaskView::Slot slot = view_.add(t);  // validates
  levels_.push_back(k_);
  borders_of_row_.push_back(is_time_infinite(t.period)
                                ? kTimeInfinity
                                : t.job_deadline(k_ - 1));
  id_index_.emplace_back(id, slot);  // ids ascend: stays sorted
  update_index_engagement();
  apply_entries(t, k_, +1, adjust_slack);
  return id;
}

TaskId IncrementalDemand::add(const Task& t) {
  const TaskId id = add_one(t, /*adjust_slack=*/true);
  publish_header();
  return id;
}

void IncrementalDemand::add_group(std::span<const Task> group,
                                  std::vector<TaskId>& ids) {
  for (const Task& t : group) t.validate();  // before any mutation
  ids.reserve(ids.size() + group.size());
  for (const Task& t : group) {
    ids.push_back(add_one(t, /*adjust_slack=*/false));
  }
  // One batched slack pass for the whole group (identical per-task
  // arithmetic, one walk of segment traffic).
  if (index_engaged_) slack_adjust(group, +1);
  publish_header();
}

std::size_t IncrementalDemand::id_pos(TaskId id) const noexcept {
  const auto it = std::lower_bound(
      id_index_.begin(), id_index_.end(), id,
      [](const std::pair<TaskId, TaskView::Slot>& p, TaskId v) {
        return p.first < v;
      });
  if (it == id_index_.end() || it->first != id ||
      it->second == TaskView::kInvalidSlot) {
    return static_cast<std::size_t>(-1);
  }
  return static_cast<std::size_t>(it - id_index_.begin());
}

bool IncrementalDemand::remove_one(TaskId id, bool adjust_slack,
                                   std::vector<Task>* withdrawn) {
  const std::size_t pos = id_pos(id);
  if (pos == static_cast<std::size_t>(-1)) return false;
  const TaskView::Slot slot = id_index_[pos].second;
  // Tombstone the index entry (ids stay sorted for binary search); the
  // O(n) tail memmove is deferred until dead entries dominate.
  id_index_[pos].second = TaskView::kInvalidSlot;
  ++dead_ids_;
  if (dead_ids_ >= kMinDeadForCompact &&
      dead_ids_ * 2 >= id_index_.size()) {
    std::erase_if(id_index_,
                  [](const std::pair<TaskId, TaskView::Slot>& p) {
                    return p.second == TaskView::kInvalidSlot;
                  });
    dead_ids_ = 0;
  }
  const std::size_t row = view_.row_of(slot);
  const Time level = levels_[row];
  // Withdraw the contributions while the row is still resident (no
  // Task copy — the name string alone would cost an allocation), then
  // drop the row.
  apply_entries(view_[slot], level, -1, adjust_slack);
  if (withdrawn != nullptr) withdrawn->push_back(view_[slot]);
  view_.remove(slot);
  levels_[row] = levels_.back();
  levels_.pop_back();
  borders_of_row_[row] = borders_of_row_.back();
  borders_of_row_.pop_back();
  update_index_engagement();
  return true;
}

bool IncrementalDemand::remove(TaskId id) {
  if (!remove_one(id, /*adjust_slack=*/true, nullptr)) return false;
  publish_header();
  return true;
}

std::size_t IncrementalDemand::remove_group(std::span<const TaskId> ids) {
  std::vector<Task> withdrawn;
  withdrawn.reserve(ids.size());
  std::size_t gone = 0;
  for (const TaskId id : ids) {
    gone += remove_one(id, /*adjust_slack=*/false, &withdrawn) ? 1 : 0;
  }
  if (gone != 0) {
    if (index_engaged_) slack_adjust(withdrawn, -1);
    publish_header();
  }
  return gone;
}

const Task* IncrementalDemand::find(TaskId id) const noexcept {
  const std::size_t pos = id_pos(id);
  if (pos == static_cast<std::size_t>(-1)) return nullptr;
  return &view_[id_index_[pos].second];
}

Time IncrementalDemand::level_of(TaskId id) const noexcept {
  const std::size_t pos = id_pos(id);
  if (pos == static_cast<std::size_t>(-1)) return 0;
  return levels_[view_.row_of(id_index_[pos].second)];
}

const Rational& IncrementalDemand::utilization() const {
  ensure_util();
  return util_;
}

double IncrementalDemand::utilization_double() const noexcept {
  return static_cast<double>(util_scaled_.hi) * kInvS;
}

UtilizationClass IncrementalDemand::utilization_class() const noexcept {
  // Certified scaled bounds decide everything but a ~n*2^-62-wide band
  // around exactly 1; only inside it is the exact rational materialized.
  if (util_scaled_.hi < kS) return UtilizationClass::BelowOne;
  if (util_scaled_.lo > kS) return UtilizationClass::AboveOne;
  ensure_util();
  switch (util_.compare(Time{1})) {
    case Ordering::Less: return UtilizationClass::BelowOne;
    case Ordering::Equal: return UtilizationClass::ExactlyOne;
    case Ordering::Greater: return UtilizationClass::AboveOne;
    case Ordering::Unknown: return UtilizationClass::Marginal;
  }
  return UtilizationClass::Marginal;
}

UtilizationClass IncrementalDemand::utilization_class_with(
    const Task& t) const {
  return utilization_class_with(std::span<const Task>(&t, 1));
}

UtilizationClass IncrementalDemand::utilization_class_with(
    std::span<const Task> group) const {
  ScaledPair widened = util_scaled_;
  for (const Task& t : group) accumulate(widened, task_util_pair(t), +1);
  if (widened.hi < kS) return UtilizationClass::BelowOne;
  if (widened.lo > kS) return UtilizationClass::AboveOne;
  ensure_util();
  Rational u = util_;
  for (const Task& t : group) u += t.utilization();
  switch (u.compare(Time{1})) {
    case Ordering::Less: return UtilizationClass::BelowOne;
    case Ordering::Equal: return UtilizationClass::ExactlyOne;
    case Ordering::Greater: return UtilizationClass::AboveOne;
    case Ordering::Unknown: return UtilizationClass::Marginal;
  }
  return UtilizationClass::Marginal;
}

bool IncrementalDemand::certificate_covers(const Task& t) const noexcept {
  // The widened set must certainly keep U <= 1 (the certificate's
  // beyond-last-checkpoint argument runs at slope U).
  if (util_scaled_.hi + task_util_pair(t).hi > kS) return false;
  // Per-region test with the decayed charge; regions entirely below
  // the candidate's first deadline see no contribution at all. The
  // segment-endpoint (phi) argument extends checkpoint coverage to
  // every interval, so all-regions-pass proves admissibility.
  const Time d = t.effective_deadline();
  for (std::size_t j = 0; j < kCertCuts; ++j) {
    if (j + 1 < kCertCuts && cert_x_[j + 1] <= d) continue;  // below D
    if (cert_region_[j] < 0) return false;
    if (region_charge(t, cert_x_[j]) > cert_region_[j]) return false;
  }
  return true;
}

bool IncrementalDemand::certificate_covers(
    std::span<const Task> group) const noexcept {
  // Sequential cover-then-charge on a local copy: member i is tested
  // against the certificate as its predecessors would have charged it,
  // mirroring apply_entries' maintenance arithmetic exactly.
  std::array<Int128, kCertCuts> region = cert_region_;
  Int128 util_hi = util_scaled_.hi;
  std::array<Int128, kCertCuts> charges;
  for (const Task& t : group) {
    const Int128 u_hi = task_util_pair(t).hi;
    if (util_hi + u_hi > kS) return false;
    util_hi += u_hi;
    // One region_charge evaluation per (task, region) — it costs
    // 128-bit divides; the cover test and the charge reuse it.
    const Time d = t.effective_deadline();
    for (std::size_t j = 0; j < kCertCuts; ++j) {
      charges[j] = region_charge(t, cert_x_[j]);
      if (j + 1 < kCertCuts && cert_x_[j + 1] <= d) continue;  // below D
      if (region[j] < 0) return false;
      if (charges[j] > region[j]) return false;
    }
    for (std::size_t j = 0; j < kCertCuts; ++j) {
      Int128& c = region[j];
      if (c < 0) continue;
      c -= charges[j];
      if (c < 0) c = -1;
    }
  }
  return true;
}

Time IncrementalDemand::exact_dbf_at(Time interval) const noexcept {
  return columns_dbf(view_.columns(), interval);
}

Rational IncrementalDemand::exact_demand_at(Time interval) const {
  Rational total;
  const std::span<const Task> rows = view_.tasks();
  for (std::size_t row = 0; row < rows.size(); ++row) {
    const Task& t = rows[row];
    if (interval < t.effective_deadline()) continue;
    if (is_time_infinite(t.period) ||
        interval <= t.job_deadline(levels_[row] - 1)) {
      total += Rational(dbf(t, interval));
    } else {
      total += approx_demand(t, interval);
    }
  }
  return total;
}

void IncrementalDemand::publish_header() noexcept {
  // The protocol (odd-epoch, fences, lap check) lives in
  // util/seqlock.hpp; this only fills the named buffer.
  header_epoch_.publish([&](std::size_t idx) {
    HeaderSlot& h = header_buf_[idx];
    h.residents.store(view_.size(), std::memory_order_relaxed);
    h.constrained.store(constrained_, std::memory_order_relaxed);
    h.live.store(total_steps_, std::memory_order_relaxed);
    h.dead.store(dead_steps_, std::memory_order_relaxed);
    h.segments.store(segs_.size(), std::memory_order_relaxed);
    h.utilization.store(utilization_double(), std::memory_order_relaxed);
    h.cert_ratio.store(
        cert_lo_ < 0 ? -1.0 : static_cast<double>(cert_lo_) * kInvS,
        std::memory_order_relaxed);
  });
}

StoreHeader IncrementalDemand::header() const noexcept {
  StoreHeader out;
  out.epoch = header_epoch_.read([&](std::size_t idx) {
    const HeaderSlot& h = header_buf_[idx];
    out.residents = h.residents.load(std::memory_order_relaxed);
    out.constrained = h.constrained.load(std::memory_order_relaxed);
    out.live_checkpoints = h.live.load(std::memory_order_relaxed);
    out.dead_checkpoints = h.dead.load(std::memory_order_relaxed);
    out.segments = h.segments.load(std::memory_order_relaxed);
    out.utilization = h.utilization.load(std::memory_order_relaxed);
    out.cert_ratio = h.cert_ratio.load(std::memory_order_relaxed);
  });
  return out;
}

DemandCheck IncrementalDemand::check() {
  return check(64 + 8 * static_cast<std::uint64_t>(view_.size()));
}

DemandCheck IncrementalDemand::check(std::uint64_t max_revisions) {
  return check(max_revisions, nullptr);
}

DemandCheck IncrementalDemand::check(std::uint64_t max_revisions,
                                     RefineLog* refine_log) {
  refine_log_ = refine_log;
  if (refine_log != nullptr) refine_logged_.assign(view_.size(), 0);
  const DemandCheck out = do_check(max_revisions);
  refine_log_ = nullptr;
  publish_header();
  return out;
}

DemandCheck IncrementalDemand::do_check(std::uint64_t max_revisions) {
  DemandCheck out;
  if (view_.empty()) {
    out.fits = true;
    cert_lo_ = kS;  // theta = 1
    return out;
  }
  const UtilizationClass uc = utilization_class();
  if (uc == UtilizationClass::AboveOne || uc == UtilizationClass::Marginal) {
    // AboveOne cannot fit. Marginal (certified bounds straddle 1 and
    // the exact rational overflowed) cannot be *proven* to fit either,
    // and fits is a proof — report degraded and let the caller
    // escalate rather than rest an accept on an uncertain U <= 1.
    cert_region_.fill(-1);
    cert_lo_ = -1;
    cert_dead_ = true;
    out.degraded = (uc == UtilizationClass::Marginal);
    return out;
  }
  cert_region_.fill(-1);  // re-established only by a full passing scan
  cert_lo_ = -1;
  cert_dead_ = true;
  if (total_steps_ == 0) {
    // Residents exist but contribute no finite checkpoint (degenerate
    // saturated deadlines): zero demand at every finite interval.
    cert_x_.fill(0);
    cert_region_.fill(kS);
    cert_lo_ = kS;
    cert_dead_ = false;
    out.fits = true;
    return out;
  }

  if (d_max_stale_) {
    const TaskColumns& cols = view_.columns();
    d_max_ = 0;
    for (const Time d : cols.deadline) d_max_ = std::max(d_max_, d);
    d_max_stale_ = false;
  }
  const Time d_max = d_max_;
  // Refinement ceiling: keeps the learned structure at O(n * 4k)
  // checkpoints — scans must stay cheap, so regions needing deeper
  // resolution escalate to the offline exact test instead.
  const Time max_level = 4 * k_;

  // Re-partition when the index should engage or the structure drifted
  // past its bucketing (refinement growth, mass departures); collapse
  // to the single flat segment when the index disengaged.
  if ((index_engaged_ &&
       ((segs_.size() == 1 && total_steps_ >= kMinIndexSteps) ||
        (segs_.size() > 1 && (total_steps_ > 2 * seg_built_steps_ ||
                              2 * total_steps_ < seg_built_steps_)))) ||
      (!index_engaged_ && segs_.size() > 1)) {
    resegment();
  }

restart:
  // Per-region minima of the certified slack-ratio lower bounds, for
  // the segmented certificate: region j spans checkpoints in
  // [cuts[j], cuts[j+1]). Cut positions equidistribute the *live*
  // checkpoint count (tombstones excluded, so the cuts — and every
  // decision derived from the certificate — are identical whether the
  // store tombstones or compacts eagerly). Ratio interpolation (slack
  // ratio of a segment interior is at least the smaller endpoint
  // ratio) makes each region's min valid for every interval in it,
  // provided the straddling segment's left endpoint is carried into
  // the region entered — done at advance.
  //
  // Past the last checkpoint L the demand is exactly U*I + K, so the
  // slack ratio 1 - U - K/I is increasing for K >= 0 (its minimum, at
  // L, is already a measured checkpoint) and approaches 1-U from above
  // for K < 0 — only then does 1-U bind (folded into the last region).
  std::array<Time, kCertCuts> cuts{};
  std::array<double, kCertCuts> region_min;
  region_min.fill(2.0);
  for (std::size_t j = 1; j < kCertCuts; ++j) {
    cuts[j] = step_time_at(j * total_steps_ / kCertCuts);
  }
  if (kay_.lo < 0) {
    region_min.back() = std::min(
        region_min.back(),
        static_cast<double>(kS - util_scaled_.hi) * kInvS);
  }

  const double one_minus_u_d =
      static_cast<double>(kS - util_scaled_.hi) * kInvS;
  const double kay_d = static_cast<double>(kay_.hi) * kInvS;

  // Ascending scan over the segments. Demand at checkpoint I (certified
  // S-scaled):
  //   steps_acc * S  +  slope_acc * I  -  offset_acc
  // where slope/offset absorb each envelope *after* its border is
  // compared (the envelope term is zero exactly at the border).
  //
  // A segment whose cached slack-ratio bound is non-negative is
  // *proven* to fit everywhere inside: the scan fast-forwards over it
  // with its exact sums (leaving the accumulators exactly as a full
  // walk would) and only walks dirty segments — the saturated-regime
  // fast path. Walked segments re-measure their bound from the same
  // certified ratios the comparisons produce.
  //
  // Tombstones (refs == 0) are skipped outright: their step is zero
  // and, at U <= 1, slack is non-decreasing between live checkpoints
  // (demand slope Sigma u_active <= U <= 1), so a dead time can never
  // be the first failure point.
  //
  // The double filter mirrors the hi-bounds in tick units. Magnitudes
  // stay below ~2^63 ticks, so the accumulated IEEE error is below
  // 1e-3 ticks for any realistic workload while certified-interval
  // widths are ~1e-15 ticks: a guard band of 1e-6 relative (min 1e-3
  // absolute) classifies every checkpoint outside the band *provably*;
  // checkpoints inside it re-compare via int128, then exact rationals.
  {
    std::int64_t steps_acc = 0;
    double slope_d = 0.0;
    double offset_d = 0.0;
    ScaledPair slope_acc;
    ScaledPair offset_acc;
    std::size_t rj = 0;  // current certificate region
    double prev_ratio = 2.0;  // left endpoint of the running segment
    bool done = false;

    for (std::size_t gi = 0; gi < segs_.size() && !done; ++gi) {
      Segment& g = segs_[gi];
      if (g.steps.empty()) {
        // No checkpoint (and hence no border) in range: vacuously fits.
        if (index_engaged_) g.min_ratio = 2.0;
        continue;
      }
      if (index_engaged_ && g.min_ratio >= 0.0) {
        // Fast-forward: every checkpoint inside is proven to fit.
        ++out.segments_fast_forwarded;
        steps_acc += g.step_sum;
        accumulate(slope_acc, g.slope_sum, +1);
        accumulate(offset_acc, g.offset_sum, +1);
        slope_d = static_cast<double>(slope_acc.hi) * kInvS;
        offset_d = static_cast<double>(offset_acc.lo) * kInvS;
        region_min[rj] = std::min(region_min[rj], g.min_ratio);
        while (rj + 1 < kCertCuts && cuts[rj + 1] < g.hi) {
          ++rj;
          region_min[rj] = std::min(region_min[rj], g.min_ratio);
        }
        prev_ratio = std::min(prev_ratio, g.min_ratio);
        continue;
      }

      ++out.segments_walked;
      double seg_min = 2.0;  // measured ratio bound for this segment
      std::size_t bi = 0;    // g.borders consumed (second merge pointer)
      for (std::size_t si = 0; si < g.steps.size(); ++si) {
        const StepEntry& node = g.steps[si];
        if (node.refs == 0) continue;  // tombstone: never a failure point
        const Time i = node.at;
        const double i_d = static_cast<double>(i);
        // Advance the certificate region, carrying the straddling
        // segment's left-endpoint ratio into every region entered.
        while (rj + 1 < kCertCuts && i >= cuts[rj + 1]) {
          ++rj;
          region_min[rj] = std::min(region_min[rj], prev_ratio);
        }
        // Early stop: from any I >= every deadline, dbf'(I) <= U*I + K
        // (every task is at or below its envelope line there). Once
        // (1-U)*I >= K certifiably, this and all later checkpoints fit.
        if (i >= d_max && one_minus_u_d * i_d > kay_d &&
            (kS - util_scaled_.hi) * i >= kay_.hi) {
          double term = one_minus_u_d;
          if (kay_.hi > 0) {
            // Slack ratio on the skipped region is worst at its left
            // edge: theta(I) = 1 - U - K/I is increasing for K > 0.
            const Int128 q = kay_.hi / i;
            const Int128 r = kay_.hi % i;
            term = static_cast<double>(kS - util_scaled_.hi - q -
                                       (r != 0 ? 1 : 0)) *
                   kInvS;
          }
          region_min[rj] = std::min(region_min[rj], prev_ratio);
          for (std::size_t j = rj; j < kCertCuts; ++j) {
            region_min[j] = std::min(region_min[j], term);
          }
          if (index_engaged_) {
            // The stop proves slack >= 0 from i on (demand <= U*I + K
            // <= I), so the tail bounds refresh for free.
            const double tp = std::max(0.0, term);
            g.min_ratio = std::min(seg_min, tp);
            for (std::size_t j = gi + 1; j < segs_.size(); ++j) {
              segs_[j].min_ratio = std::max(segs_[j].min_ratio, tp);
            }
          }
          done = true;
          break;
        }
        steps_acc += node.step;
        ++out.iterations;
        out.max_interval_tested = i;

        const double demand_d =
            static_cast<double>(steps_acc) + slope_d * i_d - offset_d;
        const double slack_d = i_d - demand_d;
        const double band = 1e-6 * (demand_d + i_d) + 1e-3;
        if (slack_d < band) {
          // Inside (or below) the guard band: decide with certified
          // arithmetic — int128 bounds, then one exact rational.
          const Int128 cap = static_cast<Int128>(i) * kS;
          const Int128 steps_scaled = static_cast<Int128>(steps_acc) * kS;
          const Int128 hi = steps_scaled + slope_acc.hi * i - offset_acc.lo;
          Int128 lo = steps_scaled + slope_acc.lo * i - offset_acc.hi;
          if (lo < steps_scaled) lo = steps_scaled;  // envelopes are >= 0
          if (hi > cap) {
            bool fits_here = false;
            if (lo <= cap) {
              const Rational exact = exact_demand_at(i);
              if (exact.exact()) {
                fits_here = exact.certainly_le(i);
              } else {
                out.degraded = true;
              }
            }
            if (!fits_here) {
              // Approximated overload at i. If no envelope is active
              // below i the value is the exact dbf: infeasibility
              // proof. Otherwise raise the contributing tasks' levels
              // past i and rescan — the refinement persists across
              // decisions.
              bool refined = false;
              bool capped = false;
              const TaskColumns& cols = view_.columns();
              for (std::size_t row = 0; row < cols.size(); ++row) {
                // One flat-array read filters almost every row (the
                // border is kTimeInfinity for one-shots).
                if (borders_of_row_[row] >= i) continue;
                const Time want =
                    floor_div(i - cols.deadline[row], cols.period[row]) +
                    2;
                if (want > max_level || out.revisions >= max_revisions) {
                  capped = true;
                  continue;
                }
                ++out.revisions;
                // Overshoot the minimum level that clears i (within the
                // ceiling): one deep refinement replaces the cascade of
                // shallow ones a tight region otherwise provokes as the
                // scan fails at successively later checkpoints.
                refine(row, std::min<Time>(2 * want, max_level));
                refined = true;
              }
              if (!refined) {
                out.witness = i;
                if (!capped) {
                  out.overflow_proof = true;  // exact dbf(i) > i
                }
                return out;
              }
              goto restart;
            }
            prev_ratio = 0.0;  // at (or within a unit of) the line
          } else {
            prev_ratio =
                static_cast<double>((cap - hi) / i) * kInvS;
          }
          region_min[rj] = std::min(region_min[rj], prev_ratio);
        } else {
          // Provably fits; the band-subtracted ratio stays a certified
          // lower bound.
          prev_ratio = (slack_d - band) / i_d;
          region_min[rj] = std::min(region_min[rj], prev_ratio);
        }
        seg_min = std::min(seg_min, prev_ratio);
        // Absorb envelopes whose border is this checkpoint *after* the
        // comparison (the envelope term is zero exactly at the border;
        // every border time is also a *live* step checkpoint — the
        // border's own task holds a reference on that corner — so none
        // is skipped by tombstone handling).
        while (bi < g.borders.size() && g.borders[bi].at <= i) {
          accumulate(slope_acc, g.borders[bi].slope, +1);
          accumulate(offset_acc, g.borders[bi].offset, +1);
          ++bi;
          slope_d = static_cast<double>(slope_acc.hi) * kInvS;
          offset_d = static_cast<double>(offset_acc.lo) * kInvS;
        }
      }
      if (!done && index_engaged_) g.min_ratio = seg_min;
    }
  }
  // Publish the per-region certificate (cert_region_[j] bounds every
  // checkpoint ratio in [cuts[j], cuts[j+1]); segment interiors follow
  // from the endpoint argument in certificate_covers).
  cert_x_ = cuts;
  for (std::size_t j = 0; j < kCertCuts; ++j) {
    const double r = std::min(region_min[j], 1.0);
    cert_region_[j] =
        r >= 0.0 ? static_cast<Int128>(r * static_cast<double>(kS) *
                                       0.999999)
                 : Int128{-1};
  }
  cert_lo_ = kS;
  cert_dead_ = true;
  for (const Int128 c : cert_region_) {
    cert_lo_ = std::min(cert_lo_, c);
    cert_dead_ = cert_dead_ && c < 0;
  }
  out.fits = true;
  return out;
}

void IncrementalDemand::rebuild() {
  segs_.assign(1, Segment{});
  total_steps_ = 0;
  dead_steps_ = 0;
  seg_built_steps_ = 0;
  util_valid_ = false;
  util_scaled_ = ScaledPair{};
  kay_ = ScaledPair{};
  d_max_ = 0;
  d_max_stale_ = false;
  cert_x_.fill(0);
  cert_region_.fill(view_.empty() ? kS : -1);  // next check() re-certifies
  cert_lo_ = cert_region_[0];
  cert_dead_ = !view_.empty();
  const std::span<const Task> rows = view_.tasks();
  for (std::size_t row = 0; row < rows.size(); ++row) {
    apply_entries(rows[row], levels_[row], +1);
  }
  publish_header();
}

bool IncrementalDemand::matches_rebuild() const {
  IncrementalDemand fresh(epsilon(), /*use_slack_index=*/false);
  fresh.k_ = k_;
  const std::span<const Task> rows = view_.tasks();
  for (std::size_t row = 0; row < rows.size(); ++row) {
    (void)fresh.view_.add(rows[row]);
    fresh.levels_.push_back(levels_[row]);
    fresh.borders_of_row_.push_back(borders_of_row_[row]);
    fresh.apply_entries(rows[row], levels_[row], +1);
  }
  // Compare the flattened *live* checkpoint/border sequences (the fresh
  // copy is single-segment and tombstone-free; ours may be partitioned
  // and carry tombstones, which must be step-0 and invisible) and
  // verify our per-segment aggregates against their own contents.
  if (fresh.total_steps_ != total_steps_) return false;
  {
    const std::vector<StepEntry>& fs = fresh.segs_[0].steps;
    const std::vector<BorderEntry>& fb = fresh.segs_[0].borders;
    std::size_t si = 0;
    std::size_t bi = 0;
    std::size_t dead_seen = 0;
    Time prev_lo = -1;
    for (const Segment& g : segs_) {
      if (g.lo <= prev_lo || g.hi <= g.lo) return false;
      prev_lo = g.lo;
      std::int64_t step_sum = 0;
      ScaledPair slope_sum;
      ScaledPair offset_sum;
      std::size_t seg_dead = 0;
      for (const StepEntry& e : g.steps) {
        if (e.at < g.lo || e.at >= g.hi) return false;
        if (e.refs == 0) {
          // Tombstone invariant: demand-transparent.
          if (e.step != 0) return false;
          ++seg_dead;
          continue;
        }
        if (si >= fs.size() || !(fs[si] == e)) return false;
        ++si;
        step_sum += e.step;
      }
      if (seg_dead != g.dead) return false;
      dead_seen += seg_dead;
      std::size_t seg_dead_borders = 0;
      for (const BorderEntry& e : g.borders) {
        if (e.at < g.lo || e.at >= g.hi) return false;
        if (e.refs == 0) {
          // Border tombstone invariant: exactly zero contribution.
          if (e.slope.lo != 0 || e.slope.hi != 0 || e.offset.lo != 0 ||
              e.offset.hi != 0) {
            return false;
          }
          ++seg_dead_borders;
          continue;
        }
        if (bi >= fb.size() || !(fb[bi] == e)) return false;
        ++bi;
        accumulate(slope_sum, e.slope, +1);
        accumulate(offset_sum, e.offset, +1);
      }
      if (seg_dead_borders != g.dead_borders) return false;
      if (step_sum != g.step_sum || slope_sum.lo != g.slope_sum.lo ||
          slope_sum.hi != g.slope_sum.hi ||
          offset_sum.lo != g.offset_sum.lo ||
          offset_sum.hi != g.offset_sum.hi) {
        return false;
      }
    }
    if (si != fs.size() || bi != fb.size()) return false;
    if (dead_seen != dead_steps_) return false;
  }
  if (fresh.util_scaled_.lo != util_scaled_.lo ||
      fresh.util_scaled_.hi != util_scaled_.hi) {
    return false;
  }
  if (fresh.kay_.lo != kay_.lo || fresh.kay_.hi != kay_.hi) return false;
  if (fresh.constrained_ != constrained_) return false;
  const Rational& mine = utilization();
  const Rational& theirs = fresh.utilization();
  if (mine.exact() != theirs.exact()) return false;
  return !mine.exact() || mine.compare(theirs) == Ordering::Equal;
}

}  // namespace edfkit
