#include "admission/snapshot.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "persist/format.hpp"

namespace edfkit {
namespace {

using persist::PersistErrc;
using persist::PersistError;

constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecController = 2;
constexpr std::uint32_t kSecEngine = 3;
constexpr std::uint32_t kSecShard = 4;

void encode_task(ByteWriter& w, const Task& t) {
  w.i64(t.wcet);
  w.i64(t.deadline);
  w.i64(t.period);
  w.i64(t.jitter);
  w.str(t.name);
}

Task decode_task(ByteReader& r) {
  Task t;
  t.wcet = r.i64();
  t.deadline = r.i64();
  t.period = r.i64();
  t.jitter = r.i64();
  t.name = r.str();
  return t;
}

void encode_pair(ByteWriter& w, const ScaledPair& p) {
  w.i128(p.lo);
  w.i128(p.hi);
}

ScaledPair decode_pair(ByteReader& r) {
  ScaledPair p;
  p.lo = r.i128();
  p.hi = r.i128();
  return p;
}

void encode_optional_time(ByteWriter& w, const std::optional<Time>& v) {
  w.boolean(v.has_value());
  w.i64(v.value_or(0));
}

std::optional<Time> decode_optional_time(ByteReader& r) {
  const bool has = r.boolean();
  const Time v = r.i64();
  return has ? std::optional<Time>(v) : std::nullopt;
}

void encode_meta(persist::SectionWriter& sw, SnapshotKind kind,
                 std::uint64_t lsn) {
  ByteWriter& w = sw.begin(kSecMeta);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(lsn);
}

SnapshotMeta decode_meta(const persist::SectionReader& sr,
                         SnapshotKind want) {
  ByteReader r = sr.section(kSecMeta);
  SnapshotMeta meta;
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(SnapshotKind::Controller) &&
      kind != static_cast<std::uint8_t>(SnapshotKind::Engine)) {
    throw PersistError(PersistErrc::BadValue, "unknown snapshot kind");
  }
  meta.kind = static_cast<SnapshotKind>(kind);
  meta.journal_lsn = r.u64();
  if (meta.kind != want) {
    throw PersistError(PersistErrc::BadValue,
                       meta.kind == SnapshotKind::Engine
                           ? "engine snapshot loaded as controller"
                           : "controller snapshot loaded as engine");
  }
  return meta;
}

/// One decoded journal record (union-style: only the op's fields are
/// meaningful).
struct Record {
  JournalOp op;
  Task task;
  std::vector<Task> group;
  TaskId id = kInvalidTaskId;
  std::vector<TaskId> ids;
  std::uint32_t shard = 0;
  std::vector<TaskId> assigned;
  // ClientMark
  std::string client;
  std::uint64_t request_id = 0;
  std::uint8_t mark_flags = 0;
};

Record decode_record(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  Record rec;
  const std::uint8_t tag = r.u8();
  rec.op = static_cast<JournalOp>(tag);
  switch (rec.op) {
    case JournalOp::Admit:
      rec.task = decode_task(r);
      break;
    case JournalOp::AdmitGroup: {
      const std::uint32_t n = r.u32();
      rec.group.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        rec.group.push_back(decode_task(r));
      }
      break;
    }
    case JournalOp::Remove:
      rec.id = r.u64();
      break;
    case JournalOp::RemoveGroup: {
      const std::uint32_t n = r.u32();
      rec.ids.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) rec.ids.push_back(r.u64());
      break;
    }
    case JournalOp::EngineAdmit:
      rec.shard = r.u32();
      rec.id = r.u64();
      rec.task = decode_task(r);
      break;
    case JournalOp::EngineAdmitGroup: {
      rec.shard = r.u32();
      const std::uint32_t n = r.u32();
      rec.assigned.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) rec.assigned.push_back(r.u64());
      rec.group.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        rec.group.push_back(decode_task(r));
      }
      break;
    }
    case JournalOp::EngineRemove:
      rec.shard = r.u32();
      rec.id = r.u64();
      break;
    case JournalOp::ClientMark:
      rec.client = r.str();
      rec.request_id = r.u64();
      rec.mark_flags = r.u8();
      break;
    default:
      throw PersistError(PersistErrc::BadValue,
                         "unknown journal record tag " +
                             std::to_string(tag));
  }
  if (!r.exhausted()) {
    throw PersistError(PersistErrc::BadValue,
                       "journal record has trailing bytes");
  }
  return rec;
}

}  // namespace

namespace journal_codec {

std::vector<std::uint8_t> admit(const Task& t) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalOp::Admit));
  encode_task(w, t);
  return std::move(w).take();
}

std::vector<std::uint8_t> admit_group(std::span<const Task> group) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalOp::AdmitGroup));
  w.u32(static_cast<std::uint32_t>(group.size()));
  for (const Task& t : group) encode_task(w, t);
  return std::move(w).take();
}

std::vector<std::uint8_t> remove(TaskId id) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalOp::Remove));
  w.u64(id);
  return std::move(w).take();
}

std::vector<std::uint8_t> remove_group(std::span<const TaskId> ids) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalOp::RemoveGroup));
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const TaskId id : ids) w.u64(id);
  return std::move(w).take();
}

std::vector<std::uint8_t> engine_admit(std::uint32_t shard, TaskId assigned,
                                       const Task& t) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalOp::EngineAdmit));
  w.u32(shard);
  w.u64(assigned);
  encode_task(w, t);
  return std::move(w).take();
}

std::vector<std::uint8_t> engine_admit_group(
    std::uint32_t shard, std::span<const GlobalTaskId> assigned,
    std::span<const Task> group) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalOp::EngineAdmitGroup));
  w.u32(shard);
  w.u32(static_cast<std::uint32_t>(assigned.size()));
  for (const GlobalTaskId id : assigned) w.u64(id.local);
  for (const Task& t : group) encode_task(w, t);
  return std::move(w).take();
}

std::vector<std::uint8_t> engine_remove(GlobalTaskId id) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalOp::EngineRemove));
  w.u32(id.shard);
  w.u64(id.local);
  return std::move(w).take();
}

std::vector<std::uint8_t> client_mark(const std::string& client,
                                      std::uint64_t request_id,
                                      std::uint8_t flags) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalOp::ClientMark));
  w.str(client);
  w.u64(request_id);
  w.u8(flags);
  return std::move(w).take();
}

}  // namespace journal_codec

/// Field-for-field (de)serialization of the admission state. Every
/// member the decision paths read is written out and restored verbatim
/// — this is what makes a loaded store bit-identical to the live one.
/// Transient scratch (corner buffer, refine-log plumbing, the lazily
/// materialized exact rational) is reset instead, and the epoch header
/// is re-published rather than restored (epoch counts publications of
/// *this process*; readers compare header fields, not epochs, across
/// restarts).
struct SnapshotCodec {
  static void encode_demand(const IncrementalDemand& d, ByteWriter& w) {
    w.i64(d.k_);
    w.boolean(d.use_slack_index_);
    w.boolean(d.eager_compact_);
    w.boolean(d.index_engaged_);
    w.u64(d.engage_at_);
    w.u64(d.disengage_below_);
    w.u64(d.next_id_);

    const std::span<const Task> rows = d.view_.tasks();
    w.u64(rows.size());
    for (const Task& t : rows) encode_task(w, t);
    for (std::size_t row = 0; row < rows.size(); ++row) {
      w.i64(d.levels_[row]);
    }
    for (std::size_t row = 0; row < rows.size(); ++row) {
      w.i64(d.borders_of_row_[row]);
    }

    // id -> slot index, tombstones included (slots are translated to
    // dense rows: the loaded view re-assigns slot i to row i).
    w.u64(d.id_index_.size());
    for (const auto& [id, slot] : d.id_index_) {
      w.u64(id);
      w.u32(slot == TaskView::kInvalidSlot
                ? TaskView::kInvalidSlot
                : static_cast<std::uint32_t>(d.view_.row_of(slot)));
    }
    w.u64(d.dead_ids_);

    w.u64(d.segs_.size());
    for (const IncrementalDemand::Segment& g : d.segs_) {
      w.i64(g.lo);
      w.i64(g.hi);
      w.i64(g.step_sum);
      encode_pair(w, g.slope_sum);
      encode_pair(w, g.offset_sum);
      w.f64(g.min_ratio);
      w.u64(g.dead);
      w.u64(g.dead_borders);
      w.u64(g.steps.size());
      for (const IncrementalDemand::StepEntry& e : g.steps) {
        w.i64(e.at);
        w.i64(e.step);
        w.i64(e.refs);
      }
      w.u64(g.borders.size());
      for (const IncrementalDemand::BorderEntry& e : g.borders) {
        w.i64(e.at);
        w.i64(e.refs);
        encode_pair(w, e.slope);
        encode_pair(w, e.offset);
      }
    }
    w.u64(d.total_steps_);
    w.u64(d.dead_steps_);
    w.u64(d.seg_built_steps_);

    encode_pair(w, d.util_scaled_);
    encode_pair(w, d.kay_);
    w.i64(d.d_max_);
    w.boolean(d.d_max_stale_);
    for (const Time x : d.cert_x_) w.i64(x);
    for (const Int128 c : d.cert_region_) w.i128(c);
    w.i128(d.cert_lo_);
    w.boolean(d.cert_dead_);
    w.u64(d.constrained_);
  }

  static void decode_demand(IncrementalDemand& d, ByteReader& r) {
    d.k_ = r.i64();
    if (d.k_ < 1) {
      throw PersistError(PersistErrc::BadValue, "k < 1");
    }
    d.use_slack_index_ = r.boolean();
    d.eager_compact_ = r.boolean();
    d.index_engaged_ = r.boolean();
    d.engage_at_ = r.u64();
    d.disengage_below_ = r.u64();
    d.next_id_ = r.u64();

    const std::uint64_t n = r.u64();
    d.view_ = TaskView{};
    d.view_.reserve(n);
    for (std::uint64_t row = 0; row < n; ++row) {
      // Fresh views assign slot i to row i, so the serialized rows of
      // the id index stay valid as slots.
      const TaskView::Slot slot = d.view_.add(decode_task(r));
      if (slot != row) {
        throw PersistError(PersistErrc::BadValue, "non-dense view slots");
      }
    }
    d.levels_.assign(n, 0);
    for (std::uint64_t row = 0; row < n; ++row) d.levels_[row] = r.i64();
    d.borders_of_row_.assign(n, 0);
    for (std::uint64_t row = 0; row < n; ++row) {
      d.borders_of_row_[row] = r.i64();
    }

    const std::uint64_t index_n = r.u64();
    d.id_index_.clear();
    d.id_index_.reserve(index_n);
    std::vector<std::uint8_t> row_seen(n, 0);
    TaskId prev_id = 0;
    for (std::uint64_t i = 0; i < index_n; ++i) {
      const TaskId id = r.u64();
      const std::uint32_t row = r.u32();
      if (id <= prev_id || id >= d.next_id_) {
        throw PersistError(PersistErrc::BadValue, "id index not sorted");
      }
      prev_id = id;
      if (row != TaskView::kInvalidSlot) {
        if (row >= n || row_seen[row] != 0) {
          throw PersistError(PersistErrc::BadValue, "id index row");
        }
        row_seen[row] = 1;
      }
      d.id_index_.emplace_back(id, row);
    }
    if (std::count(row_seen.begin(), row_seen.end(), 1) !=
        static_cast<std::ptrdiff_t>(n)) {
      throw PersistError(PersistErrc::BadValue, "unreferenced rows");
    }
    d.dead_ids_ = r.u64();

    const std::uint64_t seg_n = r.u64();
    if (seg_n == 0) {
      throw PersistError(PersistErrc::BadValue, "no segments");
    }
    d.segs_.assign(seg_n, IncrementalDemand::Segment{});
    for (IncrementalDemand::Segment& g : d.segs_) {
      g.lo = r.i64();
      g.hi = r.i64();
      g.step_sum = r.i64();
      g.slope_sum = decode_pair(r);
      g.offset_sum = decode_pair(r);
      g.min_ratio = r.f64();
      g.dead = r.u64();
      g.dead_borders = r.u64();
      const std::uint64_t steps_n = r.u64();
      g.steps.resize(steps_n);
      for (IncrementalDemand::StepEntry& e : g.steps) {
        e.at = r.i64();
        e.step = r.i64();
        e.refs = r.i64();
      }
      const std::uint64_t borders_n = r.u64();
      g.borders.resize(borders_n);
      for (IncrementalDemand::BorderEntry& e : g.borders) {
        e.at = r.i64();
        e.refs = r.i64();
        e.slope = decode_pair(r);
        e.offset = decode_pair(r);
      }
    }
    d.total_steps_ = r.u64();
    d.dead_steps_ = r.u64();
    d.seg_built_steps_ = r.u64();

    d.util_scaled_ = decode_pair(r);
    d.kay_ = decode_pair(r);
    d.d_max_ = r.i64();
    d.d_max_stale_ = r.boolean();
    for (Time& x : d.cert_x_) x = r.i64();
    for (Int128& c : d.cert_region_) c = r.i128();
    d.cert_lo_ = r.i128();
    d.cert_dead_ = r.boolean();
    d.constrained_ = r.u64();

    // Transient state restarts clean; the exact rational rematerializes
    // lazily from the (restored) resident rows.
    d.corner_scratch_.clear();
    d.refine_log_ = nullptr;
    d.refine_logged_.clear();
    d.util_ = Rational{};
    d.util_valid_ = false;
    d.publish_header();
  }

  static void encode_controller(const AdmissionController& c,
                                ByteWriter& w) {
    const AdmissionOptions& o = c.opts_;
    w.f64(o.epsilon);
    w.u32(static_cast<std::uint32_t>(o.exact_fallback));
    w.i64(o.analyzer.superpos_level);
    w.f64(o.analyzer.epsilon);
    w.i64(o.analyzer.dynamic.initial_level);
    w.i64(o.analyzer.dynamic.growth_factor);
    w.i64(o.analyzer.dynamic.max_level);
    encode_optional_time(w, o.analyzer.dynamic.bound);
    encode_optional_time(w, o.analyzer.all_approx.bound);
    w.u8(static_cast<std::uint8_t>(o.analyzer.all_approx.revision));
    w.boolean(o.analyzer.pd_use_busy_period);
    w.u64(o.analyzer.pd_max_iterations);
    w.f64(o.utilization_cap);
    w.u64(o.max_tasks);
    w.boolean(o.skip_exact);
    w.boolean(o.use_slack_index);
    w.boolean(o.eager_compaction);
    w.boolean(o.rollback_refinements);
    w.boolean(o.return_certificate);
    w.u32(o.platform.m);  // format v2: global admission mode

    const AdmissionStats& s = c.stats_;
    w.u64(s.arrivals);
    w.u64(s.admitted);
    w.u64(s.rejected);
    w.u64(s.removals);
    w.u64(s.groups);
    for (const std::uint64_t v : s.by_rung) w.u64(v);
    w.u64(s.total_effort);
    w.u64(c.sequence_);

    encode_demand(c.demand_, w);
  }

  static void decode_controller(AdmissionController& c, ByteReader& r) {
    AdmissionOptions o;
    o.epsilon = r.f64();
    const std::uint32_t kind = r.u32();
    if (kind > static_cast<std::uint32_t>(TestKind::DeviEnvelope)) {
      throw PersistError(PersistErrc::BadValue, "exact_fallback kind");
    }
    o.exact_fallback = static_cast<TestKind>(kind);
    o.analyzer.superpos_level = r.i64();
    o.analyzer.epsilon = r.f64();
    o.analyzer.dynamic.initial_level = r.i64();
    o.analyzer.dynamic.growth_factor = r.i64();
    o.analyzer.dynamic.max_level = r.i64();
    o.analyzer.dynamic.bound = decode_optional_time(r);
    o.analyzer.all_approx.bound = decode_optional_time(r);
    const std::uint8_t revision = r.u8();
    if (revision > static_cast<std::uint8_t>(RevisionPolicy::MaxError)) {
      throw PersistError(PersistErrc::BadValue, "revision policy");
    }
    o.analyzer.all_approx.revision = static_cast<RevisionPolicy>(revision);
    o.analyzer.pd_use_busy_period = r.boolean();
    o.analyzer.pd_max_iterations = r.u64();
    o.utilization_cap = r.f64();
    o.max_tasks = r.u64();
    o.skip_exact = r.boolean();
    o.use_slack_index = r.boolean();
    o.eager_compaction = r.boolean();
    o.rollback_refinements = r.boolean();
    o.return_certificate = r.boolean();
    o.platform.m = r.u32();  // format v2
    if (!platform_valid(o.platform)) {
      throw PersistError(PersistErrc::BadValue, "platform processor count");
    }
    if (!o.skip_exact && o.platform.uniprocessor() &&
        !is_exact(o.exact_fallback)) {
      // Same invariant the constructor enforces.
      throw PersistError(PersistErrc::BadValue,
                         "exact_fallback is not an exact test kind");
    }
    c.opts_ = o;

    AdmissionStats s;
    s.arrivals = r.u64();
    s.admitted = r.u64();
    s.rejected = r.u64();
    s.removals = r.u64();
    s.groups = r.u64();
    for (std::uint64_t& v : s.by_rung) v = r.u64();
    s.total_effort = r.u64();
    c.stats_ = s;
    c.sequence_ = r.u64();

    decode_demand(c.demand_, r);
  }

  static void engine_save(const AdmissionEngine& e, const std::string& path,
                          const persist::Journal* journal) {
    // Hold every shard across the journal-LSN capture: the snapshot
    // then matches exactly one journal cut (no shard can commit+append
    // between the capture and its serialization).
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(e.shards_.size());
    for (const auto& shard : e.shards_) locks.emplace_back(shard->mu);
    const std::uint64_t lsn = journal != nullptr ? journal->lsn() : 0;

    persist::SectionWriter sw;
    encode_meta(sw, SnapshotKind::Engine, lsn);
    {
      ByteWriter& w = sw.begin(kSecEngine);
      w.u64(e.shards_.size());
      w.u8(static_cast<std::uint8_t>(e.opts_.placement));
      w.u64(e.opts_.workers);
    }
    for (std::size_t i = 0; i < e.shards_.size(); ++i) {
      ByteWriter& w = sw.begin(kSecShard);
      w.u32(static_cast<std::uint32_t>(i));
      // The shard's published store-header epoch at snapshot time —
      // purely diagnostic (epochs restart with the process).
      w.u64(e.shards_[i]->controller.demand_header().epoch);
      encode_controller(e.shards_[i]->controller, w);
    }
    locks.clear();  // serialize happened under lock; IO happens outside
    sw.finish(path);
  }

  static SnapshotMeta engine_load(AdmissionEngine& e,
                                  const std::string& path) {
    {
      const std::lock_guard<std::mutex> lock(e.queue_mu_);
      if (!e.workers_.empty()) {
        throw PersistError(PersistErrc::BadValue,
                           "load_snapshot into a serving engine");
      }
    }
    const persist::SectionReader sr(persist::read_file(path));
    const SnapshotMeta meta = decode_meta(sr, SnapshotKind::Engine);
    ByteReader er = sr.section(kSecEngine);
    const std::uint64_t shards = er.u64();
    const std::uint8_t placement = er.u8();
    if (shards == 0 ||
        placement > static_cast<std::uint8_t>(PlacementPolicy::BestFit)) {
      throw PersistError(PersistErrc::BadValue, "engine options");
    }
    std::vector<std::unique_ptr<AdmissionEngine::Shard>> fresh;
    fresh.reserve(shards);
    const std::vector<std::uint32_t>& ids = sr.ids();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] != kSecShard) continue;
      ByteReader w = sr.section_at(i);
      const std::uint32_t idx = w.u32();
      (void)w.u64();  // header epoch (diagnostic)
      if (idx != fresh.size()) {
        throw PersistError(PersistErrc::BadValue, "shard order");
      }
      auto shard = std::make_unique<AdmissionEngine::Shard>(
          AdmissionOptions{});
      decode_controller(shard->controller, w);
      shard->load.store(shard->controller.utilization(),
                        std::memory_order_relaxed);
      shard->publish();
      fresh.push_back(std::move(shard));
    }
    if (fresh.size() != shards) {
      throw PersistError(PersistErrc::BadValue, "shard count");
    }
    e.opts_.shards = shards;
    e.opts_.placement = static_cast<PlacementPolicy>(placement);
    e.opts_.workers = er.u64();
    e.opts_.admission = fresh.front()->controller.options();
    e.shards_ = std::move(fresh);
    return meta;
  }

  /// Replay one committed engine record onto its recorded shard,
  /// translating recorded local ids to the ids the recovered shard
  /// actually assigns.
  static void engine_apply(
      AdmissionEngine& e, const Record& rec,
      std::map<std::pair<std::uint32_t, TaskId>, TaskId>& remap,
      RecoveryResult& out) {
    if (rec.shard >= e.shards_.size()) {
      throw PersistError(PersistErrc::BadValue, "record shard index");
    }
    AdmissionEngine::Shard& s = *e.shards_[rec.shard];
    const std::lock_guard<std::mutex> lock(s.mu);
    switch (rec.op) {
      case JournalOp::EngineAdmit: {
        const AdmissionDecision d = s.controller.try_admit(rec.task);
        if (d.admitted) {
          remap[{rec.shard, rec.id}] = d.id;
        } else {
          ++out.skipped;
        }
        break;
      }
      case JournalOp::EngineAdmitGroup: {
        const GroupDecision d = s.controller.admit_group(rec.group);
        if (d.admitted && d.ids.size() == rec.assigned.size()) {
          for (std::size_t i = 0; i < d.ids.size(); ++i) {
            remap[{rec.shard, rec.assigned[i]}] = d.ids[i];
          }
        } else {
          ++out.skipped;
        }
        break;
      }
      case JournalOp::EngineRemove: {
        TaskId local = rec.id;
        const auto it = remap.find({rec.shard, rec.id});
        if (it != remap.end()) local = it->second;
        if (!s.controller.remove(local)) ++out.skipped;
        break;
      }
      default:
        throw PersistError(PersistErrc::BadValue,
                           "controller record in engine journal");
    }
    s.load.store(s.controller.utilization(), std::memory_order_relaxed);
    s.publish();
  }

  static persist::Journal* detach_journal(AdmissionEngine& e) noexcept {
    return e.journal_.exchange(nullptr, std::memory_order_acq_rel);
  }
  static void reattach_journal(AdmissionEngine& e,
                               persist::Journal* j) noexcept {
    e.journal_.store(j, std::memory_order_release);
  }

  /// Return the store to its freshly-constructed state (configuration
  /// — epsilon, index/compaction flags, thresholds — kept). Cold
  /// journal replay starts from here: replaying records into a
  /// controller that still holds state would double-apply every one.
  static void reset_demand(IncrementalDemand& d) {
    d.next_id_ = 1;
    d.view_ = TaskView{};
    d.levels_.clear();
    d.borders_of_row_.clear();
    d.id_index_.clear();
    d.dead_ids_ = 0;
    d.segs_.assign(1, IncrementalDemand::Segment{});
    d.total_steps_ = 0;
    d.dead_steps_ = 0;
    d.seg_built_steps_ = 0;
    d.index_engaged_ = false;
    d.corner_scratch_.clear();
    d.refine_log_ = nullptr;
    d.refine_logged_.clear();
    d.util_ = Rational{};
    d.util_valid_ = true;
    d.util_scaled_ = ScaledPair{};
    d.kay_ = ScaledPair{};
    d.d_max_ = 0;
    d.d_max_stale_ = false;
    d.cert_x_.fill(0);
    d.cert_region_.fill(kFixedPointScale);  // empty set: fully slack
    d.cert_lo_ = kFixedPointScale;
    d.cert_dead_ = false;
    d.constrained_ = 0;
    d.publish_header();
  }

  static void reset_controller(AdmissionController& c) {
    c.stats_ = AdmissionStats{};
    c.sequence_ = 0;
    reset_demand(c.demand_);
  }

  /// Rebuild every shard empty (engine options kept). \pre not serving.
  static void reset_engine(AdmissionEngine& e) {
    {
      const std::lock_guard<std::mutex> lock(e.queue_mu_);
      if (!e.workers_.empty()) {
        throw PersistError(PersistErrc::BadValue,
                           "recover into a serving engine");
      }
    }
    std::vector<std::unique_ptr<AdmissionEngine::Shard>> fresh;
    fresh.reserve(e.opts_.shards);
    for (std::size_t i = 0; i < e.opts_.shards; ++i) {
      fresh.push_back(
          std::make_unique<AdmissionEngine::Shard>(e.opts_.admission));
    }
    e.shards_ = std::move(fresh);
  }
};

void save_snapshot(const AdmissionController& controller,
                   const std::string& path, std::uint64_t journal_lsn) {
  persist::SectionWriter sw;
  encode_meta(sw, SnapshotKind::Controller, journal_lsn);
  SnapshotCodec::encode_controller(controller, sw.begin(kSecController));
  sw.finish(path);
}

void save_snapshot(const AdmissionEngine& engine, const std::string& path,
                   const persist::Journal* journal) {
  SnapshotCodec::engine_save(engine, path, journal);
}

SnapshotMeta load_snapshot(AdmissionController& out,
                           const std::string& path) {
  try {
    const persist::SectionReader sr(persist::read_file(path));
    const SnapshotMeta meta = decode_meta(sr, SnapshotKind::Controller);
    ByteReader r = sr.section(kSecController);
    SnapshotCodec::decode_controller(out, r);
    return meta;
  } catch (const std::out_of_range&) {
    throw PersistError(PersistErrc::Truncated, path);
  }
}

SnapshotMeta load_snapshot(AdmissionEngine& out, const std::string& path) {
  try {
    return SnapshotCodec::engine_load(out, path);
  } catch (const std::out_of_range&) {
    throw PersistError(PersistErrc::Truncated, path);
  }
}

void apply_record(AdmissionController& out,
                  std::span<const std::uint8_t> payload,
                  ReplayObserver* observer) {
  const Record rec = decode_record(payload);
  switch (rec.op) {
    case JournalOp::Admit: {
      const AdmissionDecision d = out.try_admit(rec.task);
      if (observer != nullptr) observer->on_admit(d);
      break;
    }
    case JournalOp::AdmitGroup: {
      const GroupDecision d = out.admit_group(rec.group);
      if (observer != nullptr) observer->on_admit_group(d);
      break;
    }
    case JournalOp::Remove: {
      const bool removed = out.remove(rec.id);
      if (observer != nullptr) observer->on_remove(rec.id, removed);
      break;
    }
    case JournalOp::RemoveGroup: {
      const std::size_t removed = out.remove_group(rec.ids);
      if (observer != nullptr) {
        observer->on_remove_group(rec.ids, removed);
      }
      break;
    }
    case JournalOp::ClientMark:
      // Pure annotation — no controller state change. The observer
      // learns which (client, request_id) the NEXT record's outcome
      // belongs to.
      if (observer != nullptr) {
        observer->on_mark(rec.client, rec.request_id, rec.mark_flags);
      }
      break;
    default:
      throw PersistError(PersistErrc::BadValue,
                         "engine record in controller journal");
  }
}

std::vector<std::uint8_t> encode_snapshot(
    const AdmissionController& controller, std::uint64_t journal_lsn) {
  persist::SectionWriter sw;
  encode_meta(sw, SnapshotKind::Controller, journal_lsn);
  SnapshotCodec::encode_controller(controller, sw.begin(kSecController));
  return sw.encode();
}

SnapshotMeta load_snapshot_bytes(AdmissionController& out,
                                 std::vector<std::uint8_t> bytes) {
  try {
    const persist::SectionReader sr(std::move(bytes));
    const SnapshotMeta meta = decode_meta(sr, SnapshotKind::Controller);
    ByteReader r = sr.section(kSecController);
    SnapshotCodec::decode_controller(out, r);
    return meta;
  } catch (const std::out_of_range&) {
    throw PersistError(PersistErrc::Truncated, "snapshot bytes");
  }
}

SnapshotMeta read_snapshot_meta(std::vector<std::uint8_t> bytes) {
  try {
    const persist::SectionReader sr(std::move(bytes));
    return decode_meta(sr, SnapshotKind::Controller);
  } catch (const std::out_of_range&) {
    throw PersistError(PersistErrc::Truncated, "snapshot bytes");
  }
}

std::uint32_t store_digest(const AdmissionController& controller) {
  ByteWriter w;
  SnapshotCodec::encode_controller(controller, w);
  return crc32(w.data());
}

RecoveryResult recover(AdmissionController& out,
                       const std::string& snapshot_path,
                       const std::string& journal_path,
                       ReplayObserver* observer) {
  RecoveryResult result;
  // Replay must not re-journal the records it applies.
  persist::Journal* attached = out.journal();
  out.attach_journal(nullptr);
  try {
    if (!snapshot_path.empty() && persist::file_exists(snapshot_path)) {
      const SnapshotMeta meta = load_snapshot(out, snapshot_path);
      result.snapshot_loaded = true;
      result.snapshot_lsn = meta.journal_lsn;
    } else {
      // Cold start: recovery reconstructs from the artifacts alone, so
      // any state the caller's controller already holds must go —
      // replaying the journal on top of it would double-apply every
      // record.
      SnapshotCodec::reset_controller(out);
    }
    if (!journal_path.empty() && persist::file_exists(journal_path)) {
      const persist::JournalScan scan = persist::scan_journal(journal_path);
      result.torn_tail = scan.torn_tail;
      result.journal_records = scan.records.size();
      if (result.snapshot_lsn >
          scan.base_lsn + scan.records.size()) {
        throw PersistError(PersistErrc::BadValue,
                           "snapshot is ahead of the journal");
      }
      if (result.snapshot_lsn < scan.base_lsn) {
        // rotate() GC'd records this recovery still needs — the cut
        // outran the snapshot. Replaying only the suffix would
        // silently skip committed operations.
        throw PersistError(PersistErrc::BadValue,
                           "journal rotated past the snapshot LSN");
      }
      for (std::uint64_t i = result.snapshot_lsn - scan.base_lsn;
           i < scan.records.size(); ++i) {
        apply_record(out, scan.records[i], observer);
        ++result.replayed;
      }
    }
  } catch (...) {
    out.attach_journal(attached);
    throw;
  }
  out.attach_journal(attached);
  return result;
}

RecoveryResult recover(AdmissionEngine& out,
                       const std::string& snapshot_path,
                       const std::string& journal_path) {
  RecoveryResult result;
  persist::Journal* attached = SnapshotCodec::detach_journal(out);
  try {
    if (!snapshot_path.empty() && persist::file_exists(snapshot_path)) {
      const SnapshotMeta meta = load_snapshot(out, snapshot_path);
      result.snapshot_loaded = true;
      result.snapshot_lsn = meta.journal_lsn;
    } else {
      // Cold start: discard any state the caller's engine holds (see
      // the controller overload).
      SnapshotCodec::reset_engine(out);
    }
    if (!journal_path.empty() && persist::file_exists(journal_path)) {
      const persist::JournalScan scan = persist::scan_journal(journal_path);
      result.torn_tail = scan.torn_tail;
      result.journal_records = scan.records.size();
      if (result.snapshot_lsn >
          scan.base_lsn + scan.records.size()) {
        throw PersistError(PersistErrc::BadValue,
                           "snapshot is ahead of the journal");
      }
      if (result.snapshot_lsn < scan.base_lsn) {
        throw PersistError(PersistErrc::BadValue,
                           "journal rotated past the snapshot LSN");
      }
      std::map<std::pair<std::uint32_t, TaskId>, TaskId> remap;
      for (std::uint64_t i = result.snapshot_lsn - scan.base_lsn;
           i < scan.records.size(); ++i) {
        const Record rec = decode_record(scan.records[i]);
        SnapshotCodec::engine_apply(out, rec, remap, result);
        ++result.replayed;
      }
    }
  } catch (...) {
    SnapshotCodec::reattach_journal(out, attached);
    throw;
  }
  SnapshotCodec::reattach_journal(out, attached);
  return result;
}

CheckpointDaemon::CheckpointDaemon(const AdmissionEngine& engine,
                                   std::string path,
                                   std::chrono::milliseconds interval,
                                   const persist::Journal* journal)
    : engine_(engine),
      path_(std::move(path)),
      interval_(interval),
      journal_(journal),
      thread_([this] { run(); }) {}

CheckpointDaemon::~CheckpointDaemon() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // One final checkpoint so a clean shutdown never loses tail state
  // (failure absorbed: a destructor must not throw).
  try_flush();
}

void CheckpointDaemon::flush_now() {
  const std::lock_guard<std::mutex> lock(write_mu_);
  save_snapshot(engine_, path_, journal_);
  written_.fetch_add(1, std::memory_order_relaxed);
}

void CheckpointDaemon::try_flush() noexcept {
  try {
    flush_now();
  } catch (...) {
    // Transient IO failure (disk full, permissions): the previous
    // snapshot is still intact on disk (writes are atomic) and the
    // next tick retries — degrading durability must never take the
    // serving process down.
    failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CheckpointDaemon::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) return;
    lock.unlock();
    try_flush();
    lock.lock();
  }
}

}  // namespace edfkit
