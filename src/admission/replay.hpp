/// \file replay.hpp
/// Arrival/departure trace driver: synthetic churn workloads for the
/// admission subsystem, drawn from the paper's §5 scenario families
/// (gen/scenario.hpp) so online experiments use the same task
/// populations as the offline figures.
///
/// A trace is a flat event list. Arrivals carry the task (or, for
/// group arrivals, the whole task group — admitted all-or-nothing via
/// admit_group) and a unique key; departures reference the key of an
/// earlier arrival and withdraw everything it admitted. Whether an
/// arrival was *admitted* is only known at replay time, so departures
/// of rejected (or already-departed) keys are counted and skipped —
/// traces stay valid for any controller configuration.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "admission/controller.hpp"
#include "admission/engine.hpp"
#include "persist/journal.hpp"
#include "util/random.hpp"

namespace edfkit {

namespace obs {
class Obs;
}

/// Crash marks a process-death point in the trace: the persistence-
/// enabled controller replay drops all in-memory state there and
/// recovers from its snapshot + journal before continuing — a
/// deterministic, fork-free way to exercise the resume path (the CI
/// harness additionally SIGKILLs a real child process). Replays without
/// persistence count and skip it.
enum class TraceOp : std::uint8_t { Arrive, ArriveGroup, Depart, Crash };

struct TraceEvent {
  TraceOp op = TraceOp::Arrive;
  /// Unique per arrival; a departure names the arrival it withdraws.
  std::uint64_t key = 0;
  /// Meaningful for Arrive only.
  Task task;
  /// Meaningful for ArriveGroup only: admitted atomically, departed
  /// together when `key` departs.
  std::vector<Task> group;
};

struct ChurnConfig {
  /// Total events after warmup.
  std::size_t events = 1000;
  /// Unconditional leading arrivals, to fill the system before churn.
  std::size_t warmup_arrivals = 0;
  /// Probability that a churn event departs a live key (when any).
  double depart_probability = 0.5;
  /// Scenario family supplying the task population.
  enum class Family : std::uint8_t {
    Small,  ///< draw_small_set — coarse periods, simulable
    Paper,  ///< draw_fig8_set — the §5 benchmark parameters
    Fixed,  ///< generate_task_set with exactly `fixed_tasks` per set —
            ///< per-task utilization ~ pool_utilization/fixed_tasks, for
            ///< sweeping resident size at a constant load factor
  };
  Family family = Family::Paper;
  /// Utilization of each drawn pool set (per draw_*_set's contract).
  double pool_utilization = 0.9;
  /// Tasks per drawn set for Family::Fixed.
  int fixed_tasks = 50;
  /// Probability that an arrival event is a *group* arrival of
  /// `group_size` tasks (admitted all-or-nothing). 0 = single-task
  /// traces (the historical shape).
  double group_probability = 0.0;
  std::size_t group_size = 4;
  /// Probability that a churn event is a TraceOp::Crash marker (the
  /// persistence replay recovers there; other replays skip it).
  double crash_probability = 0.0;

  void validate() const;
};

/// Deterministically generate a churn trace from `rng`. Tasks are drawn
/// by flattening scenario sets into an arrival pool; departures pick a
/// uniformly random not-yet-departed earlier arrival.
[[nodiscard]] std::vector<TraceEvent> generate_churn_trace(
    Rng& rng, const ChurnConfig& cfg);

/// Aggregated outcome of replaying one trace.
struct ReplayStats {
  std::uint64_t arrivals = 0;  ///< tasks offered (group members count)
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  /// Group arrival events (their tasks are folded into the task
  /// counters above; one decision per group in by_rung).
  std::uint64_t groups = 0;
  std::uint64_t departures = 0;
  /// Departures whose key was never admitted (or already left).
  std::uint64_t skipped_departures = 0;
  std::array<std::uint64_t, kAdmissionRungs> by_rung{};
  std::uint64_t total_effort = 0;
  std::size_t peak_resident = 0;
  double peak_utilization = 0.0;
  /// TraceOp::Crash events encountered (recovered through in the
  /// persistence replay, skipped otherwise).
  std::uint64_t crashes = 0;
  /// Snapshots written by the persistence replay.
  std::uint64_t snapshots = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Drive a single controller through the trace, in order. With `obs`
/// attached (src/obs/), the driver folds its event counters into the
/// replay_* metrics when done — per-decision instrumentation is the
/// controller's own attach_obs concern, not the driver's.
ReplayStats replay_trace(const std::vector<TraceEvent>& trace,
                         AdmissionController& controller,
                         obs::Obs* obs = nullptr);

/// Durability wiring for the persistence-enabled controller replay.
struct ReplayPersistence {
  /// Snapshot file; empty = journal-only durability.
  std::string snapshot_path;
  /// Journal file (created, or resumed with its torn tail truncated);
  /// empty = snapshot-only durability.
  std::string journal_path;
  /// Trace events between snapshots; 0 = never snapshot mid-run.
  std::size_t snapshot_every = 0;
  persist::FsyncPolicy fsync = persist::FsyncPolicy::None;
};

/// As replay_trace(trace, controller), additionally journaling every
/// admission operation (controller.attach_journal for the duration),
/// writing a snapshot every `snapshot_every` events, and servicing
/// TraceOp::Crash events by recovering the controller in place from
/// snapshot + journal — the crash/resume driver behind the
/// crash-recovery CI harness.
/// With `obs`, every journal this replay opens (including re-opens
/// after a crash) additionally records append/fsync latency.
ReplayStats replay_trace(const std::vector<TraceEvent>& trace,
                         AdmissionController& controller,
                         const ReplayPersistence& persistence,
                         obs::Obs* obs = nullptr);

/// Drive a sharded engine through the trace, in order (synchronous
/// admits; concurrency is exercised by submitting multiple independent
/// traces from multiple threads — see examples/admission_server.cpp).
ReplayStats replay_trace(const std::vector<TraceEvent>& trace,
                         AdmissionEngine& engine,
                         obs::Obs* obs = nullptr);

}  // namespace edfkit
