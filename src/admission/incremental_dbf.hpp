/// \file incremental_dbf.hpp
/// Incrementally maintained approximated demand state for online
/// admission control.
///
/// The offline tests (analysis/, core/) answer "is this fixed set
/// feasible?" from scratch. An admission controller instead faces a
/// *mutable* set: tasks arrive and depart at runtime and every decision
/// must be cheap. This structure maintains, under task add/remove, the
/// state the paper's approximation schemes evaluate:
///
///   dbf'(I) = Sigma_t [ exact steps of the first L_t jobs,
///                       then the linear envelope C*(I-D+T)/T ]
///
/// as flat sorted checkpoint arrays (step corners + envelope borders).
/// Each task enters at level L_t = k = ceil(1/epsilon), contributing k
/// corners and one border, so add/remove costs O(k) searches plus one
/// contiguous merge pass. A feasibility check is one ascending scan —
/// no task-set rebuild, no per-task dbf re-evaluation.
///
/// Adaptive refinement (the paper's revision idea, made persistent):
/// when a scan fails at a checkpoint, the overestimation there comes
/// from tasks whose envelope border lies below it. Those tasks' levels
/// are raised until their borders clear the failing interval and the
/// scan restarts; if no envelope is active at a failing checkpoint its
/// value is the *exact* dbf and the failure is an infeasibility proof.
/// Refined levels persist across decisions, so a churn stream near the
/// admission boundary pays the refinement once and then scans the
/// learned structure — this is what keeps steady-state decisions far
/// below a from-scratch analysis.
///
/// Comparison discipline: the scan keeps certified 2^-62 fixed-point
/// interval state (util/fixedpoint.hpp) but decides most checkpoints
/// with a double-precision filter: IEEE double error over these
/// magnitudes is < 1e-12 ticks, so any checkpoint whose slack lies
/// outside a 1e-6-tick guard band is *proven* (certified-interval
/// widths are ~1e-15 ticks). Checkpoints inside the band re-compare
/// via int128, then exact rationals. Accepting verdicts remain proofs
/// end to end.
///
/// Exact-inverse updates: every per-task contribution (integer step
/// heights, per-task floor/ceil fixed-point pairs) is a deterministic
/// function of the task parameters and its level, so removal subtracts
/// component-wise exactly what addition added — the aggregates never
/// drift, which rebuild()/matches_rebuild() verify.
///
/// Tombstoned removals (the churn-throughput fast path): a departure
/// no longer memmoves every touched segment. Checkpoints whose last
/// referencing task left are *marked dead* (refs == 0, step == 0) and
/// left in place; the scan skips them. This is sound because a dead
/// checkpoint is provably never a failure point while U <= 1: demand
/// is affine between live checkpoints with slope Sigma u_active <= U
/// <= 1, so slack is non-decreasing across a dead time and the
/// preceding live checkpoint dominates it. Removal therefore costs
/// O(level) binary searches plus O(1) writes — no per-segment memmove.
/// Dead entries are reclaimed by *deferred compaction*: a segment
/// compacts once its dead fraction crosses a threshold (amortized O(1)
/// per removal), and resegmentation drops all tombstones wholesale. A
/// re-arriving checkpoint time resurrects its tombstone in place.
/// `eager_compaction` restores the erase-on-remove behavior
/// byte-for-byte (the bench baseline and differential-fuzz twin).
///
/// Slack certificate (the O(1) fast path): a clean passing scan also
/// certifies theta = min_I (I - dbf'(I))/I, the minimum fractional
/// slack. Every per-task envelope satisfies dbf'(I, t) <= density(t)*I
/// for all I with density(t) = C/min(D_eff, T), so an arrival whose
/// density fits inside theta (and keeps U <= 1) is admissible without
/// any scan; theta just shrinks by the density. Removals only grow the
/// true slack, so the certificate stays valid (conservatively) across
/// departures.
///
/// Cached-slack index (the saturated-regime fast path): the checkpoint
/// store is partitioned into interval *segments*, each owning its slice
/// of the step/border arrays, their exact step/slope/offset sums, and a
/// certified lower bound on the minimum checkpoint slack *ratio* inside
/// it, measured by the last scan. Maintenance mirrors the certificate
/// calculus: an arrival debits every segment by its decayed
/// contribution-ratio bound (region_charge), a departure credits it
/// (region_credit), and refinement only lowers the demand, so bounds
/// survive churn conservatively. A segment whose bound stays
/// non-negative is *proven* to still fit and the next scan
/// fast-forwards over it using the exact sums — at U -> 1 a decision
/// rescans only the dirty segments around the tight region instead of
/// the whole checkpoint array. Segmenting also caps update cost: a
/// corner insert memmoves one segment (~hundreds of entries), not the
/// whole structure.
///
/// Index engagement is adaptive: per-update bound maintenance only pays
/// off once the store is large, so the index *engages* with hysteresis
/// on the resident count (on at >= kIndexOnResidents, off below
/// kIndexOffResidents — churn across one threshold cannot thrash).
/// While disengaged (or with `use_slack_index` false — the manual
/// override and bench baseline) everything lives in one segment, no
/// bounds are maintained, and every scan walks end to end — byte-for-
/// byte the pre-index behavior.
///
/// Epoch-versioned store header (the lock-free read path): mutators
/// publish a small aggregate header (resident/checkpoint counts,
/// utilization, certificate ratio) into a double-buffered pair of
/// atomic slots under a seqlock epoch (odd while a publication is
/// between its stores). `header()` reads the slot the epoch names and
/// re-checks the epoch: a reader overlapping one whole publication
/// still returns without re-copying (that publication fills the
/// *other* slot); it only spins across the writer's brief store window
/// or when lapped mid-copy — and never blocks the writer. This is what
/// lets AdmissionEngine::stats() run without taking shard mutexes.
///
/// Residents live in a TaskView (demand/task_view.hpp): densely packed
/// structure-of-arrays rows behind stable slots, so the refinement loop
/// and the O(n) aggregates stream flat arrays instead of walking a
/// std::map, and the resident set is available zero-copy as a TaskSet
/// for the exact escalation rung.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/utilization.hpp"
#include "demand/task_view.hpp"
#include "model/task_set.hpp"
#include "util/fixedpoint.hpp"
#include "util/rational.hpp"
#include "util/seqlock.hpp"

namespace edfkit {

/// Serializes/deserializes the store field-for-field (admission
/// snapshots — see admission/snapshot.hpp).
struct SnapshotCodec;

/// Stable handle for a resident task. Never reused within one structure.
using TaskId = std::uint64_t;
inline constexpr TaskId kInvalidTaskId = 0;

/// Outcome of one demand scan (instrumented like the offline tests:
/// `iterations` counts demand/capacity comparisons).
struct DemandCheck {
  /// Proof that the resident set is EDF-feasible (the refined
  /// approximated demand fits everywhere).
  bool fits = false;
  /// Set when a failing checkpoint carried no approximation error: the
  /// exact dbf exceeds `witness` — a full infeasibility proof.
  bool overflow_proof = false;
  std::uint64_t iterations = 0;
  /// Refinements performed (task levels raised) during this scan.
  std::uint64_t revisions = 0;
  Time max_interval_tested = 0;
  /// The overflow interval (overflow_proof), or the first unresolved
  /// checkpoint (!fits), or -1.
  Time witness = -1;
  bool degraded = false;      ///< a comparison needed the conservative path
  /// Scan internals (observability): segments actually walked vs.
  /// skipped whole via the cached-slack index's fast-forward branch.
  /// Restart passes (refinement) recount — these measure work done,
  /// not store shape.
  std::uint64_t segments_walked = 0;
  std::uint64_t segments_fast_forwarded = 0;
};

/// Wait-free aggregate snapshot of the store (see header()). All fields
/// come from one epoch-consistent publication.
struct StoreHeader {
  std::uint64_t epoch = 0;            ///< publication count
  std::uint64_t residents = 0;
  std::uint64_t constrained = 0;
  std::uint64_t live_checkpoints = 0;
  std::uint64_t dead_checkpoints = 0;  ///< tombstones awaiting compaction
  std::uint64_t segments = 0;
  double utilization = 0.0;            ///< certified upper bound, as double
  double cert_ratio = -1.0;            ///< min certified slack ratio; <0 none
};

/// Mutable task multiset + approximated demand checkpoints.
/// Not thread-safe for mutation; AdmissionEngine shards and locks
/// around it. header() alone is safe to call concurrently with one
/// mutator (the wait-free read path).
class IncrementalDemand {
 public:
  /// \pre 0 < epsilon <= 1. Initial steps per task: k = ceil(1/epsilon).
  /// `use_slack_index` toggles the bucketed cached-slack index; off, every
  /// scan walks the full checkpoint array (the pre-index behavior, kept
  /// selectable as the bench baseline — see bench/perf_suite.cpp). On,
  /// the index engages adaptively by resident count (see file header).
  /// `eager_compaction` erases emptied checkpoints on every removal
  /// instead of tombstoning them (the pre-tombstone behavior, kept
  /// selectable for the bench baseline and differential tests).
  explicit IncrementalDemand(double epsilon = 0.25,
                             bool use_slack_index = true,
                             bool eager_compaction = false);

  /// Insert a task at level k; O(k log n + move). \throws
  /// std::invalid_argument (validate()).
  TaskId add(const Task& t);
  /// Withdraw a task (at whatever level it was refined to). With
  /// deferred compaction this is O(level) searches plus O(1) writes.
  /// \returns false for unknown ids.
  bool remove(TaskId id);

  /// Insert a whole group, appending the new ids to `ids` in group
  /// order. Equivalent to add() per task but amortizes the per-update
  /// overhead across the group: one cached-slack maintenance pass over
  /// the segments (instead of one per task) and one header
  /// publication. \throws std::invalid_argument (validate()) before
  /// any mutation.
  void add_group(std::span<const Task> group, std::vector<TaskId>& ids);
  /// Withdraw a group of resident ids (unknown ids are skipped), with
  /// the same amortization as add_group — the group-admission rollback
  /// path. \returns the number of tasks withdrawn.
  std::size_t remove_group(std::span<const TaskId> ids);

  /// Pre-size every per-task array for `n` residents — bulk loading /
  /// warmup before churn. (The per-group paths deliberately do NOT
  /// reserve: exact-fit reservations every group would defeat the
  /// vectors' geometric growth.)
  void reserve(std::size_t n);

  /// Resident task by id, or nullptr. The pointer is invalidated by the
  /// next add/remove (rows are densely packed) — read, don't hold.
  [[nodiscard]] const Task* find(TaskId id) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
  [[nodiscard]] bool empty() const noexcept { return view_.empty(); }
  [[nodiscard]] Time steps_per_task() const noexcept { return k_; }
  /// epsilon actually used (1/k after rounding k up).
  [[nodiscard]] double epsilon() const noexcept {
    return 1.0 / static_cast<double>(k_);
  }
  /// Number of resident tasks with effective deadline < period. When 0,
  /// U <= 1 alone already decides feasibility (EDF optimality).
  [[nodiscard]] std::size_t constrained_tasks() const noexcept {
    return constrained_;
  }
  /// Live checkpoints (tombstones excluded).
  [[nodiscard]] std::size_t checkpoint_count() const noexcept {
    return total_steps_;
  }
  /// Tombstoned checkpoints awaiting deferred compaction.
  [[nodiscard]] std::size_t dead_checkpoints() const noexcept {
    return dead_steps_;
  }
  [[nodiscard]] bool eager_compaction() const noexcept {
    return eager_compact_;
  }
  /// True while the cached-slack index is maintaining per-segment
  /// bounds (use_slack_index on and the resident count is above the
  /// engagement hysteresis).
  [[nodiscard]] bool slack_index_engaged() const noexcept {
    return index_engaged_;
  }
  /// Override the index-engagement hysteresis (tests/bench: 0, 0
  /// engages unconditionally). \pre disengage_below <= engage_at.
  void set_index_thresholds(std::size_t engage_at,
                            std::size_t disengage_below);
  /// Current approximation level of a resident task (>= k after
  /// refinement). \returns 0 for unknown ids.
  [[nodiscard]] Time level_of(TaskId id) const noexcept;

  /// Exact utilization (lazily recomputed: the certified scaled bounds
  /// carry the fast paths; the rational is only materialized for
  /// hair-thin classifications and diagnostics).
  [[nodiscard]] const Rational& utilization() const;
  [[nodiscard]] double utilization_double() const noexcept;
  /// Same contract as analysis/utilization.hpp, evaluated in O(1) from
  /// the incrementally maintained certified bounds.
  [[nodiscard]] UtilizationClass utilization_class() const noexcept;
  [[nodiscard]] bool exceeds_one() const noexcept {
    return utilization_class() == UtilizationClass::AboveOne;
  }
  /// Classification after a hypothetical add(t), without mutating. O(1).
  [[nodiscard]] UtilizationClass utilization_class_with(const Task& t) const;
  /// Classification after hypothetically adding every task of `group`,
  /// without mutating. O(|group|).
  [[nodiscard]] UtilizationClass utilization_class_with(
      std::span<const Task> group) const;

  /// True iff the slack certificate proves `t` admissible right now —
  /// the O(1) fast path. A subsequent add(t) charges the certificate,
  /// keeping it valid, so cover-then-add needs no scan.
  ///
  /// The certificate is segmented: a passing scan records the minimum
  /// fractional slack per region [X_j, X_{j+1}) of the checkpoint
  /// range. A candidate is charged per region with its *decayed*
  /// contribution-ratio bound u + K_t/max(X_j, D_t) (its envelope
  /// ratio falls from the density at D_t toward u), so late tight
  /// regions only see the task's utilization — far less than the flat
  /// density — and zero below its first deadline.
  [[nodiscard]] bool certificate_covers(const Task& t) const noexcept;
  /// Group fast path, without mutating: simulates the sequential
  /// cover-then-charge walk (each member is tested against the
  /// certificate as charged by its predecessors — exactly the state a
  /// real add sequence would produce) on a local copy of the regions.
  /// True proves the whole group admissible; a subsequent add_group
  /// applies the same charges for real.
  [[nodiscard]] bool certificate_covers(
      std::span<const Task> group) const noexcept;
  /// Certified S-scaled lower bound on the *global* minimum fractional
  /// slack theta, or -1 when no (non-negative) certificate is held.
  [[nodiscard]] Int128 certificate() const noexcept { return cert_lo_; }

  /// Refinements performed by one check, as (slot, level-before) pairs
  /// in first-touch order — enough to undo them exactly (group-admit
  /// rollback). Slots of since-removed tasks are skipped by
  /// undo_refinements.
  using RefineLog = std::vector<std::pair<TaskView::Slot, Time>>;

  /// One ascending checkpoint scan with adaptive refinement (see file
  /// header); stops early once the linear envelope provably fits
  /// forever (I >= max deadline and (1-U)*I >= K). A passing scan
  /// refreshes the slack certificate; a failing one drops it.
  ///
  /// `max_revisions` caps level raises this call (each also bounded by
  /// an internal per-task level ceiling); exceeding it returns !fits
  /// without proof — the caller escalates. With max_revisions == 0 the
  /// verdict semantics match chakraborty_test at level k on snapshot()
  /// (the tests assert this).
  [[nodiscard]] DemandCheck check();  ///< default budget 64 + 8n
  [[nodiscard]] DemandCheck check(std::uint64_t max_revisions);
  /// As check(max_revisions); additionally appends every refinement to
  /// `*refine_log` so the caller can restore pre-scan levels.
  [[nodiscard]] DemandCheck check(std::uint64_t max_revisions,
                                  RefineLog* refine_log);

  /// Lower every still-resident slot in `log` back to its recorded
  /// level — the exact inverse of the refinements a logged check
  /// performed. Invalidates the cached slack bounds (a coarser level
  /// raises the approximated demand), which the next scan re-measures.
  void undo_refinements(const RefineLog& log);

  /// Wait-free epoch-consistent aggregate snapshot; safe to call
  /// concurrently with one mutating thread (see file header).
  [[nodiscard]] StoreHeader header() const noexcept;

  /// Exact (integer) demand bound function of the resident set at one
  /// interval; O(n) over the flat columns.
  [[nodiscard]] Time exact_dbf_at(Time interval) const noexcept;

  /// The resident set, zero-copy (dense row order; stays valid across
  /// add/remove). This is what the exact escalation rung analyzes —
  /// no snapshot materialization on the decision path.
  [[nodiscard]] const TaskSet& resident() const noexcept {
    return view_.as_task_set();
  }

  /// Materialize a copy of the resident set (dense row order). O(n).
  [[nodiscard]] TaskSet snapshot() const { return resident(); }

  /// From-scratch reconstruction of every aggregate from the resident
  /// tasks (preserving refinement levels) — the verification path for
  /// the incremental updates.
  void rebuild();
  /// True iff the incremental aggregates equal a from-scratch rebuild
  /// (tombstones are transparent: only live structure is compared).
  [[nodiscard]] bool matches_rebuild() const;

  /// Deferred tombstone-compaction passes performed so far
  /// (observability only — not serialized, so a recovered store
  /// restarts the count at zero).
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }

 private:
  /// Snapshot save/load touches every field (admission/snapshot.cpp);
  /// the decode path restores them one-for-one so a loaded store makes
  /// bit-identical decisions.
  friend struct SnapshotCodec;

  /// One step checkpoint: total demand jump at this interval. Kept
  /// small (24 bytes) — this is both the scan's hot array and the bulk
  /// of per-update memmove traffic. refs == 0 (implying step == 0) is a
  /// tombstone: skipped by scans, reclaimed by deferred compaction,
  /// resurrected in place when its time re-arrives.
  struct StepEntry {
    Time at = 0;             ///< the test interval
    Time step = 0;           ///< Sigma C of jobs with this deadline
    std::int64_t refs = 0;   ///< task-entries touching this checkpoint

    [[nodiscard]] bool operator==(const StepEntry& o) const noexcept {
      return at == o.at && step == o.step && refs == o.refs;
    }
  };
  /// Envelope begin: one per periodic task (its border is always also a
  /// step checkpoint), consumed by a second pointer during the scan.
  /// refs == 0 (slope/offset exactly zero by exact-inverse withdrawal)
  /// is a tombstone: the scan absorbs its zero contribution harmlessly;
  /// deferred compaction reclaims it.
  struct BorderEntry {
    Time at = 0;
    std::int64_t refs = 0;
    ScaledPair slope;        ///< Sigma u_t * S of envelopes starting here
    ScaledPair offset;       ///< Sigma u_t * border_t * S of the same

    [[nodiscard]] bool operator==(const BorderEntry& o) const noexcept {
      return at == o.at && refs == o.refs && slope.lo == o.slope.lo &&
             slope.hi == o.slope.hi && offset.lo == o.offset.lo &&
             offset.hi == o.offset.hi;
    }
  };

  /// One range [lo, hi) of the segmented checkpoint store: its slice of
  /// the sorted step/border arrays, their exact aggregate sums (for
  /// fast-forwarding), and the cached-slack bound — a certified lower
  /// bound on the minimum checkpoint slack *ratio* (slack/I) inside the
  /// range, or < 0 when dirty (the next scan must walk it).
  struct Segment {
    Time lo = 0;
    Time hi = kTimeInfinity;
    std::vector<StepEntry> steps;      ///< sorted by at, within [lo, hi)
    std::vector<BorderEntry> borders;  ///< sorted by at, within [lo, hi)
    std::int64_t step_sum = 0;         ///< Sigma steps[].step (live only)
    ScaledPair slope_sum;              ///< Sigma borders[].slope
    ScaledPair offset_sum;             ///< Sigma borders[].offset
    double min_ratio = -1.0;
    std::size_t dead = 0;              ///< tombstones inside steps
    std::size_t dead_borders = 0;      ///< tombstones inside borders
  };

  /// One buffer of the double-buffered published header. Plain atomics
  /// so concurrent reads are data-race-free; the epoch protocol makes
  /// them *consistent* (see header()).
  struct HeaderSlot {
    std::atomic<std::uint64_t> residents{0};
    std::atomic<std::uint64_t> constrained{0};
    std::atomic<std::uint64_t> live{0};
    std::atomic<std::uint64_t> dead{0};
    std::atomic<std::uint64_t> segments{0};
    std::atomic<double> utilization{0.0};
    std::atomic<double> cert_ratio{-1.0};
  };

  /// Add/withdraw the step corners of jobs [from_level, to_level) of t.
  void apply_corners(const Task& t, Time from_level, Time to_level,
                     int sign);
  /// Add/withdraw t's envelope border entry at level `level`.
  void apply_border(const Task& t, Time level, int sign);
  /// Everything for one task at `level` (corners, border, aggregates).
  /// Group ops pass adjust_slack = false and run one batched
  /// slack_adjust afterwards.
  void apply_entries(const Task& t, Time level, int sign,
                     bool adjust_slack = true);
  /// add() body minus slack maintenance and header publication.
  TaskId add_one(const Task& t, bool adjust_slack);
  /// remove() body minus slack maintenance and header publication; the
  /// withdrawn task is appended to `withdrawn` (for the batched slack
  /// credit). \returns false for unknown ids.
  bool remove_one(TaskId id, bool adjust_slack,
                  std::vector<Task>* withdrawn);
  /// Raise one resident row's level. \pre to_level > current level.
  void refine(std::size_t row, Time to_level);
  /// Lower one resident row's level (refinement undo). \pre to_level <
  /// current level.
  void lower_level(std::size_t row, Time to_level);
  [[nodiscard]] Rational exact_demand_at(Time interval) const;
  void ensure_util() const;

  /// Index into id_index_ of a *live* entry for `id`, or npos.
  [[nodiscard]] std::size_t id_pos(TaskId id) const noexcept;

  [[nodiscard]] std::size_t segment_of(Time at) const noexcept;
  /// Time of the idx-th *live* checkpoint across segments (tombstones
  /// excluded, so cut anchors are identical between tombstoned and
  /// eagerly compacted stores). \pre idx < total_steps_
  [[nodiscard]] Time step_time_at(std::size_t idx) const noexcept;
  /// A genuinely new checkpoint time appeared in segment `seg`: bound
  /// its ratio through its existing neighbors (segment interiors have
  /// ratio at least the smaller endpoint ratio) or dirty the segment.
  void slack_note_new_time(std::size_t seg, Time pred, Time succ);
  /// Certificate-style maintenance of the per-segment ratio bounds:
  /// debit on arrival (region_charge at the segment's left edge),
  /// credit on departure (region_credit over the range). The group
  /// overload walks the segments once for the whole group.
  void slack_adjust(const Task& t, int sign);
  void slack_adjust(std::span<const Task> tasks, int sign);
  /// Re-partition the store so segments equidistribute checkpoints
  /// (single segment while the index is disengaged or the set is
  /// small). Tombstones are dropped wholesale; all bounds start dirty
  /// until a scan measures them.
  void resegment();
  /// Erase g's tombstones now (the deferred part of removal).
  void compact_segment(Segment& g);
  /// Flip index_engaged_ per the resident-count hysteresis; on
  /// disengage, dirty every cached bound (nothing maintains them while
  /// off).
  void update_index_engagement();
  /// Publish the current aggregates into the inactive header buffer and
  /// advance the epoch (every mutator's last step).
  void publish_header() noexcept;
  [[nodiscard]] DemandCheck do_check(std::uint64_t max_revisions);

  Time k_;
  bool use_slack_index_;
  bool eager_compact_;
  /// Hysteresis state of the cached-slack index (see file header).
  bool index_engaged_ = false;
  std::size_t engage_at_;
  std::size_t disengage_below_;
  TaskId next_id_ = 1;
  /// Resident tasks: dense SoA rows behind stable slots.
  TaskView view_;
  /// Approximation level per dense row (mirrors view_'s swap-remove).
  std::vector<Time> levels_;
  /// Envelope border per dense row (deadline of job `level`;
  /// kTimeInfinity for one-shots) — the refinement loop's hot filter
  /// reads this single flat array instead of recomputing job deadlines.
  std::vector<Time> borders_of_row_;
  /// id -> slot, sorted by id (ids ascend, so inserts append). Binary
  /// search on lookup. Removal tombstones the entry (slot :=
  /// kInvalidSlot) instead of memmoving the tail; compaction is
  /// deferred until dead entries dominate.
  std::vector<std::pair<TaskId, TaskView::Slot>> id_index_;
  std::size_t dead_ids_ = 0;
  /// The segmented checkpoint store (always >= 1 segment covering
  /// [0, infinity); exactly 1 while the slack index is disengaged).
  std::vector<Segment> segs_;
  std::size_t total_steps_ = 0;       ///< live checkpoints across segments
  std::size_t dead_steps_ = 0;        ///< Sigma segs_[i].dead
  std::size_t seg_built_steps_ = 0;   ///< live total at last resegment
  std::vector<Time> corner_scratch_;  ///< reused per-update buffer
  /// Active refinement log (non-null only inside a logged check()).
  RefineLog* refine_log_ = nullptr;
  /// Per-row "already logged this check" flags (rows are stable within
  /// one check — scans refine, never add/remove), so first-touch
  /// logging is O(1) per refinement.
  std::vector<std::uint8_t> refine_logged_;
  /// Exact Sigma C/T, materialized lazily (rational gcds are far too
  /// expensive to pay on every add/remove; the scaled bounds below are
  /// maintained incrementally and decide all but exact-equality cases).
  mutable Rational util_;
  mutable bool util_valid_ = true;
  ScaledPair util_scaled_;      ///< certified S-scaled utilization bounds
  /// Certified bounds on K = Sigma C*(T - D_eff)/T, the intercept of
  /// the all-envelope line U*I + K (early-stop bound and, with U, the
  /// beyond-last-checkpoint slack).
  ScaledPair kay_;
  /// Max effective deadline of resident tasks (the envelope line only
  /// bounds dbf' from there on). Removing the max task marks it stale;
  /// the next scan recomputes it in O(n).
  mutable Time d_max_ = 0;
  mutable bool d_max_stale_ = false;
  /// Segmented slack certificate: cert_region_[j] is an S-scaled lower
  /// bound on the slack ratio over intervals in [cert_x_[j],
  /// cert_x_[j+1]) (the last region extends to infinity). -1 = none
  /// held. The empty set starts fully slack (theta = 1). cert_lo_
  /// mirrors the minimum over regions for diagnostics. Not part of
  /// matches_rebuild (path-dependent but always conservative).
  static constexpr std::size_t kCertCuts = 8;
  std::array<Time, kCertCuts> cert_x_{};
  std::array<Int128, kCertCuts> cert_region_;
  Int128 cert_lo_ = kFixedPointScale;
  bool cert_dead_ = false;  ///< every region -1: skip maintenance
  std::size_t constrained_ = 0;
  /// Deferred-compaction pass count (see compactions()).
  std::uint64_t compactions_ = 0;
  /// Double-buffered published header + seqlock epoch (see header()
  /// and util/seqlock.hpp for the protocol).
  std::array<HeaderSlot, 2> header_buf_;
  SeqlockEpoch header_epoch_;
};

}  // namespace edfkit
