/// \file incremental_dbf.hpp
/// Incrementally maintained approximated demand state for online
/// admission control.
///
/// The offline tests (analysis/, core/) answer "is this fixed set
/// feasible?" from scratch. An admission controller instead faces a
/// *mutable* set: tasks arrive and depart at runtime and every decision
/// must be cheap. This structure maintains, under task add/remove, the
/// state the paper's approximation schemes evaluate:
///
///   dbf'(I) = Sigma_t [ exact steps of the first L_t jobs,
///                       then the linear envelope C*(I-D+T)/T ]
///
/// as flat sorted checkpoint arrays (step corners + envelope borders).
/// Each task enters at level L_t = k = ceil(1/epsilon), contributing k
/// corners and one border, so add/remove costs O(k) searches plus one
/// contiguous merge pass. A feasibility check is one ascending scan —
/// no task-set rebuild, no per-task dbf re-evaluation.
///
/// Adaptive refinement (the paper's revision idea, made persistent):
/// when a scan fails at a checkpoint, the overestimation there comes
/// from tasks whose envelope border lies below it. Those tasks' levels
/// are raised until their borders clear the failing interval and the
/// scan restarts; if no envelope is active at a failing checkpoint its
/// value is the *exact* dbf and the failure is an infeasibility proof.
/// Refined levels persist across decisions, so a churn stream near the
/// admission boundary pays the refinement once and then scans the
/// learned structure — this is what keeps steady-state decisions far
/// below a from-scratch analysis.
///
/// Comparison discipline: the scan keeps certified 2^-62 fixed-point
/// interval state (util/fixedpoint.hpp) but decides most checkpoints
/// with a double-precision filter: IEEE double error over these
/// magnitudes is < 1e-12 ticks, so any checkpoint whose slack lies
/// outside a 1e-6-tick guard band is *proven* (certified-interval
/// widths are ~1e-15 ticks). Checkpoints inside the band re-compare
/// via int128, then exact rationals. Accepting verdicts remain proofs
/// end to end.
///
/// Exact-inverse updates: every per-task contribution (integer step
/// heights, per-task floor/ceil fixed-point pairs) is a deterministic
/// function of the task parameters and its level, so removal subtracts
/// component-wise exactly what addition added — the aggregates never
/// drift, which rebuild()/matches_rebuild() verify.
///
/// Slack certificate (the O(1) fast path): a clean passing scan also
/// certifies theta = min_I (I - dbf'(I))/I, the minimum fractional
/// slack. Every per-task envelope satisfies dbf'(I, t) <= density(t)*I
/// for all I with density(t) = C/min(D_eff, T), so an arrival whose
/// density fits inside theta (and keeps U <= 1) is admissible without
/// any scan; theta just shrinks by the density. Removals only grow the
/// true slack, so the certificate stays valid (conservatively) across
/// departures.
///
/// Cached-slack index (the saturated-regime fast path): the checkpoint
/// store is partitioned into interval *segments*, each owning its slice
/// of the step/border arrays, their exact step/slope/offset sums, and a
/// certified lower bound on the minimum checkpoint slack *ratio* inside
/// it, measured by the last scan. Maintenance mirrors the certificate
/// calculus: an arrival debits every segment by its decayed
/// contribution-ratio bound (region_charge), a departure credits it
/// (region_credit), and refinement only lowers the demand, so bounds
/// survive churn conservatively. A segment whose bound stays
/// non-negative is *proven* to still fit and the next scan
/// fast-forwards over it using the exact sums — at U -> 1 a decision
/// rescans only the dirty segments around the tight region instead of
/// the whole checkpoint array. Segmenting also caps update cost: a
/// corner insert memmoves one segment (~hundreds of entries), not the
/// whole structure. With the index disabled everything lives in one
/// segment and every scan walks it end to end — byte-for-byte the
/// pre-index behavior, kept selectable as the bench baseline.
///
/// Residents live in a TaskView (demand/task_view.hpp): densely packed
/// structure-of-arrays rows behind stable slots, so the refinement loop
/// and the O(n) aggregates stream flat arrays instead of walking a
/// std::map, and the resident set is available zero-copy as a TaskSet
/// for the exact escalation rung.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/utilization.hpp"
#include "demand/task_view.hpp"
#include "model/task_set.hpp"
#include "util/fixedpoint.hpp"
#include "util/rational.hpp"

namespace edfkit {

/// Stable handle for a resident task. Never reused within one structure.
using TaskId = std::uint64_t;
inline constexpr TaskId kInvalidTaskId = 0;

/// Outcome of one demand scan (instrumented like the offline tests:
/// `iterations` counts demand/capacity comparisons).
struct DemandCheck {
  /// Proof that the resident set is EDF-feasible (the refined
  /// approximated demand fits everywhere).
  bool fits = false;
  /// Set when a failing checkpoint carried no approximation error: the
  /// exact dbf exceeds `witness` — a full infeasibility proof.
  bool overflow_proof = false;
  std::uint64_t iterations = 0;
  /// Refinements performed (task levels raised) during this scan.
  std::uint64_t revisions = 0;
  Time max_interval_tested = 0;
  /// The overflow interval (overflow_proof), or the first unresolved
  /// checkpoint (!fits), or -1.
  Time witness = -1;
  bool degraded = false;      ///< a comparison needed the conservative path
};

/// Mutable task multiset + approximated demand checkpoints.
/// Not thread-safe; AdmissionEngine shards and locks around it.
class IncrementalDemand {
 public:
  /// \pre 0 < epsilon <= 1. Initial steps per task: k = ceil(1/epsilon).
  /// `use_slack_index` toggles the bucketed cached-slack index; off, every
  /// scan walks the full checkpoint array (the pre-index behavior, kept
  /// selectable as the bench baseline — see bench/perf_suite.cpp).
  explicit IncrementalDemand(double epsilon = 0.25,
                             bool use_slack_index = true);

  /// Insert a task at level k; O(k log n + move). \throws
  /// std::invalid_argument (validate()).
  TaskId add(const Task& t);
  /// Withdraw a task (at whatever level it was refined to).
  /// \returns false for unknown ids.
  bool remove(TaskId id);

  /// Resident task by id, or nullptr. The pointer is invalidated by the
  /// next add/remove (rows are densely packed) — read, don't hold.
  [[nodiscard]] const Task* find(TaskId id) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
  [[nodiscard]] bool empty() const noexcept { return view_.empty(); }
  [[nodiscard]] Time steps_per_task() const noexcept { return k_; }
  /// epsilon actually used (1/k after rounding k up).
  [[nodiscard]] double epsilon() const noexcept {
    return 1.0 / static_cast<double>(k_);
  }
  /// Number of resident tasks with effective deadline < period. When 0,
  /// U <= 1 alone already decides feasibility (EDF optimality).
  [[nodiscard]] std::size_t constrained_tasks() const noexcept {
    return constrained_;
  }
  [[nodiscard]] std::size_t checkpoint_count() const noexcept {
    return total_steps_;
  }
  /// Current approximation level of a resident task (>= k after
  /// refinement). \returns 0 for unknown ids.
  [[nodiscard]] Time level_of(TaskId id) const noexcept;

  /// Exact utilization (lazily recomputed: the certified scaled bounds
  /// carry the fast paths; the rational is only materialized for
  /// hair-thin classifications and diagnostics).
  [[nodiscard]] const Rational& utilization() const;
  [[nodiscard]] double utilization_double() const noexcept;
  /// Same contract as analysis/utilization.hpp, evaluated in O(1) from
  /// the incrementally maintained certified bounds.
  [[nodiscard]] UtilizationClass utilization_class() const noexcept;
  [[nodiscard]] bool exceeds_one() const noexcept {
    return utilization_class() == UtilizationClass::AboveOne;
  }
  /// Classification after a hypothetical add(t), without mutating. O(1).
  [[nodiscard]] UtilizationClass utilization_class_with(const Task& t) const;

  /// True iff the slack certificate proves `t` admissible right now —
  /// the O(1) fast path. A subsequent add(t) charges the certificate,
  /// keeping it valid, so cover-then-add needs no scan.
  ///
  /// The certificate is segmented: a passing scan records the minimum
  /// fractional slack per region [X_j, X_{j+1}) of the checkpoint
  /// range. A candidate is charged per region with its *decayed*
  /// contribution-ratio bound u + K_t/max(X_j, D_t) (its envelope
  /// ratio falls from the density at D_t toward u), so late tight
  /// regions only see the task's utilization — far less than the flat
  /// density — and zero below its first deadline.
  [[nodiscard]] bool certificate_covers(const Task& t) const noexcept;
  /// Certified S-scaled lower bound on the *global* minimum fractional
  /// slack theta, or -1 when no (non-negative) certificate is held.
  [[nodiscard]] Int128 certificate() const noexcept { return cert_lo_; }

  /// One ascending checkpoint scan with adaptive refinement (see file
  /// header); stops early once the linear envelope provably fits
  /// forever (I >= max deadline and (1-U)*I >= K). A passing scan
  /// refreshes the slack certificate; a failing one drops it.
  ///
  /// `max_revisions` caps level raises this call (each also bounded by
  /// an internal per-task level ceiling); exceeding it returns !fits
  /// without proof — the caller escalates. With max_revisions == 0 the
  /// verdict semantics match chakraborty_test at level k on snapshot()
  /// (the tests assert this).
  [[nodiscard]] DemandCheck check();  ///< default budget 64 + 8n
  [[nodiscard]] DemandCheck check(std::uint64_t max_revisions);

  /// Exact (integer) demand bound function of the resident set at one
  /// interval; O(n) over the flat columns.
  [[nodiscard]] Time exact_dbf_at(Time interval) const noexcept;

  /// The resident set, zero-copy (dense row order; stays valid across
  /// add/remove). This is what the exact escalation rung analyzes —
  /// no snapshot materialization on the decision path.
  [[nodiscard]] const TaskSet& resident() const noexcept {
    return view_.as_task_set();
  }

  /// Materialize a copy of the resident set (dense row order). O(n).
  [[nodiscard]] TaskSet snapshot() const { return resident(); }

  /// From-scratch reconstruction of every aggregate from the resident
  /// tasks (preserving refinement levels) — the verification path for
  /// the incremental updates.
  void rebuild();
  /// True iff the incremental aggregates equal a from-scratch rebuild.
  [[nodiscard]] bool matches_rebuild() const;

 private:
  /// One step checkpoint: total demand jump at this interval. Kept
  /// small (24 bytes) — this is both the scan's hot array and the bulk
  /// of per-update memmove traffic.
  struct StepEntry {
    Time at = 0;             ///< the test interval
    Time step = 0;           ///< Sigma C of jobs with this deadline
    std::int64_t refs = 0;   ///< task-entries touching this checkpoint

    [[nodiscard]] bool operator==(const StepEntry& o) const noexcept {
      return at == o.at && step == o.step && refs == o.refs;
    }
  };
  /// Envelope begin: one per periodic task (its border is always also a
  /// step checkpoint), consumed by a second pointer during the scan.
  struct BorderEntry {
    Time at = 0;
    std::int64_t refs = 0;
    ScaledPair slope;        ///< Sigma u_t * S of envelopes starting here
    ScaledPair offset;       ///< Sigma u_t * border_t * S of the same

    [[nodiscard]] bool operator==(const BorderEntry& o) const noexcept {
      return at == o.at && refs == o.refs && slope.lo == o.slope.lo &&
             slope.hi == o.slope.hi && offset.lo == o.offset.lo &&
             offset.hi == o.offset.hi;
    }
  };

  /// One range [lo, hi) of the segmented checkpoint store: its slice of
  /// the sorted step/border arrays, their exact aggregate sums (for
  /// fast-forwarding), and the cached-slack bound — a certified lower
  /// bound on the minimum checkpoint slack *ratio* (slack/I) inside the
  /// range, or < 0 when dirty (the next scan must walk it).
  struct Segment {
    Time lo = 0;
    Time hi = kTimeInfinity;
    std::vector<StepEntry> steps;      ///< sorted by at, within [lo, hi)
    std::vector<BorderEntry> borders;  ///< sorted by at, within [lo, hi)
    std::int64_t step_sum = 0;         ///< Sigma steps[].step
    ScaledPair slope_sum;              ///< Sigma borders[].slope
    ScaledPair offset_sum;             ///< Sigma borders[].offset
    double min_ratio = -1.0;
  };

  /// Add/withdraw the step corners of jobs [from_level, to_level) of t.
  void apply_corners(const Task& t, Time from_level, Time to_level,
                     int sign);
  /// Add/withdraw t's envelope border entry at level `level`.
  void apply_border(const Task& t, Time level, int sign);
  /// Everything for one task at `level` (corners, border, aggregates).
  void apply_entries(const Task& t, Time level, int sign);
  /// Raise one resident row's level. \pre to_level > current level.
  void refine(std::size_t row, Time to_level);
  [[nodiscard]] Rational exact_demand_at(Time interval) const;
  void ensure_util() const;

  /// Index into id_index_ of `id`, or npos when unknown.
  [[nodiscard]] std::size_t id_pos(TaskId id) const noexcept;

  [[nodiscard]] std::size_t segment_of(Time at) const noexcept;
  /// Checkpoint time at flat index `idx` across segments. \pre idx <
  /// total_steps_
  [[nodiscard]] Time step_time_at(std::size_t idx) const noexcept;
  /// A genuinely new checkpoint time appeared in segment `seg`: bound
  /// its ratio through its existing neighbors (segment interiors have
  /// ratio at least the smaller endpoint ratio) or dirty the segment.
  void slack_note_new_time(std::size_t seg, Time pred, Time succ);
  /// Certificate-style maintenance of the per-segment ratio bounds:
  /// debit on arrival (region_charge at the segment's left edge),
  /// credit on departure (region_credit over the range).
  void slack_adjust(const Task& t, int sign);
  /// Re-partition the store so segments equidistribute checkpoints
  /// (single segment while the index is off or the set is small). All
  /// bounds start dirty until a scan measures them.
  void resegment();

  Time k_;
  bool use_slack_index_;
  TaskId next_id_ = 1;
  /// Resident tasks: dense SoA rows behind stable slots.
  TaskView view_;
  /// Approximation level per dense row (mirrors view_'s swap-remove).
  std::vector<Time> levels_;
  /// Envelope border per dense row (deadline of job `level`;
  /// kTimeInfinity for one-shots) — the refinement loop's hot filter
  /// reads this single flat array instead of recomputing job deadlines.
  std::vector<Time> borders_of_row_;
  /// id -> slot, sorted by id (ids ascend, so inserts append). Binary
  /// search on lookup; O(n) memmove on erase — both cache-friendly.
  std::vector<std::pair<TaskId, TaskView::Slot>> id_index_;
  /// The segmented checkpoint store (always >= 1 segment covering
  /// [0, infinity); exactly 1 while the slack index is off).
  std::vector<Segment> segs_;
  std::size_t total_steps_ = 0;       ///< Sigma segs_[i].steps.size()
  std::size_t seg_built_steps_ = 0;   ///< total at last resegment
  std::vector<Time> corner_scratch_;  ///< reused per-update buffer
  /// Exact Sigma C/T, materialized lazily (rational gcds are far too
  /// expensive to pay on every add/remove; the scaled bounds below are
  /// maintained incrementally and decide all but exact-equality cases).
  mutable Rational util_;
  mutable bool util_valid_ = true;
  ScaledPair util_scaled_;      ///< certified S-scaled utilization bounds
  /// Certified bounds on K = Sigma C*(T - D_eff)/T, the intercept of
  /// the all-envelope line U*I + K (early-stop bound and, with U, the
  /// beyond-last-checkpoint slack).
  ScaledPair kay_;
  /// Max effective deadline of resident tasks (the envelope line only
  /// bounds dbf' from there on). Removing the max task marks it stale;
  /// the next scan recomputes it in O(n).
  mutable Time d_max_ = 0;
  mutable bool d_max_stale_ = false;
  /// Segmented slack certificate: cert_region_[j] is an S-scaled lower
  /// bound on the slack ratio over intervals in [cert_x_[j],
  /// cert_x_[j+1]) (the last region extends to infinity). -1 = none
  /// held. The empty set starts fully slack (theta = 1). cert_lo_
  /// mirrors the minimum over regions for diagnostics. Not part of
  /// matches_rebuild (path-dependent but always conservative).
  static constexpr std::size_t kCertCuts = 8;
  std::array<Time, kCertCuts> cert_x_{};
  std::array<Int128, kCertCuts> cert_region_;
  Int128 cert_lo_ = kFixedPointScale;
  bool cert_dead_ = false;  ///< every region -1: skip maintenance
  std::size_t constrained_ = 0;
};

}  // namespace edfkit
