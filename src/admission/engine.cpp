#include "admission/engine.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "admission/snapshot.hpp"
#include "obs/obs.hpp"
#include "persist/journal.hpp"

namespace edfkit {

const char* to_string(PlacementPolicy p) noexcept {
  switch (p) {
    case PlacementPolicy::FirstFit: return "first-fit";
    case PlacementPolicy::WorstFit: return "worst-fit";
    case PlacementPolicy::BestFit: return "best-fit";
  }
  return "?";
}

std::string EngineStats::to_string() const {
  std::ostringstream os;
  os << "mode=" << (global ? "global" : "partitioned")
     << " processors=" << processors << " resident=" << resident
     << " total-utilization=" << total_utilization << "\n"
     << admission.to_string() << "\nshards:";
  for (std::size_t i = 0; i < shard_utilization.size(); ++i) {
    os << " [" << i << "] n=" << shard_resident[i]
       << " U=" << shard_utilization[i];
  }
  return os.str();
}

std::string EngineStats::to_json() const {
  std::ostringstream os;
  os << "{\"admission\":" << admission.to_json()
     << ",\"mode\":\"" << (global ? "global" : "partitioned")
     << "\",\"processors\":" << processors
     << ",\"resident\":" << resident
     << ",\"total_utilization\":" << total_utilization
     << ",\"stats_read_retries\":" << stats_read_retries << ",\"shards\":[";
  for (std::size_t i = 0; i < shard_utilization.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"resident\":" << shard_resident[i]
       << ",\"utilization\":" << shard_utilization[i] << '}';
  }
  os << "]}";
  return os.str();
}

void AdmissionEngine::Shard::publish() noexcept {
  // The protocol (odd-epoch, fences, lap check) lives in
  // util/seqlock.hpp; this only fills the named buffer.
  epoch.publish([&](std::size_t idx) {
    Header& h = header[idx];
    const AdmissionStats& s = controller.stats();
    h.arrivals.store(s.arrivals, std::memory_order_relaxed);
    h.admitted.store(s.admitted, std::memory_order_relaxed);
    h.rejected.store(s.rejected, std::memory_order_relaxed);
    h.removals.store(s.removals, std::memory_order_relaxed);
    h.groups.store(s.groups, std::memory_order_relaxed);
    h.effort.store(s.total_effort, std::memory_order_relaxed);
    for (std::size_t r = 0; r < kAdmissionRungs; ++r) {
      h.by_rung[r].store(s.by_rung[r], std::memory_order_relaxed);
    }
    h.resident.store(controller.size(), std::memory_order_relaxed);
    h.utilization.store(controller.utilization(),
                        std::memory_order_relaxed);
  });
}

void AdmissionEngine::Shard::read_stats(
    AdmissionStats& stats, std::size_t& resident, double& utilization,
    std::uint64_t& retries) const noexcept {
  (void)epoch.read(
      [&](std::size_t idx) {
        const Header& h = header[idx];
        stats.arrivals = h.arrivals.load(std::memory_order_relaxed);
        stats.admitted = h.admitted.load(std::memory_order_relaxed);
        stats.rejected = h.rejected.load(std::memory_order_relaxed);
        stats.removals = h.removals.load(std::memory_order_relaxed);
        stats.groups = h.groups.load(std::memory_order_relaxed);
        stats.total_effort = h.effort.load(std::memory_order_relaxed);
        for (std::size_t r = 0; r < kAdmissionRungs; ++r) {
          stats.by_rung[r] = h.by_rung[r].load(std::memory_order_relaxed);
        }
        resident = static_cast<std::size_t>(
            h.resident.load(std::memory_order_relaxed));
        utilization = h.utilization.load(std::memory_order_relaxed);
      },
      retries);
}

AdmissionEngine::AdmissionEngine(EngineOptions opts) : opts_(opts) {
  if (opts_.shards == 0) {
    throw std::invalid_argument("AdmissionEngine: shards >= 1 required");
  }
  if (!opts_.admission.platform.uniprocessor()) {
    // Global mode: the m processors are one scheduling domain, so the
    // engine degenerates to a single controller (see EngineOptions).
    opts_.shards = 1;
  }
  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(opts_.admission));
  }
}

AdmissionEngine::~AdmissionEngine() {
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::vector<std::uint32_t> AdmissionEngine::placement_order(
    double candidate_utilization) const {
  std::vector<std::uint32_t> order(shards_.size());
  std::iota(order.begin(), order.end(), 0u);
  if (opts_.placement == PlacementPolicy::FirstFit) return order;

  std::vector<double> load(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    load[i] = shards_[i]->load.load(std::memory_order_relaxed);
  }
  const auto by_load = [&](bool ascending) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return ascending ? load[a] < load[b]
                                        : load[a] > load[b];
                     });
  };
  if (opts_.placement == PlacementPolicy::WorstFit) {
    by_load(/*ascending=*/true);
  } else {
    // BestFit: most-loaded shard whose estimate still leaves room for
    // the candidate first; hopeless-looking shards go last (estimates
    // are only heuristics — the controller still gets the final say).
    by_load(/*ascending=*/false);
    std::stable_partition(order.begin(), order.end(), [&](std::uint32_t i) {
      return load[i] + candidate_utilization <= 1.0;
    });
  }
  return order;
}

PlacementDecision AdmissionEngine::admit(const Task& t) {
  PlacementDecision out;
  obs::EngineInstruments* const m = metrics_;
  const std::uint64_t t0 = m != nullptr ? obs::now_ns() : 0;
  for (const std::uint32_t i : placement_order(t.utilization_double())) {
    Shard& s = *shards_[i];
    AdmissionDecision d;
    const std::uint64_t s0 = m != nullptr ? obs::now_ns() : 0;
    {
      const std::lock_guard<std::mutex> lock(s.mu);
      d = s.controller.try_admit(t);
      s.load.store(s.controller.utilization(), std::memory_order_relaxed);
      s.publish();
      // Journal committed placements from inside the critical section
      // so the per-shard record order equals the apply order.
      persist::Journal* j = journal_.load(std::memory_order_acquire);
      if (j != nullptr && d.admitted) {
        j->append(journal_codec::engine_admit(i, d.id, t));
      }
    }
    if (m != nullptr) {
      m->shard_decision_ns[i].record(obs::now_ns() - s0);
    }
    ++out.shards_tried;
    out.rung = d.rung;
    out.analysis = d.analysis;
    if (d.admitted) {
      out.admitted = true;
      out.id = {i, d.id};
      break;
    }
  }
  if (m != nullptr) {
    m->placements.add();
    if (!out.admitted) m->placement_rejects.add();
    m->placement_ns.record(obs::now_ns() - t0);
    m->shards_tried.record(out.shards_tried);
  }
  return out;
}

GroupPlacement AdmissionEngine::admit_group(std::span<const Task> group) {
  GroupPlacement out;
  obs::EngineInstruments* const m = metrics_;
  const std::uint64_t t0 = m != nullptr ? obs::now_ns() : 0;
  double group_util = 0.0;
  for (const Task& t : group) group_util += t.utilization_double();
  for (const std::uint32_t i : placement_order(group_util)) {
    Shard& s = *shards_[i];
    GroupDecision d;
    const std::uint64_t s0 = m != nullptr ? obs::now_ns() : 0;
    {
      const std::lock_guard<std::mutex> lock(s.mu);
      d = s.controller.admit_group(group);
      s.load.store(s.controller.utilization(), std::memory_order_relaxed);
      s.publish();
      persist::Journal* j = journal_.load(std::memory_order_acquire);
      if (j != nullptr && d.admitted) {
        std::vector<GlobalTaskId> assigned;
        assigned.reserve(d.ids.size());
        for (const TaskId id : d.ids) assigned.push_back({i, id});
        j->append(journal_codec::engine_admit_group(i, assigned, group));
      }
    }
    if (m != nullptr) {
      m->shard_decision_ns[i].record(obs::now_ns() - s0);
    }
    ++out.shards_tried;
    out.rung = d.rung;
    out.analysis = d.analysis;
    if (d.admitted) {
      out.admitted = true;
      out.shard = i;
      out.ids.reserve(d.ids.size());
      for (const TaskId id : d.ids) out.ids.push_back({i, id});
      break;
    }
  }
  if (m != nullptr) {
    m->group_placements.add();
    if (!out.admitted) m->placement_rejects.add();
    m->placement_ns.record(obs::now_ns() - t0);
    m->shards_tried.record(out.shards_tried);
  }
  return out;
}

bool AdmissionEngine::remove(GlobalTaskId id) {
  if (!id.valid() || id.shard >= shards_.size()) return false;
  Shard& s = *shards_[id.shard];
  const std::lock_guard<std::mutex> lock(s.mu);
  const bool removed = s.controller.remove(id.local);
  if (removed) {
    s.load.store(s.controller.utilization(), std::memory_order_relaxed);
    s.publish();
    persist::Journal* j = journal_.load(std::memory_order_acquire);
    if (j != nullptr) j->append(journal_codec::engine_remove(id));
  }
  return removed;
}

std::future<PlacementDecision> AdmissionEngine::submit(Task t) {
  std::packaged_task<PlacementDecision()> job(
      [this, task = std::move(t)] { return admit(task); });
  std::future<PlacementDecision> fut = job.get_future();
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      throw std::runtime_error("AdmissionEngine: submit after shutdown");
    }
    if (workers_.empty()) {
      // Lazily spawn the pool: purely synchronous users (admit/remove
      // only) never pay for parked worker threads.
      std::size_t n = opts_.workers;
      if (n == 0) {
        n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
      }
      workers_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
      }
    }
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return fut;
}

void AdmissionEngine::worker_loop() {
  for (;;) {
    std::packaged_task<PlacementDecision()> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

double AdmissionEngine::utilization_estimate() const noexcept {
  double u = 0.0;
  for (const auto& shard : shards_) {
    u += shard->load.load(std::memory_order_relaxed);
  }
  return u;
}

namespace {

void reset_stats(EngineStats& out, std::size_t shards) {
  out.admission = AdmissionStats{};
  out.resident = 0;
  out.total_utilization = 0.0;
  out.shard_utilization.clear();
  out.shard_resident.clear();
  out.shard_utilization.reserve(shards);
  out.shard_resident.reserve(shards);
}

void merge_shard(EngineStats& out, const AdmissionStats& s,
                 std::size_t resident, double utilization) {
  out.admission.arrivals += s.arrivals;
  out.admission.admitted += s.admitted;
  out.admission.rejected += s.rejected;
  out.admission.removals += s.removals;
  out.admission.groups += s.groups;
  out.admission.total_effort += s.total_effort;
  for (std::size_t r = 0; r < s.by_rung.size(); ++r) {
    out.admission.by_rung[r] += s.by_rung[r];
  }
  out.shard_resident.push_back(resident);
  out.shard_utilization.push_back(utilization);
  out.resident += resident;
  out.total_utilization += utilization;
}

}  // namespace

void AdmissionEngine::stats_into(EngineStats& out) const {
  reset_stats(out, shards_.size());
  out.global = global_mode();
  out.processors = processors();
  std::uint64_t retries = 0;
  for (const auto& shard : shards_) {
    AdmissionStats s;
    std::size_t resident = 0;
    double utilization = 0.0;
    // No mutex: wait-free (retries counts lapped-reader spins).
    shard->read_stats(s, resident, utilization, retries);
    merge_shard(out, s, resident, utilization);
  }
  std::uint64_t total = stats_retries_.load(std::memory_order_relaxed);
  if (retries != 0) {
    total = stats_retries_.fetch_add(retries, std::memory_order_relaxed) +
            retries;
    if (metrics_ != nullptr) metrics_->stats_read_retries.add(retries);
  }
  out.stats_read_retries = total;
}

void AdmissionEngine::stats_locked_into(EngineStats& out) const {
  reset_stats(out, shards_.size());
  out.global = global_mode();
  out.processors = processors();
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    merge_shard(out, shard->controller.stats(), shard->controller.size(),
                shard->controller.utilization());
  }
  out.stats_read_retries = stats_retries_.load(std::memory_order_relaxed);
}

EngineStats AdmissionEngine::stats() const {
  EngineStats out;
  stats_into(out);
  return out;
}

EngineStats AdmissionEngine::stats_locked() const {
  EngineStats out;
  stats_locked_into(out);
  return out;
}

TaskSet AdmissionEngine::shard_snapshot(std::size_t i) const {
  const Shard& s = *shards_.at(i);
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.controller.snapshot();
}

FeasibilityResult AdmissionEngine::analyze_shard(std::size_t i,
                                                 TestKind kind) const {
  const Shard& s = *shards_.at(i);
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.controller.analyze_resident(kind);
}

void AdmissionEngine::attach_obs(obs::Obs* obs) {
  const bool on = obs != nullptr && obs->config().any();
  metrics_ = on && obs->config().metrics ? obs->engine(shards_.size())
                                         : nullptr;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    const std::lock_guard<std::mutex> lock(s.mu);
    s.controller.attach_obs(on ? obs : nullptr, i);
  }
}

}  // namespace edfkit
