/// \file bounds.hpp
/// Feasibility bounds (paper §4.3): upper limits on the intervals an
/// exact test must examine. For a task set with U <= 1, every interval I
/// with dbf(I) > I lies below each *applicable* bound, so the processor
/// demand test may stop at the smallest of them.
///
/// | Bound          | Formula                                   | Valid when |
/// |----------------|-------------------------------------------|------------|
/// | Baruah [3]     | U/(1-U) * max(T_i - D_i)                  | U < 1 and D_i <= T_i for all i |
/// | George [10]    | Sigma_{D_i <= T_i}(1 - D_i/T_i)C_i / (1-U)| U < 1 |
/// | Superposition  | max(D_max, Sigma(1 - D_i/T_i)C_i / (1-U)) | U < 1 (paper §4.3; see note) |
/// | Busy period    | fixpoint of L = rbf(L)                    | U <= 1 |
/// | Hyperperiod    | lcm(T_i) + D_max                          | U <= 1 |
///
/// Note on the superposition bound: the paper prints
/// `min(Dmax, ...)`, but its own derivation requires I >= D_max, so the
/// sound closed form is `max` (for constrained deadlines the sum equals
/// George's bound and dominates D_max in all non-trivial cases, so the
/// distinction never matters in the paper's experiments). See DESIGN.md.
#pragma once

#include <optional>

#include "model/task_set.hpp"
#include "util/math.hpp"
#include "util/rational.hpp"

namespace edfkit {

/// Baruah et al. bound (Def. 3). nullopt when inapplicable
/// (U >= 1 or some D_i > T_i). A returned 0 means "nothing to test".
[[nodiscard]] std::optional<Time> baruah_bound(const TaskSet& ts);

/// George et al. bound. nullopt when U >= 1.
[[nodiscard]] std::optional<Time> george_bound(const TaskSet& ts);

/// Superposition bound (paper §4.3, soundly max'ed with D_max).
/// nullopt when U >= 1.
[[nodiscard]] std::optional<Time> superposition_bound(const TaskSet& ts);

/// Synchronous busy period: least L > 0 with rbf(L) == L, computed by
/// fixpoint iteration from Sigma C_i. nullopt when U > 1 or the fixpoint
/// exceeds `cap` (iteration diverging toward the saturation region).
[[nodiscard]] std::optional<Time> busy_period(const TaskSet& ts,
                                              Time cap = kTimeInfinity);

/// Hyperperiod-based bound lcm(T) + D_max (saturating).
[[nodiscard]] Time hyperperiod_bound(const TaskSet& ts);

/// The bound the exact tests use by default: the minimum of all
/// applicable closed-form bounds (Baruah, George, superposition),
/// falling back to the hyperperiod bound when U == 1. Busy period is
/// excluded by default — the paper notes computing it "has exponential
/// complexity and may need more effort than the test" (§4.3) — but can be
/// requested via `include_busy_period`.
[[nodiscard]] Time default_test_bound(const TaskSet& ts,
                                      bool include_busy_period = false);

/// The bound the *new* tests (dynamic-error, all-approximated) stop at:
/// max(D_max, default bound). Processing every task's first deadline is
/// what makes the tests behave exactly like Devi's on Devi-acceptable
/// sets (§4.2), and the superposition bound derivation needs I >= D_max
/// anyway (§4.3).
[[nodiscard]] Time implicit_test_bound(const TaskSet& ts);

}  // namespace edfkit
