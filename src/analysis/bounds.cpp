#include "analysis/bounds.hpp"

#include <algorithm>

#include "analysis/utilization.hpp"
#include "demand/dbf.hpp"

namespace edfkit {
namespace {

/// Certified over-approximation of the George bound when the exact
/// rational path overflows: an S-scaled ceil-sum of the numerator over a
/// certified lower bound of (1 - U). Any value >= the true bound is a
/// sound test bound, so rounding up everywhere is safe.
std::optional<Time> george_bound_scaled(const TaskSet& ts) {
  const ScaledUtilization u = scaled_utilization_bounds(ts);
  if (u.upper >= kUtilizationScale) return std::nullopt;  // U might be >= 1
  const Int128 denom_low = kUtilizationScale - u.upper;   // <= (1-U)*S
  Int128 num_up = 0;                                      // >= Sigma(..)*S
  constexpr Int128 kNumCap = static_cast<Int128>(1) << 120;
  for (const Task& t : ts) {
    const Time d = t.effective_deadline();
    Int128 term;
    if (is_time_infinite(t.period)) {
      term = static_cast<Int128>(t.wcet) * kUtilizationScale;
    } else if (d <= t.period) {
      // ceil((T-d)*C/T * S) in two stages so intermediates stay < 2^125.
      const Int128 prod = static_cast<Int128>(t.period - d) * t.wcet;
      const Int128 den = static_cast<Int128>(t.period);
      const Int128 q1 = prod / den;
      const Int128 r1 = prod % den;
      term = q1 * kUtilizationScale +
             (r1 * kUtilizationScale + den - 1) / den;
    } else {
      continue;  // D > T contributes nothing to George's sum
    }
    num_up += term;
    if (num_up > kNumCap) return std::nullopt;  // give up, caller falls back
  }
  const Int128 b = num_up / denom_low + 1;  // ceil and one tick of slack
  if (b >= static_cast<Int128>(kTimeInfinity)) return std::nullopt;
  return static_cast<Time>(b);
}

/// 1 - U as an exact rational, or nullopt when U >= 1 (or exactness
/// was lost, in which case no closed-form bound is claimed).
std::optional<Rational> one_minus_util(const TaskSet& ts) {
  Rational slack(Time{1});
  slack -= ts.utilization();
  if (!slack.exact()) return std::nullopt;
  if (slack.compare(Time{0}) != Ordering::Greater) return std::nullopt;
  return slack;
}

/// Convert a non-negative rational bound to an inclusive integer test
/// bound. Counterexamples are strictly below the rational value, and all
/// test intervals are integers, so ceil(r) - 1 suffices; we use floor(r)
/// which is >= ceil(r) - 1 (equal except at integers, where it is safely
/// larger by one point).
Time to_inclusive_bound(const Rational& r) {
  if (!r.exact()) return kTimeInfinity;
  if (r.is_negative()) return 0;
  if (!r.certainly_le(kTimeInfinity)) return kTimeInfinity;  // saturate
  return std::min(r.floor(), kTimeInfinity);
}

}  // namespace

std::optional<Time> baruah_bound(const TaskSet& ts) {
  if (!ts.constrained_deadlines()) return std::nullopt;
  Time max_gap = 0;
  for (const Task& t : ts) {
    if (is_time_infinite(t.period)) return std::nullopt;  // one-shot:
    // max(T - D) degenerates; George's bound covers these sets instead.
    max_gap = std::max(max_gap, t.period - t.effective_deadline());
  }
  if (max_gap == 0) {
    // All deadlines equal periods: with U <= 1 Liu & Layland applies and
    // no interval needs checking; with U possibly > 1 claim nothing.
    if (utilization_at_most_one(ts)) return 0;
    return std::nullopt;
  }
  const auto slack = one_minus_util(ts);
  if (slack) {
    Rational b = ts.utilization() * Rational(max_gap) / *slack;
    if (b.exact()) return to_inclusive_bound(b);
  }
  // Certified fallback: ceil(U_up * max_gap / (1 - U_up)) with the
  // S-scaled utilization upper bound (over-approximation is sound).
  const ScaledUtilization u = scaled_utilization_bounds(ts);
  if (u.upper >= kUtilizationScale) return std::nullopt;
  const Int128 denom = kUtilizationScale - u.upper;
  if (is_time_infinite(max_gap)) return std::nullopt;
  const Int128 num = u.upper * max_gap;
  const Int128 b = num / denom + 1;
  if (b >= static_cast<Int128>(kTimeInfinity)) return std::nullopt;
  return static_cast<Time>(b);
}

std::optional<Time> george_bound(const TaskSet& ts) {
  const auto slack = one_minus_util(ts);
  if (!slack) return george_bound_scaled(ts);
  Rational num;
  for (const Task& t : ts) {
    const Time d = t.effective_deadline();
    if (is_time_infinite(t.period)) {
      num += Rational(t.wcet);  // (1 - D/T) -> 1 as T -> inf
    } else if (d <= t.period) {
      num += Rational(t.period - d, t.period) * Rational(t.wcet);
    }
  }
  Rational b = num / *slack;
  if (!b.exact()) return george_bound_scaled(ts);
  return to_inclusive_bound(b);
}

std::optional<Time> superposition_bound(const TaskSet& ts) {
  const auto slack = one_minus_util(ts);
  if (!slack) {
    // Certified fallback: George's sum only over-approximates the signed
    // superposition sum (negative D > T terms are dropped), so it stays a
    // sound stand-in.
    const auto g = george_bound_scaled(ts);
    if (!g) return std::nullopt;
    return std::max(ts.max_deadline(), *g);
  }
  Rational num;
  for (const Task& t : ts) {
    const Time d = t.effective_deadline();
    if (is_time_infinite(t.period)) {
      num += Rational(t.wcet);  // (1 - D/T) -> 1 as T -> inf
      continue;
    }
    // Signed: tasks with D > T contribute negatively (paper §4.3).
    num += Rational(t.period - d, t.period) * Rational(t.wcet);
  }
  Rational b = num / *slack;
  if (!b.exact()) {
    const auto g = george_bound_scaled(ts);
    if (!g) return std::nullopt;
    return std::max(ts.max_deadline(), *g);
  }
  return std::max(ts.max_deadline(), to_inclusive_bound(b));
}

std::optional<Time> busy_period(const TaskSet& ts, Time cap) {
  if (ts.empty()) return 0;
  if (ts.utilization().certainly_gt(Time{1})) return std::nullopt;
  Time w = ts.total_wcet();
  // Fixpoint iteration; each step is monotone non-decreasing. Bail out
  // past `cap` or on saturation.
  for (int guard = 0; guard < 1'000'000; ++guard) {
    const Time next = rbf(ts, w);
    if (next == w) return w;
    if (next > cap || is_time_infinite(next)) return std::nullopt;
    w = next;
  }
  return std::nullopt;
}

Time hyperperiod_bound(const TaskSet& ts) {
  return add_saturating(ts.hyperperiod(), ts.max_deadline());
}

Time implicit_test_bound(const TaskSet& ts) {
  return std::max(ts.max_deadline(), default_test_bound(ts));
}

Time default_test_bound(const TaskSet& ts, bool include_busy_period) {
  Time best = kTimeInfinity;
  if (const auto b = baruah_bound(ts)) best = std::min(best, *b);
  if (const auto g = george_bound(ts)) best = std::min(best, *g);
  if (const auto s = superposition_bound(ts)) best = std::min(best, *s);
  if (include_busy_period) {
    if (const auto l = busy_period(ts, best)) best = std::min(best, *l);
  }
  if (is_time_infinite(best)) best = hyperperiod_bound(ts);
  return best;
}

}  // namespace edfkit
