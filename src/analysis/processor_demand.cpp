#include "analysis/processor_demand.hpp"

#include <algorithm>

#include "analysis/bounds.hpp"
#include "analysis/utilization.hpp"
#include "demand/intervals.hpp"
#include "demand/task_view.hpp"

namespace edfkit {

FeasibilityResult processor_demand_test(const TaskSet& ts,
                                        const ProcessorDemandOptions& opts) {
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    return r;
  }
  const Time bound =
      opts.bound.value_or(default_test_bound(ts, opts.use_busy_period));

  // Walk all job deadlines <= bound in ascending order, accumulating the
  // demand incrementally: every popped (task, deadline) adds one job's C.
  // The heap carries row indices into the flat columns so the inner loop
  // reads dense wcet/deadline/period arrays, not one Task struct per job.
  const TaskColumns cols(ts.tasks());
  TestList list;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const Time d0 = cols.deadline[i];
    if (d0 <= bound) list.add(i, d0);
  }
  Time demand = 0;
  while (!list.empty()) {
    if (opts.stop != nullptr && opts.stop->load(std::memory_order_relaxed)) {
      r.verdict = Verdict::Unknown;
      r.cancelled = true;
      return r;
    }
    const Time point = list.peek().interval;
    // Drain every job deadline at this point.
    while (!list.empty() && list.peek().interval == point) {
      const auto e = list.pop();
      demand = add_saturating(demand, cols.wcet[e.task]);
      const Time nxt = row_next_deadline_after(cols, e.task, point);
      if (nxt <= bound && !is_time_infinite(nxt)) list.add(e.task, nxt);
    }
    ++r.iterations;
    r.max_interval_tested = point;
    if (demand > point) {
      r.verdict = Verdict::Infeasible;
      r.witness = point;
      return r;
    }
    if (opts.max_iterations != 0 && r.iterations >= opts.max_iterations) {
      r.verdict = Verdict::Unknown;
      return r;
    }
  }
  r.verdict = Verdict::Feasible;
  return r;
}

}  // namespace edfkit
