#include "analysis/types.hpp"

#include <sstream>

namespace edfkit {

const char* to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::Feasible: return "feasible";
    case Verdict::Infeasible: return "infeasible";
    case Verdict::Unknown: return "unknown";
  }
  return "?";
}

std::string FeasibilityResult::to_string() const {
  std::ostringstream os;
  os << edfkit::to_string(verdict) << " iterations=" << iterations
     << " revisions=" << revisions;
  if (witness >= 0) os << " witness=" << witness;
  if (final_level > 0) os << " level=" << final_level;
  if (degraded) os << " [degraded]";
  if (cancelled) os << " [cancelled]";
  return os.str();
}

FeasibilityResult make_verdict(Verdict v) noexcept {
  FeasibilityResult r;
  r.verdict = v;
  return r;
}

}  // namespace edfkit
