/// \file processor_demand.hpp
/// The classic exact processor-demand test of Baruah et al. [3]
/// (paper Def. 3): Gamma is feasible iff U <= 1 and dbf(I) <= I for every
/// interval I up to a feasibility bound. Only absolute job deadlines need
/// checking (the dbf only changes there).
///
/// This is the "old" exact test the paper's new algorithms are measured
/// against; its iteration count (distinct deadlines examined) is the
/// "Processor Demand" series in Figs. 8/9 and Table 1.
#pragma once

#include <atomic>
#include <optional>

#include "analysis/types.hpp"
#include "model/task_set.hpp"

namespace edfkit {

struct ProcessorDemandOptions {
  /// Override the test bound; by default the minimum applicable
  /// closed-form bound (see analysis/bounds.hpp).
  std::optional<Time> bound;
  /// Also tighten the bound with the busy period (paper §4.3 warns this
  /// can cost more than it saves; off by default).
  bool use_busy_period = false;
  /// Abort with Verdict::Unknown after this many test intervals
  /// (0 = unlimited). Keeps pathological Fig. 9-style runs bounded.
  std::uint64_t max_iterations = 0;
  /// Cooperative cancellation: when set and it becomes true, the test
  /// returns Unknown with `cancelled` — portfolio races stop losers
  /// through this instead of paying for the slowest backend.
  const std::atomic<bool>* stop = nullptr;
};

/// Run the processor-demand test. Verdicts Feasible/Infeasible are exact;
/// Unknown only occurs when max_iterations was hit.
[[nodiscard]] FeasibilityResult processor_demand_test(
    const TaskSet& ts, const ProcessorDemandOptions& opts = {});

}  // namespace edfkit
