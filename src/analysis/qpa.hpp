/// \file qpa.hpp
/// Quick Processor-demand Analysis (Zhang & Burns, "Schedulability
/// Analysis for Real-Time Systems with EDF Scheduling", IEEE TC 2009).
///
/// QPA post-dates the reproduced paper; we include it as the natural
/// "future work" comparator: a different strategy for taming the
/// processor-demand test that walks *backwards* from the feasibility
/// bound, jumping from interval to interval via the dbf value itself:
///
///   t = max{ d | d < L }
///   while dbf(t) <= t and dbf(t) > min_deadline:
///       t = (dbf(t) < t) ? dbf(t) : max{ d | d < t }
///   feasible iff dbf(t) <= min_deadline
///
/// Each loop step costs O(n) (one dbf evaluation + one predecessor-
/// deadline scan); `iterations` counts loop steps so effort numbers are
/// comparable with the other tests' interval counts.
#pragma once

#include <atomic>

#include "analysis/types.hpp"
#include "model/task_set.hpp"

namespace edfkit {

/// Exact EDF feasibility via QPA. Requires U <= 1 precheck like PDA.
/// `stop` is a cooperative cancellation token (checked once per loop
/// step); when observed the test returns Unknown with `cancelled` set.
[[nodiscard]] FeasibilityResult qpa_test(
    const TaskSet& ts, const std::atomic<bool>* stop = nullptr);

}  // namespace edfkit
