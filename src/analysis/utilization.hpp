/// \file utilization.hpp
/// Liu & Layland's utilization condition [12] (paper §3.1) and the exact
/// "U vs 1" classification every other test builds on.
///
/// The classification is exact-rational when the int128 rationals hold;
/// when a task set's denominators overflow them (hundreds of coprime
/// periods), it falls back to a *certified* fixed-point computation:
/// per-task floor/ceil of C*2^62/T give integer lower/upper bounds on the
/// scaled utilization, so "certainly <= 1" / "certainly > 1" remain
/// proofs. Only when 1 lies inside the (n * 2^-62)-wide uncertainty band
/// does the classifier answer Marginal — callers treat Marginal
/// conservatively and flag the result degraded.
#pragma once

#include "analysis/types.hpp"
#include "model/task_set.hpp"

namespace edfkit {

/// Fixed-point scale shared by the certified fallbacks (also used by the
/// bound computations in analysis/bounds.cpp).
inline constexpr Int128 kUtilizationScale = static_cast<Int128>(1) << 62;

/// Certified S-scaled bounds: lower <= U * kUtilizationScale <= upper.
struct ScaledUtilization {
  Int128 lower = 0;
  Int128 upper = 0;
};
[[nodiscard]] ScaledUtilization scaled_utilization_bounds(const TaskSet& ts);

enum class UtilizationClass : std::uint8_t {
  BelowOne,    ///< certainly U < 1
  ExactlyOne,  ///< certainly U == 1 (rational path only)
  AboveOne,    ///< certainly U > 1
  Marginal,    ///< within the fixed-point uncertainty band around 1
};

/// Classify total utilization against 1.
[[nodiscard]] UtilizationClass classify_utilization(const TaskSet& ts);

/// True iff U <= 1 can be *asserted* (Below/Exactly). Marginal returns
/// true as well — the caller-safe direction for feasibility tests whose
/// Infeasible verdicts must never rest on an uncertain U > 1 — but sets
/// *degraded_out (if given) so results can carry the flag.
[[nodiscard]] bool utilization_at_most_one(const TaskSet& ts,
                                           bool* degraded_out = nullptr);

/// True iff U > 1 is provable (the only sound basis for Infeasible).
[[nodiscard]] bool utilization_exceeds_one(const TaskSet& ts);

/// Exact utilization test. For implicit deadlines (and D >= T) the
/// verdict is exact; for constrained deadlines it returns Infeasible when
/// U > 1 and Unknown otherwise (the condition is then only necessary).
[[nodiscard]] FeasibilityResult liu_layland_test(const TaskSet& ts);

}  // namespace edfkit
