#include "analysis/multi/global_tests.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>

#include "util/rational.hpp"

namespace edfkit::multi {
namespace {

/// Certified double bounds for a nearest-rounded sum of `terms`
/// nonnegative terms. Each division and addition is within half an ulp,
/// so the accumulated value is within (1 + eps)^(terms+1) of the exact
/// sum in either direction; inflating/deflating by (terms + 4) * eps
/// over-covers that. Used when the exact Rational path overflows —
/// realistic tick-resolution periods (1e5..1e6 ticks, coprime) blow the
/// lcm of the denominators past 64 bits after a handful of tasks, and
/// degrading *every* such set to Unknown would make the global ladder
/// useless at production period scales. Accepting on `hi` and refuting
/// on `lo` both stay sound.
struct SumBounds {
  double lo = 0.0;
  double hi = 0.0;
};

[[nodiscard]] SumBounds certify_bounds(double value,
                                       std::size_t terms) noexcept {
  const double slack = (static_cast<double>(terms) + 4.0) *
                       std::numeric_limits<double>::epsilon();
  return SumBounds{value * (1.0 - slack), value * (1.0 + slack)};
}

/// m * x without wrap; nullopt when the product leaves the sane range
/// (the caller then answers Unknown — a saturated right-hand side could
/// otherwise turn a failed comparison into a false accept).
[[nodiscard]] std::optional<Time> checked_mul(std::uint32_t m, Time x) {
  if (x < 0) return std::nullopt;
  if (m != 0 && x > kTimeInfinity / static_cast<Time>(m)) return std::nullopt;
  return static_cast<Time>(m) * x;
}

/// Exact total utilization of the columns (one-shots contribute 0).
[[nodiscard]] Rational exact_utilization(const TaskColumns& c) {
  Rational u;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_time_infinite(c.period[i])) continue;
    u += Rational(c.wcet[i], c.period[i]);
  }
  return u;
}

/// The O(n) infeasibility gates shared by every rung entry: U > m
/// (capacity on m unit-speed processors, any scheduler) and C_i > D_i
/// (a job cannot execute on two processors at once, so even an idle
/// platform misses). Returns a decisive result or nullopt.
[[nodiscard]] std::optional<FeasibilityResult> infeasibility_gates(
    const TaskColumns& c, std::uint32_t m) {
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c.wcet[i] > c.deadline[i]) {
      FeasibilityResult r;
      r.verdict = Verdict::Infeasible;
      r.witness = c.deadline[i];
      r.iterations = i + 1;
      return r;
    }
  }
  const Rational u = exact_utilization(c);
  if (u.exact()) {
    if (u.certainly_gt(static_cast<Time>(m))) {
      FeasibilityResult r;
      r.verdict = Verdict::Infeasible;
      r.iterations = c.size();
      return r;
    }
    return std::nullopt;  // exact and not > m, hence U <= m
  }
  // Exact utilization overflowed: certified double bounds instead.
  double acc = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_time_infinite(c.period[i])) continue;
    acc += static_cast<double>(c.wcet[i]) / static_cast<double>(c.period[i]);
  }
  const SumBounds b = certify_bounds(acc, c.size());
  if (b.lo > static_cast<double>(m)) {
    FeasibilityResult r;
    r.verdict = Verdict::Infeasible;
    r.iterations = c.size();
    return r;
  }
  if (b.hi <= static_cast<double>(m)) return std::nullopt;  // U <= m proven
  // The bounds straddle m: cannot prove either direction.
  FeasibilityResult r;
  r.verdict = Verdict::Unknown;
  r.degraded = true;
  return r;
}

/// Carry-in bound for task i interfering with a window of task k, given
/// proven completion slack s_i (F2 in the header): the carry job was
/// released before the window start `a`, so its deadline is at most
/// a + D_i - 1, and it completes s_i early — but the slack is only
/// usable when that deadline provably precedes the first-miss instant
/// t_d = a + D_k, i.e. when D_i <= D_k (a job with deadline == t_d has
/// no completion guarantee yet).
[[nodiscard]] Time carry_in(const TaskColumns& c, std::size_t i, Time d_k,
                            Time slack_i) {
  const Time usable = c.deadline[i] <= d_k ? slack_i : 0;
  const Time residual = c.deadline[i] - 1 - usable;
  if (residual <= 0) return 0;
  return std::min(c.wcet[i], residual);
}

/// One window-test pass for task k at slack vector `s`: the interference
/// bound I_k = sum_{i != k} min(dbf_i(D_k) + carry_i, L_k). Nullopt on
/// arithmetic overflow (caller answers Unknown). Accumulation stops
/// early once I_k can no longer stay under m*L_k.
[[nodiscard]] std::optional<Time> window_interference(
    const TaskColumns& c, std::size_t k, std::uint32_t m,
    const std::vector<Time>& s) {
  const Time d_k = c.deadline[k];
  const Time cap = d_k - c.wcet[k] + 1;  // L_k; caller ensures D_k >= C_k
  const std::optional<Time> budget = checked_mul(m, cap);
  if (!budget) return std::nullopt;
  Time total = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i == k) continue;  // own carry completes by t_a (header: F2)
    const Time w =
        add_saturating(row_dbf(c, i, d_k), carry_in(c, i, d_k, s[i]));
    total += std::min(w, cap);
    if (total >= *budget) return total;  // condition already failed
  }
  return total;
}

FeasibilityResult unknown_result(std::uint64_t iters) {
  FeasibilityResult r;
  r.verdict = Verdict::Unknown;
  r.iterations = iters;
  return r;
}

}  // namespace

bool zero_jitter(const TaskSet& ts) noexcept {
  for (const Task& t : ts.tasks())
    if (t.jitter != 0) return false;
  return true;
}

bool window_rungs_applicable(const TaskSet& ts) noexcept {
  if (!zero_jitter(ts)) return false;
  for (const Task& t : ts.tasks())
    if (t.deadline > t.period) return false;
  return true;
}

FeasibilityResult gfb_density_test(const TaskColumns& c, std::uint32_t m) {
  FeasibilityResult r;
  if (c.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (auto gate = infeasibility_gates(c, m)) return *gate;
  // Density delta_i = C_i / min(D_i, T_i) satisfies dbf_i(t) <= delta_i*t
  // for every t >= 0, and the GFB/density theorem (Goossens–Funk–Baruah
  // 2003 for implicit deadlines; density form per Bertogna et al.)
  // accepts when sum(delta) <= m - (m-1)*max(delta), i.e.
  // sum(delta) + (m-1)*max(delta) <= m. Exact rationals throughout;
  // inexact arithmetic degrades to Unknown.
  Rational sum;
  Rational max_density;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Time span = std::min(c.deadline[i], c.period[i]);
    const Rational d(c.wcet[i], span);
    sum += d;
    if (d.certainly_gt(max_density)) max_density = d;
  }
  r.iterations = c.size();
  const Rational lhs =
      sum + Rational(static_cast<Time>(m) - 1) * max_density;
  if (lhs.exact()) {
    if (lhs.certainly_le(static_cast<Time>(m))) {
      r.verdict = Verdict::Feasible;
    }
    return r;
  }
  // Exact density sum overflowed: a certified double upper bound keeps
  // the accept sound (refusal stays Unknown as before).
  double sum_d = 0.0;
  double dmax_d = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Time span = std::min(c.deadline[i], c.period[i]);
    const double d =
        static_cast<double>(c.wcet[i]) / static_cast<double>(span);
    sum_d += d;
    dmax_d = std::max(dmax_d, d);
  }
  const double total = sum_d + static_cast<double>(m - 1) * dmax_d;
  if (certify_bounds(total, c.size() + 2).hi <= static_cast<double>(m)) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  r.degraded = true;
  return r;  // Unknown
}

FeasibilityResult global_bcl_test(const TaskColumns& c, std::uint32_t m) {
  FeasibilityResult r;
  if (c.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (auto gate = infeasibility_gates(c, m)) return *gate;
  const std::vector<Time> no_slack(c.size(), 0);
  for (std::size_t k = 0; k < c.size(); ++k) {
    const std::optional<Time> budget =
        checked_mul(m, c.deadline[k] - c.wcet[k] + 1);
    const std::optional<Time> interference =
        window_interference(c, k, m, no_slack);
    r.iterations += c.size();
    r.max_interval_tested = std::max(r.max_interval_tested, c.deadline[k]);
    if (!budget || !interference || *interference >= *budget) return r;
  }
  r.verdict = Verdict::Feasible;
  return r;
}

FeasibilityResult global_bcl_iterative_test(const TaskColumns& c,
                                            std::uint32_t m,
                                            const GlobalTestConfig& cfg) {
  FeasibilityResult r;
  if (c.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (auto gate = infeasibility_gates(c, m)) return *gate;
  // Slack iteration (Gauss–Seidel): every slack written below is proven
  // under slacks proven earlier, starting from the unconditional zero
  // vector, so values only grow and any round's proofs compose. Accept
  // requires every task to pass within one round.
  std::vector<Time> slack(c.size(), 0);
  for (unsigned round = 0; round < cfg.max_rounds; ++round) {
    bool all_pass = true;
    bool improved = false;
    for (std::size_t k = 0; k < c.size(); ++k) {
      const std::optional<Time> interference =
          window_interference(c, k, m, slack);
      r.iterations += c.size();
      if (!interference) return unknown_result(r.iterations);
      const Time x = *interference / static_cast<Time>(m);
      if (x <= c.deadline[k] - c.wcet[k]) {
        const Time s = c.deadline[k] - c.wcet[k] - x;
        if (s > slack[k]) {
          slack[k] = s;
          improved = true;
        }
      } else {
        all_pass = false;
      }
    }
    r.revisions = round + 1;
    if (all_pass) {
      r.verdict = Verdict::Feasible;
      return r;
    }
    if (!improved) return r;  // fixpoint without full coverage: Unknown
  }
  return r;
}

FeasibilityResult global_load_test(const TaskColumns& c, std::uint32_t m,
                                   const GlobalTestConfig& cfg) {
  FeasibilityResult r;
  if (c.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (auto gate = infeasibility_gates(c, m)) return *gate;
  const Rational u = exact_utilization(c);
  const Rational slackline = Rational(static_cast<Time>(m)) - u;
  if (!slackline.exact() || !slackline.certainly_gt(Rational(Time{0}))) {
    // U == m (or inexact): the window sweep has no finite A_max.
    r.degraded = !slackline.exact();
    return r;
  }
  // CS: the m-1 largest zero-slack carry-in bounds; the busy-window
  // argument caps the number of carry-in tasks at m-1 (at the last
  // not-all-busy slot, fewer than m competing jobs were pending).
  std::vector<Time> carry(c.size());
  for (std::size_t i = 0; i < c.size(); ++i)
    carry[i] = std::min(c.wcet[i], std::max<Time>(0, c.deadline[i] - 1));
  std::sort(carry.begin(), carry.end(), std::greater<>());
  Time cs = 0;
  for (std::size_t i = 0; i + 1 < m && i < carry.size(); ++i) cs += carry[i];
  Time total_wcet = 0;
  for (std::size_t i = 0; i < c.size(); ++i)
    total_wcet = add_saturating(total_wcet, c.wcet[i]);

  for (std::size_t k = 0; k < c.size(); ++k) {
    // A_max: beyond it dbf's linear envelope U*A + sum(C) keeps the
    // condition satisfied, so only A in [D_k, A_max] needs checking.
    const Rational numerator =
        Rational(add_saturating(total_wcet, cs)) +
        Rational(static_cast<Time>(m) - 1) * Rational(c.wcet[k]) -
        Rational(static_cast<Time>(m));
    const Rational bound = numerator / slackline;
    if (!bound.exact()) return unknown_result(r.iterations);
    const Time a_max = std::max(c.deadline[k], bound.floor() + 1);

    // Candidate window lengths: D_k plus every dbf step point in
    // (D_k, a_max]. The left side is piecewise constant and the right
    // side strictly increasing in A, so violations can only appear at
    // these points. Budgeted: too many steps degrades to Unknown.
    std::uint64_t point_estimate = 1;
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (a_max < c.deadline[i]) continue;
      if (is_time_infinite(c.period[i])) {
        point_estimate += 1;
        continue;
      }
      point_estimate +=
          static_cast<std::uint64_t>((a_max - c.deadline[i]) / c.period[i]) +
          1;
      if (point_estimate > cfg.max_load_points)
        return unknown_result(r.iterations);
    }
    std::vector<Time> points;
    points.reserve(static_cast<std::size_t>(point_estimate));
    points.push_back(c.deadline[k]);
    for (std::size_t i = 0; i < c.size(); ++i) {
      for (Time p = c.deadline[i]; p <= a_max;
           p = add_saturating(p, c.period[i])) {
        if (p > c.deadline[k]) points.push_back(p);
        if (is_time_infinite(c.period[i])) break;
      }
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());

    for (const Time a : points) {
      const Time lhs =
          add_saturating(columns_dbf(c, a) - c.wcet[k], cs);
      const std::optional<Time> rhs = checked_mul(m, a - c.wcet[k] + 1);
      ++r.iterations;
      r.max_interval_tested = std::max(r.max_interval_tested, a);
      if (!rhs || lhs >= *rhs) return r;  // cannot prove: Unknown
    }
  }
  r.verdict = Verdict::Feasible;
  return r;
}

FeasibilityResult global_rta_test(const TaskColumns& c, std::uint32_t m,
                                  const GlobalTestConfig& cfg,
                                  std::vector<Time>* response_bounds) {
  FeasibilityResult r;
  if (c.empty()) {
    r.verdict = Verdict::Feasible;
    if (response_bounds) response_bounds->clear();
    return r;
  }
  if (auto gate = infeasibility_gates(c, m)) return *gate;
  std::vector<Time> slack(c.size(), 0);
  std::vector<Time> response(c.size(), 0);
  std::vector<Time> w(c.size(), 0);
  for (unsigned round = 0; round < cfg.max_rounds; ++round) {
    bool all_pass = true;
    bool improved = false;
    for (std::size_t k = 0; k < c.size(); ++k) {
      const Time d_k = c.deadline[k];
      for (std::size_t i = 0; i < c.size(); ++i) {
        w[i] = i == k ? 0
                      : add_saturating(row_dbf(c, i, d_k),
                                       carry_in(c, i, d_k, slack[i]));
      }
      // Least fixpoint of R = C_k + floor(sum min(W_i, R-C_k+1)/m),
      // iterated upward from R = C_k; monotone in R, so it either
      // converges or provably exceeds D_k.
      Time rk = c.wcet[k];
      bool converged = false;
      for (unsigned it = 0; it < cfg.max_rta_iterations; ++it) {
        const Time beta = rk - c.wcet[k] + 1;
        Time interference = 0;
        for (std::size_t i = 0; i < c.size(); ++i) {
          if (i == k) continue;
          interference += std::min(w[i], beta);
        }
        r.iterations += c.size();
        const Time next = add_saturating(
            c.wcet[k], interference / static_cast<Time>(m));
        if (next > d_k) break;  // response bound exceeds the deadline
        if (next == rk) {
          converged = true;
          break;
        }
        rk = next;
      }
      if (converged) {
        response[k] = rk;
        const Time s = d_k - rk;
        if (s > slack[k]) {
          slack[k] = s;
          improved = true;
        }
        r.max_interval_tested = std::max(r.max_interval_tested, rk);
      } else {
        all_pass = false;
      }
    }
    r.revisions = round + 1;
    if (all_pass) {
      r.verdict = Verdict::Feasible;
      if (response_bounds) *response_bounds = response;
      return r;
    }
    if (!improved) return r;  // Unknown
  }
  return r;
}

namespace {

/// Shared TaskSet-entry plumbing: empty sets are trivially feasible,
/// invalid platforms throw, jitter (and unconstrained deadlines for the
/// window rungs) gate to Unknown.
enum class Gate : std::uint8_t { Jitter, Window };

[[nodiscard]] std::optional<FeasibilityResult> entry_gates(
    const TaskSet& ts, const Platform& p, Gate gate) {
  if (!platform_valid(p))
    throw std::invalid_argument("global test: invalid platform");
  if (ts.empty()) {
    FeasibilityResult r;
    r.verdict = Verdict::Feasible;
    return r;
  }
  const bool ok = gate == Gate::Jitter ? zero_jitter(ts)
                                       : window_rungs_applicable(ts);
  if (!ok) {
    FeasibilityResult r;
    r.verdict = Verdict::Unknown;
    return r;
  }
  return std::nullopt;
}

}  // namespace

FeasibilityResult gfb_density_test(const TaskSet& ts, const Platform& p) {
  if (auto g = entry_gates(ts, p, Gate::Jitter)) return *g;
  return gfb_density_test(TaskColumns(ts), p.m);
}

FeasibilityResult global_bcl_test(const TaskSet& ts, const Platform& p) {
  if (auto g = entry_gates(ts, p, Gate::Window)) return *g;
  return global_bcl_test(TaskColumns(ts), p.m);
}

FeasibilityResult global_bcl_iterative_test(const TaskSet& ts,
                                            const Platform& p,
                                            const GlobalTestConfig& cfg) {
  if (auto g = entry_gates(ts, p, Gate::Window)) return *g;
  return global_bcl_iterative_test(TaskColumns(ts), p.m, cfg);
}

FeasibilityResult global_load_test(const TaskSet& ts, const Platform& p,
                                   const GlobalTestConfig& cfg) {
  if (auto g = entry_gates(ts, p, Gate::Window)) return *g;
  return global_load_test(TaskColumns(ts), p.m, cfg);
}

FeasibilityResult global_rta_test(const TaskSet& ts, const Platform& p,
                                  const GlobalTestConfig& cfg,
                                  std::vector<Time>* response_bounds) {
  if (auto g = entry_gates(ts, p, Gate::Window)) return *g;
  return global_rta_test(TaskColumns(ts), p.m, cfg, response_bounds);
}

}  // namespace edfkit::multi
