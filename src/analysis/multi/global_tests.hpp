/// \file global_tests.hpp
/// Global-EDF schedulability tests for m identical processors, over the
/// SoA `TaskColumns` kernels (demand/task_view.hpp).
///
/// Shape follows schedcat's HRT_TESTS cascade (SNIPPETS.md): a ladder of
/// *sufficient* tests ordered cheapest-first, closed by a decisive
/// simulation rung. Each accept is a theorem; each test that cannot
/// prove schedulability answers Unknown, never a guess — the
/// cross-validation suite (tests/analysis/test_multi_edf.cpp) asserts
/// that no accept here is ever contradicted by the m-processor
/// `sim/edf_sim` oracle on a legal sporadic arrival sequence.
///
/// Every condition below is derived from two elementary facts about
/// preemptive global EDF on m processors (zero jitter, at most one
/// active job per task — guaranteed pre-first-miss for constrained
/// deadlines):
///
///  (F1) *Blocked instants are all-busy.* While a released, incomplete
///       job J with absolute deadline t_d is not executing, all m
///       processors run jobs with deadline <= t_d ("competing work").
///       If J misses at t_d it executed < C in [t_d - D, t_d), so at
///       least L = D - C + 1 integer slots of its window are blocked,
///       and the first L of them carry >= m*L units of competing work.
///  (F2) *Per-task workload caps.* In a window [a, b) with b <= t_d and
///       no deadline missed before t_d, task i contributes at most
///       dbf_i(b - a) from jobs released inside the window (their
///       deadlines are <= b), plus at most one carry-in job released
///       before `a` contributing min(C_i, D_i - 1 - s_i) where s_i is a
///       proven completion-slack lower bound (0 when unproven; the
///       carry job's deadline is < a + D_i, and it finishes s_i early).
///       During any set of K blocked slots a single task contributes at
///       most min(workload, K): its jobs never run in parallel.
///
/// The rungs (registry names in brackets):
///   [gfb]          Goossens–Funk–Baruah density bound, O(n):
///                  sum(delta_i) <= m - (m-1)*max(delta_i) with
///                  delta_i = C_i/min(D_i, T_i) in exact rationals
///                  (density generalization per Bertogna/Cirinei/Lipari;
///                  valid for arbitrary deadlines). Also owns the two
///                  O(n) *infeasibility* proofs: U > m (capacity) and
///                  C_i > D_i (a job cannot parallelize past one
///                  processor).
///   [gbl-bcl]      Bertogna–Cirinei–Lipari-style window test, O(n^2):
///                  task k safe if
///                    sum_{i != k} min(dbf_i(D_k) + min(C_i, D_i - 1),
///                                     L_k)  <  m * L_k,
///                  L_k = D_k - C_k + 1 (direct from F1 + F2).
///   [gbl-bcl-iter] The same condition with slack iteration: proven
///                  slacks s_i = D_i - C_i - floor(I_i/m) shrink the
///                  carry-in term min(C_i, D_i - 1 - s_i) monotonically
///                  (slack usable only when D_i <= D_k, which forces the
///                  carry job's deadline strictly before t_d).
///   [gbl-load]     Busy-window/load test (Baruah-style): extend the
///                  window left to the last not-all-busy slot; then at
///                  most m-1 tasks carry in, and for every window length
///                  A >= D_k,
///                    sum_i dbf_i(A) - C_k + CS_k  <  m * (A - C_k + 1)
///                  must fail for a miss to exist, where CS_k is the sum
///                  of the m-1 largest min(C_i, D_i - 1). The left side
///                  is piecewise constant in A and the right side grows,
///                  so only deadline step points up to a closed-form
///                  A_max (finite when U < m) need checking.
///   [gbl-rta]      Global response-time analysis: least fixpoint of
///                    R = C_k + floor(sum_{i != k} min(W_i, R - C_k + 1)
///                                    / m),
///                  W_i = dbf_i(D_k) + carry_i(s); accept if R <= D_k,
///                  with outer slack iteration as in gbl-bcl-iter. The
///                  response bounds it converges to are the witness the
///                  MultiprocessorCertificate re-derives.
///   [gbl-sim]      The decisive rung: m-processor EDF simulation of the
///                  synchronous periodic pattern (sim/oracle.hpp). A
///                  miss is a sporadic infeasibility proof; no miss over
///                  the hyperperiod horizon is exact for the periodic
///                  interpretation (constrained deadlines, zero jitter).
///
/// BAK (Baker's arbitrary-deadline test) was deliberately *not* ported:
/// its condition could not be re-derived from first principles here, and
/// an unsound transcription would poison the oracle contract. Sets with
/// unconstrained deadlines are served by gfb and gbl-sim; the window
/// rungs answer Unknown for them.
///
/// Preconditions, enforced by the TaskSet entry points (columns-level
/// kernels document rather than check them): zero jitter — the column
/// `deadline` equals the raw D — and, for the window rungs, constrained
/// deadlines D_i <= T_i. Violations answer Unknown, never a guess.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/types.hpp"
#include "demand/task_view.hpp"
#include "model/platform.hpp"
#include "model/task_set.hpp"

namespace edfkit::multi {

/// Shared knobs for the pseudo-polynomial rungs. All caps degrade to
/// Unknown when exceeded — never to a wrong verdict.
struct GlobalTestConfig {
  /// Slack-iteration rounds for gbl-bcl-iter / gbl-rta (each round is
  /// one pass over all tasks; slacks improve monotonically so a small
  /// cap loses only precision).
  unsigned max_rounds = 32;
  /// Inner fixpoint steps per task for gbl-rta.
  unsigned max_rta_iterations = 4096;
  /// Step-point budget per task for gbl-load's window sweep.
  std::uint64_t max_load_points = 1u << 18;
};

/// [gfb] O(n log 1) density bound + the O(n) infeasibility gates
/// (U > m, C_i > D_i). Arbitrary deadlines. \pre zero jitter.
[[nodiscard]] FeasibilityResult gfb_density_test(const TaskColumns& c,
                                                 std::uint32_t m);

/// [gbl-bcl] One-pass window test. \pre zero jitter, D_i <= T_i.
[[nodiscard]] FeasibilityResult global_bcl_test(const TaskColumns& c,
                                                std::uint32_t m);

/// [gbl-bcl-iter] Slack-iterated window test.
/// \pre zero jitter, D_i <= T_i.
[[nodiscard]] FeasibilityResult global_bcl_iterative_test(
    const TaskColumns& c, std::uint32_t m, const GlobalTestConfig& cfg = {});

/// [gbl-load] Busy-window/load sweep. \pre zero jitter, D_i <= T_i.
[[nodiscard]] FeasibilityResult global_load_test(
    const TaskColumns& c, std::uint32_t m, const GlobalTestConfig& cfg = {});

/// [gbl-rta] Global response-time analysis. On accept, `response_bounds`
/// (when non-null) receives one proven response-time upper bound per
/// row, aligned with column order — the MultiprocessorCertificate's
/// witness vector. \pre zero jitter, D_i <= T_i.
[[nodiscard]] FeasibilityResult global_rta_test(
    const TaskColumns& c, std::uint32_t m, const GlobalTestConfig& cfg = {},
    std::vector<Time>* response_bounds = nullptr);

/// TaskSet entry points: enforce the jitter/constrained-deadline gates
/// (answering Unknown when violated), build the columns, and dispatch.
/// These are what the registry runners and the admission controller's
/// global ladder call.
[[nodiscard]] FeasibilityResult gfb_density_test(const TaskSet& ts,
                                                 const Platform& p);
[[nodiscard]] FeasibilityResult global_bcl_test(const TaskSet& ts,
                                                const Platform& p);
[[nodiscard]] FeasibilityResult global_bcl_iterative_test(
    const TaskSet& ts, const Platform& p, const GlobalTestConfig& cfg = {});
[[nodiscard]] FeasibilityResult global_load_test(
    const TaskSet& ts, const Platform& p, const GlobalTestConfig& cfg = {});
[[nodiscard]] FeasibilityResult global_rta_test(
    const TaskSet& ts, const Platform& p, const GlobalTestConfig& cfg = {},
    std::vector<Time>* response_bounds = nullptr);

/// True when every task has zero jitter (column preconditions hold).
[[nodiscard]] bool zero_jitter(const TaskSet& ts) noexcept;
/// True when every task additionally has D_i <= T_i (window-rung gate).
[[nodiscard]] bool window_rungs_applicable(const TaskSet& ts) noexcept;

}  // namespace edfkit::multi
