/// \file sensitivity.hpp
/// Design-space probes built on the paper's fast exact tests. These are
/// the workflows the paper's introduction motivates ("the automation of
/// the design process"): once an exact test is as cheap as a sufficient
/// one, questions like "how much WCET margin do we have?" or "what is
/// the minimum processor speed?" become interactive.
#pragma once

#include <optional>

#include "analysis/types.hpp"
#include "model/task_set.hpp"
#include "util/rational.hpp"

namespace edfkit {

struct SensitivityOptions {
  /// Resolution of the binary searches (the answers are exact to one
  /// part in 2^precision_bits of the search range).
  int precision_bits = 30;
};

/// Largest uniform WCET scaling factor (as a rational p/q with q =
/// 2^precision_bits) under which the set stays EDF-feasible. Returns
/// nullopt if the set is already infeasible at factor 1. WCETs are
/// scaled as C' = max(1, floor(f * C)); deadlines/periods are untouched.
[[nodiscard]] std::optional<Rational> max_wcet_scaling(
    const TaskSet& ts, const SensitivityOptions& opts = {});

/// Minimum processor speed s (demand capacity s per time unit) keeping
/// the set feasible: the exact maximum of dbf(I)/I over all intervals up
/// to the feasibility bound, clamped below by U. Exact rational.
/// Returns >= 1 iff the set is infeasible at unit speed. \pre !ts.empty()
[[nodiscard]] Rational min_processor_speed(const TaskSet& ts);

/// Largest additional execution budget (integer ticks) task `index` can
/// receive per job while the whole set remains feasible (its deadline
/// caps the growth). 0 if nothing can be added; nullopt if the set is
/// infeasible to begin with. \pre index < ts.size()
[[nodiscard]] std::optional<Time> task_wcet_slack(const TaskSet& ts,
                                                  std::size_t index);

/// Smallest relative deadline task `index` can be tightened to while the
/// set stays feasible (useful for jitter budgeting). nullopt if the set
/// is infeasible at its current deadlines. \pre index < ts.size()
[[nodiscard]] std::optional<Time> min_feasible_deadline(const TaskSet& ts,
                                                        std::size_t index);

}  // namespace edfkit
