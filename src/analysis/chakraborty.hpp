/// \file chakraborty.hpp
/// Approximate schedulability analysis of Chakraborty, Künzli & Thiele
/// (RTSS 2002) [8] — the other approximation the paper names in §3.4 as
/// bridging Devi's fast test and the slow exact test.
///
/// The CKT scheme evaluates the demand bound exactly for the first
/// k = ceil(1/epsilon) jobs of each task and bounds the remainder by its
/// linear envelope. Acceptance is sound (the set is feasible); rejection
/// certifies infeasibility only on a processor of capacity (1 - epsilon).
/// Structurally this is the superposition test at level k — the paper's
/// §3.4 groups both under the same umbrella — but the entry point here
/// exposes the epsilon/error-capacity contract of [8] and reports the
/// measured demand/capacity ratio.
#pragma once

#include "analysis/types.hpp"
#include "model/task_set.hpp"

namespace edfkit {

struct ChakrabortyResult {
  FeasibilityResult base;
  /// epsilon actually used (1/k after rounding k up).
  double epsilon = 0.0;
  /// max over tested intervals of dbf'(I)/I — the processor speed at
  /// which the demand provably fits. <= 1 iff accepted.
  double demand_ratio = 0.0;
};

/// Run the epsilon-approximate test. \pre 0 < epsilon <= 1
[[nodiscard]] ChakrabortyResult chakraborty_test(const TaskSet& ts,
                                                 double epsilon);

}  // namespace edfkit
