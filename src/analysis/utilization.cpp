#include "analysis/utilization.hpp"

namespace edfkit {
namespace {

constexpr Int128 kScale = kUtilizationScale;

}  // namespace

ScaledUtilization scaled_utilization_bounds(const TaskSet& ts) {
  // With C, T < 2^62 the per-task product C * kScale stays inside int128.
  ScaledUtilization s;
  for (const Task& t : ts) {
    if (is_time_infinite(t.period)) continue;  // one-shot: U contribution 0
    const Int128 num = static_cast<Int128>(t.wcet) * kScale;
    const Int128 den = static_cast<Int128>(t.period);
    const Int128 q = num / den;
    const Int128 r = num % den;
    s.lower += q;
    s.upper += q + (r != 0 ? 1 : 0);
  }
  return s;
}

UtilizationClass classify_utilization(const TaskSet& ts) {
  // Exact rational fast path.
  const Ordering c = ts.utilization().compare(Time{1});
  switch (c) {
    case Ordering::Less: return UtilizationClass::BelowOne;
    case Ordering::Equal: return UtilizationClass::ExactlyOne;
    case Ordering::Greater: return UtilizationClass::AboveOne;
    case Ordering::Unknown: break;  // rationals overflowed; certify below
  }
  const ScaledUtilization s = scaled_utilization_bounds(ts);
  if (s.upper < kScale) return UtilizationClass::BelowOne;
  if (s.lower > kScale) return UtilizationClass::AboveOne;
  return UtilizationClass::Marginal;
}

bool utilization_at_most_one(const TaskSet& ts, bool* degraded_out) {
  switch (classify_utilization(ts)) {
    case UtilizationClass::BelowOne:
    case UtilizationClass::ExactlyOne:
      return true;
    case UtilizationClass::AboveOne:
      return false;
    case UtilizationClass::Marginal:
      if (degraded_out != nullptr) *degraded_out = true;
      return true;  // safe direction: never claim U > 1 without proof
  }
  return true;
}

bool utilization_exceeds_one(const TaskSet& ts) {
  return classify_utilization(ts) == UtilizationClass::AboveOne;
}

FeasibilityResult liu_layland_test(const TaskSet& ts) {
  FeasibilityResult r;
  r.iterations = 1;
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    return r;
  }
  const bool le1 = utilization_at_most_one(ts, &r.degraded);
  if (!le1) {
    r.verdict = Verdict::Infeasible;
    return r;
  }
  // EDF is optimal [12]: U <= 1 is sufficient when every deadline is at
  // least the period (demand never exceeds the implicit-deadline case).
  const bool all_at_least_period = [&] {
    for (const Task& t : ts) {
      if (t.effective_deadline() < t.period) return false;
    }
    return true;
  }();
  r.verdict =
      all_at_least_period ? Verdict::Feasible : Verdict::Unknown;
  return r;
}

}  // namespace edfkit
