/// \file devi.hpp
/// Devi's sufficient feasibility test [9] (paper Def. 1): with tasks
/// arranged by non-decreasing relative deadline, Gamma is feasible if
/// U <= 1 and for every k in 1..n
///
///   Sigma_{i<=k} C_i/T_i
///     + (1/D_k) * Sigma_{i<=k} ((T_i - min(T_i, D_i))/T_i) * C_i  <=  1.
///
/// The paper proves (Lemma 2, §3.5) that this test is exactly
/// SuperPos(1); the property is verified in tests/cross_validation.
///
/// The check is evaluated in exact rational arithmetic (multiply through
/// by D_k), so no floating-point acceptance errors are possible.
#pragma once

#include "analysis/types.hpp"
#include "model/task_set.hpp"

namespace edfkit {

/// Run Devi's test. Verdicts: Feasible (accepted), Infeasible only via
/// the exact U > 1 precheck, otherwise Unknown (the test is sufficient —
/// rejection proves nothing).
[[nodiscard]] FeasibilityResult devi_test(const TaskSet& ts);

}  // namespace edfkit
