#include "analysis/sensitivity.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/bounds.hpp"
#include "analysis/utilization.hpp"
#include "core/all_approx.hpp"
#include "demand/dbf.hpp"
#include "demand/intervals.hpp"

namespace edfkit {
namespace {

bool feasible(const TaskSet& ts) {
  return all_approx_test(ts).feasible();
}

TaskSet scale_wcets_floor(const TaskSet& ts, Time num, Time den) {
  TaskSet out;
  for (Task t : ts) {
    const Int128 scaled = mul_wide(t.wcet, num) / den;
    t.wcet = std::max<Time>(1, narrow_time(scaled));
    // A WCET beyond the deadline is a legal (infeasible) input; keep the
    // task valid by capping at the deadline only when the caller scales
    // *down* — upscaling past D genuinely means infeasible.
    out.add(std::move(t));
  }
  return out;
}

}  // namespace

std::optional<Rational> max_wcet_scaling(const TaskSet& ts,
                                         const SensitivityOptions& opts) {
  if (ts.empty()) return std::nullopt;
  if (!feasible(ts)) return std::nullopt;
  // Upper limit: factor 1/U scales utilization to ~1; nothing above
  // ceil(1/U * 2) can ever be feasible. Binary search on num/2^bits in
  // [2^bits, hi].
  const Time den = Time{1} << std::min(opts.precision_bits, 40);
  const double u = std::max(1e-9, ts.utilization_double());
  // Above 2/U the scaled utilization exceeds 1 (minus floor slack); the
  // absolute cap only keeps `num` inside int64 (products go via int128).
  const Time hi_limit = static_cast<Time>(
      std::min<double>(static_cast<double>(den) * (2.0 / u), 4.0e18));
  Time lo = den;  // factor 1.0 is feasible
  Time hi = std::max<Time>(lo + 1, hi_limit);
  // Ensure hi is infeasible (or give up widening).
  while (feasible(scale_wcets_floor(ts, hi, den))) {
    if (hi >= hi_limit) {
      // The floor(f*C) discretization can keep tiny tasks feasible at
      // absurd factors; report the limit reached.
      return Rational(hi, den);
    }
    hi = std::min(hi_limit, mul_saturating(hi, 2));
  }
  while (lo + 1 < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (feasible(scale_wcets_floor(ts, mid, den))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return Rational(lo, den);
}

Rational min_processor_speed(const TaskSet& ts) {
  if (ts.empty()) throw std::invalid_argument("min_processor_speed: empty");
  // The speed is sup_I dbf(I)/I, attained at job deadlines (between
  // deadlines the numerator is constant while I grows). The envelope
  // dbf(I) <= U*I + N with N = Sigma max(0, 1 - D/T)*C caps tail ratios:
  // once the running maximum `best` exceeds U, no point beyond
  // I_cut = N/(best - U) can beat it, which bounds the scan exactly.
  Rational best = ts.utilization();
  Rational envelope_n;
  for (const Task& t : ts) {
    if (is_time_infinite(t.period)) {
      envelope_n += Rational(t.wcet);
    } else if (t.effective_deadline() <= t.period) {
      envelope_n += Rational(t.period - t.effective_deadline(), t.period) *
                    Rational(t.wcet);
    }
  }
  const Time hyper_cap = hyperperiod_bound(ts);
  DeadlineStream stream(ts, hyper_cap);
  const Rational u = ts.utilization();
  while (stream.has_next()) {
    const Time point = stream.next();
    const Rational ratio(dbf(ts, point), point);
    if (ratio.certainly_gt(best)) best = ratio;
    // Exact cut: for I >= N/(best - U), dbf(I)/I <= U + N/I <= best.
    Rational gap = best;
    gap -= u;
    if (gap.exact() && envelope_n.exact() && !gap.is_zero() &&
        !gap.is_negative()) {
      const Rational lhs = gap * Rational(point);  // (best-U) * I >= N ?
      const Ordering c = envelope_n.compare(lhs);
      if (c == Ordering::Less || c == Ordering::Equal) break;
      // Unknown (degraded lhs) must NOT cut: keep scanning instead.
    }
  }
  return best;
}

std::optional<Time> task_wcet_slack(const TaskSet& ts, std::size_t index) {
  if (index >= ts.size())
    throw std::invalid_argument("task_wcet_slack: index out of range");
  if (!feasible(ts)) return std::nullopt;
  const Time base = ts[index].wcet;
  const Time cap = ts[index].effective_deadline();  // C <= D at most
  auto with_extra = [&](Time extra) {
    TaskSet out;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      Task t = ts[i];
      if (i == index) t.wcet = base + extra;
      out.add(std::move(t));
    }
    return out;
  };
  Time lo = 0;
  Time hi = std::max<Time>(0, cap - base);
  if (hi == 0) return 0;
  if (feasible(with_extra(hi))) return hi;
  while (lo + 1 < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (feasible(with_extra(mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<Time> min_feasible_deadline(const TaskSet& ts,
                                          std::size_t index) {
  if (index >= ts.size())
    throw std::invalid_argument("min_feasible_deadline: index out of range");
  if (!feasible(ts)) return std::nullopt;
  const Task& target = ts[index];
  auto with_deadline = [&](Time d) {
    TaskSet out;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      Task t = ts[i];
      if (i == index) t.deadline = d;
      out.add(std::move(t));
    }
    return out;
  };
  Time lo = std::max<Time>(target.wcet, target.jitter + 1);  // lower cap
  Time hi = target.effective_deadline() + target.jitter;     // current D
  if (feasible(with_deadline(lo))) return lo;
  // Invariant: lo infeasible, hi feasible.
  while (lo + 1 < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (feasible(with_deadline(mid))) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace edfkit
