#include "analysis/chakraborty.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "analysis/utilization.hpp"
#include "demand/approx.hpp"

namespace edfkit {

ChakrabortyResult chakraborty_test(const TaskSet& ts, double epsilon) {
  if (!(epsilon > 0.0) || epsilon > 1.0)
    throw std::invalid_argument("chakraborty_test: epsilon in (0,1] required");
  ChakrabortyResult out;
  const Time k = static_cast<Time>(std::ceil(1.0 / epsilon));
  out.epsilon = 1.0 / static_cast<double>(k);

  if (ts.empty()) {
    out.base.verdict = Verdict::Feasible;
    return out;
  }
  if (utilization_exceeds_one(ts)) {
    out.base.verdict = Verdict::Infeasible;
    out.base.iterations = 1;
    out.demand_ratio = ts.utilization_double();
    return out;
  }

  // Corner points of dbf'(., k): deadlines of the first k jobs of every
  // task. Between corners the slope is <= U <= 1, so corner checks are
  // complete.
  std::vector<Time> points;
  points.reserve(ts.size() * static_cast<std::size_t>(k));
  for (const Task& t : ts) {
    for (Time j = 0; j < k; ++j) {
      const Time d = t.job_deadline(j);
      if (is_time_infinite(d)) break;
      points.push_back(d);
      if (is_time_infinite(t.period)) break;  // one-shot: single corner
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  bool accepted = true;
  for (const Time i : points) {
    ++out.base.iterations;
    out.base.max_interval_tested = i;
    const Rational d = approx_dbf(ts, i, k);
    out.demand_ratio =
        std::max(out.demand_ratio, d.to_double() / static_cast<double>(i));
    if (!d.certainly_le(i)) {
      accepted = false;
      out.base.degraded = out.base.degraded || !d.exact();
      break;
    }
  }
  // Acceptance is sound. Rejection only certifies infeasibility at
  // capacity (1 - epsilon); report Unknown per the type contract.
  out.base.verdict = accepted ? Verdict::Feasible : Verdict::Unknown;
  return out;
}

}  // namespace edfkit
