/// \file types.hpp
/// Common result/option types for every feasibility test in edfkit.
#pragma once

#include <cstdint>
#include <string>

#include "util/math.hpp"

namespace edfkit {

/// Outcome of a feasibility test.
enum class Verdict : std::uint8_t {
  Feasible,    ///< Provably schedulable under preemptive EDF.
  Infeasible,  ///< Provably unschedulable (a demand overflow exists).
  Unknown,     ///< Test gave up (sufficient test failed to accept, or a
               ///< resource limit such as a level cap was hit).
};

[[nodiscard]] const char* to_string(Verdict v) noexcept;

/// Per-run instrumentation + verdict. `iterations` counts test intervals
/// at which a demand/capacity comparison was made (the paper's metric,
/// §5); `revisions` counts per-task approximation withdrawals (inner-loop
/// work of the new tests). `effort()` is what the figures plot.
struct FeasibilityResult {
  Verdict verdict = Verdict::Unknown;
  std::uint64_t iterations = 0;
  std::uint64_t revisions = 0;
  /// Largest interval examined (diagnostic).
  Time max_interval_tested = 0;
  /// For Infeasible: an interval I with dbf(I) > I. -1 otherwise.
  Time witness = -1;
  /// For the dynamic test: the final superposition level reached.
  Time final_level = 0;
  /// Set when exact rational arithmetic degraded and a conservative
  /// fallback path ran (verdicts remain sound; see DESIGN.md §3).
  bool degraded = false;
  /// Set when the test observed a cooperative stop token and returned
  /// early (verdict is then Unknown) — portfolio losers report this.
  bool cancelled = false;

  [[nodiscard]] std::uint64_t effort() const noexcept {
    return iterations + revisions;
  }
  [[nodiscard]] bool feasible() const noexcept {
    return verdict == Verdict::Feasible;
  }
  [[nodiscard]] bool infeasible() const noexcept {
    return verdict == Verdict::Infeasible;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Helpers for composing results.
[[nodiscard]] FeasibilityResult make_verdict(Verdict v) noexcept;

}  // namespace edfkit
