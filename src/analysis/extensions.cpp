#include "analysis/extensions.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/utilization.hpp"
#include "demand/dbf.hpp"
#include "demand/intervals.hpp"

namespace edfkit {

TaskSet with_context_switch_cost(const TaskSet& ts, Time switch_cost) {
  if (switch_cost < 0)
    throw std::invalid_argument("with_context_switch_cost: negative cost");
  TaskSet out;
  for (Task t : ts) {
    t.wcet = add_saturating(t.wcet, mul_saturating(2, switch_cost));
    out.add(std::move(t));
  }
  return out;
}

TaskSet with_self_suspension(const TaskSet& ts,
                             std::span<const Time> suspension) {
  if (suspension.size() != ts.size())
    throw std::invalid_argument("with_self_suspension: size mismatch");
  TaskSet out;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    Task t = ts[i];
    if (suspension[i] < 0)
      throw std::invalid_argument("with_self_suspension: negative term");
    t.jitter = add_saturating(t.jitter, suspension[i]);
    if (t.jitter >= t.deadline) {
      throw std::invalid_argument(
          "with_self_suspension: suspension consumes the whole deadline of " +
          t.to_string());
    }
    out.add(std::move(t));
  }
  return out;
}

FeasibilityResult srp_blocking_test(const TaskSet& ts,
                                    std::span<const Time> critical) {
  if (critical.size() != ts.size())
    throw std::invalid_argument("srp_blocking_test: size mismatch");
  for (const Time c : critical) {
    if (c < 0) throw std::invalid_argument("srp_blocking_test: negative cs");
  }
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    return r;
  }

  // B(I) is a non-increasing step function of I: precompute the tasks
  // sorted by deadline so the max over {D_j > I} can be maintained as a
  // suffix maximum while I sweeps upward.
  const auto& order = ts.by_deadline();
  const std::size_t n = order.size();
  std::vector<Time> suffix_max(n + 1, 0);
  for (std::size_t k = n; k-- > 0;) {
    suffix_max[k] =
        std::max(suffix_max[k + 1], critical[order[k]]);
  }
  auto blocking_at = [&](Time interval) {
    // First k with D_{order[k]} > interval (deadlines ascending).
    std::size_t lo = 0, hi = n;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (ts[order[mid]].effective_deadline() > interval) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return suffix_max[lo];
  };

  // Test bound. The George envelope argument extends verbatim to a
  // constant blocking term: any interval with dbf(I) + B(I) > I has
  // dbf(I) + Bmax > I, hence I < (Sigma(1-D/T)C + Bmax)/(1-U). That
  // extended numerator is exactly George's bound of the set augmented
  // with a virtual one-shot task of WCET Bmax (one-shots contribute C to
  // the numerator and 0 to U). The hyperperiod bound also remains valid:
  // B is non-increasing, so the H-periodicity argument carries the
  // blocked criterion past lcm(T) + Dmax.
  const Time bmax = suffix_max[0];
  Time bound;
  if (bmax == 0) {
    bound = default_test_bound(ts);
  } else {
    TaskSet augmented = ts;
    Task virtual_blocker;
    virtual_blocker.wcet = bmax;
    virtual_blocker.deadline = 1;
    virtual_blocker.period = kTimeInfinity;
    augmented.add(std::move(virtual_blocker));
    const auto ext = george_bound(augmented);
    const Time hyper = hyperperiod_bound(ts);
    bound = ext ? std::min(*ext, hyper) : hyper;
    if (is_time_infinite(bound)) {
      r.verdict = Verdict::Unknown;  // no certifiable bound (U ~ 1 and
      return r;                      // unbounded hyperperiod)
    }
  }
  TestList list;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Time d0 = ts[i].effective_deadline();
    if (d0 <= bound) list.add(i, d0);
  }
  Time demand = 0;
  while (!list.empty()) {
    const Time point = list.peek().interval;
    while (!list.empty() && list.peek().interval == point) {
      const auto e = list.pop();
      demand = add_saturating(demand, ts[e.task].wcet);
      const Time nxt = ts[e.task].next_deadline_after(point);
      if (nxt <= bound && !is_time_infinite(nxt)) list.add(e.task, nxt);
    }
    ++r.iterations;
    r.max_interval_tested = point;
    if (add_saturating(demand, blocking_at(point)) > point) {
      r.verdict = Verdict::Infeasible;
      r.witness = point;
      return r;
    }
  }
  r.verdict = Verdict::Feasible;
  return r;
}

}  // namespace edfkit
