#include "analysis/devi.hpp"

#include <algorithm>
#include <span>

#include "analysis/utilization.hpp"
#include "util/fixedpoint.hpp"

namespace edfkit {
namespace {

/// Exact-rational evaluation of Devi's k-th condition, used only when
/// the fixed-point bounds are ambiguous (equality-grade margins).
Ordering devi_condition_exact(const TaskSet& ts,
                              std::span<const std::size_t> prefix, Time dk) {
  Rational a;
  Rational b;
  for (const std::size_t idx : prefix) {
    const Task& t = ts[idx];
    a += t.utilization();
    const Time gap = t.period - std::min(t.period, t.effective_deadline());
    if (gap > 0 && !is_time_infinite(t.period)) {
      b += Rational(gap, t.period) * Rational(t.wcet);
    } else if (is_time_infinite(t.period)) {
      b += Rational(t.wcet);  // gap/T -> 1 as T -> inf
    }
  }
  const Rational lhs = a * Rational(dk) + b;
  return lhs.compare(dk);
}

}  // namespace

FeasibilityResult devi_test(const TaskSet& ts) {
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    r.iterations = 1;
    return r;
  }

  // Certified prefix sums over tasks sorted by non-decreasing deadline:
  //   A = Sigma C_i/T_i,  B = Sigma C_i * (T_i - min(T_i, D_i)) / T_i.
  // Condition per k (multiplied by D_k):  A * D_k + B <= D_k.
  ScaledPair a;
  ScaledPair b;
  const auto& order = ts.by_deadline();
  for (std::size_t k = 0; k < order.size(); ++k) {
    const Task& t = ts[order[k]];
    const Time d = t.effective_deadline();
    if (is_time_infinite(t.period)) {
      // One-shot: utilization 0, envelope offset C (gap/T -> 1).
      b += scale_integer(t.wcet);
    } else {
      a += scale_fraction(t.wcet, t.period);
      const Time gap = t.period - std::min(t.period, d);
      if (gap > 0) {
        b += scale_fraction(static_cast<Int128>(gap) * t.wcet, t.period);
      }
    }
    ++r.iterations;
    r.max_interval_tested = std::max(r.max_interval_tested, d);

    ScaledPair lhs{a.lo * d + b.lo, a.hi * d + b.hi};
    ScaledCompare cmp = compare_scaled(lhs, d);
    if (cmp == ScaledCompare::Ambiguous) {
      // Margin below 2^-62 per task: settle it with exact rationals.
      const Ordering exact = devi_condition_exact(
          ts, std::span<const std::size_t>(order.data(), k + 1), d);
      if (exact == Ordering::Less || exact == Ordering::Equal) {
        cmp = ScaledCompare::LessOrEqual;
      } else if (exact == Ordering::Greater) {
        cmp = ScaledCompare::Greater;
      } else {
        r.degraded = true;  // rationals overflowed too: reject (sufficient
        cmp = ScaledCompare::Greater;  // test, so rejection is always safe)
      }
    }
    if (cmp == ScaledCompare::Greater) {
      r.verdict = Verdict::Unknown;
      return r;
    }
  }
  r.verdict = Verdict::Feasible;
  return r;
}

}  // namespace edfkit
