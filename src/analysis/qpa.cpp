#include "analysis/qpa.hpp"

#include <algorithm>

#include "analysis/bounds.hpp"
#include "analysis/utilization.hpp"
#include "demand/task_view.hpp"

namespace edfkit {

FeasibilityResult qpa_test(const TaskSet& ts, const std::atomic<bool>* stop) {
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    return r;
  }
  const Time bound = default_test_bound(ts);
  const Time dmin = ts.min_deadline();

  // Each loop step is two dense passes over the flat columns (one dbf
  // evaluation, one predecessor-deadline scan) instead of Task-struct
  // walks.
  const TaskColumns cols(ts.tasks());
  Time t = columns_max_deadline_below(cols, add_saturating(bound, 1));
  if (t < 0) {
    // No deadline inside the bound: nothing can overflow.
    r.verdict = Verdict::Feasible;
    return r;
  }
  r.max_interval_tested = t;
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      r.verdict = Verdict::Unknown;
      r.cancelled = true;
      return r;
    }
    ++r.iterations;
    const Time h = columns_dbf(cols, t);
    if (h > t) {
      r.verdict = Verdict::Infeasible;
      r.witness = t;
      return r;
    }
    if (h <= dmin) break;
    t = (h < t) ? h : columns_max_deadline_below(cols, t);
    if (t < dmin) break;  // passed below every deadline
  }
  r.verdict = Verdict::Feasible;
  return r;
}

}  // namespace edfkit
