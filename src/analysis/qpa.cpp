#include "analysis/qpa.hpp"

#include <algorithm>

#include "analysis/bounds.hpp"
#include "analysis/utilization.hpp"
#include "demand/dbf.hpp"

namespace edfkit {
namespace {

/// Largest absolute job deadline strictly below `x`, or -1 if none.
Time max_deadline_below(const TaskSet& ts, Time x) {
  Time best = -1;
  for (const Task& t : ts) {
    const Time d = t.effective_deadline();
    if (x <= d) continue;
    Time cand;
    if (is_time_infinite(t.period)) {
      cand = d;
    } else {
      // Largest k with k*T + d < x  =>  k = floor((x - d - 1)/T).
      const Time k = floor_div(x - d - 1, t.period);
      cand = add_saturating(mul_saturating(k, t.period), d);
    }
    best = std::max(best, cand);
  }
  return best;
}

}  // namespace

FeasibilityResult qpa_test(const TaskSet& ts) {
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    return r;
  }
  const Time bound = default_test_bound(ts);
  const Time dmin = ts.min_deadline();

  Time t = max_deadline_below(ts, add_saturating(bound, 1));
  if (t < 0) {
    // No deadline inside the bound: nothing can overflow.
    r.verdict = Verdict::Feasible;
    return r;
  }
  r.max_interval_tested = t;
  while (true) {
    ++r.iterations;
    const Time h = dbf(ts, t);
    if (h > t) {
      r.verdict = Verdict::Infeasible;
      r.witness = t;
      return r;
    }
    if (h <= dmin) break;
    t = (h < t) ? h : max_deadline_below(ts, t);
    if (t < dmin) break;  // passed below every deadline
  }
  r.verdict = Verdict::Feasible;
  return r;
}

}  // namespace edfkit
