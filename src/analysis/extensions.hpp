/// \file extensions.hpp
/// The "practical relevant issues" of Devi's test that paper §3.5 says
/// carry over to the superposition framework: context-switch overhead,
/// blocking under a priority-ceiling protocol (SRP for EDF), and
/// self-suspension. The first and third are pure model transformations —
/// after them, *every* test in edfkit applies unchanged, including the
/// paper's new exact tests. Blocking changes the feasibility condition
/// itself (dbf(I) + B(I) <= I) and comes as a dedicated test.
#pragma once

#include <optional>
#include <span>

#include "analysis/types.hpp"
#include "model/task_set.hpp"

namespace edfkit {

/// Charge every job two context switches (dispatch + completion), the
/// classic way to fold scheduler overhead into the analysis: C' = C + 2s.
/// \pre switch_cost >= 0. Tasks whose inflated WCET exceeds the deadline
/// remain legal inputs (the tests will simply find them infeasible).
[[nodiscard]] TaskSet with_context_switch_cost(const TaskSet& ts,
                                               Time switch_cost);

/// Fold worst-case self-suspension into release jitter: a job that may
/// suspend itself for up to `suspension[i]` behaves (for the demand
/// test) like one released that much later with the same absolute
/// deadline, i.e. J' = J + suspension. \pre suspension.size() == ts.size()
/// \throws std::invalid_argument if any J' >= D (no schedulable jobs left).
[[nodiscard]] TaskSet with_self_suspension(const TaskSet& ts,
                                           std::span<const Time> suspension);

/// EDF + Stack Resource Policy blocking test: with `critical[i]` the
/// longest critical section of task i (0 = takes no resources), the set
/// is schedulable iff U <= 1 and for every interval I
///     dbf(I) + B(I) <= I,   B(I) = max{ critical[j] : D_j > I }
/// (a job with a later deadline can block the bus for at most one
/// critical section). Exact under the stated blocking model.
/// \pre critical.size() == ts.size(), all entries >= 0
[[nodiscard]] FeasibilityResult srp_blocking_test(
    const TaskSet& ts, std::span<const Time> critical);

}  // namespace edfkit
