/// \file edf_sim.hpp
/// Discrete-event preemptive EDF uniprocessor simulator.
///
/// Simulates the synchronous periodic arrival pattern (every task
/// releases at 0, T, 2T, ...), which is the worst case the demand-bound
/// criterion is built on — so the simulator doubles as an independent
/// *oracle* for the analytical tests (see sim/oracle.hpp).
///
/// Scheduling: preemptive EDF, ties broken by task index (deterministic).
/// Events are job releases, job completions, and the horizon; deadline
/// misses are detected at the exact deadline instant.
#pragma once

#include <cstdint>
#include <vector>

#include "model/task_set.hpp"
#include "sim/trace.hpp"

namespace edfkit {

struct SimConfig {
  Time horizon = 0;              ///< simulate [0, horizon)
  bool stop_at_first_miss = true;
  bool record_trace = false;     ///< keep execution slices (memory!)
  /// Per-task initial release offsets (phases phi_i). Empty = synchronous
  /// (all zero). When set, size must equal the task-set size.
  std::vector<Time> offsets;
};

struct SimResult {
  bool deadline_missed = false;
  Time first_miss = -1;          ///< the missed absolute deadline
  Time idle_time = 0;
  std::uint64_t completed_jobs = 0;
  std::uint64_t released_jobs = 0;
  std::uint64_t preemptions = 0;
  ScheduleTrace trace;           ///< populated iff record_trace
};

/// Run the simulation. \pre cfg.horizon > 0
[[nodiscard]] SimResult simulate_edf(const TaskSet& ts, const SimConfig& cfg);

}  // namespace edfkit
