/// \file edf_sim.hpp
/// Discrete-event preemptive EDF simulator (uniprocessor and global
/// multiprocessor).
///
/// Simulates the synchronous periodic arrival pattern (every task
/// releases at 0, T, 2T, ...). On a uniprocessor that pattern is the
/// worst case the demand-bound criterion is built on, so the simulator
/// doubles as an independent *oracle* for the analytical tests (see
/// sim/oracle.hpp). With `processors = m > 1` it runs *global* EDF —
/// the m earliest-deadline ready jobs execute, with full migration —
/// and serves as the cross-validation oracle for the multiprocessor
/// test ladder (src/analysis/multi/): synchronous periodic release is a
/// legal sporadic arrival sequence, so any miss it finds refutes every
/// sufficient schedulability test that accepted the set. (Synchronous
/// release is NOT the sporadic worst case under global EDF, so the
/// no-miss direction is only exact for the periodic interpretation;
/// sim/oracle.hpp documents the exact semantics.)
///
/// Scheduling: preemptive EDF, ties broken by task index then job index
/// (deterministic, independent of m). Events are job releases, job
/// completions, deadline instants, and the horizon; deadline misses are
/// detected at the exact deadline instant.
#pragma once

#include <cstdint>
#include <vector>

#include "model/task_set.hpp"
#include "sim/trace.hpp"

namespace edfkit {

struct SimConfig {
  Time horizon = 0;              ///< simulate [0, horizon)
  std::uint32_t processors = 1;  ///< m identical processors (global EDF)
  bool stop_at_first_miss = true;
  bool record_trace = false;     ///< keep execution slices (memory!)
  /// Per-task initial release offsets (phases phi_i). Empty = synchronous
  /// (all zero). When set, size must equal the task-set size.
  std::vector<Time> offsets;
};

struct SimResult {
  bool deadline_missed = false;
  Time first_miss = -1;          ///< the missed absolute deadline
  Time idle_time = 0;            ///< summed over processors when m > 1
  std::uint64_t completed_jobs = 0;
  std::uint64_t released_jobs = 0;
  std::uint64_t preemptions = 0;
  ScheduleTrace trace;           ///< populated iff record_trace
};

/// Run the simulation. \pre cfg.horizon > 0
[[nodiscard]] SimResult simulate_edf(const TaskSet& ts, const SimConfig& cfg);

}  // namespace edfkit
