/// \file async.hpp
/// The asynchronous case (paper §2): tasks with initial release offsets
/// (phases). The synchronous analysis remains a *sufficient* test — the
/// synchronous pattern maximizes demand — "a common assumption which
/// also leads to a sufficient test for the asynchronous case [14]".
/// When the synchronous test rejects, the exact asynchronous question is
/// decided by simulation over [0, max phi + 2*lcm(T)] (Leung & Merrill /
/// Baruah-Howell-Rosier window for periodic EDF), when tractable.
#pragma once

#include <vector>

#include "analysis/types.hpp"
#include "model/task_set.hpp"

namespace edfkit {

/// A periodic task system with per-task phases.
struct AsyncTaskSet {
  TaskSet tasks;
  std::vector<Time> offsets;  ///< phi_i >= 0, one per task

  void validate() const;
  [[nodiscard]] Time max_offset() const;
};

struct AsyncOptions {
  /// Refuse simulation horizons beyond this (the exact asynchronous
  /// window is max phi + 2H, which explodes for co-prime periods).
  Time max_horizon = 50'000'000;
};

/// Decide feasibility of the asynchronous system.
///  1. U > 1 -> Infeasible.
///  2. Synchronous exact test accepts -> Feasible (offsets only remove
///     demand; §2's sufficiency direction).
///  3. Otherwise simulate [0, max phi + 2H): exact when tractable,
///     Unknown when the window exceeds max_horizon.
[[nodiscard]] FeasibilityResult async_feasibility(
    const AsyncTaskSet& ats, const AsyncOptions& opts = {});

/// The synchronous-reduction sufficient test alone (drops offsets).
[[nodiscard]] FeasibilityResult async_sufficient_test(
    const AsyncTaskSet& ats);

}  // namespace edfkit
