#include "sim/async.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/utilization.hpp"
#include "core/all_approx.hpp"
#include "sim/edf_sim.hpp"

namespace edfkit {

void AsyncTaskSet::validate() const {
  tasks.validate();
  if (offsets.size() != tasks.size())
    throw std::invalid_argument("AsyncTaskSet: offsets size mismatch");
  for (const Time phi : offsets) {
    if (phi < 0 || is_time_infinite(phi))
      throw std::invalid_argument("AsyncTaskSet: offset out of range");
  }
}

Time AsyncTaskSet::max_offset() const {
  Time m = 0;
  for (const Time phi : offsets) m = std::max(m, phi);
  return m;
}

FeasibilityResult async_sufficient_test(const AsyncTaskSet& ats) {
  ats.validate();
  FeasibilityResult r = all_approx_test(ats.tasks);
  if (r.verdict == Verdict::Infeasible) {
    // The synchronous pattern need not occur with these offsets: the
    // rejection proves nothing about the asynchronous system.
    r.verdict = Verdict::Unknown;
    r.witness = -1;
  }
  return r;
}

FeasibilityResult async_feasibility(const AsyncTaskSet& ats,
                                    const AsyncOptions& opts) {
  ats.validate();
  FeasibilityResult r;
  if (ats.tasks.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ats.tasks)) {
    // Long-run demand exceeds capacity regardless of phasing.
    r.verdict = Verdict::Infeasible;
    return r;
  }
  // Stage 1: synchronous sufficiency.
  const FeasibilityResult sync = async_sufficient_test(ats);
  if (sync.verdict == Verdict::Feasible) return sync;

  // Stage 2: exact simulation window [0, max phi + 2H).
  const Time hyper = ats.tasks.hyperperiod();
  const Time window = add_saturating(
      ats.max_offset(),
      add_saturating(mul_saturating(2, hyper), ats.tasks.max_deadline()));
  if (is_time_infinite(window) || window > opts.max_horizon) {
    r = sync;  // Unknown, carrying the synchronous effort numbers
    return r;
  }
  SimConfig sc;
  sc.horizon = window;
  sc.offsets = ats.offsets;
  sc.stop_at_first_miss = true;
  const SimResult sim = simulate_edf(ats.tasks, sc);
  r.iterations = sync.iterations + sim.released_jobs;
  r.revisions = sync.revisions;
  r.max_interval_tested = window;
  if (sim.deadline_missed) {
    r.verdict = Verdict::Infeasible;
    r.witness = sim.first_miss;
  } else {
    r.verdict = Verdict::Feasible;
  }
  return r;
}

}  // namespace edfkit
