#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace edfkit {

void ScheduleTrace::add_slice(TraceSlice s) {
  if (s.end <= s.start)
    throw std::invalid_argument("ScheduleTrace: empty/negative slice");
  // Coalesce with the previous slice when the same job continues.
  if (!slices_.empty()) {
    TraceSlice& last = slices_.back();
    if (last.end == s.start && last.task == s.task && last.job == s.job) {
      last.end = s.end;
      return;
    }
  }
  slices_.push_back(s);
}

Time ScheduleTrace::busy_time() const noexcept {
  Time total = 0;
  for (const TraceSlice& s : slices_) total += s.end - s.start;
  return total;
}

Time ScheduleTrace::first_miss() const noexcept {
  Time best = -1;
  for (const JobRecord& j : jobs_) {
    if (!j.missed()) continue;
    const Time when =
        (j.completion < 0) ? j.absolute_deadline : j.absolute_deadline;
    if (best < 0 || when < best) best = when;
  }
  return best;
}

Time ScheduleTrace::worst_response(std::size_t task) const noexcept {
  Time worst = -1;
  for (const JobRecord& j : jobs_) {
    if (j.task != task || j.completion < 0) continue;
    worst = std::max(worst, j.response_time());
  }
  return worst;
}

std::string ScheduleTrace::render_ascii(std::size_t task_count,
                                        Time horizon) const {
  if (horizon <= 0 || horizon > 400) horizon = std::min<Time>(horizon, 400);
  std::ostringstream os;
  for (std::size_t t = 0; t < task_count; ++t) {
    std::string row(static_cast<std::size_t>(horizon), '.');
    for (const TraceSlice& s : slices_) {
      if (s.task != t) continue;
      for (Time x = s.start; x < std::min(s.end, horizon); ++x) {
        row[static_cast<std::size_t>(x)] = '#';
      }
    }
    os << "task" << t << " |" << row << "|\n";
  }
  return os.str();
}

}  // namespace edfkit
