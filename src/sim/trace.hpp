/// \file trace.hpp
/// Schedule traces produced by the EDF simulator: execution slices,
/// deadline misses, and derived response-time statistics. Used by the
/// trace-inspector example and the oracle's diagnostics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace edfkit {

/// One contiguous execution slice of a job on the processor.
struct TraceSlice {
  Time start = 0;
  Time end = 0;           ///< exclusive
  std::size_t task = 0;   ///< task index in the simulated set
  Time job = 0;           ///< job index of that task (0-based)
};

/// A completed (or missed) job record.
struct JobRecord {
  std::size_t task = 0;
  Time job = 0;
  Time release = 0;
  Time absolute_deadline = 0;
  Time completion = -1;   ///< -1 if unfinished at horizon
  [[nodiscard]] bool missed() const noexcept {
    return completion < 0 || completion > absolute_deadline;
  }
  [[nodiscard]] Time response_time() const noexcept {
    return (completion < 0) ? -1 : completion - release;
  }
};

/// Full simulation trace.
class ScheduleTrace {
 public:
  void add_slice(TraceSlice s);
  void add_job(JobRecord j) { jobs_.push_back(j); }

  [[nodiscard]] const std::vector<TraceSlice>& slices() const noexcept {
    return slices_;
  }
  [[nodiscard]] const std::vector<JobRecord>& jobs() const noexcept {
    return jobs_;
  }

  /// Total busy time in the trace.
  [[nodiscard]] Time busy_time() const noexcept;
  /// First deadline miss time, or -1.
  [[nodiscard]] Time first_miss() const noexcept;
  /// Worst observed response time of a task, or -1 if it never completed.
  [[nodiscard]] Time worst_response(std::size_t task) const noexcept;

  /// Gantt-ish ASCII rendering (for small horizons), one row per task.
  [[nodiscard]] std::string render_ascii(std::size_t task_count,
                                         Time horizon) const;

 private:
  std::vector<TraceSlice> slices_;
  std::vector<JobRecord> jobs_;
};

}  // namespace edfkit
