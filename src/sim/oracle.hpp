/// \file oracle.hpp
/// Simulation-based feasibility oracle.
///
/// For a synchronous periodic task set with U <= 1 the demand-bound
/// criterion only needs intervals up to hyperperiod + D_max (dbf is
/// H-periodic above D_max), and EDF is optimal — so simulating the
/// synchronous pattern over [0, H + D_max) decides feasibility *exactly*.
/// The oracle refuses (returns Unknown) when that horizon is too large to
/// simulate; it exists to cross-validate the analytical tests on small
/// sets, not to replace them.
#pragma once

#include "analysis/types.hpp"
#include "model/task_set.hpp"
#include "sim/edf_sim.hpp"

namespace edfkit {

struct OracleConfig {
  /// Refuse horizons longer than this many ticks.
  Time max_horizon = 50'000'000;
};

/// Exact feasibility by exhaustive simulation (when tractable).
[[nodiscard]] FeasibilityResult simulate_feasibility(
    const TaskSet& ts, const OracleConfig& cfg = {});

/// Global-EDF schedulability on m identical processors by exhaustive
/// simulation of the synchronous periodic pattern. Semantics differ
/// from the uniprocessor oracle because global EDF has no tractable
/// worst-case arrival pattern:
///
/// - Infeasible (+ witness): the simulation missed a deadline.
///   Synchronous periodic release is a legal sporadic arrival sequence,
///   so this soundly refutes global-EDF schedulability of the sporadic
///   set — every *sufficient* test must reject too.
/// - Feasible: no miss over [0, hyperperiod + D_max) with all deadlines
///   constrained (D_i <= T_i) and zero jitter. Constrained deadlines
///   mean every job released in [0, H) has its deadline at or before
///   H + D_max and completed on time, so the system state at H equals
///   the (empty) state at 0 and the deterministic schedule is
///   H-periodic: the synchronous periodic interpretation never misses.
///   This is exact *for that periodic interpretation* — the documented
///   semantics of the `gbl-sim` ladder rung — not a sporadic guarantee.
/// - Unknown: the horizon is intractable, deadlines are unconstrained,
///   or jitter is present (only the no-miss direction degrades; misses
///   still return Infeasible).
///
/// m == 1 falls back to simulate_feasibility (fully exact).
[[nodiscard]] FeasibilityResult simulate_global_feasibility(
    const TaskSet& ts, std::uint32_t processors,
    const OracleConfig& cfg = {});

}  // namespace edfkit
