/// \file oracle.hpp
/// Simulation-based feasibility oracle.
///
/// For a synchronous periodic task set with U <= 1 the demand-bound
/// criterion only needs intervals up to hyperperiod + D_max (dbf is
/// H-periodic above D_max), and EDF is optimal — so simulating the
/// synchronous pattern over [0, H + D_max) decides feasibility *exactly*.
/// The oracle refuses (returns Unknown) when that horizon is too large to
/// simulate; it exists to cross-validate the analytical tests on small
/// sets, not to replace them.
#pragma once

#include "analysis/types.hpp"
#include "model/task_set.hpp"
#include "sim/edf_sim.hpp"

namespace edfkit {

struct OracleConfig {
  /// Refuse horizons longer than this many ticks.
  Time max_horizon = 50'000'000;
};

/// Exact feasibility by exhaustive simulation (when tractable).
[[nodiscard]] FeasibilityResult simulate_feasibility(
    const TaskSet& ts, const OracleConfig& cfg = {});

}  // namespace edfkit
