#include "sim/edf_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace edfkit {
namespace {

struct ActiveJob {
  Time abs_deadline = 0;
  std::size_t task = 0;
  Time job = 0;
  Time remaining = 0;
  Time release = 0;

  /// EDF order: earliest deadline first; ties by task then job index so
  /// runs are deterministic.
  [[nodiscard]] bool operator>(const ActiveJob& o) const noexcept {
    if (abs_deadline != o.abs_deadline) return abs_deadline > o.abs_deadline;
    if (task != o.task) return task > o.task;
    return job > o.job;
  }
};

struct Release {
  Time when = 0;
  std::size_t task = 0;
  [[nodiscard]] bool operator>(const Release& o) const noexcept {
    if (when != o.when) return when > o.when;
    return task > o.task;
  }
};

/// Global-EDF simulation on m >= 2 identical processors. The m
/// earliest-deadline ready jobs run (full migration, no affinity); ties
/// follow the same (deadline, task, job) order as the uniprocessor
/// path, so runs stay deterministic. Event instants are releases,
/// completions, the horizon, and the earliest pending deadline of any
/// incomplete job — the latter so misses are detected at the exact
/// deadline instant even for jobs waiting behind m earlier-deadline
/// runners (which cannot happen on a uniprocessor but is the common
/// miss mode under global EDF).
SimResult simulate_gedf(const TaskSet& ts, const SimConfig& cfg) {
  const std::uint32_t m = cfg.processors;
  SimResult res;

  std::priority_queue<Release, std::vector<Release>, std::greater<>> releases;
  std::vector<Time> job_counter(ts.size(), 0);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Time phi = cfg.offsets.empty() ? 0 : cfg.offsets[i];
    if (phi < 0) throw std::invalid_argument("simulate_edf: negative offset");
    if (phi < cfg.horizon) releases.push(Release{phi, i});
  }

  std::priority_queue<ActiveJob, std::vector<ActiveJob>, std::greater<>> ready;
  std::vector<ActiveJob> running;  // <= m entries, unordered
  running.reserve(m);
  Time now = 0;

  auto pop_due_releases = [&](Time t) {
    while (!releases.empty() && releases.top().when <= t) {
      const Release rel = releases.top();
      releases.pop();
      const Task& task = ts[rel.task];
      ActiveJob j;
      j.task = rel.task;
      j.job = job_counter[rel.task]++;
      j.release = rel.when;
      j.abs_deadline = rel.when + task.effective_deadline() + task.jitter;
      j.remaining = task.wcet;
      ready.push(j);
      ++res.released_jobs;
      if (!is_time_infinite(task.period)) {
        const Time nxt = add_saturating(rel.when, task.period);
        if (nxt < cfg.horizon) releases.push(Release{nxt, rel.task});
      }
    }
  };

  auto record_job = [&](const ActiveJob& j, Time completion) {
    ++res.completed_jobs;
    if (cfg.record_trace) {
      JobRecord rec;
      rec.task = j.task;
      rec.job = j.job;
      rec.release = j.release;
      rec.absolute_deadline = j.abs_deadline;
      rec.completion = completion;
      res.trace.add_job(rec);
    }
    if (completion > j.abs_deadline &&
        (!res.deadline_missed || j.abs_deadline < res.first_miss)) {
      res.deadline_missed = true;
      res.first_miss = j.abs_deadline;
    }
  };

  auto note_miss = [&](Time deadline) {
    if (!res.deadline_missed || deadline < res.first_miss) {
      res.deadline_missed = true;
      res.first_miss = deadline;
    }
  };

  pop_due_releases(0);
  while (now < cfg.horizon) {
    // Dispatch: fill free processors with the earliest-deadline ready
    // jobs. The ready queue is EDF-ordered, so this is globally EDF.
    while (running.size() < m && !ready.empty()) {
      running.push_back(ready.top());
      ready.pop();
    }

    // Misses at the current instant: a job (running or waiting) whose
    // deadline has arrived with work left has missed. The running check
    // matters because EDF keeps executing a tardy job; the waiting
    // check matters because m earlier-deadline jobs can starve it.
    for (const ActiveJob& j : running)
      if (j.remaining > 0 && j.abs_deadline <= now) note_miss(j.abs_deadline);
    if (!ready.empty() && ready.top().abs_deadline <= now)
      note_miss(ready.top().abs_deadline);
    if (res.deadline_missed && cfg.stop_at_first_miss) return res;

    if (running.empty()) {
      // All processors idle until the next release (or horizon).
      const Time next_rel =
          releases.empty() ? cfg.horizon : releases.top().when;
      const Time until = std::min(next_rel, cfg.horizon);
      res.idle_time += static_cast<Time>(m) * (until - now);
      now = until;
      if (now >= cfg.horizon) break;
      pop_due_releases(now);
      continue;
    }

    // Next event: earliest completion, next release, horizon, or the
    // earliest still-future deadline of an incomplete job (deadlines
    // already <= now belong to missed jobs that keep executing).
    Time until = cfg.horizon;
    if (!releases.empty()) until = std::min(until, releases.top().when);
    for (const ActiveJob& j : running) {
      until = std::min(until, now + j.remaining);
      if (j.abs_deadline > now) until = std::min(until, j.abs_deadline);
    }
    if (!ready.empty() && ready.top().abs_deadline > now)
      until = std::min(until, ready.top().abs_deadline);

    if (until > now) {
      const Time dt = until - now;
      for (ActiveJob& j : running) {
        if (cfg.record_trace)
          res.trace.add_slice(TraceSlice{now, until, j.task, j.job});
        j.remaining -= dt;
      }
      res.idle_time +=
          static_cast<Time>(m - running.size()) * dt;
      now = until;
    }

    // Completions, retired in EDF order so trace/job records are
    // deterministic regardless of the running vector's layout.
    std::sort(running.begin(), running.end(),
              [](const ActiveJob& a, const ActiveJob& b) { return b > a; });
    std::size_t keep = 0;
    for (std::size_t i = 0; i < running.size(); ++i) {
      if (running[i].remaining == 0) {
        record_job(running[i], now);
      } else {
        running[keep++] = running[i];
      }
    }
    running.resize(keep);
    if (res.deadline_missed && cfg.stop_at_first_miss) return res;

    if (now >= cfg.horizon) break;
    pop_due_releases(now);

    // Dispatch newly released work onto free processors NOW, so that a
    // simultaneous batch of releases contends at one EDF instant. (If
    // this waited for the top-of-loop dispatch, the preemption pass
    // below — which needs every processor busy — would be skipped and
    // an earlier-deadline arrival could sit behind a later-deadline
    // runner until the next event: not EDF.)
    while (running.size() < m && !ready.empty()) {
      running.push_back(ready.top());
      ready.pop();
    }

    // Preemption: while some ready job beats the latest-deadline runner
    // and all processors are busy, displace it.
    while (running.size() == m && !ready.empty()) {
      std::size_t worst = 0;
      for (std::size_t i = 1; i < running.size(); ++i)
        if (running[i] > running[worst]) worst = i;
      if (!(running[worst] > ready.top())) break;
      ActiveJob next = ready.top();
      ready.pop();
      ready.push(running[worst]);
      running[worst] = next;
      ++res.preemptions;
    }
  }

  // Horizon reached: anything still pending whose deadline is within
  // the horizon has missed.
  auto flush_miss = [&](const ActiveJob& j) {
    if (j.remaining > 0 && j.abs_deadline <= cfg.horizon)
      note_miss(j.abs_deadline);
  };
  for (const ActiveJob& j : running) flush_miss(j);
  while (!ready.empty()) {
    flush_miss(ready.top());
    ready.pop();
  }
  return res;
}

}  // namespace

SimResult simulate_edf(const TaskSet& ts, const SimConfig& cfg) {
  if (cfg.horizon <= 0)
    throw std::invalid_argument("simulate_edf: horizon <= 0");
  if (!cfg.offsets.empty() && cfg.offsets.size() != ts.size())
    throw std::invalid_argument("simulate_edf: offsets size mismatch");
  if (cfg.processors == 0)
    throw std::invalid_argument("simulate_edf: processors == 0");
  if (cfg.processors > 1) return simulate_gedf(ts, cfg);
  SimResult res;

  std::priority_queue<Release, std::vector<Release>, std::greater<>> releases;
  std::vector<Time> job_counter(ts.size(), 0);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Time phi = cfg.offsets.empty() ? 0 : cfg.offsets[i];
    if (phi < 0) throw std::invalid_argument("simulate_edf: negative offset");
    if (phi < cfg.horizon) releases.push(Release{phi, i});
  }

  std::priority_queue<ActiveJob, std::vector<ActiveJob>, std::greater<>> ready;
  Time now = 0;
  bool have_current = false;
  ActiveJob current;

  auto pop_due_releases = [&](Time t) {
    while (!releases.empty() && releases.top().when <= t) {
      const Release rel = releases.top();
      releases.pop();
      const Task& task = ts[rel.task];
      ActiveJob j;
      j.task = rel.task;
      j.job = job_counter[rel.task]++;
      j.release = rel.when;
      j.abs_deadline = rel.when + task.effective_deadline() + task.jitter;
      j.remaining = task.wcet;
      ready.push(j);
      ++res.released_jobs;
      if (!is_time_infinite(task.period)) {
        const Time nxt = add_saturating(rel.when, task.period);
        if (nxt < cfg.horizon) releases.push(Release{nxt, rel.task});
      }
    }
  };

  auto record_job = [&](const ActiveJob& j, Time completion) {
    ++res.completed_jobs;
    if (cfg.record_trace) {
      JobRecord rec;
      rec.task = j.task;
      rec.job = j.job;
      rec.release = j.release;
      rec.absolute_deadline = j.abs_deadline;
      rec.completion = completion;
      res.trace.add_job(rec);
    }
    if (completion > j.abs_deadline && !res.deadline_missed) {
      res.deadline_missed = true;
      res.first_miss = j.abs_deadline;
    }
  };

  auto check_waiting_misses = [&](Time t) {
    // The running job has the earliest deadline, so if its deadline is
    // still ahead, nothing waiting can have missed either.
    if (have_current && current.remaining > 0 &&
        current.abs_deadline <= t) {
      if (!res.deadline_missed) {
        res.deadline_missed = true;
        res.first_miss = current.abs_deadline;
      }
    }
  };

  pop_due_releases(0);
  while (now < cfg.horizon) {
    if (!have_current) {
      if (!ready.empty()) {
        current = ready.top();
        ready.pop();
        have_current = true;
      } else {
        // Idle until the next release (or horizon).
        const Time next_rel =
            releases.empty() ? cfg.horizon : releases.top().when;
        const Time until = std::min(next_rel, cfg.horizon);
        res.idle_time += until - now;
        now = until;
        if (now >= cfg.horizon) break;
        pop_due_releases(now);
        continue;
      }
    }
    // Run `current` until completion, the next release, or the horizon.
    const Time next_rel = releases.empty()
                              ? cfg.horizon
                              : std::min(releases.top().when, cfg.horizon);
    const Time finish = now + current.remaining;
    const Time until = std::min({finish, next_rel, cfg.horizon});
    if (until > now) {
      if (cfg.record_trace) {
        res.trace.add_slice(
            TraceSlice{now, until, current.task, current.job});
      }
      current.remaining -= until - now;
      now = until;
    }
    if (current.remaining == 0) {
      record_job(current, now);
      have_current = false;
    }
    check_waiting_misses(now);
    if (res.deadline_missed && cfg.stop_at_first_miss) return res;

    if (now >= cfg.horizon) break;
    pop_due_releases(now);
    // Preemption: a newly released job with an earlier deadline displaces
    // the current one.
    if (have_current && !ready.empty() &&
        ready.top().abs_deadline < current.abs_deadline) {
      ActiveJob next = ready.top();
      ready.pop();
      ready.push(current);
      current = next;
      ++res.preemptions;
    }
  }

  // Horizon reached: anything still pending whose deadline is within the
  // horizon has missed.
  auto flush_miss = [&](const ActiveJob& j) {
    if (j.remaining > 0 && j.abs_deadline <= cfg.horizon) {
      if (!res.deadline_missed || j.abs_deadline < res.first_miss) {
        res.deadline_missed = true;
        res.first_miss = j.abs_deadline;
      }
    }
  };
  if (have_current) flush_miss(current);
  while (!ready.empty()) {
    flush_miss(ready.top());
    ready.pop();
  }
  return res;
}

}  // namespace edfkit
