#include "sim/oracle.hpp"

#include "analysis/bounds.hpp"
#include "analysis/utilization.hpp"

namespace edfkit {

FeasibilityResult simulate_feasibility(const TaskSet& ts,
                                       const OracleConfig& cfg) {
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    return r;
  }
  const Time horizon = hyperperiod_bound(ts);
  if (is_time_infinite(horizon) || horizon > cfg.max_horizon) {
    r.verdict = Verdict::Unknown;  // refuse: not tractable to simulate
    return r;
  }
  SimConfig sc;
  sc.horizon = horizon;
  sc.stop_at_first_miss = true;
  const SimResult sim = simulate_edf(ts, sc);
  r.iterations = sim.released_jobs;  // proxy for simulation effort
  r.max_interval_tested = horizon;
  if (sim.deadline_missed) {
    r.verdict = Verdict::Infeasible;
    r.witness = sim.first_miss;
  } else {
    r.verdict = Verdict::Feasible;
  }
  return r;
}

FeasibilityResult simulate_global_feasibility(const TaskSet& ts,
                                              std::uint32_t processors,
                                              const OracleConfig& cfg) {
  if (processors <= 1) return simulate_feasibility(ts, cfg);
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  // Capacity: U > m is infeasible on m unit-speed processors under any
  // scheduler. Inexact utilization degrades to Unknown, never a guess.
  const Rational& u = ts.utilization();
  if (u.certainly_gt(static_cast<Time>(processors))) {
    r.verdict = Verdict::Infeasible;
    return r;
  }
  if (!u.certainly_le(static_cast<Time>(processors))) {
    r.verdict = Verdict::Unknown;
    return r;
  }
  const Time horizon = hyperperiod_bound(ts);
  if (is_time_infinite(horizon) || horizon > cfg.max_horizon) {
    r.verdict = Verdict::Unknown;  // refuse: not tractable to simulate
    return r;
  }
  // The no-miss direction is only a proof when the schedule provably
  // repeats: constrained deadlines + zero jitter (see header).
  bool periodicity_holds = true;
  for (const Task& t : ts.tasks()) {
    if (t.jitter != 0 || t.deadline > t.period) {
      periodicity_holds = false;
      break;
    }
  }
  SimConfig sc;
  sc.horizon = horizon;
  sc.processors = processors;
  sc.stop_at_first_miss = true;
  const SimResult sim = simulate_edf(ts, sc);
  r.iterations = sim.released_jobs;  // proxy for simulation effort
  r.max_interval_tested = horizon;
  if (sim.deadline_missed) {
    r.verdict = Verdict::Infeasible;
    r.witness = sim.first_miss;
  } else {
    r.verdict = periodicity_holds ? Verdict::Feasible : Verdict::Unknown;
  }
  return r;
}

}  // namespace edfkit
