#include "sim/oracle.hpp"

#include "analysis/bounds.hpp"
#include "analysis/utilization.hpp"

namespace edfkit {

FeasibilityResult simulate_feasibility(const TaskSet& ts,
                                       const OracleConfig& cfg) {
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    return r;
  }
  const Time horizon = hyperperiod_bound(ts);
  if (is_time_infinite(horizon) || horizon > cfg.max_horizon) {
    r.verdict = Verdict::Unknown;  // refuse: not tractable to simulate
    return r;
  }
  SimConfig sc;
  sc.horizon = horizon;
  sc.stop_at_first_miss = true;
  const SimResult sim = simulate_edf(ts, sc);
  r.iterations = sim.released_jobs;  // proxy for simulation effort
  r.max_interval_tested = horizon;
  if (sim.deadline_missed) {
    r.verdict = Verdict::Infeasible;
    r.witness = sim.first_miss;
  } else {
    r.verdict = Verdict::Feasible;
  }
  return r;
}

}  // namespace edfkit
