/// \file arrival.hpp
/// Building the Fig. 4 curve approximations: demand curves of periodic
/// and bursty tasks, approximated by 2 or 3 straight line segments as the
/// real-time calculus literature proposes (§3.6).
///
/// Reconstruction notes (the paper gives figures, not formulas):
///   * Periodic task, 2 segments (Fig. 4a):
///       l1: y = C               (the first job, from I = 0)
///       l2: y = C + (C/T) * I   (long-run rate anchored at the origin)
///     This upper-bounds dbf and is "a bit worse than the test given by
///     Devi" — Devi's envelope C*(I - D + T)/T is lower by exactly
///     C*D/T >= 0, matching the paper's observation.
///   * Bursty task, 3 segments (Fig. 4b): an additional burst line with
///     slope C/delta (delta = intra-burst gap) between the constant lead
///     and the long-run rate.
#pragma once

#include "model/event_stream.hpp"
#include "model/task.hpp"
#include "rtc/curve.hpp"

namespace edfkit::rtc {

/// 2-segment RTC demand approximation of a periodic/sporadic task.
[[nodiscard]] ConcaveCurve rtc_demand_periodic(const Task& t);

/// 3-segment RTC demand approximation of a periodic burst: `burst_len`
/// events `inner_gap` apart every `period`, each with WCET `wcet` and
/// relative deadline `deadline`.
[[nodiscard]] ConcaveCurve rtc_demand_bursty(Time period, Time burst_len,
                                             Time inner_gap, Time wcet,
                                             Time deadline);

/// Devi's per-task demand envelope C*(I - D + T)/T (= SuperPos(1)'s
/// approximated branch), as a 1-line curve — for the §3.6 comparison.
[[nodiscard]] ConcaveCurve devi_demand_envelope(const Task& t);

}  // namespace edfkit::rtc
