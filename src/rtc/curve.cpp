#include "rtc/curve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace edfkit::rtc {

ConcaveCurve::ConcaveCurve(std::vector<AffineLine> lines)
    : lines_(std::move(lines)) {
  if (lines_.empty())
    throw std::invalid_argument("ConcaveCurve: no lines");
  simplify();
}

double ConcaveCurve::eval(double x) const {
  double best = std::numeric_limits<double>::infinity();
  for (const AffineLine& l : lines_) {
    best = std::min(best, l.offset + l.slope * x);
  }
  return best;
}

double ConcaveCurve::asymptotic_slope() const {
  double best = std::numeric_limits<double>::infinity();
  for (const AffineLine& l : lines_) best = std::min(best, l.slope);
  return best;
}

void ConcaveCurve::simplify() {
  // Sort by slope descending (steep lines dominate near 0); drop lines
  // that never form the lower envelope on x >= 0.
  std::sort(lines_.begin(), lines_.end(),
            [](const AffineLine& a, const AffineLine& b) {
              if (a.slope != b.slope) return a.slope > b.slope;
              return a.offset < b.offset;
            });
  std::vector<AffineLine> kept;
  for (const AffineLine& l : lines_) {
    // Equal slope: only the smallest offset survives (sorted first).
    if (!kept.empty() && kept.back().slope == l.slope) continue;
    // A line is useful iff it is strictly below the current envelope
    // somewhere on x >= 0. With slopes descending, line l beats the last
    // kept line for large x iff its value eventually dips below.
    while (!kept.empty()) {
      const AffineLine& p = kept.back();
      // Intersection of p and l: x* = (l.offset - p.offset)/(p.slope - l.slope)
      const double denom = p.slope - l.slope;
      const double xstar = (l.offset - p.offset) / denom;
      if (xstar <= 0.0) {
        // l is below p for all x > 0: p is dominated.
        kept.pop_back();
        continue;
      }
      // Check p is still useful against the line before it.
      if (kept.size() >= 2) {
        const AffineLine& q = kept[kept.size() - 2];
        const double xq = (p.offset - q.offset) / (q.slope - p.slope);
        if (xstar <= xq) {
          kept.pop_back();
          continue;
        }
      }
      break;
    }
    kept.push_back(l);
  }
  lines_ = std::move(kept);
}

std::vector<double> ConcaveCurve::breakpoints() const {
  std::vector<double> xs = {0.0};
  for (std::size_t i = 0; i + 1 < lines_.size(); ++i) {
    const AffineLine& a = lines_[i];
    const AffineLine& b = lines_[i + 1];
    const double denom = a.slope - b.slope;
    if (denom == 0.0) continue;
    const double x = (b.offset - a.offset) / denom;
    if (x > 0.0 && std::isfinite(x)) xs.push_back(x);
  }
  return xs;
}

std::string ConcaveCurve::to_string() const {
  std::ostringstream os;
  os << "min{";
  bool first = true;
  for (const AffineLine& l : lines_) {
    if (!first) os << ", ";
    os << l.offset << " + " << l.slope << "*I";
    first = false;
  }
  os << "}";
  return os.str();
}

double CurveSum::eval(double x) const {
  double s = 0.0;
  for (const ConcaveCurve& c : parts) s += c.eval(x);
  return s;
}

double CurveSum::asymptotic_slope() const {
  double s = 0.0;
  for (const ConcaveCurve& c : parts) s += c.asymptotic_slope();
  return s;
}

std::vector<double> CurveSum::breakpoints() const {
  std::vector<double> xs;
  for (const ConcaveCurve& c : parts) {
    const auto b = c.breakpoints();
    xs.insert(xs.end(), b.begin(), b.end());
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

bool CurveSum::below_capacity_line(double from) const {
  if (parts.empty()) return true;
  if (asymptotic_slope() > 1.0) return false;
  // Concave sum minus I is concave: its maximum over [from, inf) is
  // attained at `from`, at a breakpoint beyond it, or at infinity (the
  // slope condition above).
  if (eval(from) > from) return false;
  for (const double x : breakpoints()) {
    if (x <= from) continue;
    if (eval(x) > x) return false;
  }
  return true;
}

}  // namespace edfkit::rtc
