/// \file curve.hpp
/// Piecewise-linear curves for the real-time-calculus comparison of
/// paper §3.6 / Fig. 4.
///
/// Real-time calculus [6][7] describes demand and service by arrival and
/// service curves; to stay computable it approximates the (staircase)
/// curves by a small number of straight line segments. A concave upper
/// curve is represented here as the *minimum of affine lines*
/// y = offset + slope * x — the classic leaky-bucket form. Sums of such
/// curves are concave piecewise-linear; feasibility against the capacity
/// line beta(I) = I reduces to checks at the (finitely many) breakpoints
/// plus an asymptotic-slope condition.
#pragma once

#include <string>
#include <vector>

#include "util/math.hpp"

namespace edfkit::rtc {

/// One affine piece y = offset + slope * x (x >= 0).
struct AffineLine {
  double offset = 0.0;
  double slope = 0.0;
};

/// Concave upper curve: min over a non-empty set of affine lines.
class ConcaveCurve {
 public:
  ConcaveCurve() = default;
  explicit ConcaveCurve(std::vector<AffineLine> lines);

  [[nodiscard]] bool empty() const noexcept { return lines_.empty(); }
  [[nodiscard]] const std::vector<AffineLine>& lines() const noexcept {
    return lines_;
  }

  /// Evaluate min over lines at x. \pre !empty()
  [[nodiscard]] double eval(double x) const;

  /// Smallest asymptotic slope (the long-run rate).
  [[nodiscard]] double asymptotic_slope() const;

  /// x-coordinates where the active line changes (pairwise
  /// intersections of consecutive lines of the lower envelope), plus 0.
  [[nodiscard]] std::vector<double> breakpoints() const;

  /// Remove lines that are never the minimum (dominated pieces).
  void simplify();

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<AffineLine> lines_;
};

/// Pointwise sum of concave curves (stays concave). Breakpoints are the
/// union of the operands' breakpoints.
struct CurveSum {
  std::vector<ConcaveCurve> parts;

  void add(ConcaveCurve c) { parts.push_back(std::move(c)); }
  [[nodiscard]] double eval(double x) const;
  [[nodiscard]] double asymptotic_slope() const;
  [[nodiscard]] std::vector<double> breakpoints() const;

  /// True iff sum(I) <= I for all I >= `from` (checked at `from`, at the
  /// breakpoints beyond it, and via the asymptotic slope; exact for
  /// concave sums). Demand-envelope feasibility checks pass the smallest
  /// deadline as `from` — no demand exists in (0, Dmin), and the
  /// envelopes are positive there by construction.
  [[nodiscard]] bool below_capacity_line(double from = 0.0) const;
};

}  // namespace edfkit::rtc
