#include "rtc/arrival.hpp"

#include <stdexcept>

namespace edfkit::rtc {

ConcaveCurve rtc_demand_periodic(const Task& t) {
  const double c = static_cast<double>(t.wcet);
  if (is_time_infinite(t.period)) {
    return ConcaveCurve({AffineLine{c, 0.0}});
  }
  // Fig. 4a: the vertical jump to C at I = 0 (segment l1) plus the rate
  // line (segment l2). In min-of-lines form the jump is implicit — the
  // envelope is the single line C*(1 + I/T), anchored one full job above
  // the origin because the approximation drops the deadline offset. This
  // exceeds Devi's envelope C*(I - D + T)/T by C*D/T >= 0: "a bit worse
  // than the test given by Devi" (§3.6).
  const double period = static_cast<double>(t.period);
  return ConcaveCurve({AffineLine{c, c / period}});
}

ConcaveCurve rtc_demand_bursty(Time period, Time burst_len, Time inner_gap,
                               Time wcet, Time deadline) {
  if (burst_len < 1) throw std::invalid_argument("rtc_demand_bursty: len < 1");
  if (burst_len > 1 && inner_gap <= 0)
    throw std::invalid_argument("rtc_demand_bursty: inner_gap <= 0");
  if (burst_len * inner_gap > period)
    throw std::invalid_argument(
        "rtc_demand_bursty: need burst_len * inner_gap <= period so the "
        "burst line stays an upper bound");
  (void)deadline;  // the RTC approximation drops the deadline offset
  const double c = static_cast<double>(wcet);
  const double b = static_cast<double>(burst_len);
  std::vector<AffineLine> lines;
  // Fig. 4b: jump (l1, implicit) + burst line (l2) + long-run rate (l3).
  // Burst line: consecutive events are never closer than inner_gap, so
  // demand(I) <= C * (1 + I/inner_gap). Valid for the whole stream since
  // the inter-burst gap period - (b-1)*gap is >= gap whenever b*gap <=
  // period (checked above).
  if (burst_len > 1) {
    lines.push_back(AffineLine{c, c / static_cast<double>(inner_gap)});
  }
  // Rate line: at most b*(1 + I/period) events in any window.
  lines.push_back(
      AffineLine{b * c, b * c / static_cast<double>(period)});
  return ConcaveCurve(std::move(lines));
}

ConcaveCurve devi_demand_envelope(const Task& t) {
  const double c = static_cast<double>(t.wcet);
  if (is_time_infinite(t.period)) {
    return ConcaveCurve({AffineLine{c, 0.0}});
  }
  const double period = static_cast<double>(t.period);
  const double d = static_cast<double>(t.effective_deadline());
  // The single line C*(I - D + T)/T through the corner (D, C) — Fig. 3.
  return ConcaveCurve(
      {AffineLine{c * (period - d) / period, c / period}});
}

}  // namespace edfkit::rtc
