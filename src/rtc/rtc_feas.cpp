#include "rtc/rtc_feas.hpp"

#include "analysis/utilization.hpp"
#include "rtc/arrival.hpp"

namespace edfkit::rtc {
namespace {

FeasibilityResult run_curve_test(const TaskSet& ts, bool use_rtc) {
  FeasibilityResult r;
  if (ts.empty()) {
    r.verdict = Verdict::Feasible;
    return r;
  }
  if (utilization_exceeds_one(ts)) {
    r.verdict = Verdict::Infeasible;
    r.iterations = 1;
    return r;
  }
  CurveSum sum;
  for (const Task& t : ts) {
    sum.add(use_rtc ? rtc_demand_periodic(t) : devi_demand_envelope(t));
  }
  r.iterations = sum.breakpoints().size() + 1;
  // No demand exists before the smallest deadline; start the capacity
  // comparison there (the envelopes are positive at 0 by construction).
  const double dmin = static_cast<double>(ts.min_deadline());
  r.verdict = sum.below_capacity_line(dmin) ? Verdict::Feasible
                                            : Verdict::Unknown;
  return r;
}

}  // namespace

FeasibilityResult rtc_feasibility_test(const TaskSet& ts) {
  return run_curve_test(ts, /*use_rtc=*/true);
}

FeasibilityResult devi_envelope_test(const TaskSet& ts) {
  return run_curve_test(ts, /*use_rtc=*/false);
}

}  // namespace edfkit::rtc
