/// \file rtc_feas.hpp
/// Feasibility checks in the real-time-calculus style (§3.6): the summed
/// approximated demand curve must stay below the service curve
/// beta(I) = I. Sufficient only — the curve approximation overestimates
/// demand. Provided to reproduce the paper's qualitative claim that the
/// 2-segment RTC approximation accepts no more task sets than Devi's
/// test (RTC ⊆ Devi ⊆ SuperPos(1)).
///
/// Both tests are registered with the unified query API as backends
/// "rtc-curve" and "devi-envelope" (TestKind::RtcCurve /
/// TestKind::DeviEnvelope, see query/registry.hpp), so event-stream and
/// task-set workloads reach them through the same Query surface as every
/// other test.
#pragma once

#include "analysis/types.hpp"
#include "model/task_set.hpp"
#include "rtc/curve.hpp"

namespace edfkit::rtc {

/// Sufficient test using the 2-segment per-task RTC approximation.
[[nodiscard]] FeasibilityResult rtc_feasibility_test(const TaskSet& ts);

/// Sufficient test using Devi's 1-line envelopes on the same curve
/// machinery. Slightly more conservative than devi_test itself: the
/// curve form sums *every* task's envelope at every interval, whereas
/// Devi's per-deadline condition only sums tasks with D_i <= D_k. Hence
/// acceptance here implies acceptance by devi_test (asserted in the test
/// suite), and RTC ⊆ this ⊆ Devi — the §3.6 ordering.
[[nodiscard]] FeasibilityResult devi_envelope_test(const TaskSet& ts);

}  // namespace edfkit::rtc
