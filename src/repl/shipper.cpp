#include "repl/shipper.hpp"

#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "admission/snapshot.hpp"
#include "fault/fault.hpp"
#include "net/protocol.hpp"
#include "obs/obs.hpp"
#include "persist/format.hpp"

namespace edfkit::repl {
namespace {

constexpr std::size_t kMaxPendingDigests = 256;

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

Shipper::Shipper(ShipperOptions opts, obs::Obs* obs)
    : opts_(std::move(opts)) {
  if (obs != nullptr && obs->config().metrics) ins_ = obs->repl();
}

Shipper::~Shipper() { stop(); }

void Shipper::start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void Shipper::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void Shipper::push_digest(const std::string& tenant, std::uint64_t lsn,
                          std::uint32_t digest) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (pending_digests_.size() >= kMaxPendingDigests) {
    pending_digests_.pop_front();
  }
  pending_digests_.emplace_back(tenant, lsn, digest);
}

std::uint64_t Shipper::acked_lsn(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = acked_.find(tenant);
  return it == acked_.end() ? 0 : it->second;
}

std::uint64_t Shipper::errors() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return errors_;
}

void Shipper::note_ack(const TenantShip& t) {
  const std::lock_guard<std::mutex> lock(mu_);
  acked_[t.name] = t.acked;
}

void Shipper::discover_tenants() {
  std::error_code ec;
  std::filesystem::directory_iterator it(opts_.data_dir, ec);
  if (ec) return;  // data dir may not exist yet
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() != ".wal") continue;
    const std::string name = p.stem().string();
    if (name.empty() || tenants_.count(name) != 0) continue;
    TenantShip t;
    t.name = name;
    t.wal_path = p.string();
    tenants_.emplace(name, std::move(t));
  }
}

void Shipper::handshake(TenantShip& t) {
  net::NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(net::NetOp::ReplHello);
  req.hdr.request_id = next_request_id_++;
  req.tenant = t.name;
  req.durability = static_cast<std::uint8_t>(opts_.fsync);
  req.fsync_interval = opts_.fsync_interval;
  const net::NetResponse resp = conn_.call(std::move(req));
  if (resp.hdr.status != static_cast<std::uint8_t>(net::NetStatus::Ok)) {
    throw std::runtime_error("REPL_HELLO for '" + t.name + "' answered " +
                             net::to_string(static_cast<net::NetStatus>(
                                 resp.hdr.status)));
  }
  t.acked = resp.lsn;
  t.hello_done = true;
  note_ack(t);
  if ((resp.repl_flags &
       (net::kReplNeedSnapshot | net::kReplDiverged)) != 0) {
    seed_tenant(t);
    return;
  }
  if (!t.tailer || t.tailer->next_lsn() != t.acked) {
    t.tailer = std::make_unique<persist::JournalTailer>(t.wal_path, t.acked);
  }
}

void Shipper::seed_tenant(TenantShip& t) {
  const std::string snap_path =
      opts_.data_dir + "/" + t.name + ".snap";
  const std::string dedup_path =
      opts_.data_dir + "/" + t.name + ".dedup";
  net::NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(net::NetOp::ReplSnapshot);
  req.hdr.request_id = next_request_id_++;
  req.tenant = t.name;
  if (persist::file_exists(snap_path)) {
    req.repl_snapshot = persist::read_file(snap_path);
    req.repl_lsn = read_snapshot_meta(req.repl_snapshot).journal_lsn;
  }
  if (persist::file_exists(dedup_path)) {
    req.repl_dedup = persist::read_file(dedup_path);
  }
  const std::uint64_t seed_lsn = req.repl_lsn;
  const net::NetResponse resp = conn_.call(std::move(req));
  if (resp.hdr.status != static_cast<std::uint8_t>(net::NetStatus::Ok)) {
    throw std::runtime_error("REPL_SNAPSHOT for '" + t.name +
                             "' answered " +
                             net::to_string(static_cast<net::NetStatus>(
                                 resp.hdr.status)));
  }
  if (ins_ != nullptr) ins_->seeds_sent.add();
  t.acked = seed_lsn;
  // Digests queued before the seed refer to pre-seed state; drop them.
  t.digests.clear();
  t.tailer = std::make_unique<persist::JournalTailer>(t.wal_path, seed_lsn);
  note_ack(t);
}

bool Shipper::ship_tenant(TenantShip& t) {
  if (t.dead) return false;
  if (!t.hello_done) handshake(t);
  if (t.dead || !t.tailer) return false;

  // Collect a batch of consecutive records from the acked LSN.
  std::vector<std::vector<std::uint8_t>> batch;
  std::size_t batch_bytes = 0;
  const std::uint64_t first_lsn = t.tailer->next_lsn();
  persist::TailedRecord rec;
  while (batch.size() < opts_.max_batch_records &&
         batch_bytes < opts_.max_batch_bytes) {
    persist::TailStatus st;
    try {
      st = t.tailer->poll(rec);
    } catch (const persist::PersistError&) {
      // The primary's own journal is unreadable past this point —
      // shipping it would be garbage. Disable this tenant; serving and
      // the other tenants are unaffected.
      t.dead = true;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++errors_;
      }
      if (ins_ != nullptr) ins_->ship_errors.add();
      return false;
    }
    if (st == persist::TailStatus::RotatedPast) {
      // The records we still needed were compacted away — re-seed from
      // the checkpoint that replaced them.
      seed_tenant(t);
      return true;
    }
    if (st == persist::TailStatus::CaughtUp) break;
    batch_bytes += rec.payload.size();
    batch.push_back(std::move(rec.payload));
  }

  // Pull this tenant's digests out of the shared queue, then attach
  // the first one the batch (or the current position) satisfies.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto it = pending_digests_.begin();
         it != pending_digests_.end();) {
      if (std::get<0>(*it) == t.name) {
        t.digests.emplace_back(std::get<1>(*it), std::get<2>(*it));
        it = pending_digests_.erase(it);
      } else {
        ++it;
      }
    }
  }
  while (!t.digests.empty() && t.digests.front().first < first_lsn) {
    t.digests.pop_front();  // stale: the follower is already past it
  }
  std::uint64_t digest_lsn = 0;
  std::uint32_t digest = 0;
  if (!t.digests.empty() &&
      t.digests.front().first <= first_lsn + batch.size()) {
    digest_lsn = t.digests.front().first;
    digest = t.digests.front().second;
    t.digests.pop_front();
  }

  if (batch.empty() && digest_lsn == 0) return false;  // caught up, idle

  if (!batch.empty()) {
    fault::FailPoint& fp = EDFKIT_FAULT_POINT(fault::kReplCorruptSite);
    if (fp.armed() && fp.consume().fire) {
      // Flip one byte AFTER the journal read: the wire CRC is computed
      // over the corrupt payload, so only the digest exchange can
      // catch it — exactly the failure replication must detect.
      batch.back().back() ^= 0x01;
    }
  }

  net::NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(net::NetOp::ReplAppend);
  req.hdr.request_id = next_request_id_++;
  req.tenant = t.name;
  req.repl_lsn = first_lsn;
  const std::size_t shipped = batch.size();
  req.repl_records = std::move(batch);
  req.digest_lsn = digest_lsn;
  req.digest = digest;
  const net::NetResponse resp = conn_.call(std::move(req));

  if (ins_ != nullptr) {
    ins_->ship_batches.add();
    ins_->shipped.add(shipped);
    if (digest_lsn != 0) ins_->digests_sent.add();
  }
  if ((resp.repl_flags &
       (net::kReplNeedSnapshot | net::kReplDiverged)) != 0) {
    if (ins_ != nullptr &&
        (resp.repl_flags & net::kReplDiverged) != 0) {
      ins_->digest_mismatches.add();
    }
    seed_tenant(t);
    return true;
  }
  if (resp.hdr.status != static_cast<std::uint8_t>(net::NetStatus::Ok)) {
    // Unavailable (follower tenant quarantined) or a protocol-level
    // refusal: drop the handshake and retry this tenant next pass.
    t.hello_done = false;
    return false;
  }
  if (ins_ != nullptr && resp.lsn > t.acked) {
    ins_->acked.add(resp.lsn - t.acked);
  }
  t.acked = resp.lsn;
  note_ack(t);
  if (ins_ != nullptr) {
    ins_->lag.set(static_cast<std::int64_t>(t.tailer->next_lsn()) -
                  static_cast<std::int64_t>(t.acked));
  }
  return true;
}

void Shipper::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!conn_.connected()) {
      try {
        conn_ = net::Client::connect(opts_.host, opts_.port,
                                     opts_.connect_timeout_ms);
        conn_.set_timeouts(opts_.io_timeout_ms, opts_.io_timeout_ms);
        for (auto& [name, t] : tenants_) t.hello_done = false;
      } catch (const std::exception&) {
        {
          const std::lock_guard<std::mutex> lock(mu_);
          ++errors_;
        }
        if (ins_ != nullptr) ins_->ship_errors.add();
        sleep_ms(opts_.reconnect_backoff_ms);
        continue;
      }
    }
    discover_tenants();
    bool progressed = false;
    try {
      for (auto& [name, t] : tenants_) progressed |= ship_tenant(t);
    } catch (const std::exception&) {
      // Transport failure or a refused repl op: reconnect from scratch
      // (REPL_HELLO re-learns every follower window — resending an
      // already-applied suffix is idempotent on the follower side).
      conn_.close();
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++errors_;
      }
      if (ins_ != nullptr) ins_->ship_errors.add();
      sleep_ms(opts_.reconnect_backoff_ms);
      continue;
    }
    if (!progressed) sleep_ms(opts_.poll_interval_ms);
  }
}

}  // namespace edfkit::repl
