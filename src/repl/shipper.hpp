/// \file shipper.hpp
/// Primary-side half of hot-standby replication: a background thread
/// that tails every tenant journal in the primary's data directory
/// (persist/tailer.hpp) and ships the records — the exact bytes the
/// primary journaled — to a standby server over the ordinary wire
/// protocol (net/protocol.hpp REPL_* ops).
///
/// Replication rides on replay determinism: the follower appends each
/// shipped record to its own WAL verbatim and replays it through the
/// same recovery path a restart uses, so its resident set, TaskIds,
/// headers, stats and dedup windows stay bit-identical to the
/// primary's. The shipper never touches the serving thread's state —
/// its only inputs are the on-disk journals (read via its own fds) and
/// the digest queue the server pushes into — so the primary's hot path
/// pays nothing for an attached standby beyond the page-cache reads.
///
/// Ship protocol per tenant:
///   REPL_HELLO       — open the follower tenant, learn its applied
///                      LSN; the tailer resumes there.
///   REPL_APPEND      — a batch of consecutive records from that LSN,
///                      optionally carrying a store digest the follower
///                      verifies when its applied LSN reaches the
///                      digest's (a 0-record append is a pure check).
///   REPL_SNAPSHOT    — (re-)seed: the primary's snapshot container +
///                      dedup sidecar, sent when the follower reports a
///                      gap (kReplNeedSnapshot: fresh follower behind a
///                      rotated journal) or divergence (kReplDiverged:
///                      a digest mismatch — hard fault, full re-seed).
///
/// Durability model: acks are asynchronous — an admitted operation is
/// acked to the client when the *primary* journals it, and reaches the
/// standby within the shipping lag (repl_lag_records gauges it).
/// Combined with exactly-once client retry (the dedup windows ship in
/// ClientMark records and snapshot sidecars), a failover client that
/// re-drives its unacknowledged ids observes each operation applied
/// exactly once. A synchronous-ack durability class is a ROADMAP
/// follow-on.
///
/// Transport failures never bubble: the shipper closes, backs off, and
/// re-handshakes every tenant on reconnect (REPL_HELLO is idempotent).
/// A tenant whose journal turns out corrupt is disabled and counted
/// (repl_ship_errors_total) rather than poisoning the others.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "net/client.hpp"
#include "persist/journal.hpp"
#include "persist/tailer.hpp"

namespace edfkit::obs {
class Obs;
struct ReplInstruments;
}  // namespace edfkit::obs

namespace edfkit::repl {

struct ShipperOptions {
  /// Standby address.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// The primary's data directory; every <name>.wal in it is tailed.
  std::string data_dir;
  /// Durability class the follower opens tenants with (REPL_HELLO) —
  /// the server's defaults; per-tenant classes negotiated by client
  /// HELLOs are not mirrored (the follower's WAL bytes are identical
  /// either way, only its fsync cadence differs).
  persist::FsyncPolicy fsync = persist::FsyncPolicy::None;
  std::uint64_t fsync_interval = 64;
  /// Batch bounds per REPL_APPEND (both respected; the frame limit
  /// kMaxFrameBytes is the hard ceiling behind max_batch_bytes).
  std::size_t max_batch_records = 128;
  std::size_t max_batch_bytes = 256 * 1024;
  /// Idle sleep between passes when every tenant is caught up, and the
  /// reconnect backoff after a transport failure.
  std::uint64_t poll_interval_ms = 5;
  std::uint64_t reconnect_backoff_ms = 100;
  /// Socket deadlines for the replication connection.
  std::uint64_t connect_timeout_ms = 1000;
  std::uint64_t io_timeout_ms = 5000;
};

class Shipper {
 public:
  explicit Shipper(ShipperOptions opts, obs::Obs* obs = nullptr);
  Shipper(const Shipper&) = delete;
  Shipper& operator=(const Shipper&) = delete;
  /// stop()s.
  ~Shipper();

  /// Launch the shipping thread. Idempotent.
  void start();
  /// Signal + join. Idempotent; safe to call with start() never run.
  void stop();

  /// Queue a store digest for verification on the follower, taken by
  /// the serving thread at journal LSN `lsn`. Attached to the
  /// REPL_APPEND whose batch reaches that LSN (or shipped as a
  /// 0-record pure check when the follower is already there).
  /// Thread-safe; bounded — when the queue is full the oldest digest
  /// is dropped (a newer one supersedes it).
  void push_digest(const std::string& tenant, std::uint64_t lsn,
                   std::uint32_t digest);

  /// Highest follower-acked LSN for `tenant` (0 = not yet shipped).
  /// Thread-safe (tests poll this to wait for catch-up).
  [[nodiscard]] std::uint64_t acked_lsn(const std::string& tenant) const;

  /// Transport/ship errors so far (mirrors repl_ship_errors_total).
  [[nodiscard]] std::uint64_t errors() const;

 private:
  struct TenantShip {
    std::string name;
    std::string wal_path;
    std::unique_ptr<persist::JournalTailer> tailer;
    std::uint64_t acked = 0;
    bool hello_done = false;
    /// The journal was unreadable (corruption) — disabled until
    /// process restart; other tenants keep replicating.
    bool dead = false;
    /// Digests waiting for the batch that reaches their LSN.
    std::deque<std::pair<std::uint64_t, std::uint32_t>> digests;
  };

  void run();
  void discover_tenants();
  /// One shipping pass over `t`. Returns true when progress was made
  /// (records shipped or a digest checked) — the loop idles only when
  /// every tenant returns false. \throws on transport failure (the
  /// loop reconnects) and persist::PersistError (the tenant dies).
  bool ship_tenant(TenantShip& t);
  void handshake(TenantShip& t);
  /// Read the tenant's snapshot + dedup artifacts and REPL_SNAPSHOT
  /// them; repositions the tailer at the seeded LSN.
  void seed_tenant(TenantShip& t);
  void note_ack(const TenantShip& t);

  ShipperOptions opts_;
  obs::ReplInstruments* ins_ = nullptr;
  net::Client conn_;
  std::map<std::string, TenantShip> tenants_;
  std::uint64_t next_request_id_ = 1;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  mutable std::mutex mu_;
  /// Digests pushed by the serving thread, drained into per-tenant
  /// queues by the shipping thread.
  std::deque<std::tuple<std::string, std::uint64_t, std::uint32_t>>
      pending_digests_;
  /// Shipping-thread progress published for readers.
  std::map<std::string, std::uint64_t> acked_;
  std::uint64_t errors_ = 0;
};

}  // namespace edfkit::repl
