#include "model/task.hpp"

#include <sstream>
#include <stdexcept>

namespace edfkit {

bool Task::valid() const noexcept {
  return wcet > 0 && deadline > 0 && period > 0 && jitter >= 0 &&
         jitter < deadline && wcet < kTimeInfinity && deadline < kTimeInfinity;
}

void Task::validate() const {
  if (valid()) return;
  std::ostringstream os;
  os << "invalid task " << to_string()
     << " (need C,D,T > 0 and 0 <= J < D; C,D finite)";
  throw std::invalid_argument(os.str());
}

std::string Task::to_string() const {
  std::ostringstream os;
  os << (name.empty() ? "task" : name) << "(C=" << wcet << ",D=" << deadline;
  if (is_time_infinite(period)) {
    os << ",T=inf";
  } else {
    os << ",T=" << period;
  }
  if (jitter != 0) os << ",J=" << jitter;
  os << ")";
  return os.str();
}

Task make_task(Time c, Time d, Time t, std::string name) {
  Task tk;
  tk.wcet = c;
  tk.deadline = d;
  tk.period = t;
  tk.name = std::move(name);
  tk.validate();
  return tk;
}

Task make_implicit_task(Time c, Time t, std::string name) {
  return make_task(c, t, t, std::move(name));
}

}  // namespace edfkit
