#include "model/task_set.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace edfkit {

TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  for (const Task& t : tasks_) t.validate();
}

void TaskSet::add(Task t) {
  t.validate();
  tasks_.push_back(std::move(t));
  invalidate_caches();
}

void TaskSet::swap_remove(std::size_t i) {
  tasks_[i] = std::move(tasks_.back());
  tasks_.pop_back();
  invalidate_caches();
}

void TaskSet::invalidate_caches() noexcept {
  util_valid_ = false;
  sorted_valid_ = false;
}

const Rational& TaskSet::utilization() const {
  if (!util_valid_) {
    Rational u;
    for (const Task& t : tasks_) u += t.utilization();
    util_ = u;
    util_valid_ = true;
  }
  return util_;
}

double TaskSet::utilization_double() const {
  return utilization().to_double();
}

Time TaskSet::total_wcet() const {
  Time s = 0;
  for (const Task& t : tasks_) s = add_saturating(s, t.wcet);
  return s;
}

Time TaskSet::max_deadline() const {
  Time m = 0;
  for (const Task& t : tasks_) m = std::max(m, t.effective_deadline());
  return m;
}

Time TaskSet::min_deadline() const {
  Time m = kTimeInfinity;
  for (const Task& t : tasks_) m = std::min(m, t.effective_deadline());
  return m;
}

Time TaskSet::max_period() const {
  Time m = 0;
  for (const Task& t : tasks_) m = std::max(m, t.period);
  return m;
}

Time TaskSet::min_period() const {
  Time m = kTimeInfinity;
  for (const Task& t : tasks_) m = std::min(m, t.period);
  return m;
}

Time TaskSet::hyperperiod() const {
  Time h = 1;
  for (const Task& t : tasks_) {
    h = lcm_saturating(h, t.period);
    if (is_time_infinite(h)) return kTimeInfinity;
  }
  return h;
}

bool TaskSet::constrained_deadlines() const {
  return std::all_of(tasks_.begin(), tasks_.end(), [](const Task& t) {
    return t.effective_deadline() <= t.period;
  });
}

const std::vector<std::size_t>& TaskSet::by_deadline() const {
  if (!sorted_valid_) {
    sorted_idx_.resize(tasks_.size());
    std::iota(sorted_idx_.begin(), sorted_idx_.end(), std::size_t{0});
    std::stable_sort(sorted_idx_.begin(), sorted_idx_.end(),
                     [this](std::size_t a, std::size_t b) {
                       return tasks_[a].effective_deadline() <
                              tasks_[b].effective_deadline();
                     });
    sorted_valid_ = true;
  }
  return sorted_idx_;
}

TaskSet TaskSet::sorted_by_deadline() const {
  std::vector<Task> out;
  out.reserve(tasks_.size());
  for (std::size_t i : by_deadline()) out.push_back(tasks_[i]);
  return TaskSet(std::move(out));
}

TaskSet TaskSet::scaled(Time factor) const {
  if (factor <= 0) throw std::invalid_argument("TaskSet::scaled: factor <= 0");
  std::vector<Task> out;
  out.reserve(tasks_.size());
  for (Task t : tasks_) {
    t.wcet = mul_saturating(t.wcet, factor);
    t.deadline = mul_saturating(t.deadline, factor);
    t.period = mul_saturating(t.period, factor);
    t.jitter = mul_saturating(t.jitter, factor);
    out.push_back(std::move(t));
  }
  return TaskSet(std::move(out));
}

void TaskSet::validate() const {
  for (const Task& t : tasks_) t.validate();
}

std::string TaskSet::to_string() const {
  std::ostringstream os;
  os << "TaskSet{n=" << tasks_.size()
     << ", U=" << utilization().to_string() << " (~"
     << utilization_double() << ")}\n";
  for (const Task& t : tasks_) os << "  " << t.to_string() << "\n";
  return os.str();
}

}  // namespace edfkit
