/// \file io.hpp
/// Plain-text serialization of task sets so examples and users can keep
/// workloads in files.
///
/// Format (one task per line, '#' starts a comment):
///   task <name> <wcet> <deadline> <period> [jitter]
/// A period of `inf` denotes a one-shot task (kTimeInfinity).
#pragma once

#include <iosfwd>
#include <string>

#include "model/task_set.hpp"

namespace edfkit {

/// Parse a task set from text. \throws std::invalid_argument with a line
/// number on malformed input.
[[nodiscard]] TaskSet parse_task_set(const std::string& text);

/// Read/Write through streams.
[[nodiscard]] TaskSet read_task_set(std::istream& in);
void write_task_set(std::ostream& out, const TaskSet& ts);

/// File convenience wrappers. \throws std::runtime_error on I/O failure.
[[nodiscard]] TaskSet load_task_set(const std::string& path);
void save_task_set(const std::string& path, const TaskSet& ts);

/// Serialize to the canonical text format.
[[nodiscard]] std::string format_task_set(const TaskSet& ts);

}  // namespace edfkit
