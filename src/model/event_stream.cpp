#include "model/event_stream.hpp"

#include <sstream>
#include <stdexcept>

namespace edfkit {

EventStream::EventStream(std::vector<EventTuple> tuples)
    : tuples_(std::move(tuples)) {
  for (const EventTuple& t : tuples_) {
    if (!t.valid())
      throw std::invalid_argument("EventStream: invalid tuple");
  }
}

void EventStream::add(EventTuple t) {
  if (!t.valid()) throw std::invalid_argument("EventStream::add: invalid tuple");
  tuples_.push_back(t);
}

Time EventStream::eta(Time interval) const noexcept {
  if (interval < 0) return 0;
  Time n = 0;
  for (const EventTuple& t : tuples_) {
    if (interval < t.offset) continue;
    if (is_time_infinite(t.cycle)) {
      n += 1;
    } else {
      n += floor_div(interval - t.offset, t.cycle) + 1;
    }
  }
  return n;
}

EventStream EventStream::periodic(Time period) {
  return EventStream({EventTuple{period, 0}});
}

EventStream EventStream::bursty(Time period, Time burst_len, Time inner_gap) {
  if (burst_len <= 0) throw std::invalid_argument("bursty: burst_len <= 0");
  if (burst_len > 1 && inner_gap <= 0)
    throw std::invalid_argument("bursty: inner_gap <= 0");
  if ((burst_len - 1) * inner_gap >= period)
    throw std::invalid_argument("bursty: burst longer than period");
  std::vector<EventTuple> tuples;
  tuples.reserve(static_cast<std::size_t>(burst_len));
  for (Time k = 0; k < burst_len; ++k) {
    tuples.push_back(EventTuple{period, k * inner_gap});
  }
  return EventStream(std::move(tuples));
}

std::string EventStream::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const EventTuple& t : tuples_) {
    if (!first) os << ", ";
    os << "(";
    if (is_time_infinite(t.cycle)) {
      os << "inf";
    } else {
      os << t.cycle;
    }
    os << "," << t.offset << ")";
    first = false;
  }
  os << "}";
  return os.str();
}

Time EventStreamTask::dbf(Time interval) const noexcept {
  if (interval < deadline) return 0;
  // Demand = eta(I - D) * C: every event whose deadline falls inside I.
  const Time events = stream.eta(interval - deadline);
  return mul_saturating(events, wcet);
}

void EventStreamTask::validate() const {
  if (wcet <= 0 || deadline <= 0)
    throw std::invalid_argument("EventStreamTask: need C > 0 and D > 0");
  if (stream.size() == 0)
    throw std::invalid_argument("EventStreamTask: empty stream");
}

TaskSet expand(const std::vector<EventStreamTask>& tasks) {
  TaskSet out;
  for (const EventStreamTask& et : tasks) {
    et.validate();
    std::size_t k = 0;
    for (const EventTuple& t : et.stream.tuples()) {
      Task tk;
      tk.wcet = et.wcet;
      tk.deadline = add_saturating(et.deadline, t.offset);
      tk.period = t.cycle;
      tk.name = et.name.empty()
                    ? ""
                    : et.name + "#" + std::to_string(k);
      out.add(std::move(tk));
      ++k;
    }
  }
  return out;
}

}  // namespace edfkit
