/// \file event_stream.hpp
/// Gresser's event-stream model [11], the task-model extension the paper
/// names in §2 ("the extension for the event stream model is easy by
/// following the definitions proposed in [1]").
///
/// An event stream is a set of event tuples theta = (z, a): the tuple
/// contributes events at times a, a+z, a+2z, ... (z = kTimeInfinity makes
/// it a one-shot event at offset a). The stream's event bound function
///   eta(I) = Sigma_theta  [ I >= a ] * (floor((I - a)/z) + 1)
/// is the maximum number of events in any half-open window of length I.
/// Bursts are expressed by several tuples with small offsets.
///
/// An EventStreamTask attaches a WCET and a relative deadline to every
/// event. Its demand bound function is
///   dbf(I) = Sigma_theta [ I >= a + D ] * (floor((I - a - D)/z) + 1) * C,
/// which equals the dbf of one sporadic task (C, D + a, z) per tuple —
/// exactly the paper's remark that "each element of the burst has to be
/// handled as a separate element of the event stream" (§3.6). The
/// expansion expand() realizes that mapping so every feasibility test in
/// edfkit applies unchanged to event streams.
#pragma once

#include <string>
#include <vector>

#include "model/task_set.hpp"
#include "util/math.hpp"

namespace edfkit {

/// One event tuple (cycle z, offset a).
struct EventTuple {
  Time cycle = kTimeInfinity;  ///< z: recurrence period; infinite = one-shot.
  Time offset = 0;             ///< a: first occurrence, >= 0.

  [[nodiscard]] bool valid() const noexcept {
    return cycle > 0 && offset >= 0 && offset < kTimeInfinity;
  }
  [[nodiscard]] bool operator==(const EventTuple&) const noexcept = default;
};

/// A set of event tuples; the densest admissible arrival pattern.
class EventStream {
 public:
  EventStream() = default;
  explicit EventStream(std::vector<EventTuple> tuples);

  void add(EventTuple t);
  [[nodiscard]] std::size_t size() const noexcept { return tuples_.size(); }
  [[nodiscard]] const std::vector<EventTuple>& tuples() const noexcept {
    return tuples_;
  }

  /// Event bound function: max number of events in a window of length I.
  /// eta(0) counts tuples with offset 0 (events at window start).
  [[nodiscard]] Time eta(Time interval) const noexcept;

  /// A strictly periodic stream with period T: single tuple (T, 0).
  [[nodiscard]] static EventStream periodic(Time period);

  /// A periodic burst: `burst_len` events spaced `inner_gap` apart,
  /// repeating every `period`. \pre (burst_len-1)*inner_gap < period
  [[nodiscard]] static EventStream bursty(Time period, Time burst_len,
                                          Time inner_gap);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<EventTuple> tuples_;
};

/// A computational task triggered by an event stream.
struct EventStreamTask {
  EventStream stream;
  Time wcet = 0;      ///< C per event.
  Time deadline = 0;  ///< D relative to each event.
  std::string name;

  /// Demand bound function of this stream task.
  [[nodiscard]] Time dbf(Time interval) const noexcept;

  void validate() const;
};

/// Expand stream tasks to an equivalent sporadic TaskSet: one sporadic
/// task (C, D + a, z) per tuple. The expansion preserves the demand bound
/// function exactly, so feasibility verdicts carry over verbatim.
[[nodiscard]] TaskSet expand(const std::vector<EventStreamTask>& tasks);

}  // namespace edfkit
