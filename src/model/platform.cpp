#include "model/platform.hpp"

namespace edfkit {

bool platform_valid(const Platform& p) noexcept {
  return p.m >= 1 && p.m <= kMaxProcessors;
}

std::string to_string(const Platform& p) {
  if (p.uniprocessor()) return "uniprocessor";
  return "m=" + std::to_string(p.m) + " identical";
}

}  // namespace edfkit
