/// \file platform.hpp
/// Execution platform description for schedulability queries.
///
/// The analysis layer was uniprocessor-only by construction; the query
/// API now threads an explicit `Platform` (m identical unit-speed
/// processors) through `QueryOptions`, the backend registry, the
/// admission controller, and the wire protocol. `m == 1` everywhere by
/// default, which keeps every pre-existing call site source- and
/// behavior-compatible.
///
/// Only identical multiprocessors are modeled: all processors run at the
/// same speed and any job may execute on any processor (full migration
/// under global scheduling). Uniform/heterogeneous platforms would need
/// speed vectors and are out of scope.
#pragma once

#include <cstdint>
#include <string>

namespace edfkit {

/// m identical unit-speed processors. m == 1 is the classic
/// uniprocessor case every legacy entry point assumes.
struct Platform {
  std::uint32_t m = 1;

  [[nodiscard]] constexpr bool uniprocessor() const noexcept {
    return m == 1;
  }

  [[nodiscard]] friend constexpr bool operator==(const Platform& a,
                                                 const Platform& b) noexcept {
    return a.m == b.m;
  }
  [[nodiscard]] friend constexpr bool operator!=(const Platform& a,
                                                 const Platform& b) noexcept {
    return a.m != b.m;
  }
};

/// Largest processor count the toolkit accepts. Arbitrary but finite:
/// it bounds wire-decoded values so a corrupt HELLO cannot make the
/// admission ladder spin over billions of processors.
inline constexpr std::uint32_t kMaxProcessors = 4096;

/// True iff `p` is usable: 1 <= m <= kMaxProcessors.
[[nodiscard]] bool platform_valid(const Platform& p) noexcept;

/// "uniprocessor" or "m=<k> identical".
[[nodiscard]] std::string to_string(const Platform& p);

}  // namespace edfkit
