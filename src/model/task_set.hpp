/// \file task_set.hpp
/// A task set Gamma = {tau_1 .. tau_n} with cached aggregate quantities
/// (exact utilization, max deadline, hyperperiod) used by every test.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "model/task.hpp"
#include "util/rational.hpp"

namespace edfkit {

class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks);

  /// Append one task (invalidates caches). \throws on invalid task.
  void add(Task t);

  /// Remove the task at index `i` in O(1) by swapping the last task into
  /// its place (invalidates caches; does not preserve order). The online
  /// containers (demand/task_view.hpp) use this to keep the set dense.
  /// \pre i < size()
  void swap_remove(std::size_t i);

  /// Reserve capacity for `n` tasks (bulk loads / online growth).
  void reserve(std::size_t n) { tasks_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] const Task& operator[](std::size_t i) const {
    return tasks_[i];
  }
  [[nodiscard]] std::span<const Task> tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] auto begin() const noexcept { return tasks_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tasks_.end(); }

  /// Exact total utilization Sigma C_i/T_i.
  [[nodiscard]] const Rational& utilization() const;
  [[nodiscard]] double utilization_double() const;

  /// Sigma C_i.
  [[nodiscard]] Time total_wcet() const;

  /// max_i D_i (effective deadlines). 0 for the empty set.
  [[nodiscard]] Time max_deadline() const;
  /// min_i D_i (effective deadlines). kTimeInfinity for the empty set.
  [[nodiscard]] Time min_deadline() const;
  /// max_i T_i and min_i T_i.
  [[nodiscard]] Time max_period() const;
  [[nodiscard]] Time min_period() const;

  /// lcm of periods, saturating at kTimeInfinity.
  [[nodiscard]] Time hyperperiod() const;

  /// True iff every task has D_i <= T_i (constrained deadlines). Several
  /// published bounds are only valid under this restriction.
  [[nodiscard]] bool constrained_deadlines() const;

  /// Indices sorted by non-decreasing effective deadline (Devi's test and
  /// the superposition seeds want this order).
  [[nodiscard]] const std::vector<std::size_t>& by_deadline() const;

  /// A copy with tasks sorted by non-decreasing effective deadline.
  [[nodiscard]] TaskSet sorted_by_deadline() const;

  /// Multiply all C, D, T, J by `factor` (model refinement to finer time
  /// granularity). Saturating; \pre factor > 0.
  [[nodiscard]] TaskSet scaled(Time factor) const;

  /// Validate every task and the set as a whole.
  void validate() const;

  /// Multi-line human-readable listing.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const TaskSet& o) const noexcept {
    return tasks_ == o.tasks_;
  }

 private:
  void invalidate_caches() noexcept;

  std::vector<Task> tasks_;

  // Lazy caches (mutable: logically const accessors).
  mutable bool util_valid_ = false;
  mutable Rational util_;
  mutable bool sorted_valid_ = false;
  mutable std::vector<std::size_t> sorted_idx_;
};

}  // namespace edfkit
