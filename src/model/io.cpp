#include "model/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace edfkit {
namespace {

Time parse_time_field(const std::string& tok, int line_no) {
  if (tok == "inf" || tok == "INF") return kTimeInfinity;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument("trailing chars");
    return static_cast<Time>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("task set line " + std::to_string(line_no) +
                                ": bad time value '" + tok + "'");
  }
}

}  // namespace

TaskSet read_task_set(std::istream& in) {
  TaskSet ts;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;  // blank line
    if (kw != "task") {
      throw std::invalid_argument("task set line " + std::to_string(line_no) +
                                  ": expected 'task', got '" + kw + "'");
    }
    std::string name, c, d, t;
    if (!(ls >> name >> c >> d >> t)) {
      throw std::invalid_argument("task set line " + std::to_string(line_no) +
                                  ": expected 'task <name> <C> <D> <T> [J]'");
    }
    Task tk;
    tk.name = name;
    tk.wcet = parse_time_field(c, line_no);
    tk.deadline = parse_time_field(d, line_no);
    tk.period = parse_time_field(t, line_no);
    std::string j;
    if (ls >> j) tk.jitter = parse_time_field(j, line_no);
    std::string extra;
    if (ls >> extra) {
      throw std::invalid_argument("task set line " + std::to_string(line_no) +
                                  ": unexpected trailing token '" + extra + "'");
    }
    try {
      ts.add(std::move(tk));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("task set line " + std::to_string(line_no) +
                                  ": " + e.what());
    }
  }
  return ts;
}

TaskSet parse_task_set(const std::string& text) {
  std::istringstream in(text);
  return read_task_set(in);
}

void write_task_set(std::ostream& out, const TaskSet& ts) {
  out << "# edfkit task set: n=" << ts.size() << " U~"
      << ts.utilization_double() << "\n";
  std::size_t i = 0;
  for (const Task& t : ts) {
    out << "task " << (t.name.empty() ? "t" + std::to_string(i) : t.name)
        << " " << t.wcet << " " << t.deadline << " ";
    if (is_time_infinite(t.period)) {
      out << "inf";
    } else {
      out << t.period;
    }
    if (t.jitter != 0) out << " " << t.jitter;
    out << "\n";
    ++i;
  }
}

std::string format_task_set(const TaskSet& ts) {
  std::ostringstream os;
  write_task_set(os, ts);
  return os.str();
}

TaskSet load_task_set(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) throw std::runtime_error("cannot open " + path);
  return read_task_set(in);
}

void save_task_set(const std::string& path, const TaskSet& ts) {
  std::ofstream out(path);
  if (!out.is_open()) throw std::runtime_error("cannot open " + path);
  write_task_set(out, ts);
}

}  // namespace edfkit
