/// \file task.hpp
/// The sporadic task model of the paper (§2): each task is described by a
/// worst-case execution time C, a relative deadline D, and a minimum
/// inter-arrival distance (period) T. We additionally carry a release
/// jitter term J (0 by default) to support the "extensions by Devi"
/// mentioned in §3.5 (self-suspension / release jitter fold into an
/// effective deadline shortening, equivalently a dbf shift).
///
/// Only the synchronous case is analyzed (first jobs released together),
/// which is the worst case for EDF feasibility and therefore a sufficient
/// treatment of the asynchronous case (§2).
#pragma once

#include <string>

#include "util/math.hpp"
#include "util/rational.hpp"

namespace edfkit {

/// One sporadic task. Plain data; invariants are enforced by validate().
struct Task {
  Time wcet = 0;      ///< C: worst-case execution time, > 0.
  Time deadline = 0;  ///< D: relative deadline, > 0.
  Time period = 0;    ///< T: minimum inter-arrival time, > 0.
  Time jitter = 0;    ///< J: release jitter, >= 0 (extension, default 0).
  std::string name;   ///< Optional label for reports.

  /// Effective deadline used by the demand-bound function: D - J. Jitter
  /// makes a job's deadline come earlier relative to its worst-case
  /// release, tightening the test.
  [[nodiscard]] Time effective_deadline() const noexcept {
    return deadline - jitter;
  }

  /// Exact utilization C/T. One-shot tasks (T = kTimeInfinity) have
  /// utilization 0 (the limit C/T as T -> inf), which keeps the linear
  /// demand envelope flat and the rational arithmetic clean.
  [[nodiscard]] Rational utilization() const {
    if (is_time_infinite(period)) return Rational(Time{0});
    return Rational(wcet, period);
  }

  /// Utilization as double (for reporting only).
  [[nodiscard]] double utilization_double() const noexcept {
    return static_cast<double>(wcet) / static_cast<double>(period);
  }

  /// Absolute deadline of job k (k = 0 is the first job) in the
  /// synchronous arrival pattern: k*T + D_eff.
  [[nodiscard]] Time job_deadline(Time k) const noexcept {
    return add_saturating(mul_saturating(k, period), effective_deadline());
  }

  /// First job deadline strictly greater than I. This is the paper's
  ///   NextInt(I, tau) = (floor((I - D)/T) + 1) * T + D        (Lemma 5).
  /// For I < D it returns D (the first deadline).
  [[nodiscard]] Time next_deadline_after(Time i) const noexcept {
    const Time d = effective_deadline();
    if (i < d) return d;
    const Time k = floor_div(i - d, period) + 1;
    return add_saturating(mul_saturating(k, period), d);
  }

  /// Index (0-based) of the last job whose deadline is <= I, or -1 if the
  /// first deadline is already beyond I.
  [[nodiscard]] Time jobs_with_deadline_within(Time i) const noexcept {
    const Time d = effective_deadline();
    if (i < d) return -1;
    return floor_div(i - d, period);
  }

  /// True when all invariants hold (C,D,T > 0; C <= T not required —
  /// infeasible tasks are legal inputs; J in [0, D)).
  [[nodiscard]] bool valid() const noexcept;

  /// Throwing variant with a descriptive message.
  void validate() const;

  /// "name(C=..,D=..,T=..)"
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const Task& o) const noexcept {
    return wcet == o.wcet && deadline == o.deadline && period == o.period &&
           jitter == o.jitter;
  }
};

/// Convenience constructors.
[[nodiscard]] Task make_task(Time c, Time d, Time t, std::string name = "");
[[nodiscard]] Task make_implicit_task(Time c, Time t, std::string name = "");

}  // namespace edfkit
