/// \file csv.hpp
/// Minimal CSV emitter used by the benchmark harness so figure data can be
/// re-plotted (`bench/<name> --csv out.csv`).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace edfkit {

/// RFC-4180-ish CSV writer (quotes fields containing separators/quotes).
class CsvWriter {
 public:
  /// Writes to `path`; throws std::runtime_error if the file cannot open.
  explicit CsvWriter(const std::string& path);
  /// Null writer: rows are formatted but discarded (for "--csv" unset).
  CsvWriter() noexcept = default;

  [[nodiscard]] bool active() const noexcept { return out_.is_open(); }

  void header(std::initializer_list<std::string> cols);
  void row(const std::vector<std::string>& cells);

  /// Convenience: builds a row from heterogeneous printable values.
  template <typename... Ts>
  void row_of(const Ts&... vs) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(vs));
    (cells.push_back(format_cell(vs)), ...);
    row(cells);
  }

 private:
  static std::string format_cell(const std::string& s) { return s; }
  static std::string format_cell(const char* s) { return s; }
  static std::string format_cell(double v);
  static std::string format_cell(long long v) { return std::to_string(v); }
  static std::string format_cell(unsigned long long v) {
    return std::to_string(v);
  }
  static std::string format_cell(long v) { return std::to_string(v); }
  static std::string format_cell(unsigned long v) { return std::to_string(v); }
  static std::string format_cell(int v) { return std::to_string(v); }
  static std::string format_cell(unsigned v) { return std::to_string(v); }

  static std::string escape(const std::string& s);

  std::ofstream out_;
};

}  // namespace edfkit
