/// \file seqlock.hpp
/// Double-buffered seqlock epoch: the publication protocol behind the
/// admission subsystem's lock-free aggregate reads
/// (IncrementalDemand::header(), AdmissionEngine::stats()).
///
/// One writer (serialized externally — e.g. under a shard mutex)
/// alternates between two payload buffers; readers never block it.
/// Writer protocol: flip the epoch odd *before* any payload store
/// becomes visible (release fence pairs with the reader's acquire
/// fence), fill the inactive buffer, then publish epoch + 2. Reader
/// protocol: an even epoch 2p names the buffer publication p filled
/// (index p & 1); that buffer's next rewrite (publication p + 2) first
/// flips the epoch odd, so observing e2 <= e1 + 1 after the copy
/// certifies it untorn — e1 + 1 means publication p + 1 is in flight
/// in the *other* buffer, so a reader overlapping one whole
/// publication still returns without re-copying. Payload fields must
/// themselves be atomics (relaxed is enough): the epoch orders them,
/// and atomicity keeps the racing accesses defined for the brief
/// window a lapped copy is discarded.
#pragma once

#include <atomic>
#include <cstdint>

namespace edfkit {

class SeqlockEpoch {
 public:
  /// Run `fill(buffer_index)` as one publication. \pre single writer.
  template <typename Fill>
  void publish(Fill&& fill) noexcept {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    epoch_.store(e + 1, std::memory_order_relaxed);  // odd: writing
    std::atomic_thread_fence(std::memory_order_release);
    fill(static_cast<std::size_t>(((e >> 1) + 1) & 1));
    epoch_.store(e + 2, std::memory_order_release);
  }

  /// Run `copy(buffer_index)` until a copy is certified untorn;
  /// returns the epoch it belongs to (monotone across calls).
  template <typename Copy>
  std::uint64_t read(Copy&& copy) const noexcept {
    std::uint64_t retries = 0;
    return read(std::forward<Copy>(copy), retries);
  }

  /// As read(), additionally counting the times the copy had to be
  /// re-taken because the writer lapped it (the "lapped reader"
  /// monitoring signal: each retry is a publication that landed while
  /// the copy was in flight).
  template <typename Copy>
  std::uint64_t read(Copy&& copy, std::uint64_t& retries) const noexcept {
    for (;;) {
      const std::uint64_t e1 = epoch_.load(std::memory_order_acquire);
      if ((e1 & 1) != 0) {  // publication between its stores
        ++retries;
        continue;
      }
      copy(static_cast<std::size_t>((e1 >> 1) & 1));
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t e2 = epoch_.load(std::memory_order_relaxed);
      if (e2 - e1 < 2) return e1;
      ++retries;
    }
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace edfkit
