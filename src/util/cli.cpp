#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace edfkit {

CliFlags::CliFlags(int argc, char** argv) {
  program_ = (argc > 0) ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      rest_.push_back(tok);
      continue;
    }
    std::string name = tok.substr(2);
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      values_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    // `--name value` unless next token is another flag or absent.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[name] = argv[i + 1];
      ++i;
    } else {
      values_[name] = "";
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliFlags::get(const std::string& name,
                          const std::string& fallback) const {
  const auto it = values_.find(name);
  return (it == values_.end()) ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stoll(it->second);
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes")
    return true;
  return false;
}

std::int64_t CliFlags::get_int_env(const std::string& name,
                                   const std::string& env_var,
                                   std::int64_t fallback) const {
  if (has(name)) return get_int(name, fallback);
  if (const char* v = std::getenv(env_var.c_str())) {
    try {
      return std::stoll(v);
    } catch (const std::exception&) {
      return fallback;
    }
  }
  return fallback;
}

}  // namespace edfkit
