/// \file cli.hpp
/// Tiny flag parser shared by bench/example binaries.
///
/// Supports `--name value`, `--name=value`, and boolean `--name`.
/// Unknown flags are collected so harness wrappers (e.g. google-benchmark)
/// can consume them afterwards.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace edfkit {

class CliFlags {
 public:
  CliFlags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional arguments and unrecognized tokens, in order.
  [[nodiscard]] const std::vector<std::string>& rest() const noexcept {
    return rest_;
  }

  /// argv[0].
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  /// Integer flag overridable by environment variable (flag wins).
  [[nodiscard]] std::int64_t get_int_env(const std::string& name,
                                         const std::string& env_var,
                                         std::int64_t fallback) const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> rest_;
};

}  // namespace edfkit
