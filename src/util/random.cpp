#include "util/random.hpp"

#include <cmath>

namespace edfkit {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(eng_);
}

Time Rng::uniform_time(Time lo, Time hi) {
  std::uniform_int_distribution<Time> d(lo, hi);
  return d(eng_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return d(eng_);
}

Time Rng::log_uniform_time(Time lo, Time hi) {
  if (lo == hi) return lo;
  const double e = uniform(std::log(static_cast<double>(lo)),
                           std::log(static_cast<double>(hi)));
  return round_to_time(std::exp(e), lo, hi);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(eng_);
}

Rng Rng::fork() {
  return Rng(eng_());
}

}  // namespace edfkit
