/// \file stats.hpp
/// Streaming statistics and simple histograms for the benchmark harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace edfkit {

/// Online min/max/mean/variance accumulator (Welford). Accepts doubles;
/// iteration counts are converted by the caller.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one.
  void merge(const OnlineStats& o) noexcept;

  /// "n=.. min=.. mean=.. max=.."
  [[nodiscard]] std::string summary() const;

 private:
  std::size_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all samples; exact quantiles. Use for per-bucket effort
/// distributions where sample counts are modest.
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  /// q in [0,1]; nearest-rank on the sorted samples. \pre count() > 0
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t underflow() const noexcept { return under_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return over_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// ASCII rendering, one line per bin.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t under_ = 0;
  std::size_t over_ = 0;
  std::size_t total_ = 0;
};

}  // namespace edfkit
