#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace edfkit {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_.is_open())
    throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string> cols) {
  row(std::vector<std::string>(cols));
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return;
  bool first = true;
  for (const auto& c : cells) {
    if (!first) out_ << ',';
    out_ << escape(c);
    first = false;
  }
  out_ << '\n';
}

std::string CsvWriter::format_cell(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}

}  // namespace edfkit
