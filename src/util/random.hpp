/// \file random.hpp
/// Deterministic, seedable random source for workload generation.
///
/// All experiment code draws through this wrapper so that every figure and
/// table in EXPERIMENTS.md is reproducible from a seed printed in its
/// header.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/math.hpp"

namespace edfkit {

/// Thin seedable wrapper over a 64-bit Mersenne twister.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EDF'2005u) noexcept : eng_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). \pre lo <= hi
  [[nodiscard]] Time uniform_time(Time lo, Time hi);

  /// Uniform integer in [lo, hi] (inclusive). \pre lo <= hi
  [[nodiscard]] int uniform_int(int lo, int hi);

  /// Log-uniform time in [lo, hi]: exponent drawn uniformly. Used for
  /// period generation with large Tmax/Tmin ratios (paper Fig. 9).
  /// \pre 1 <= lo <= hi
  [[nodiscard]] Time log_uniform_time(Time lo, Time hi);

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p);

  /// Derive an independent child stream (for parallel/per-set use).
  [[nodiscard]] Rng fork();

  /// Access to the raw engine for std distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace edfkit
