/// \file rational.hpp
/// Exact rational arithmetic over 128-bit integers with *sticky overflow*
/// degradation.
///
/// Feasibility analysis compares quantities of the form
///   Sigma_i  C_i * (I - D_i + T_i) / T_i   vs   I
/// exactly. Numerators/denominators stay well inside 128 bits for
/// realistic task sets (periods <= 2^31, intervals <= 2^50, <= a few
/// hundred tasks after gcd normalization). If a computation *would*
/// overflow, the Rational marks itself inexact instead of producing a
/// wrong value; comparisons against inexact rationals answer
/// `Ordering::Unknown`, and callers must act conservatively. A `double`
/// shadow value is maintained through overflow so diagnostics stay
/// meaningful.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/math.hpp"

namespace edfkit {

/// Tri-state comparison outcome used when exactness may have been lost.
enum class Ordering : std::uint8_t { Less, Equal, Greater, Unknown };

/// Exact rational p/q (q > 0, gcd(p,q) == 1) with sticky-overflow fallback.
class Rational {
 public:
  /// Zero.
  constexpr Rational() noexcept = default;

  /// From an integer.
  explicit Rational(Time value) noexcept;

  /// From a fraction; normalizes sign and gcd. \pre den != 0
  Rational(Time num, Time den);

  /// An already-inexact rational carrying only a double approximation.
  [[nodiscard]] static Rational inexact(double approx) noexcept;

  [[nodiscard]] bool exact() const noexcept { return exact_; }
  /// Numerator (meaningful only when exact()).
  [[nodiscard]] Int128 num() const noexcept { return num_; }
  /// Denominator, always > 0 (meaningful only when exact()).
  [[nodiscard]] Int128 den() const noexcept { return den_; }
  /// Best-effort double value, valid in both exact and inexact states.
  [[nodiscard]] double to_double() const noexcept { return approx_; }

  [[nodiscard]] bool is_zero() const noexcept {
    return exact_ && num_ == 0;
  }
  [[nodiscard]] bool is_negative() const noexcept {
    return exact_ ? num_ < 0 : approx_ < 0.0;
  }

  Rational& operator+=(const Rational& o) noexcept;
  Rational& operator-=(const Rational& o) noexcept;
  Rational& operator*=(const Rational& o) noexcept;
  /// \pre !o.is_zero() when both are exact; inexact division propagates.
  Rational& operator/=(const Rational& o) noexcept;

  [[nodiscard]] friend Rational operator+(Rational a, const Rational& b) noexcept {
    a += b;
    return a;
  }
  [[nodiscard]] friend Rational operator-(Rational a, const Rational& b) noexcept {
    a -= b;
    return a;
  }
  [[nodiscard]] friend Rational operator*(Rational a, const Rational& b) noexcept {
    a *= b;
    return a;
  }
  [[nodiscard]] friend Rational operator/(Rational a, const Rational& b) noexcept {
    a /= b;
    return a;
  }

  /// Exact three-way comparison; Unknown if either side is inexact.
  [[nodiscard]] Ordering compare(const Rational& o) const noexcept;
  /// Compare against an integer.
  [[nodiscard]] Ordering compare(Time value) const noexcept;

  /// Convenience predicates with a required certainty: returns true only
  /// if the relation *provably* holds. Unknown compares return false, so
  /// `a.certainly_le(b)` failing does NOT imply `a > b`.
  [[nodiscard]] bool certainly_le(const Rational& o) const noexcept {
    const Ordering c = compare(o);
    return c == Ordering::Less || c == Ordering::Equal;
  }
  [[nodiscard]] bool certainly_gt(const Rational& o) const noexcept {
    return compare(o) == Ordering::Greater;
  }
  [[nodiscard]] bool certainly_le(Time v) const noexcept {
    const Ordering c = compare(v);
    return c == Ordering::Less || c == Ordering::Equal;
  }
  [[nodiscard]] bool certainly_gt(Time v) const noexcept {
    return compare(v) == Ordering::Greater;
  }

  /// Equality is exact equality; inexact values never compare equal.
  [[nodiscard]] bool operator==(const Rational& o) const noexcept {
    return compare(o) == Ordering::Equal;
  }

  /// floor(p/q). \pre exact()
  [[nodiscard]] Time floor() const;
  /// ceil(p/q). \pre exact()
  [[nodiscard]] Time ceil() const;

  /// "p/q" or "~<double>" when inexact.
  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr Int128 kMaxMag = (static_cast<Int128>(1) << 126);

  void normalize() noexcept;
  void degrade() noexcept;

  Int128 num_ = 0;
  Int128 den_ = 1;
  double approx_ = 0.0;
  bool exact_ = true;
};

/// Shorthand: utilization C/T of one task.
[[nodiscard]] inline Rational make_ratio(Time num, Time den) {
  return Rational(num, den);
}

}  // namespace edfkit
