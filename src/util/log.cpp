#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace edfkit {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::once_flag g_env_once;
std::mutex g_emit_mutex;

void init_from_env() {
  const char* v = std::getenv("EDFKIT_LOG");
  if (v == nullptr) return;
  if (std::strcmp(v, "debug") == 0) g_level = static_cast<int>(LogLevel::Debug);
  else if (std::strcmp(v, "info") == 0) g_level = static_cast<int>(LogLevel::Info);
  else if (std::strcmp(v, "warn") == 0) g_level = static_cast<int>(LogLevel::Warn);
  else if (std::strcmp(v, "error") == 0) g_level = static_cast<int>(LogLevel::Error);
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel lvl) noexcept {
  g_level = static_cast<int>(lvl);
}

LogLevel log_level() noexcept {
  std::call_once(g_env_once, init_from_env);
  return static_cast<LogLevel>(g_level.load());
}

namespace detail {
void emit(LogLevel lvl, const std::string& msg) {
  if (static_cast<int>(lvl) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
}
}  // namespace detail

}  // namespace edfkit
