#include "util/binio.hpp"

#include <array>

namespace edfkit {
namespace {

/// Reflected CRC-32 lookup table, generated once at static init.
std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB8'8320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFF'FFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFF'FFFFu;
}

}  // namespace edfkit
