#include "util/rational.hpp"

#include <cmath>
#include <cstdlib>

namespace edfkit {
namespace {

Int128 gcd128(Int128 a, Int128 b) noexcept {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

double to_double128(Int128 v) noexcept {
  return static_cast<double>(v);
}

/// Magnitude guard: products of two values each below 2^63 stay below
/// 2^126, so a single multiply of guarded operands cannot wrap.
constexpr Int128 kGuard = (static_cast<Int128>(1) << 63);

bool too_big(Int128 v) noexcept { return v >= kGuard || v <= -kGuard; }

}  // namespace

Rational::Rational(Time value) noexcept
    : num_(value), den_(1), approx_(static_cast<double>(value)) {}

Rational::Rational(Time num, Time den) {
  if (den == 0) throw std::invalid_argument("Rational: zero denominator");
  num_ = num;
  den_ = den;
  normalize();
  approx_ = to_double128(num_) / to_double128(den_);
}

Rational Rational::inexact(double approx) noexcept {
  Rational r;
  r.exact_ = false;
  r.approx_ = approx;
  return r;
}

void Rational::normalize() noexcept {
  if (den_ < 0) {
    den_ = -den_;
    num_ = -num_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const Int128 g = gcd128(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

void Rational::degrade() noexcept {
  exact_ = false;
  num_ = 0;
  den_ = 1;
}

Rational& Rational::operator+=(const Rational& o) noexcept {
  approx_ += o.approx_;
  if (!exact_ || !o.exact_) {
    degrade();
    return *this;
  }
  // a/b + c/d = (a*(d/g) + c*(b/g)) / (b*(d/g)) with g = gcd(b, d).
  const Int128 g = gcd128(den_, o.den_);
  const Int128 db = den_ / g;       // b/g
  const Int128 dd = o.den_ / g;     // d/g
  if (too_big(num_) || too_big(dd) || too_big(o.num_) || too_big(db) ||
      too_big(den_) || too_big(dd)) {
    degrade();
    return *this;
  }
  const Int128 n = num_ * dd + o.num_ * db;
  const Int128 d = den_ * dd;
  if (too_big(n) || too_big(d)) {
    degrade();
    return *this;
  }
  num_ = n;
  den_ = d;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& o) noexcept {
  Rational neg = o;
  neg.num_ = -neg.num_;
  neg.approx_ = -neg.approx_;
  return *this += neg;
}

Rational& Rational::operator*=(const Rational& o) noexcept {
  approx_ *= o.approx_;
  if (!exact_ || !o.exact_) {
    degrade();
    return *this;
  }
  // Cross-reduce before multiplying to keep magnitudes small.
  Int128 a = num_, b = den_, c = o.num_, d = o.den_;
  const Int128 g1 = gcd128(a, d);
  if (g1 > 1) {
    a /= g1;
    d /= g1;
  }
  const Int128 g2 = gcd128(c, b);
  if (g2 > 1) {
    c /= g2;
    b /= g2;
  }
  if (too_big(a) || too_big(b) || too_big(c) || too_big(d)) {
    degrade();
    return *this;
  }
  num_ = a * c;
  den_ = b * d;
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& o) noexcept {
  if (!o.exact_) {
    approx_ /= o.approx_;
    degrade();
    return *this;
  }
  if (o.num_ == 0) {
    // Division by exact zero: degrade to an inexact inf with correct sign.
    approx_ = approx_ / 0.0;
    degrade();
    return *this;
  }
  Rational inv;
  inv.num_ = o.den_;
  inv.den_ = o.num_;
  if (inv.den_ < 0) {
    inv.den_ = -inv.den_;
    inv.num_ = -inv.num_;
  }
  inv.approx_ = 1.0 / o.approx_;
  return *this *= inv;
}

Ordering Rational::compare(const Rational& o) const noexcept {
  if (!exact_ || !o.exact_) return Ordering::Unknown;
  // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0). Cross-reduce to avoid overflow.
  Int128 a = num_, b = den_, c = o.num_, d = o.den_;
  const Int128 g1 = gcd128(a, c);
  if (g1 > 1) {
    a /= g1;
    c /= g1;
  }
  const Int128 g2 = gcd128(b, d);
  if (g2 > 1) {
    b /= g2;
    d /= g2;
  }
  if (too_big(a) || too_big(d) || too_big(c) || too_big(b))
    return Ordering::Unknown;
  const Int128 lhs = a * d;
  const Int128 rhs = c * b;
  if (lhs < rhs) return Ordering::Less;
  if (lhs > rhs) return Ordering::Greater;
  return Ordering::Equal;
}

Ordering Rational::compare(Time value) const noexcept {
  return compare(Rational(value));
}

Time Rational::floor() const {
  if (!exact_) throw std::logic_error("Rational::floor on inexact value");
  Int128 q = num_ / den_;
  const Int128 r = num_ % den_;
  if (r != 0 && num_ < 0) q -= 1;
  return narrow_time(q);
}

Time Rational::ceil() const {
  if (!exact_) throw std::logic_error("Rational::ceil on inexact value");
  Int128 q = num_ / den_;
  const Int128 r = num_ % den_;
  if (r != 0 && num_ > 0) q += 1;
  return narrow_time(q);
}

std::string Rational::to_string() const {
  if (!exact_) return "~" + std::to_string(approx_);
  if (den_ == 1) return int128_to_string(num_);
  return int128_to_string(num_) + "/" + int128_to_string(den_);
}

}  // namespace edfkit
