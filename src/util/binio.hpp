/// \file binio.hpp
/// Little-endian binary IO primitives + CRC-32 shared by the
/// persistence layer (src/persist/). Kept deliberately tiny: a byte
/// buffer writer, a bounds-checked reader, and the IEEE CRC-32 used to
/// frame snapshot sections and journal records. Encoding is explicit
/// little-endian byte-at-a-time, so snapshots and journals are
/// byte-identical across hosts regardless of native endianness.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/math.hpp"

namespace edfkit {

/// IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320) of `data`,
/// continuing from `seed` (pass a previous return value to chain).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32(
    std::span<const std::uint8_t> bytes, std::uint32_t seed = 0) noexcept {
  return crc32(bytes.data(), bytes.size(), seed);
}

/// Growable little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// IEEE-754 bits verbatim: round-trips every value including the
  /// negative sentinels the cached-slack bounds use.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// Two's-complement halves, low then high.
  void i128(Int128 v) {
    u64(static_cast<std::uint64_t>(static_cast<unsigned __int128>(v)));
    u64(static_cast<std::uint64_t>(static_cast<unsigned __int128>(v) >> 64));
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }
  /// u32 length prefix + raw bytes (the binary counterpart of str()).
  void blob(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    bytes(b.data(), b.size());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte span.
/// Underflow throws std::out_of_range (the persistence layer wraps it
/// into its typed error).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint32_t u32() {
    const std::span<const std::uint8_t> b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const std::span<const std::uint8_t> b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] Int128 i128() {
    const std::uint64_t lo = u64();
    const std::uint64_t hi = u64();
    return static_cast<Int128>((static_cast<unsigned __int128>(hi) << 64) |
                               lo);
  }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    const std::span<const std::uint8_t> b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  /// Inverse of ByteWriter::blob(). Bounds-checked before any
  /// allocation (a corrupt length cannot force a huge reserve).
  [[nodiscard]] std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    const std::span<const std::uint8_t> b = take(n);
    return std::vector<std::uint8_t>(b.begin(), b.end());
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (remaining() < n) {
      throw std::out_of_range("binio: read past end of buffer");
    }
    const std::span<const std::uint8_t> out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace edfkit
