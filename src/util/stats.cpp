#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace edfkit {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double n1 = static_cast<double>(n_);
  const double n2 = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = n1 + n2;
  mean_ += delta * n2 / nt;
  m2_ += o.m2_ + delta * delta * n1 * n2 / nt;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  sum_ += o.sum_;
  n_ += o.n_;
}

std::string OnlineStats::summary() const {
  std::ostringstream os;
  os << "n=" << n_ << " min=" << min_ << " mean=" << mean_ << " max=" << max_;
  return os.str();
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (xs_.empty()) throw std::logic_error("SampleSet::quantile: empty");
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= xs_.size()) return xs_.back();
  return xs_[i] * (1.0 - frac) + xs_[i + 1] * frac;
}

double SampleSet::min() const {
  if (xs_.empty()) throw std::logic_error("SampleSet::min: empty");
  ensure_sorted();
  return xs_.front();
}

double SampleSet::max() const {
  if (xs_.empty()) throw std::logic_error("SampleSet::max: empty");
  ensure_sorted();
  return xs_.back();
}

double SampleSet::mean() const {
  if (xs_.empty()) throw std::logic_error("SampleSet::mean: empty");
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0)
    throw std::invalid_argument("Histogram: bad range/bins");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++under_;
    return;
  }
  if (x >= hi_) {
    ++over_;
    return;
  }
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::size_t i = static_cast<std::size_t>((x - lo_) / w);
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_lo(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return bin_lo(i) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = counts_[i] * width / peak;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (under_ != 0) os << "underflow: " << under_ << "\n";
  if (over_ != 0) os << "overflow: " << over_ << "\n";
  return os.str();
}

}  // namespace edfkit
