#include "util/math.hpp"

#include <algorithm>
#include <cmath>

namespace edfkit {

Time lcm_saturating(Time a, Time b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (is_time_infinite(a) || is_time_infinite(b)) return kTimeInfinity;
  const Time g = gcd_time(a, b);
  const Int128 l = mul_wide(a / g, b);
  if (l >= static_cast<Int128>(kTimeInfinity)) return kTimeInfinity;
  return static_cast<Time>(l);
}

Time add_saturating(Time a, Time b) noexcept {
  const Int128 s = static_cast<Int128>(a) + static_cast<Int128>(b);
  if (s >= static_cast<Int128>(kTimeInfinity)) return kTimeInfinity;
  constexpr Time kFloor = std::numeric_limits<Time>::min() / 4;
  if (s <= static_cast<Int128>(kFloor)) return kFloor;
  return static_cast<Time>(s);
}

Time mul_saturating(Time a, Time b) noexcept {
  const Int128 p = mul_wide(a, b);
  if (p >= static_cast<Int128>(kTimeInfinity)) return kTimeInfinity;
  return static_cast<Time>(p);
}

Time narrow_time(Int128 v) {
  if (v > static_cast<Int128>(std::numeric_limits<Time>::max()) ||
      v < static_cast<Int128>(std::numeric_limits<Time>::min())) {
    throw std::overflow_error("narrow_time: value out of int64 range: " +
                              int128_to_string(v));
  }
  return static_cast<Time>(v);
}

std::string int128_to_string(Int128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  // Peel digits from |v|; careful with INT128_MIN (cannot negate), handle
  // by peeling one digit before negating.
  unsigned __int128 u;
  if (neg) {
    u = static_cast<unsigned __int128>(-(v + 1)) + 1;
  } else {
    u = static_cast<unsigned __int128>(v);
  }
  std::string out;
  while (u != 0) {
    out.push_back(static_cast<char>('0' + static_cast<int>(u % 10)));
    u /= 10;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

Time round_to_time(double v, Time lo, Time hi) noexcept {
  if (!(v == v)) return lo;  // NaN -> lo
  const double r = std::nearbyint(v);
  if (r <= static_cast<double>(lo)) return lo;
  if (r >= static_cast<double>(hi)) return hi;
  return static_cast<Time>(r);
}

}  // namespace edfkit
