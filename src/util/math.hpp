/// \file math.hpp
/// Integer helpers used throughout edfkit: floor/ceil division, gcd/lcm
/// with saturation, and overflow-checked arithmetic on 64-bit time values.
///
/// All time quantities in edfkit are discrete `Time` ticks (int64_t). A
/// dedicated saturation value `kTimeInfinity` stands in for "unbounded"
/// (e.g. the hyperperiod of co-prime periods, or a one-shot event's
/// period). Saturating operations never wrap; they pin at kTimeInfinity.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace edfkit {

/// Discrete time in ticks. Signed so interval differences are natural.
using Time = std::int64_t;

/// 128-bit signed integer used for exact intermediate products.
using Int128 = __int128;

/// Saturation value standing in for "unbounded"/+infinity.
/// Chosen at max/4 so that sums of two saturated values cannot wrap.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max() / 4;

/// True if `t` is at or beyond the saturation threshold.
[[nodiscard]] constexpr bool is_time_infinite(Time t) noexcept {
  return t >= kTimeInfinity;
}

/// Floor division for possibly-negative numerators (C++ `/` truncates
/// toward zero; feasibility math needs true floor).
/// \pre d > 0
[[nodiscard]] constexpr Time floor_div(Time n, Time d) noexcept {
  Time q = n / d;
  Time r = n % d;
  return (r != 0 && r < 0) ? q - 1 : q;
}

/// Ceiling division for possibly-negative numerators.
/// \pre d > 0
[[nodiscard]] constexpr Time ceil_div(Time n, Time d) noexcept {
  Time q = n / d;
  Time r = n % d;
  return (r != 0 && r > 0) ? q + 1 : q;
}

/// Non-negative remainder of floor division: n - floor_div(n,d)*d.
/// \pre d > 0
[[nodiscard]] constexpr Time floor_mod(Time n, Time d) noexcept {
  Time r = n % d;
  return (r < 0) ? r + d : r;
}

/// Greatest common divisor of non-negative values (gcd(0,x) == x).
[[nodiscard]] constexpr Time gcd_time(Time a, Time b) noexcept {
  while (b != 0) {
    Time t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Least common multiple, saturating at kTimeInfinity.
/// \pre a >= 0 && b >= 0
[[nodiscard]] Time lcm_saturating(Time a, Time b) noexcept;

/// a + b with saturation at kTimeInfinity (inputs must be non-negative
/// or small negatives; result is clamped into [min/4, kTimeInfinity]).
[[nodiscard]] Time add_saturating(Time a, Time b) noexcept;

/// a * b with saturation at kTimeInfinity. \pre a >= 0 && b >= 0
[[nodiscard]] Time mul_saturating(Time a, Time b) noexcept;

/// Exact a * b into 128 bits (never overflows for 64-bit inputs).
[[nodiscard]] constexpr Int128 mul_wide(Time a, Time b) noexcept {
  return static_cast<Int128>(a) * static_cast<Int128>(b);
}

/// Checked narrowing of an Int128 back to Time.
/// \throws std::overflow_error when out of range.
[[nodiscard]] Time narrow_time(Int128 v);

/// Render an Int128 in decimal (std::to_string lacks an overload).
[[nodiscard]] std::string int128_to_string(Int128 v);

/// Round a positive double to the nearest tick, clamped to [lo, hi].
[[nodiscard]] Time round_to_time(double v, Time lo, Time hi) noexcept;

}  // namespace edfkit
