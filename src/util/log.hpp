/// \file log.hpp
/// Lightweight leveled logging to stderr. Benchmarks and examples use this
/// for progress reporting; the analysis libraries themselves never log.
#pragma once

#include <sstream>
#include <string>

namespace edfkit {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Global threshold (default Info). Honors env EDFKIT_LOG=debug|info|...
void set_log_level(LogLevel lvl) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void emit(LogLevel lvl, const std::string& msg);
}

/// Stream-style log statement: `LOG(Info) << "x=" << x;`
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) noexcept : lvl_(lvl) {}
  ~LogLine() { detail::emit(lvl_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};

}  // namespace edfkit

#define EDFKIT_LOG(level) ::edfkit::LogLine(::edfkit::LogLevel::level)
