/// \file fixedpoint.hpp
/// Certified 2^-62 fixed-point helpers shared by the analyses.
///
/// A ScaledPair holds integer floor/ceil bounds of x * kFixedPointScale
/// for a non-negative real x. Sums of pairs bound sums of reals; each
/// rounding step widens the interval by at most one unit (2^-62), so
/// comparisons that clear a scaled threshold are *proofs*. See
/// DESIGN.md §3.
#pragma once

#include "util/math.hpp"

namespace edfkit {

inline constexpr Int128 kFixedPointScale = static_cast<Int128>(1) << 62;

/// Certified bounds: lo <= x * kFixedPointScale <= hi.
struct ScaledPair {
  Int128 lo = 0;
  Int128 hi = 0;

  ScaledPair& operator+=(const ScaledPair& o) noexcept {
    lo += o.lo;
    hi += o.hi;
    return *this;
  }
  /// Interval subtraction: endpoints swap roles.
  ScaledPair& operator-=(const ScaledPair& o) noexcept {
    lo -= o.hi;
    hi -= o.lo;
    return *this;
  }
};

/// floor/ceil of (num/den) * kFixedPointScale.
/// \pre den > 0, num >= 0, num < 2^122 (intermediates stay < 2^125)
/// Two 128-bit divisions (not four): remainders come from multiply-
/// back, and the ceil endpoint is floor + (remainder != 0) — this is
/// on the admission store's per-update path.
[[nodiscard]] inline ScaledPair scale_fraction(Int128 num,
                                               Int128 den) noexcept {
  const Int128 q = num / den;
  const Int128 r = num - q * den;
  const Int128 scaled_r = r * kFixedPointScale;
  const Int128 lo_frac = scaled_r / den;
  const Int128 lo = q * kFixedPointScale + lo_frac;
  return {lo, lo + (scaled_r - lo_frac * den != 0 ? 1 : 0)};
}

/// An exactly-representable integer value.
[[nodiscard]] inline ScaledPair scale_integer(Int128 v) noexcept {
  return {v * kFixedPointScale, v * kFixedPointScale};
}

/// Compare a pair against an integer threshold (x vs t).
/// Returns Less when certainly x <= t, Greater when certainly x > t.
enum class ScaledCompare : unsigned char { LessOrEqual, Greater, Ambiguous };
[[nodiscard]] inline ScaledCompare compare_scaled(const ScaledPair& x,
                                                  Time threshold) noexcept {
  const Int128 cap = static_cast<Int128>(threshold) * kFixedPointScale;
  if (x.hi <= cap) return ScaledCompare::LessOrEqual;
  if (x.lo > cap) return ScaledCompare::Greater;
  return ScaledCompare::Ambiguous;
}

}  // namespace edfkit
