#include "demand/intervals.hpp"

namespace edfkit {

DeadlineStream::DeadlineStream(const TaskSet& ts, Time bound)
    : ts_(ts), bound_(bound) {
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Time d0 = ts[i].effective_deadline();
    if (d0 <= bound_) list_.add(i, d0);
  }
}

Time DeadlineStream::next() {
  const auto first = list_.pop();
  Time point = first.interval;
  // Re-arm the popped task and drain duplicates at the same point.
  auto rearm = [this](std::size_t task, Time at) {
    const Time nxt = ts_[task].next_deadline_after(at);
    if (nxt <= bound_ && !is_time_infinite(nxt)) list_.add(task, nxt);
  };
  rearm(first.task, point);
  while (!list_.empty() && list_.peek().interval == point) {
    const auto dup = list_.pop();
    rearm(dup.task, point);
  }
  return point;
}

}  // namespace edfkit
