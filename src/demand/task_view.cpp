#include "demand/task_view.hpp"

#include <algorithm>

namespace edfkit {

void TaskColumns::assign(std::span<const Task> tasks) {
  clear();
  reserve(tasks.size());
  for (const Task& t : tasks) push(t);
}

void TaskColumns::push(const Task& t) {
  wcet.push_back(t.wcet);
  deadline.push_back(t.effective_deadline());
  period.push_back(t.period);
  util.push_back(is_time_infinite(t.period) ? 0.0 : t.utilization_double());
}

void TaskColumns::swap_remove(std::size_t row) {
  wcet[row] = wcet.back();
  wcet.pop_back();
  deadline[row] = deadline.back();
  deadline.pop_back();
  period[row] = period.back();
  period.pop_back();
  util[row] = util.back();
  util.pop_back();
}

void TaskColumns::clear() {
  wcet.clear();
  deadline.clear();
  period.clear();
  util.clear();
}

void TaskColumns::reserve(std::size_t n) {
  wcet.reserve(n);
  deadline.reserve(n);
  period.reserve(n);
  util.reserve(n);
}

Time columns_dbf(const TaskColumns& c, Time interval) noexcept {
  Time total = 0;
  for (std::size_t r = 0; r < c.size(); ++r) {
    total = add_saturating(total, row_dbf(c, r, interval));
  }
  return total;
}

Time columns_max_deadline_below(const TaskColumns& c, Time x) noexcept {
  Time best = -1;
  for (std::size_t r = 0; r < c.size(); ++r) {
    const Time d = c.deadline[r];
    if (x <= d) continue;
    Time cand;
    if (is_time_infinite(c.period[r])) {
      cand = d;
    } else {
      // Largest k with k*T + d < x  =>  k = floor((x - d - 1)/T).
      const Time k = floor_div(x - d - 1, c.period[r]);
      cand = add_saturating(mul_saturating(k, c.period[r]), d);
    }
    best = std::max(best, cand);
  }
  return best;
}

TaskView::Slot TaskView::add(const Task& t) {
  t.validate();
  Slot s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    s = static_cast<Slot>(slot_to_row_.size());
    slot_to_row_.push_back(kInvalidSlot);
  }
  slot_to_row_[s] = static_cast<std::uint32_t>(aos_.size());
  row_to_slot_.push_back(s);
  aos_.add(t);
  cols_.push(t);
  return s;
}

std::vector<TaskView::Slot> TaskView::add_batch(std::span<const Task> group) {
  for (const Task& t : group) t.validate();  // all-or-nothing
  std::vector<Slot> out;
  out.reserve(group.size());
  reserve(size() + group.size());
  for (const Task& t : group) out.push_back(add(t));
  return out;
}

bool TaskView::remove(Slot s) {
  if (!contains(s)) return false;
  const std::size_t row = slot_to_row_[s];
  const std::size_t last = aos_.size() - 1;
  aos_.swap_remove(row);
  cols_.swap_remove(row);
  if (row != last) {
    const Slot moved = row_to_slot_[last];
    row_to_slot_[row] = moved;
    slot_to_row_[moved] = static_cast<std::uint32_t>(row);
  }
  row_to_slot_.pop_back();
  slot_to_row_[s] = kInvalidSlot;
  free_.push_back(s);
  return true;
}

void TaskView::clear() {
  aos_ = TaskSet{};
  cols_.clear();
  slot_to_row_.clear();
  row_to_slot_.clear();
  free_.clear();
}

void TaskView::reserve(std::size_t n) {
  aos_.reserve(n);
  cols_.reserve(n);
  slot_to_row_.reserve(n);
  row_to_slot_.reserve(n);
}

}  // namespace edfkit
