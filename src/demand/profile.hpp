/// \file profile.hpp
/// Demand-curve sampling for inspection and plotting: the staircase
/// dbf(I), the superposition approximations dbf'(I, level) and the
/// capacity line, tabulated at every change point — the data behind the
/// paper's Figs. 2/3/6 style illustrations.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/task_set.hpp"

namespace edfkit {

struct DemandSample {
  Time interval = 0;
  Time dbf = 0;            ///< exact demand
  double approx1 = 0.0;    ///< dbf'(I, 1) — Devi's envelope (Fig. 3)
  double approx_level = 0.0;  ///< dbf'(I, level) for the chosen level
};

struct DemandProfile {
  Time level = 1;             ///< the level used for approx_level
  std::vector<DemandSample> samples;

  /// max over samples of dbf/I (diagnostic: demand pressure).
  [[nodiscard]] double peak_pressure() const noexcept;
  /// First sample with dbf > I, or -1.
  [[nodiscard]] Time first_overflow() const noexcept;
};

/// Sample dbf and dbf' at every job deadline in (0, horizon], plus the
/// points just before each (to expose the staircase's left limits).
/// \pre horizon > 0, level >= 1
[[nodiscard]] DemandProfile sample_demand(const TaskSet& ts, Time horizon,
                                          Time level = 4);

/// Write a gnuplot-ready whitespace table with a header comment:
/// columns I, dbf, dbf1, dbfL, capacity.
void write_profile(std::ostream& out, const DemandProfile& profile);
[[nodiscard]] std::string format_profile(const DemandProfile& profile);

}  // namespace edfkit
