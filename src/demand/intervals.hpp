/// \file intervals.hpp
/// Test-interval plumbing: the ascending "testlist" of the new algorithms
/// and a merged iterator over all absolute job deadlines of a task set
/// (the classic processor-demand test's interval stream).
#pragma once

#include <cstddef>
#include <queue>
#include <vector>

#include "model/task_set.hpp"
#include "util/math.hpp"

namespace edfkit {

/// Min-heap of (interval, task index) pairs — the paper's `testlist`.
/// Ties are popped in task-index order for determinism.
class TestList {
 public:
  struct Entry {
    Time interval;
    std::size_t task;
    [[nodiscard]] bool operator>(const Entry& o) const noexcept {
      if (interval != o.interval) return interval > o.interval;
      return task > o.task;
    }
  };

  void add(std::size_t task, Time interval) {
    heap_.push(Entry{interval, task});
  }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Entry& peek() const { return heap_.top(); }
  Entry pop() {
    Entry e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
};

/// Ascending stream of *distinct* absolute job deadlines of a task set in
/// (0, bound]. Memory O(n); next() is O(log n).
class DeadlineStream {
 public:
  DeadlineStream(const TaskSet& ts, Time bound);

  /// True if another distinct deadline <= bound exists.
  [[nodiscard]] bool has_next() const noexcept { return !list_.empty(); }

  /// Pop the next distinct deadline. \pre has_next()
  [[nodiscard]] Time next();

 private:
  const TaskSet& ts_;
  Time bound_;
  TestList list_;
};

}  // namespace edfkit
