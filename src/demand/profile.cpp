#include "demand/profile.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "demand/approx.hpp"
#include "demand/dbf.hpp"
#include "demand/intervals.hpp"

namespace edfkit {

double DemandProfile::peak_pressure() const noexcept {
  double peak = 0.0;
  for (const DemandSample& s : samples) {
    if (s.interval > 0) {
      peak = std::max(peak, static_cast<double>(s.dbf) /
                                static_cast<double>(s.interval));
    }
  }
  return peak;
}

Time DemandProfile::first_overflow() const noexcept {
  for (const DemandSample& s : samples) {
    if (s.dbf > s.interval) return s.interval;
  }
  return -1;
}

DemandProfile sample_demand(const TaskSet& ts, Time horizon, Time level) {
  if (horizon <= 0) throw std::invalid_argument("sample_demand: horizon <= 0");
  if (level < 1) throw std::invalid_argument("sample_demand: level < 1");
  DemandProfile p;
  p.level = level;
  DeadlineStream stream(ts, horizon);
  auto emit = [&](Time interval) {
    if (interval <= 0) return;
    DemandSample s;
    s.interval = interval;
    s.dbf = dbf(ts, interval);
    s.approx1 = approx_dbf(ts, interval, 1).to_double();
    s.approx_level = approx_dbf(ts, interval, level).to_double();
    p.samples.push_back(s);
  };
  Time last = -1;
  while (stream.has_next()) {
    const Time point = stream.next();
    if (point - 1 != last) emit(point - 1);  // left limit of the step
    emit(point);
    last = point;
  }
  return p;
}

void write_profile(std::ostream& out, const DemandProfile& profile) {
  out << "# I dbf dbf'(1) dbf'(" << profile.level << ") capacity\n";
  for (const DemandSample& s : profile.samples) {
    out << s.interval << ' ' << s.dbf << ' ' << s.approx1 << ' '
        << s.approx_level << ' ' << s.interval << '\n';
  }
}

std::string format_profile(const DemandProfile& profile) {
  std::ostringstream os;
  write_profile(os, profile);
  return os.str();
}

}  // namespace edfkit
