/// \file task_view.hpp
/// The structure-of-arrays demand kernel shared by every hot demand
/// scan (ROADMAP: "make a hot path measurably faster").
///
/// A `Task` is ~80 bytes (half of it the name string), so walking a
/// `TaskSet` touches one cache line per task even though a demand scan
/// only reads three integers. `TaskColumns` flattens the parameters
/// every kernel actually reads — wcet, effective deadline, period, and
/// the double utilization — into contiguous arrays, so the inner loops
/// of processor_demand_test, superpos_test, qpa_test, and the online
/// admission structure stream dense data (the schedcat layout: flat
/// parameter arrays, branch-lean kernels).
///
/// `TaskView` is the mutable flavor for long-lived resident sets: a
/// slot free-list hands out stable handles while the rows stay densely
/// packed (swap-remove), so iteration never skips holes and the
/// canonical `TaskSet` is available zero-copy for the exact backends.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/task_set.hpp"
#include "util/math.hpp"

namespace edfkit {

/// Contiguous hot-parameter columns of a task list, in row order.
/// `deadline` stores the *effective* deadline D - J (what every demand
/// kernel compares against), not the raw D.
struct TaskColumns {
  std::vector<Time> wcet;
  std::vector<Time> deadline;
  std::vector<Time> period;
  std::vector<double> util;  ///< C/T as double (0 for one-shots)

  TaskColumns() = default;
  explicit TaskColumns(std::span<const Task> tasks) { assign(tasks); }
  explicit TaskColumns(const TaskSet& ts) { assign(ts.tasks()); }

  void assign(std::span<const Task> tasks);
  void push(const Task& t);
  /// O(1) removal: the last row moves into `row`.
  void swap_remove(std::size_t row);
  void clear();
  void reserve(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return wcet.size(); }
  [[nodiscard]] bool empty() const noexcept { return wcet.empty(); }
};

/// Per-row demand primitives, mirroring Task's helpers on flat data.
/// All take the columns by reference plus a row index so the compiler
/// keeps the four base pointers in registers across the scan.

/// dbf(I, row) = (floor((I - D)/T) + 1) * C for I >= D, else 0.
[[nodiscard]] inline Time row_dbf(const TaskColumns& c, std::size_t r,
                                  Time interval) noexcept {
  const Time d = c.deadline[r];
  if (interval < d) return 0;
  if (is_time_infinite(c.period[r])) return c.wcet[r];
  const Time jobs = floor_div(interval - d, c.period[r]) + 1;
  return mul_saturating(jobs, c.wcet[r]);
}

/// First job deadline strictly greater than I (Lemma 5).
[[nodiscard]] inline Time row_next_deadline_after(const TaskColumns& c,
                                                  std::size_t r,
                                                  Time i) noexcept {
  const Time d = c.deadline[r];
  if (i < d) return d;
  if (is_time_infinite(c.period[r])) return kTimeInfinity;
  const Time k = floor_div(i - d, c.period[r]) + 1;
  return add_saturating(mul_saturating(k, c.period[r]), d);
}

/// Deadline of job `k` (k = 0 is the first job): k*T + D.
[[nodiscard]] inline Time row_job_deadline(const TaskColumns& c,
                                           std::size_t r, Time k) noexcept {
  return add_saturating(mul_saturating(k, c.period[r]), c.deadline[r]);
}

/// The task's "Testboarder" at superposition level x: deadline of job x.
[[nodiscard]] inline Time row_approx_border(const TaskColumns& c,
                                            std::size_t r,
                                            Time level) noexcept {
  return row_job_deadline(c, r, level - 1);
}

/// Whole-set exact dbf at one interval — one dense pass (saturating).
[[nodiscard]] Time columns_dbf(const TaskColumns& c, Time interval) noexcept;

/// Largest absolute job deadline strictly below `x`, or -1 when none —
/// QPA's predecessor-deadline step, as one dense pass.
[[nodiscard]] Time columns_max_deadline_below(const TaskColumns& c,
                                              Time x) noexcept;

/// Mutable SoA container for resident task sets: stable slot handles
/// over densely packed rows. Freed slots are recycled (LIFO), so an
/// external index that can outlive a removal — e.g. the admission
/// store's tombstoned id index — must overwrite its copy of the slot
/// with kInvalidSlot instead of retaining it: a recycled slot aliases
/// a different task.
class TaskView {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kInvalidSlot = 0xffff'ffffu;

  /// Insert, reusing a free slot when available. \throws on invalid
  /// tasks (Task::validate).
  Slot add(const Task& t);
  /// Bulk-load convenience: one capacity reservation, and every task
  /// validates *before* any inserts, so a throw leaves the view
  /// untouched. Returns the slots in group order. (The admission
  /// store's add_group interleaves per-task bookkeeping and inserts
  /// row by row instead — this entry is for callers loading a view
  /// directly.)
  std::vector<Slot> add_batch(std::span<const Task> group);
  /// Withdraw a slot; the last row swaps into its place.
  /// \returns false for unknown/free slots.
  bool remove(Slot s);
  void clear();
  void reserve(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return aos_.size(); }
  [[nodiscard]] bool empty() const noexcept { return aos_.empty(); }
  [[nodiscard]] bool contains(Slot s) const noexcept {
    return s < slot_to_row_.size() && slot_to_row_[s] != kInvalidSlot;
  }

  /// Dense hot columns, rows [0, size()).
  [[nodiscard]] const TaskColumns& columns() const noexcept { return cols_; }
  /// The canonical task set, zero-copy (rows in dense order). Stays
  /// valid across add/remove; per-set caches recompute lazily.
  [[nodiscard]] const TaskSet& as_task_set() const noexcept { return aos_; }
  /// Dense task rows (full structs, for cold fields).
  [[nodiscard]] std::span<const Task> tasks() const noexcept {
    return aos_.tasks();
  }

  /// \pre contains(s)
  [[nodiscard]] std::size_t row_of(Slot s) const noexcept {
    return slot_to_row_[s];
  }
  /// \pre row < size()
  [[nodiscard]] Slot slot_of(std::size_t row) const noexcept {
    return row_to_slot_[row];
  }
  /// \pre contains(s). The reference is invalidated by add/remove.
  [[nodiscard]] const Task& operator[](Slot s) const noexcept {
    return aos_[slot_to_row_[s]];
  }

 private:
  TaskSet aos_;
  TaskColumns cols_;
  std::vector<std::uint32_t> slot_to_row_;  ///< kInvalidSlot == free
  std::vector<Slot> row_to_slot_;
  std::vector<Slot> free_;  ///< reusable slot ids
};

}  // namespace edfkit
