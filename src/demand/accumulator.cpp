#include "demand/accumulator.hpp"

#include "demand/approx.hpp"
#include "demand/dbf.hpp"
#include "util/fixedpoint.hpp"

namespace edfkit {
namespace {

constexpr Int128 kS = kFixedPointScale;  // 2^62

/// S-scaled bounds on the utilization C/T of one task.
ScaledPair scaled_task_util(const Task& t) {
  if (is_time_infinite(t.period)) return {0, 0};
  return scale_fraction(static_cast<Int128>(t.wcet),
                        static_cast<Int128>(t.period));
}

/// S-scaled bounds on app(I, t) = ((I-D) mod T)/T * C. \pre I >= D
ScaledPair scaled_app(const Task& t, Time interval) {
  if (is_time_infinite(t.period)) return {0, 0};
  const Time r = floor_mod(interval - t.effective_deadline(), t.period);
  return scale_fraction(static_cast<Int128>(r) * t.wcet,
                        static_cast<Int128>(t.period));
}

/// S-scaled bounds on the linear envelope C*(I-D+T)/T. \pre I >= D - T
ScaledPair scaled_envelope(const Task& t, Time interval) {
  if (is_time_infinite(t.period)) {
    const Int128 v =
        (interval >= t.effective_deadline())
            ? static_cast<Int128>(t.wcet) * kS
            : 0;
    return {v, v};
  }
  const Int128 prod =
      static_cast<Int128>(t.wcet) *
      (interval - t.effective_deadline() + t.period);
  return scale_fraction(prod, static_cast<Int128>(t.period));
}

}  // namespace

void DemandAccumulator::advance(Time dt) {
  if (dt == 0) return;
  dlo_ += ulo_ * dt;
  dhi_ += uhi_ * dt;
}

void DemandAccumulator::add_job(Time wcet) {
  const Int128 v = static_cast<Int128>(wcet) * kS;
  dlo_ += v;
  dhi_ += v;
}

void DemandAccumulator::approximate(const Task& t) {
  const ScaledPair u = scaled_task_util(t);
  ulo_ += u.lo;
  uhi_ += u.hi;
}

void DemandAccumulator::revise(const Task& t, Time interval) {
  const ScaledPair u = scaled_task_util(t);
  // Subtracting an interval swaps the roles of the endpoints.
  ulo_ -= u.hi;
  if (ulo_ < 0) ulo_ = 0;  // utilization can never be negative
  uhi_ -= u.lo;
  const ScaledPair a = scaled_app(t, interval);
  dlo_ -= a.hi;
  dhi_ -= a.lo;
}

Ordering DemandAccumulator::compare_demand(Time interval) const noexcept {
  const Int128 cap = static_cast<Int128>(interval) * kS;
  if (dhi_ <= cap) return Ordering::Less;  // fits (Less-or-equal proof)
  if (dlo_ > cap) return Ordering::Greater;
  return Ordering::Unknown;
}

Ordering DemandAccumulator::compare_with_refresh(
    const TaskSet& ts, const std::vector<bool>& approximated, Time interval,
    bool* degraded) {
  Ordering c = compare_demand(interval);
  if (c != Ordering::Unknown) return c;

  // Stage 2: rebuild the certified interval from scratch (width <= n
  // units instead of one per historical operation).
  const ScaledDemand fresh = recompute_demand_scaled(ts, approximated,
                                                     interval);
  dlo_ = fresh.lo;
  dhi_ = fresh.hi;
  c = compare_demand(interval);
  if (c != Ordering::Unknown) return c;

  // Stage 3: exact rationals — resolves equality (dbf' == I) whenever
  // the denominators fit, which covers every realistic workload.
  const Rational exact = recompute_demand(ts, approximated, interval);
  if (exact.exact()) {
    const Ordering ec = exact.compare(interval);
    if (ec == Ordering::Less || ec == Ordering::Equal) {
      dhi_ = static_cast<Int128>(interval) * kS;  // clamp: proven to fit
      return Ordering::Less;
    }
    if (ec == Ordering::Greater) return Ordering::Greater;
  }
  if (degraded != nullptr) *degraded = true;
  return Ordering::Greater;  // conservative: forces another revision
}

double DemandAccumulator::demand_estimate() const noexcept {
  return static_cast<double>(dhi_) / static_cast<double>(kS);
}

double DemandAccumulator::ready_utilization_estimate() const noexcept {
  return static_cast<double>(uhi_) / static_cast<double>(kS);
}

ScaledDemand recompute_demand_scaled(const TaskSet& ts,
                                     const std::vector<bool>& approximated,
                                     Time interval) {
  ScaledDemand out;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Task& t = ts[i];
    if (approximated[i]) {
      const ScaledPair e = scaled_envelope(t, interval);
      out.lo += e.lo;
      out.hi += e.hi;
    } else {
      const Int128 v = static_cast<Int128>(dbf(t, interval)) * kS;
      out.lo += v;
      out.hi += v;
    }
  }
  return out;
}

Rational recompute_demand(const TaskSet& ts,
                          const std::vector<bool>& approximated,
                          Time interval) {
  Rational total;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Task& t = ts[i];
    if (approximated[i]) {
      total += approx_demand(t, interval);
    } else {
      total += Rational(dbf(t, interval));
    }
  }
  return total;
}

}  // namespace edfkit
