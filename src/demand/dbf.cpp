#include "demand/dbf.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace edfkit {

Time dbf_jobs(const Task& t, Time interval) noexcept {
  const Time d = t.effective_deadline();
  if (interval < d) return 0;
  if (is_time_infinite(t.period)) return 1;  // one-shot
  return floor_div(interval - d, t.period) + 1;
}

Time dbf(const Task& t, Time interval) noexcept {
  return mul_saturating(dbf_jobs(t, interval), t.wcet);
}

Time dbf(const TaskSet& ts, Time interval) noexcept {
  Time total = 0;
  for (const Task& t : ts) {
    total = add_saturating(total, dbf(t, interval));
    if (is_time_infinite(total)) return kTimeInfinity;
  }
  return total;
}

Time rbf(const Task& t, Time interval) noexcept {
  if (interval <= 0) return 0;
  if (is_time_infinite(t.period)) return t.wcet;
  return mul_saturating(ceil_div(interval, t.period), t.wcet);
}

Time rbf(const TaskSet& ts, Time interval) noexcept {
  Time total = 0;
  for (const Task& t : ts) {
    total = add_saturating(total, rbf(t, interval));
    if (is_time_infinite(total)) return kTimeInfinity;
  }
  return total;
}

Time demand_slack(const TaskSet& ts, Time interval) noexcept {
  return interval - dbf(ts, interval);
}

Time first_overflow_brute(const TaskSet& ts, Time bound) {
  // Merge all job deadlines <= bound with a min-heap of (next deadline,
  // task index) and test dbf at each distinct point.
  using Entry = std::pair<Time, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Time d0 = ts[i].effective_deadline();
    if (d0 <= bound) heap.emplace(d0, i);
  }
  Time last = -1;
  while (!heap.empty()) {
    const auto [point, idx] = heap.top();
    heap.pop();
    if (point != last) {
      last = point;
      if (dbf(ts, point) > point) return point;
    }
    const Time next = ts[idx].next_deadline_after(point);
    if (next <= bound && !is_time_infinite(next)) heap.emplace(next, idx);
  }
  return -1;
}

}  // namespace edfkit
