/// \file accumulator.hpp
/// Incremental approximated-demand accumulator shared by the dynamic-error
/// and all-approximated tests (paper Figs. 5 & 7).
///
/// The algorithms walk test intervals in ascending order and maintain
///   dbf'  +=  C_tau  +  (I_act - I_old) * U_ready
/// where U_ready is the utilization sum of currently-approximated tasks.
/// Revising a task's approximation subtracts the Lemma-6 overestimation
/// app(I, tau).
///
/// Exactness strategy (DESIGN.md §3): the running value is kept as a
/// *certified interval* in 2^-62 fixed point — int128 floor/ceil bounds
/// that each operation widens by at most one unit. Comparisons against
/// the capacity line are therefore proofs whenever the interval clears
/// the line. If a comparison is ambiguous (width reached the line —
/// astronomically rare except at exact equality), the caller refreshes
/// the bounds from scratch and finally falls back to exact rational
/// arithmetic, which resolves equality for all realistic denominators.
/// Verdicts never rest on an uncertain comparison.
#pragma once

#include <vector>

#include "model/task_set.hpp"
#include "util/rational.hpp"

namespace edfkit {

class DemandAccumulator {
 public:
  /// Advance the frontier by dt, accruing the linear demand of
  /// approximated tasks. \pre dt >= 0
  void advance(Time dt);

  /// Account the WCET of one job whose deadline is at the frontier.
  void add_job(Time wcet);

  /// Mark `t` approximated from the current frontier on. The frontier
  /// must sit on a job deadline of `t` (where app == 0), so no value
  /// correction is needed — only the slope changes.
  void approximate(const Task& t);

  /// Withdraw the approximation of `t` at frontier `interval`: subtract
  /// the overestimation app(interval, t) and stop accruing its
  /// utilization.
  void revise(const Task& t, Time interval);

  /// dbf' vs interval. Greater means "demand exceeds capacity" (proof);
  /// Less/Equal means it fits (proof); Unknown means the certified
  /// interval straddles the line — use compare_with_refresh.
  [[nodiscard]] Ordering compare_demand(Time interval) const noexcept;

  /// Three-stage comparison: incremental bounds, then a fresh recompute
  /// of the bounds from (ts, approximated), then exact rationals. Sets
  /// *degraded when even the rationals could not decide (the returned
  /// Greater is then conservative, which only costs extra revisions).
  /// \pre `interval` is the accumulator's current frontier and
  /// `approximated` describes the state the incremental value models —
  /// the refresh stages recompute the demand *at that interval*.
  [[nodiscard]] Ordering compare_with_refresh(
      const TaskSet& ts, const std::vector<bool>& approximated,
      Time interval, bool* degraded);

  /// Best-effort value for diagnostics.
  [[nodiscard]] double demand_estimate() const noexcept;
  /// Best-effort slope (utilization of approximated tasks).
  [[nodiscard]] double ready_utilization_estimate() const noexcept;

 private:
  // S-scaled certified bounds: dlo_ <= dbf' * S <= dhi_, and the same
  // for the ready utilization.
  Int128 dlo_ = 0;
  Int128 dhi_ = 0;
  Int128 ulo_ = 0;
  Int128 uhi_ = 0;
};

/// Fresh S-scaled bounds on dbf'(interval) from per-task state.
struct ScaledDemand {
  Int128 lo = 0;
  Int128 hi = 0;
};
[[nodiscard]] ScaledDemand recompute_demand_scaled(
    const TaskSet& ts, const std::vector<bool>& approximated, Time interval);

/// Exact rational dbf'(interval) (may come back inexact if the int128
/// rationals overflow — callers must check).
[[nodiscard]] Rational recompute_demand(const TaskSet& ts,
                                        const std::vector<bool>& approximated,
                                        Time interval);

}  // namespace edfkit
