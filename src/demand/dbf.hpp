/// \file dbf.hpp
/// Demand bound functions (paper Def. 2).
///
/// dbf(I, tau) is the maximum cumulated execution requirement of jobs of
/// tau having both release and absolute deadline inside a window of
/// length I, assuming the synchronous worst-case arrival pattern:
///   dbf(I, tau) = (floor((I - D)/T) + 1) * C     for I >= D, else 0.
/// dbf(I, Gamma) superposes the per-task functions.
///
/// All values are exact 64-bit integers (saturating at kTimeInfinity for
/// degenerate inputs).
#pragma once

#include "model/task_set.hpp"
#include "util/math.hpp"

namespace edfkit {

/// Number of jobs of `t` with deadline within a window of length I
/// (synchronous release): floor((I - D)/T) + 1, or 0 when I < D.
[[nodiscard]] Time dbf_jobs(const Task& t, Time interval) noexcept;

/// Per-task demand bound function (Def. 2 restricted to one task).
[[nodiscard]] Time dbf(const Task& t, Time interval) noexcept;

/// Task-set demand bound function (Def. 2).
[[nodiscard]] Time dbf(const TaskSet& ts, Time interval) noexcept;

/// Request bound function: demand of jobs *released* within [0, I), i.e.
/// ceil(I/T)*C. Used by the busy-period bound.
[[nodiscard]] Time rbf(const Task& t, Time interval) noexcept;
[[nodiscard]] Time rbf(const TaskSet& ts, Time interval) noexcept;

/// Slack dbf-to-capacity at I: I - dbf(I, ts). Negative means overload.
[[nodiscard]] Time demand_slack(const TaskSet& ts, Time interval) noexcept;

/// First interval (an absolute job deadline) in (0, bound] where
/// dbf(I) > I, or -1 if none. Brute-force reference used by tests; the
/// production path is analysis/processor_demand.hpp.
[[nodiscard]] Time first_overflow_brute(const TaskSet& ts, Time bound);

}  // namespace edfkit
