#include "demand/approx.hpp"

#include <stdexcept>

#include "demand/dbf.hpp"

namespace edfkit {

Time approx_border(const Task& t, Time level) noexcept {
  // level jobs tested exactly; border = deadline of job #level (1-based).
  return t.job_deadline(level - 1);
}

Rational approx_demand(const Task& t, Time interval) {
  // C*((I - D)/T + 1) = C*(I - D + T)/T, exact rational.
  if (is_time_infinite(t.period)) {
    // One-shot task: linear envelope degenerates to the single job.
    return Rational(interval >= t.effective_deadline() ? t.wcet : 0);
  }
  const Int128 num = mul_wide(t.wcet, interval - t.effective_deadline() +
                                          t.period);
  // Keep within Rational's 64-bit constructor domain via manual reduce:
  // numerators fit easily for realistic inputs; guard anyway.
  if (num > static_cast<Int128>(std::numeric_limits<Time>::max()) ||
      num < static_cast<Int128>(std::numeric_limits<Time>::min())) {
    return Rational::inexact(static_cast<double>(num) /
                             static_cast<double>(t.period));
  }
  return Rational(static_cast<Time>(num), t.period);
}

Rational approx_error(const Task& t, Time interval) {
  // app = approx_demand - exact dbf, but only meaningful for I >= D.
  const Time d = t.effective_deadline();
  if (interval < d) {
    throw std::invalid_argument(
        "approx_error: interval precedes first deadline");
  }
  if (is_time_infinite(t.period)) return Rational(0);
  const Time frac_num = floor_mod(interval - d, t.period);
  // ((I-D)/T - floor((I-D)/T)) * C = (I-D mod T)/T * C
  const Int128 num = mul_wide(frac_num, t.wcet);
  if (num > static_cast<Int128>(std::numeric_limits<Time>::max())) {
    return Rational::inexact(static_cast<double>(num) /
                             static_cast<double>(t.period));
  }
  return Rational(static_cast<Time>(num), t.period);
}

Rational approx_dbf(const Task& t, Time interval, Time border) {
  if (interval <= border) return Rational(dbf(t, interval));
  return approx_demand(t, interval);
}

Rational approx_dbf(const TaskSet& ts, Time interval, Time level) {
  if (level < 1) throw std::invalid_argument("approx_dbf: level < 1");
  Rational total;
  for (const Task& t : ts) {
    total += approx_dbf(t, interval, approx_border(t, level));
  }
  return total;
}

}  // namespace edfkit
