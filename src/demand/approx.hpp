/// \file approx.hpp
/// The superposition approximation of the demand bound function
/// (paper Defs. 4 & 5 and Lemma 6).
///
/// With a per-task maximum test interval Im(tau) — the deadline of the
/// x-th job for test level x — the approximated per-task demand is
///   dbf'(I, tau) = dbf(I, tau)                         for I <= Im(tau)
///                = dbf(Im, tau) + C/T * (I - Im(tau))  for I >  Im(tau).
///
/// Because Im is always a job deadline, the approximated branch has the
/// closed form  C * ((I - D)/T + 1)  independent of Im: the linear upper
/// envelope through the dbf corner points. The overestimation against the
/// exact dbf is (Lemma 6)
///   app(I, tau) = ((I - D)/T - floor((I - D)/T)) * C.
#pragma once

#include "model/task_set.hpp"
#include "util/rational.hpp"

namespace edfkit {

/// Deadline of the level-th job (level >= 1): Im = (level-1)*T + D.
/// This is the task's "Testboarder" at a given superposition level.
[[nodiscard]] Time approx_border(const Task& t, Time level) noexcept;

/// Linear (approximated-branch) demand C*((I-D)/T + 1) as an exact
/// rational. Valid as an upper bound on dbf(I, tau) for I >= D - T; in
/// the algorithms it is only used for I >= D.
[[nodiscard]] Rational approx_demand(const Task& t, Time interval);

/// Lemma 6 overestimation app(I, tau) >= 0; zero exactly at job deadlines.
[[nodiscard]] Rational approx_error(const Task& t, Time interval);

/// Def. 4: approximated task demand with explicit border Im (must be a
/// job deadline of t).
[[nodiscard]] Rational approx_dbf(const Task& t, Time interval, Time border);

/// Def. 5: approximated set demand with per-task level x (SuperPos(x)).
[[nodiscard]] Rational approx_dbf(const TaskSet& ts, Time interval,
                                  Time level);

}  // namespace edfkit
