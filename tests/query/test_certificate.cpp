#include "query/certificate.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "demand/dbf.hpp"
#include "query/query.hpp"

namespace edfkit {
namespace {

using testing::paper_random_sets;
using testing::set_of;
using testing::small_random_sets;
using testing::tk;

TEST(Certificate, EveryExactDecisiveOutcomeCarriesAValidCertificate) {
  // The acceptance criterion of the query API: fuzzed task sets, every
  // exact backend, every decisive outcome ships evidence the independent
  // checker signs off on.
  std::size_t feasible_seen = 0;
  std::size_t infeasible_seen = 0;
  for (const double u : {0.7, 0.95, 1.05}) {
    for (const TaskSet& ts : small_random_sets(12, u, /*seed=*/421)) {
      if (ts.empty()) continue;
      for (const TestKind k : BackendRegistry::instance().exact_kinds()) {
        const Outcome out = Query::single(k).run(Workload::periodic(ts));
        ASSERT_TRUE(out.decided) << to_string(k);
        ASSERT_TRUE(out.certificate.present()) << to_string(k);
        const CertificateCheck check = verify(ts, out.certificate);
        EXPECT_TRUE(check.valid)
            << to_string(k) << ": " << check.reason << "\n" << ts.to_string();
        (out.feasible() ? feasible_seen : infeasible_seen) += 1;
      }
    }
  }
  // The fuzz family must exercise both verdicts to mean anything.
  EXPECT_GT(feasible_seen, 0u);
  EXPECT_GT(infeasible_seen, 0u);
}

TEST(Certificate, PaperSizedSetsCertifyToo) {
  for (const TaskSet& ts : paper_random_sets(6, 0.9, /*seed=*/77)) {
    const Outcome out =
        Query::single(TestKind::AllApprox).run(Workload::periodic(ts));
    ASSERT_TRUE(out.decided);
    ASSERT_TRUE(out.certificate.present());
    const CertificateCheck check = verify(ts, out.certificate);
    EXPECT_TRUE(check.valid) << check.reason;
  }
}

TEST(Certificate, MutatedFeasibleBordersAreRejected) {
  std::size_t mutated_checked = 0;
  for (const TaskSet& ts : small_random_sets(10, 0.85, /*seed=*/11)) {
    const Outcome out =
        Query::single(TestKind::Qpa).run(Workload::periodic(ts));
    if (!out.feasible() ||
        out.certificate.kind != CertificateKind::FeasibleBorders) {
      continue;
    }
    ASSERT_TRUE(verify(ts, out.certificate).valid);

    // Mutation 1: push a border below the task's first deadline — no
    // longer a job deadline, whatever the period lattice.
    Certificate off = out.certificate;
    off.borders[0] = ts[0].effective_deadline() - 1;
    EXPECT_FALSE(verify(ts, off).valid);

    // Mutation 2: drop a border (count mismatch).
    Certificate dropped = out.certificate;
    dropped.borders.pop_back();
    EXPECT_FALSE(verify(ts, dropped).valid);

    // Mutation 3: transplant the certificate onto a heavier workload —
    // the replayed demand comparison must catch it.
    std::vector<Task> heavier(ts.begin(), ts.end());
    for (Task& t : heavier) t.wcet = t.period;  // drive demand to U >= 1
    Certificate transplanted = out.certificate;
    EXPECT_FALSE(verify(TaskSet(heavier), transplanted).valid);
    ++mutated_checked;
  }
  EXPECT_GT(mutated_checked, 0u);
}

TEST(Certificate, MutatedWitnessIsRejected) {
  // U = 3/8 + 5/12 < 1 but dbf(6) = 3 + 5 = 8 > 6: a genuine demand
  // overflow, so the witness (not the overload) form is emitted.
  const TaskSet ts = set_of({tk(3, 4, 8), tk(5, 6, 12)});
  const Outcome out =
      Query::single(TestKind::ProcessorDemand).run(Workload::periodic(ts));
  ASSERT_TRUE(out.infeasible());
  ASSERT_EQ(out.certificate.kind, CertificateKind::InfeasibleWitness);
  ASSERT_TRUE(verify(ts, out.certificate).valid);

  // An interval where demand fits is no witness.
  Certificate bogus = out.certificate;
  bogus.witness = 1;  // dbf(1) == 0 <= 1
  EXPECT_FALSE(verify(ts, bogus).valid);
  bogus.witness = -5;
  EXPECT_FALSE(verify(ts, bogus).valid);
}

TEST(Certificate, OverloadCertificateChecksUtilization) {
  const TaskSet over = set_of({tk(7, 8, 8), tk(3, 10, 10)});  // U > 1
  const Outcome out =
      Query::single(TestKind::Qpa).run(Workload::periodic(over));
  ASSERT_TRUE(out.infeasible());
  ASSERT_EQ(out.certificate.kind, CertificateKind::InfeasibleOverload);
  EXPECT_TRUE(verify(over, out.certificate).valid);

  // The same claim against a U < 1 set must be rejected.
  const TaskSet light = set_of({tk(1, 8, 8)});
  EXPECT_FALSE(verify(light, out.certificate).valid);
}

TEST(Certificate, ExhaustiveFormVerifiesAndDetectsShrunkBound) {
  const TaskSet ts = set_of({tk(2, 6, 8), tk(3, 10, 12), tk(4, 20, 24)});
  // Force the exhaustive fallback with a zero-step cap.
  const auto cert = build_feasibility_certificate(ts, /*step_cap=*/0);
  ASSERT_TRUE(cert.has_value());
  ASSERT_EQ(cert->kind, CertificateKind::FeasibleExhaustive);
  EXPECT_TRUE(verify(ts, *cert).valid);

  Certificate shrunk = *cert;
  shrunk.bound = 1;  // below the checker's own sound horizon
  EXPECT_FALSE(verify(ts, shrunk).valid);

  // Transplanting onto an infeasible set fails the replay.
  const TaskSet bad = set_of({tk(3, 4, 8), tk(5, 6, 12)});
  EXPECT_FALSE(verify(bad, *cert).valid);
}

TEST(Certificate, BuilderRefusesInfeasibleSets) {
  // Demand overflow under U < 1: the sweep runs out of approximations at
  // the failing interval and must refuse to certify.
  const TaskSet bad = set_of({tk(3, 4, 8), tk(5, 6, 12)});
  EXPECT_FALSE(build_feasibility_certificate(bad).has_value());
  const TaskSet over = set_of({tk(9, 8, 8)});  // U > 1
  EXPECT_FALSE(build_feasibility_certificate(over).has_value());
}

TEST(Certificate, EmptySetHasTrivialBordersCertificate) {
  const TaskSet empty;
  const auto cert = build_feasibility_certificate(empty);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->kind, CertificateKind::FeasibleBorders);
  EXPECT_TRUE(verify(empty, *cert).valid);
}

TEST(Certificate, NoneNeverVerifies) {
  const TaskSet ts = set_of({tk(1, 4, 8)});
  EXPECT_FALSE(verify(ts, Certificate{}).valid);
}

TEST(Certificate, StreamWorkloadCertificatesVerifyAgainstExpansion) {
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::bursty(200, 4, 5), 8, 40, "irq"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(50), 11, 45, "worker"});
  const Workload w = Workload::event_streams(streams);
  const Outcome out = Query::single(TestKind::AllApprox).run(w);
  ASSERT_TRUE(out.decided);
  ASSERT_TRUE(out.certificate.present());
  EXPECT_TRUE(verify(w, out.certificate).valid);
}

}  // namespace
}  // namespace edfkit
