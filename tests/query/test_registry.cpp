#include "query/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace edfkit {
namespace {

TEST(Registry, EveryTestKindIsRegistered) {
  const BackendRegistry& reg = BackendRegistry::instance();
  EXPECT_EQ(reg.all().size(), all_test_kinds().size());
  for (const TestKind k : all_test_kinds()) {
    const BackendInfo* info = reg.find(k);
    ASSERT_NE(info, nullptr) << static_cast<int>(k);
    EXPECT_EQ(info->kind, k);
    ASSERT_NE(info->run, nullptr);
    // Name lookup round-trips.
    const BackendInfo* by_name = reg.find(std::string_view(info->name));
    ASSERT_NE(by_name, nullptr);
    EXPECT_EQ(by_name->kind, k);
  }
  EXPECT_EQ(reg.find("no-such-backend"), nullptr);
}

TEST(Registry, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const BackendInfo& b : BackendRegistry::instance().all()) {
    EXPECT_FALSE(std::string(b.name).empty());
    names.insert(b.name);
  }
  EXPECT_EQ(names.size(), BackendRegistry::instance().all().size());
}

TEST(Registry, ExactnessFlagAgreesWithIsExact) {
  for (const BackendInfo& b : BackendRegistry::instance().all()) {
    EXPECT_EQ(b.exact, is_exact(b.kind)) << b.name;
  }
  // Ground truth: the paper's exact tests plus PD/QPA, nothing else.
  const std::set<TestKind> exact = {TestKind::ProcessorDemand, TestKind::Qpa,
                                    TestKind::Dynamic, TestKind::AllApprox};
  for (const TestKind k : all_test_kinds()) {
    EXPECT_EQ(is_exact(k), exact.count(k) == 1) << to_string(k);
  }
}

TEST(Registry, ExactKindsEnumeration) {
  const std::vector<TestKind> exact =
      BackendRegistry::instance().exact_kinds();
  EXPECT_EQ(exact.size(), 4u);
  for (const TestKind k : exact) EXPECT_TRUE(is_exact(k));
}

TEST(Registry, WorkloadCapabilityFiltering) {
  const BackendRegistry& reg = BackendRegistry::instance();
  const std::vector<TestKind> for_tasks =
      reg.kinds_for(WorkloadKind::PeriodicTasks);
  const std::vector<TestKind> for_streams =
      reg.kinds_for(WorkloadKind::EventStreams);
  // Every backend handles plain task sets.
  EXPECT_EQ(for_tasks.size(), reg.all().size());
  // liu-layland opts out of streams (offset expansion breaks its
  // acceptance direction); so do the global backends (folded offsets
  // read as jitter to the multi gates). Everything else supports both.
  std::size_t stream_optouts = 1;  // liu-layland
  for (const BackendInfo& b : reg.all()) {
    if ((b.platform_caps & kPlatformUniprocessor) == 0) ++stream_optouts;
  }
  EXPECT_EQ(for_streams.size(), reg.all().size() - stream_optouts);
  for (const TestKind k : for_streams) {
    EXPECT_NE(k, TestKind::LiuLayland);
  }
}

TEST(Registry, CapabilityTableMentionsEveryBackend) {
  const std::string table = BackendRegistry::instance().capability_table();
  for (const BackendInfo& b : BackendRegistry::instance().all()) {
    EXPECT_NE(table.find(b.name), std::string::npos) << b.name;
  }
}

TEST(Registry, RtcBackendsAreRegisteredAndSufficientOnly) {
  // The §3.6 RTC path is reachable through the same registry as every
  // other test; its verdicts are sufficient (never exact).
  EXPECT_FALSE(is_exact(TestKind::RtcCurve));
  EXPECT_FALSE(is_exact(TestKind::DeviEnvelope));
  EXPECT_EQ(std::string(to_string(TestKind::RtcCurve)), "rtc-curve");
  EXPECT_EQ(std::string(to_string(TestKind::DeviEnvelope)), "devi-envelope");
}

}  // namespace
}  // namespace edfkit
