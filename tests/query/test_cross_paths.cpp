/// Cross-validation of the unified query API against the legacy
/// entry points it subsumes: run_test (per kind), run_batch, and the
/// admission ladder preview (batch_analyze --ladder's column set).
#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "admission/controller.hpp"
#include "core/batch.hpp"
#include "query/query.hpp"

namespace edfkit {
namespace {

using testing::paper_random_sets;
using testing::small_random_sets;

TEST(CrossPaths, QueryAgreesWithLegacyRunTestAcrossAllKinds) {
  const AnalyzerOptions legacy_opts;  // defaults on both paths
  for (const double u : {0.6, 0.9, 1.02}) {
    for (const TaskSet& ts : small_random_sets(10, u, /*seed=*/2024)) {
      if (ts.empty()) continue;
      // The legacy path is uniprocessor-only; global backends have no
      // run_test counterpart to agree with.
      for (const TestKind k :
           BackendRegistry::instance().kinds_for(Platform{})) {
        const FeasibilityResult legacy = run_test(ts, k, legacy_opts);
        const Outcome fresh = Query::single(k, params_from_legacy(k, legacy_opts))
                                  .with_certificates(false)
                                  .run(Workload::periodic(ts));
        EXPECT_EQ(legacy.verdict, fresh.verdict)
            << to_string(k) << " U=" << u << "\n" << ts.to_string();
        EXPECT_EQ(legacy.effort(), fresh.analysis.effort()) << to_string(k);
      }
    }
  }
}

TEST(CrossPaths, QueryAgreesOnPaperSizedSets) {
  for (const TaskSet& ts : paper_random_sets(4, 0.95, /*seed=*/31)) {
    for (const TestKind k :
         {TestKind::Dynamic, TestKind::AllApprox, TestKind::Qpa}) {
      EXPECT_EQ(run_test(ts, k).verdict,
                Query::single(k).with_certificates(false)
                    .run(Workload::periodic(ts)).verdict)
          << to_string(k);
    }
  }
}

TEST(CrossPaths, LadderAgreesWithAdmissionLadderPreview) {
  // batch_analyze --ladder previews the admission controller by running
  // the ladder's kinds as batch columns; the ladder policy must reach
  // the same decision as reading those columns in escalation order.
  const AdmissionOptions admission;  // epsilon 0.25, qpa fallback
  const std::vector<TestKind> rungs = admission_ladder_tests(admission);
  ASSERT_EQ(rungs.size(), 3u);

  std::vector<BatchEntry> entries;
  int idx = 0;
  for (const double u : {0.7, 0.97}) {
    for (const TaskSet& ts : small_random_sets(8, u, /*seed=*/99)) {
      if (!ts.empty()) entries.push_back({"s" + std::to_string(idx++), ts});
    }
  }

  BatchConfig cfg;
  cfg.tests = rungs;
  cfg.options.epsilon = admission.epsilon;
  const BatchReport preview = run_batch(entries, cfg);
  EXPECT_TRUE(preview.exact_disagreements.empty());

  for (std::size_t row = 0; row < entries.size(); ++row) {
    const Outcome ladder =
        Query::ladder(admission.exact_fallback, admission.epsilon)
            .with_certificates(false)
            .run(Workload::periodic(entries[row].tasks));
    // First decisive column in escalation order == ladder's decision.
    Verdict expected = Verdict::Unknown;
    for (std::size_t k = 0; k < rungs.size(); ++k) {
      const Verdict v = preview.rows[row].cells[k].verdict;
      if (v != Verdict::Unknown) {
        expected = v;
        break;
      }
    }
    EXPECT_EQ(ladder.verdict, expected) << entries[row].name;
  }
}

TEST(CrossPaths, BatchShimMatchesQueryBatch) {
  std::vector<BatchEntry> entries;
  int idx = 0;
  for (const TaskSet& ts : small_random_sets(6, 0.9, /*seed=*/7)) {
    if (!ts.empty()) entries.push_back({"e" + std::to_string(idx++), ts});
  }
  const BatchConfig cfg;  // legacy default column set
  const BatchReport legacy = run_batch(entries, cfg);

  Query q;
  q.with_policy(ExecPolicy::Batch);
  for (const TestKind k : cfg.tests) {
    q.add(k, params_from_legacy(k, cfg.options));
  }
  const BatchReport fresh = run_batch(entries, q);

  ASSERT_EQ(legacy.rows.size(), fresh.rows.size());
  ASSERT_EQ(legacy.tests, fresh.tests);
  for (std::size_t i = 0; i < legacy.rows.size(); ++i) {
    for (std::size_t k = 0; k < legacy.tests.size(); ++k) {
      EXPECT_EQ(legacy.rows[i].cells[k].verdict,
                fresh.rows[i].cells[k].verdict);
      EXPECT_EQ(legacy.rows[i].cells[k].effort,
                fresh.rows[i].cells[k].effort);
    }
  }
}

TEST(CrossPaths, JsonReportIsEmittedAndNamesEveryTest) {
  std::vector<BatchEntry> entries;
  entries.push_back({"demo \"quoted\"", small_random_sets(1, 0.8).front()});
  const BatchReport r = run_batch(entries, BatchConfig{});
  const std::string json = r.to_json();
  for (const TestKind k : r.tests) {
    EXPECT_NE(json.find(to_string(k)), std::string::npos) << to_string(k);
  }
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace edfkit
