#include "query/workload.hpp"

#include <gtest/gtest.h>

#include "../helpers.hpp"
#include "demand/dbf.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Workload, PeriodicBasics) {
  const Workload w = Workload::periodic(set_of({tk(2, 6, 8), tk(3, 10, 12)}));
  EXPECT_EQ(w.kind(), WorkloadKind::PeriodicTasks);
  EXPECT_FALSE(w.empty());
  EXPECT_EQ(w.source_size(), 2u);
  EXPECT_EQ(w.tasks().size(), 2u);
  EXPECT_THROW((void)w.streams(), std::logic_error);
}

TEST(Workload, DefaultIsEmptyPeriodic) {
  const Workload w;
  EXPECT_EQ(w.kind(), WorkloadKind::PeriodicTasks);
  EXPECT_TRUE(w.empty());
}

TEST(Workload, ImplicitFromTaskSet) {
  // Migration ergonomics: a TaskSet converts without ceremony.
  const Workload w = set_of({tk(1, 4, 8)});
  EXPECT_EQ(w.source_size(), 1u);
}

TEST(Workload, StreamExpansionPreservesDemand) {
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::bursty(100, 3, 4), 5, 30, "burst"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(40), 7, 35, "periodic"});
  const Workload w = Workload::event_streams(streams);
  EXPECT_EQ(w.kind(), WorkloadKind::EventStreams);
  EXPECT_EQ(w.source_size(), 2u);
  // One expanded sporadic task per tuple: 3 burst tuples + 1 periodic.
  EXPECT_EQ(w.tasks().size(), 4u);
  EXPECT_EQ(w.streams().size(), 2u);
  // The expansion is demand-preserving (the §3.6 mapping).
  for (const Time i : {Time{10}, Time{30}, Time{34}, Time{38}, Time{50},
                       Time{100}, Time{134}, Time{200}}) {
    Time direct = 0;
    for (const EventStreamTask& s : streams) direct += s.dbf(i);
    EXPECT_EQ(dbf(w.tasks(), i), direct) << "I=" << i;
  }
}

TEST(Workload, StreamExpansionIsCached) {
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::periodic(20), 3, 15, "only"});
  const Workload w = Workload::event_streams(streams);
  const TaskSet* first = &w.tasks();
  EXPECT_EQ(first, &w.tasks());  // same object, no re-expansion
}

TEST(Workload, EmptyStreamSetIsEmpty) {
  const Workload w = Workload::event_streams({});
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.kind(), WorkloadKind::EventStreams);
}

TEST(Workload, InvalidStreamTaskThrows) {
  std::vector<EventStreamTask> streams;
  streams.push_back(EventStreamTask{EventStream::periodic(20), 0, 15, "bad"});
  EXPECT_THROW((void)Workload::event_streams(streams), std::exception);
}

}  // namespace
}  // namespace edfkit
