#include "query/workload.hpp"

#include <gtest/gtest.h>

#include <span>
#include <thread>
#include <vector>

#include "../helpers.hpp"
#include "demand/dbf.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::tk;

TEST(Workload, PeriodicBasics) {
  const Workload w = Workload::periodic(set_of({tk(2, 6, 8), tk(3, 10, 12)}));
  EXPECT_EQ(w.kind(), WorkloadKind::PeriodicTasks);
  EXPECT_FALSE(w.empty());
  EXPECT_EQ(w.source_size(), 2u);
  EXPECT_EQ(w.tasks().size(), 2u);
  EXPECT_THROW((void)w.streams(), std::logic_error);
}

TEST(Workload, DefaultIsEmptyPeriodic) {
  const Workload w;
  EXPECT_EQ(w.kind(), WorkloadKind::PeriodicTasks);
  EXPECT_TRUE(w.empty());
}

TEST(Workload, ImplicitFromTaskSet) {
  // Migration ergonomics: a TaskSet converts without ceremony.
  const Workload w = set_of({tk(1, 4, 8)});
  EXPECT_EQ(w.source_size(), 1u);
}

TEST(Workload, StreamExpansionPreservesDemand) {
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::bursty(100, 3, 4), 5, 30, "burst"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(40), 7, 35, "periodic"});
  const Workload w = Workload::event_streams(streams);
  EXPECT_EQ(w.kind(), WorkloadKind::EventStreams);
  EXPECT_EQ(w.source_size(), 2u);
  // One expanded sporadic task per tuple: 3 burst tuples + 1 periodic.
  EXPECT_EQ(w.tasks().size(), 4u);
  EXPECT_EQ(w.streams().size(), 2u);
  // The expansion is demand-preserving (the §3.6 mapping).
  for (const Time i : {Time{10}, Time{30}, Time{34}, Time{38}, Time{50},
                       Time{100}, Time{134}, Time{200}}) {
    Time direct = 0;
    for (const EventStreamTask& s : streams) direct += s.dbf(i);
    EXPECT_EQ(dbf(w.tasks(), i), direct) << "I=" << i;
  }
}

TEST(Workload, StreamExpansionIsCached) {
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::periodic(20), 3, 15, "only"});
  const Workload w = Workload::event_streams(streams);
  const TaskSet* first = &w.tasks();
  EXPECT_EQ(first, &w.tasks());  // same object, no re-expansion
}

TEST(Workload, EmptyStreamSetIsEmpty) {
  const Workload w = Workload::event_streams({});
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.kind(), WorkloadKind::EventStreams);
}

TEST(Workload, InvalidStreamTaskThrows) {
  std::vector<EventStreamTask> streams;
  streams.push_back(EventStreamTask{EventStream::periodic(20), 0, 15, "bad"});
  EXPECT_THROW((void)Workload::event_streams(streams), std::exception);
}

TEST(Workload, ConcurrentTasksCallsAreRaceFree) {
  // The stream expansion cache used to be a bare mutable bool + TaskSet
  // (a data race under concurrent tasks()); it is now guarded by a
  // std::once_flag. Hammer it from many threads — under TSan this test
  // is the race detector, and everywhere it checks that every thread
  // sees the same fully expanded set.
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::bursty(100, 3, 4), 5, 30, "burst"});
  streams.push_back(
      EventStreamTask{EventStream::periodic(40), 7, 35, "periodic"});
  for (int round = 0; round < 8; ++round) {
    const Workload w = Workload::event_streams(streams);
    constexpr int kThreads = 8;
    std::vector<const TaskSet*> seen(kThreads, nullptr);
    std::vector<std::size_t> sizes(kThreads, 0);
    {
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&w, &seen, &sizes, i] {
          const TaskSet& ts = w.tasks();
          seen[static_cast<std::size_t>(i)] = &ts;
          sizes[static_cast<std::size_t>(i)] = ts.size();
        });
      }
      for (std::thread& t : threads) t.join();
    }
    for (int i = 0; i < kThreads; ++i) {
      EXPECT_EQ(seen[static_cast<std::size_t>(i)], seen[0]);
      EXPECT_EQ(sizes[static_cast<std::size_t>(i)], 4u);
    }
  }
}

TEST(Workload, CopiesReExpandIndependently) {
  // Copies share the variant but get a fresh expansion cache (a
  // once_flag cannot be copied); both sides must still expand correctly.
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::periodic(20), 3, 15, "only"});
  const Workload a = Workload::event_streams(streams);
  (void)a.tasks();  // populate a's cache
  const Workload b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(b.tasks().size(), a.tasks().size());
  EXPECT_NE(&b.tasks(), &a.tasks());  // caches are independent
  Workload c;
  c = a;
  EXPECT_EQ(c.tasks().size(), a.tasks().size());
}

TEST(WorkloadView, ViewsAreZeroCopyOverSetsAndWorkloads) {
  const TaskSet ts = set_of({tk(2, 6, 8), tk(3, 10, 12)});
  const WorkloadView view(ts);
  EXPECT_EQ(&view.tasks(), &ts);  // zero-copy: the very same object
  EXPECT_EQ(view.kind(), WorkloadKind::PeriodicTasks);
  EXPECT_EQ(view.source_size(), 2u);
  EXPECT_FALSE(view.empty());

  const Workload w = Workload::periodic(ts);
  const WorkloadView wview(w);
  EXPECT_EQ(&wview.tasks(), &w.tasks());
  EXPECT_EQ(wview.to_string(), w.to_string());
}

TEST(WorkloadView, SpanBackedViewMaterializesOnce) {
  const std::vector<Task> raw{tk(1, 4, 8), tk(2, 6, 12)};
  const WorkloadView view{std::span<const Task>(raw)};
  EXPECT_EQ(view.source_size(), 2u);
  const TaskSet* first = &view.tasks();
  EXPECT_EQ(first, &view.tasks());  // built once, then cached
  EXPECT_EQ(view.tasks().size(), 2u);
}

}  // namespace
}  // namespace edfkit
