#include "query/query.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "../helpers.hpp"
#include "analysis/qpa.hpp"

namespace edfkit {
namespace {

using testing::set_of;
using testing::small_random_sets;
using testing::tk;

TaskSet demo_set() {
  return set_of({tk(2, 6, 8), tk(3, 10, 12), tk(4, 20, 24)});
}

// ---------------------------------------------------------- validation

TEST(QueryValidation, RejectsEpsilonOutsideUnitInterval) {
  for (const double eps : {0.0, -0.25, 1.0, 1.5}) {
    EXPECT_THROW((void)Query::single(TestKind::Chakraborty,
                                     ChakrabortyParams{eps})
                     .run(demo_set()),
                 std::invalid_argument)
        << eps;
  }
  EXPECT_NO_THROW((void)Query::single(TestKind::Chakraborty,
                                      ChakrabortyParams{0.5})
                      .run(demo_set()));
}

TEST(QueryValidation, RejectsSuperposLevelBelowOne) {
  EXPECT_THROW((void)Query::single(TestKind::SuperPos, SuperPosParams{0})
                   .run(demo_set()),
               std::invalid_argument);
  EXPECT_THROW((void)Query::single(TestKind::SuperPos, SuperPosParams{-3})
                   .run(demo_set()),
               std::invalid_argument);
}

TEST(QueryValidation, RejectsZeroTaskWorkloads) {
  EXPECT_THROW((void)Query::single(TestKind::Qpa).run(Workload()),
               std::invalid_argument);
  EXPECT_THROW(
      (void)Query::single(TestKind::Qpa).run(Workload::event_streams({})),
      std::invalid_argument);
}

TEST(QueryValidation, RejectsMismatchedParamsVariant) {
  // epsilon params handed to the superpos backend: caught at the
  // boundary instead of silently running with defaults.
  EXPECT_THROW((void)Query::single(TestKind::SuperPos,
                                   ChakrabortyParams{0.25})
                   .run(demo_set()),
               std::invalid_argument);
}

TEST(QueryValidation, RejectsEmptySelectionAndBadLadderFallback) {
  Query empty;
  EXPECT_THROW((void)empty.run(demo_set()), std::invalid_argument);
  EXPECT_THROW((void)default_ladder_kinds(TestKind::Devi),
               std::invalid_argument);
}

TEST(QueryValidation, SingleRejectsUnsupportedWorkloadKind) {
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::periodic(20), 3, 15, "s"});
  const Workload w = Workload::event_streams(streams);
  EXPECT_THROW((void)Query::single(TestKind::LiuLayland).run(w),
               std::invalid_argument);
}

// ------------------------------------------------------------ policies

TEST(QueryPolicy, SingleMatchesDirectBackend) {
  const TaskSet ts = demo_set();
  const Outcome out = Query::single(TestKind::Qpa).run(ts);
  EXPECT_TRUE(out.decided);
  EXPECT_EQ(out.decided_by, TestKind::Qpa);
  EXPECT_EQ(out.verdict, Verdict::Feasible);
  EXPECT_EQ(out.attempts.size(), 1u);
}

TEST(QueryPolicy, LadderEscalatesAndStopsAtFirstDecision) {
  // This easy set is settled before the exact rung.
  const Outcome easy = Query::ladder().run(set_of({tk(1, 8, 8)}));
  EXPECT_TRUE(easy.decided);
  EXPECT_EQ(easy.verdict, Verdict::Feasible);
  EXPECT_LT(easy.attempts.size(), default_ladder_kinds().size());

  // A borderline-infeasible set must escalate to the exact fallback.
  const TaskSet hard = set_of({tk(3, 4, 8), tk(5, 6, 12)});
  const Outcome esc = Query::ladder().run(hard);
  EXPECT_TRUE(esc.decided);
  EXPECT_EQ(esc.verdict, Verdict::Infeasible);
  EXPECT_EQ(esc.decided_by, TestKind::Qpa);
  EXPECT_EQ(esc.attempts.size(), default_ladder_kinds().size());
}

TEST(QueryPolicy, LadderSkipsStreamIncapableBackends) {
  std::vector<EventStreamTask> streams;
  streams.push_back(
      EventStreamTask{EventStream::bursty(100, 2, 5), 4, 30, "b"});
  const Outcome out = Query::ladder().run(Workload::event_streams(streams));
  ASSERT_EQ(out.skipped.size(), 1u);
  EXPECT_EQ(out.skipped.front(), TestKind::LiuLayland);
  EXPECT_TRUE(out.decided);
}

TEST(QueryPolicy, StopTokenCancelsEveryLongRunningBackend) {
  // Each long-running exact backend observes a pre-raised token and
  // returns Unknown + cancelled instead of scanning. The set is tight
  // enough (U ~ 0.92) that every test's bound admits real iterations —
  // a loose set would return Feasible before reaching a checkpoint.
  const TaskSet ts = set_of({tk(4, 5, 8), tk(5, 11, 12)});
  std::atomic<bool> stop{true};
  ProcessorDemandOptions pd;
  pd.stop = &stop;
  const FeasibilityResult r1 = processor_demand_test(ts, pd);
  EXPECT_TRUE(r1.cancelled);
  EXPECT_EQ(r1.verdict, Verdict::Unknown);
  const FeasibilityResult r2 = qpa_test(ts, &stop);
  EXPECT_TRUE(r2.cancelled);
  EXPECT_EQ(r2.verdict, Verdict::Unknown);
  DynamicTestOptions dy;
  dy.stop = &stop;
  const FeasibilityResult r3 = dynamic_error_test(ts, dy);
  EXPECT_TRUE(r3.cancelled);
  EXPECT_EQ(r3.verdict, Verdict::Unknown);
  AllApproxOptions aa;
  aa.stop = &stop;
  const FeasibilityResult r4 = all_approx_test(ts, aa);
  EXPECT_TRUE(r4.cancelled);
  EXPECT_EQ(r4.verdict, Verdict::Unknown);
}

TEST(QueryPolicy, UserStopTokensSurviveNonPortfolioPolicies) {
  // A caller-supplied token in the typed params must reach the backend
  // under Single too (the portfolio's own arming must not clobber it).
  const TaskSet ts = set_of({tk(4, 5, 8), tk(5, 11, 12)});
  std::atomic<bool> stop{true};
  ProcessorDemandOptions pd;
  pd.stop = &stop;
  const Outcome out = Query::single(TestKind::ProcessorDemand, pd)
                          .with_certificates(false)
                          .run(ts);
  EXPECT_TRUE(out.analysis.cancelled);
  EXPECT_EQ(out.verdict, Verdict::Unknown);
}

TEST(QueryPolicy, PortfolioLosersObserveTheStopToken) {
  // A processor-demand backend pointed at an astronomically distant
  // bound would walk ~1e14 deadlines; QPA decides the same (feasible)
  // set in microseconds. The portfolio's stop token must reach the
  // loser: it returns early with `cancelled` after a tiny fraction of
  // its bound. (The iteration cap is a safety valve so a cancellation
  // regression fails this test in seconds instead of hanging CI.)
  const TaskSet ts = set_of({tk(1, 4, 8), tk(2, 8, 16)});
  ProcessorDemandOptions slow;
  slow.bound = Time{1'000'000'000'000'000};
  slow.max_iterations = 500'000'000;
  const Outcome out = Query()
                          .add(TestKind::Qpa)
                          .add(TestKind::ProcessorDemand, slow)
                          .with_policy(ExecPolicy::Portfolio)
                          .with_certificates(false)
                          .run(ts);
  ASSERT_TRUE(out.decided);
  EXPECT_EQ(out.verdict, Verdict::Feasible);
  const BackendAttempt* pd = nullptr;
  for (const BackendAttempt& a : out.attempts) {
    if (a.kind == TestKind::ProcessorDemand) pd = &a;
  }
  ASSERT_NE(pd, nullptr);
  EXPECT_TRUE(pd->result.cancelled);
  EXPECT_EQ(pd->result.verdict, Verdict::Unknown);
  EXPECT_LT(pd->result.iterations, 500'000'000u);
}

TEST(QueryPolicy, PortfolioRacesExactBackendsToAgreement) {
  for (const TaskSet& ts : small_random_sets(6, 0.9, /*seed=*/5)) {
    if (ts.empty()) continue;
    const Outcome out = Query::portfolio().run(ts);
    ASSERT_TRUE(out.decided);
    EXPECT_TRUE(is_exact(out.decided_by));
    // Every exact attempt that finished decisively must agree.
    for (const BackendAttempt& a : out.attempts) {
      if (a.result.verdict != Verdict::Unknown) {
        EXPECT_EQ(a.result.verdict, out.verdict) << to_string(a.kind);
      }
    }
    EXPECT_TRUE(verify(ts, out.certificate).valid);
  }
}

TEST(QueryPolicy, BatchRunsEverySelectedBackend) {
  const Outcome out =
      Query::batch(all_test_kinds()).with_certificates(false).run(demo_set());
  // The global backends are platform-filtered out of a uniprocessor run
  // (skipped, not attempted); every uniprocessor backend runs.
  const std::size_t uni =
      BackendRegistry::instance().kinds_for(Platform{}).size();
  EXPECT_EQ(out.attempts.size(), uni);
  EXPECT_EQ(out.skipped.size(), all_test_kinds().size() - uni);
  EXPECT_TRUE(out.decided);
  EXPECT_TRUE(is_exact(out.decided_by));  // exact verdicts take precedence
  EXPECT_EQ(out.verdict, Verdict::Feasible);
}

TEST(QueryPolicy, ResourceLimitsReachTheProcessorDemandBackend) {
  // A period-ratio-heavy set forces many PD iterations; the query-level
  // cap turns the verdict into a bounded Unknown.
  const TaskSet ts = set_of({tk(2, 8, 20), tk(3, 25, 30), tk(4, 40, 50),
                             tk(6, 60, 70), tk(9, 90, 100),
                             tk(14, 140, 150), tk(20, 190, 200),
                             tk(30, 290, 300), tk(46, 390, 400),
                             tk(72, 580, 600)});
  ResourceLimits limits;
  limits.max_iterations = 2;
  const Outcome capped = Query::single(TestKind::ProcessorDemand)
                             .with_limits(limits)
                             .run(ts);
  EXPECT_EQ(capped.verdict, Verdict::Unknown);
  EXPECT_FALSE(capped.certificate.present());

  const Outcome open = Query::single(TestKind::ProcessorDemand).run(ts);
  EXPECT_EQ(open.verdict, Verdict::Feasible);
}

TEST(QueryPolicy, CertificatesCanBeDisabled) {
  const Outcome out = Query::single(TestKind::Qpa)
                          .with_certificates(false)
                          .run(demo_set());
  EXPECT_TRUE(out.decided);
  EXPECT_FALSE(out.certificate.present());
}

TEST(QueryPolicy, OutcomeToStringMentionsVerdictAndBackend) {
  const Outcome out = Query::single(TestKind::Qpa).run(demo_set());
  const std::string s = out.to_string();
  EXPECT_NE(s.find("feasible"), std::string::npos);
  EXPECT_NE(s.find("qpa"), std::string::npos);
  EXPECT_NE(s.find("certificate"), std::string::npos);
}

}  // namespace
}  // namespace edfkit
