#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "helpers.hpp"
#include "query/certificate.hpp"
#include "util/random.hpp"

namespace edfkit::net {
namespace {

using edfkit::testing::tk;

std::vector<std::uint8_t> framed(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, payload);
  return wire;
}

// ------------------------------------------------------------ framing

TEST(Framing, RoundTripAndExactConsumption) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<std::uint8_t> wire = framed(payload);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + payload.size());

  FrameView view;
  ASSERT_EQ(try_parse_frame(wire, view), FrameStatus::Ok);
  EXPECT_EQ(view.consumed, wire.size());
  ASSERT_EQ(view.payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         view.payload.begin()));
}

TEST(Framing, EveryTruncationNeedsMore) {
  // A torn frame must never parse, never consume, and never error —
  // at *every* possible cut point.
  const std::vector<std::uint8_t> wire = framed({9, 8, 7, 6});
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameView view;
    const std::span<const std::uint8_t> prefix(wire.data(), cut);
    EXPECT_EQ(try_parse_frame(prefix, view), FrameStatus::NeedMore)
        << "cut at " << cut;
  }
}

TEST(Framing, BackToBackFramesParseOneAtATime) {
  std::vector<std::uint8_t> wire = framed({1});
  append_frame(wire, std::vector<std::uint8_t>{2, 2});
  FrameView first;
  ASSERT_EQ(try_parse_frame(wire, first), FrameStatus::Ok);
  EXPECT_EQ(first.payload.size(), 1u);
  const std::span<const std::uint8_t> rest(wire.data() + first.consumed,
                                           wire.size() - first.consumed);
  FrameView second;
  ASSERT_EQ(try_parse_frame(rest, second), FrameStatus::Ok);
  EXPECT_EQ(second.payload.size(), 2u);
  EXPECT_EQ(first.consumed + second.consumed, wire.size());
}

TEST(Framing, OversizedLengthPrefixIsUnrecoverable) {
  std::vector<std::uint8_t> wire = framed({1, 2, 3});
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(wire.data(), &huge, sizeof(huge));
  FrameView view;
  EXPECT_EQ(try_parse_frame(wire, view), FrameStatus::TooLarge);
}

TEST(Framing, AnySingleBitFlipInPayloadFailsCrc) {
  const std::vector<std::uint8_t> wire = framed({0xAA, 0x55, 0x00, 0xFF});
  for (std::size_t byte = kFrameHeaderBytes; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = wire;
      bad[byte] ^= static_cast<std::uint8_t>(1u << bit);
      FrameView view;
      EXPECT_EQ(try_parse_frame(bad, view), FrameStatus::BadCrc)
          << "byte " << byte << " bit " << bit;
    }
  }
}

// ------------------------------------------------------------- codecs

TEST(Codec, HelloRoundTrip) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Hello);
  req.hdr.flags = kFlagBatchFuse | kFlagCertifiedTenant;
  req.hdr.request_id = 0xDEADBEEFCAFE;
  req.tenant = "tenant-A_1";
  req.durability = 2;
  req.fsync_interval = 128;
  req.platform_m = 4;  // v2: global admission over 4 processors

  const NetRequest out = decode_request(encode_request(req));
  EXPECT_EQ(out.hdr.op, req.hdr.op);
  EXPECT_EQ(out.hdr.flags, req.hdr.flags);
  EXPECT_EQ(out.hdr.request_id, req.hdr.request_id);
  EXPECT_EQ(out.tenant, req.tenant);
  EXPECT_EQ(out.durability, req.durability);
  EXPECT_EQ(out.fsync_interval, req.fsync_interval);
  EXPECT_EQ(out.platform_m, 4u);
}

TEST(Codec, V1HelloDefaultsToUniprocessor) {
  // A v1 peer's HELLO ends after fsync_interval (or after the client
  // id); both shapes must decode with platform_m = 1 — the v2 fields
  // are strictly trailing.
  ByteWriter w;
  w.u8(1);  // version 1
  w.u8(static_cast<std::uint8_t>(NetOp::Hello));
  w.u8(0);
  w.u8(0);
  w.u64(9);
  w.str("legacy");
  w.u8(0);
  w.u64(64);
  const NetRequest bare = decode_request(w.data());
  EXPECT_EQ(bare.tenant, "legacy");
  EXPECT_EQ(bare.platform_m, 1u);

  w.str("client-7");  // dedup-era HELLO, still pre-platform
  const NetRequest with_client = decode_request(w.data());
  EXPECT_EQ(with_client.client, "client-7");
  EXPECT_EQ(with_client.platform_m, 1u);

  // And a v1-shaped HELLO *response* (ends at highest_applied).
  ByteWriter r;
  r.u8(1);
  r.u8(static_cast<std::uint8_t>(NetOp::Hello));
  r.u8(0);
  r.u8(0);
  r.u64(9);
  r.u64(10);  // base_lsn
  r.u64(20);  // lsn
  r.u64(30);  // epoch
  r.u64(0);   // highest_applied
  const NetResponse resp = decode_response(r.data());
  EXPECT_EQ(resp.lsn, 20u);
  EXPECT_EQ(resp.platform_m, 1u);
}

TEST(Codec, AdmitAndGroupRoundTrip) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Admit);
  req.hdr.flags = kFlagWantCertificate;
  req.task = tk(3, 17, 40);
  req.task.name = "camera";
  NetRequest out = decode_request(encode_request(req));
  EXPECT_EQ(out.task.wcet, 3);
  EXPECT_EQ(out.task.deadline, 17);
  EXPECT_EQ(out.task.period, 40);
  EXPECT_EQ(out.task.name, "camera");

  NetRequest grp;
  grp.hdr.op = static_cast<std::uint8_t>(NetOp::AdmitGroup);
  grp.group = {tk(1, 10, 20), tk(2, 30, 60), tk(5, 50, 100)};
  out = decode_request(encode_request(grp));
  ASSERT_EQ(out.group.size(), 3u);
  EXPECT_EQ(out.group[1].wcet, 2);
  EXPECT_EQ(out.group[2].period, 100);
}

TEST(Codec, RemoveOpsRoundTrip) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::Remove);
  req.id = 42;
  EXPECT_EQ(decode_request(encode_request(req)).id, 42u);

  NetRequest grp;
  grp.hdr.op = static_cast<std::uint8_t>(NetOp::RemoveGroup);
  grp.ids = {7, 9, 11, 13};
  const NetRequest out = decode_request(encode_request(grp));
  EXPECT_EQ(out.ids, grp.ids);
}

TEST(Codec, ResponseRoundTripPerStatus) {
  NetResponse ok;
  ok.hdr.op = static_cast<std::uint8_t>(NetOp::AdmitGroup);
  ok.hdr.status = static_cast<std::uint8_t>(NetStatus::Ok);
  ok.hdr.request_id = 77;
  ok.ids = {100, 101, 102};
  ok.rung = 2;
  ok.verdict = 1;
  NetResponse out = decode_response(encode_response(ok));
  EXPECT_EQ(out.hdr.request_id, 77u);
  EXPECT_EQ(out.ids, ok.ids);
  EXPECT_EQ(out.rung, 2);

  NetResponse shed;
  shed.hdr.op = static_cast<std::uint8_t>(NetOp::Admit);
  shed.hdr.status = static_cast<std::uint8_t>(NetStatus::Shed);
  shed.retry_after_ms = 250;
  out = decode_response(encode_response(shed));
  EXPECT_EQ(out.retry_after_ms, 250u);

  NetResponse stats;
  stats.hdr.op = static_cast<std::uint8_t>(NetOp::Stats);
  stats.stats.residents = 12;
  stats.stats.utilization = 0.625;
  stats.stats_json = "{\"arrivals\":3}";
  stats.platform_m = 8;
  out = decode_response(encode_response(stats));
  EXPECT_EQ(out.stats.residents, 12u);
  EXPECT_DOUBLE_EQ(out.stats.utilization, 0.625);
  EXPECT_EQ(out.stats_json, stats.stats_json);
  EXPECT_EQ(out.platform_m, 8u);

  NetResponse hello;
  hello.hdr.op = static_cast<std::uint8_t>(NetOp::Hello);
  hello.base_lsn = 640;
  hello.lsn = 700;
  hello.platform_m = 2;
  out = decode_response(encode_response(hello));
  EXPECT_EQ(out.base_lsn, 640u);
  EXPECT_EQ(out.lsn, 700u);
  EXPECT_EQ(out.platform_m, 2u);
}

TEST(Codec, CertificateRidesTheResponse) {
  // Build a real certificate and check it survives the wire bit-exact
  // (the client re-verifies it, so every field matters).
  const TaskSet ts = testing::set_of({tk(1, 10, 20), tk(2, 20, 40)});
  const auto cert = build_feasibility_certificate(ts);
  ASSERT_TRUE(cert.has_value());

  NetResponse resp;
  resp.hdr.op = static_cast<std::uint8_t>(NetOp::Admit);
  resp.hdr.flags = kFlagHasCertificate;
  resp.id = 5;
  resp.certificate = *cert;
  const NetResponse out = decode_response(encode_response(resp));
  ASSERT_TRUE((out.hdr.flags & kFlagHasCertificate) != 0);
  EXPECT_EQ(out.certificate.kind, cert->kind);
  EXPECT_EQ(out.certificate.borders, cert->borders);
  EXPECT_TRUE(verify(ts, out.certificate).valid);
}

TEST(Codec, MultiprocessorCertificateRidesTheResponse) {
  // The v2 trailing fields (processors, multi_test) must survive the
  // wire: a global-mode client re-verifies the certificate locally,
  // and verification recomputes the named test on the named platform.
  Certificate cert;
  cert.kind = CertificateKind::MultiFeasibleWindow;
  cert.multi_test = MultiTest::Rta;
  cert.processors = 4;
  cert.borders = {7, 12, 31};

  NetResponse resp;
  resp.hdr.op = static_cast<std::uint8_t>(NetOp::Admit);
  resp.hdr.flags = kFlagHasCertificate;
  resp.certificate = cert;
  const NetResponse out = decode_response(encode_response(resp));
  EXPECT_EQ(out.certificate.kind, cert.kind);
  EXPECT_EQ(out.certificate.multi_test, MultiTest::Rta);
  EXPECT_EQ(out.certificate.processors, 4u);
  EXPECT_EQ(out.certificate.borders, cert.borders);
}

TEST(Codec, ShortBodyThrowsOutOfRange) {
  // A frame whose CRC is fine but whose body is shorter than the op
  // demands must throw (the server answers BadRequest), not read junk.
  for (const NetOp op : {NetOp::Hello, NetOp::Admit, NetOp::AdmitGroup,
                         NetOp::Remove, NetOp::RemoveGroup}) {
    NetRequest req;
    req.hdr.op = static_cast<std::uint8_t>(op);
    req.tenant = "t";
    req.group = {tk(1, 5, 10)};
    req.ids = {1};
    std::vector<std::uint8_t> payload = encode_request(req);
    payload.resize(kMessageHeaderBytes);  // keep the header, drop the body
    if (op == NetOp::Hello || op == NetOp::Admit) {
      EXPECT_THROW((void)decode_request(payload), std::out_of_range)
          << to_string(op);
    } else {
      // Count-prefixed bodies: also try lying about the count.
      EXPECT_THROW((void)decode_request(payload), std::out_of_range)
          << to_string(op);
    }
  }
}

TEST(Codec, CountPrefixCannotOverrunTheBody) {
  // An AdmitGroup whose count claims more tasks than the body could
  // possibly hold must throw, not allocate or scan past the end.
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::AdmitGroup);
  req.group = {tk(1, 5, 10)};
  std::vector<std::uint8_t> payload = encode_request(req);
  const std::uint32_t lie = 0x00FFFFFF;
  std::memcpy(payload.data() + kMessageHeaderBytes, &lie, sizeof(lie));
  EXPECT_THROW((void)decode_request(payload), std::out_of_range);
}

TEST(Codec, UnknownOpDecodesHeaderOnly) {
  NetRequest req;
  req.hdr.op = 99;
  req.hdr.request_id = 1234;
  const NetRequest out = decode_request(encode_request(req));
  EXPECT_EQ(out.hdr.op, 99);
  EXPECT_EQ(out.hdr.request_id, 1234u);
}

TEST(Codec, RandomRequestRoundTripFuzz) {
  // Property fuzz: arbitrary-but-valid requests survive
  // encode -> frame -> parse -> decode unchanged.
  Rng rng(2005);
  const std::uint64_t iters = 200 * testing::fuzz_multiplier();
  for (std::uint64_t i = 0; i < iters; ++i) {
    NetRequest req;
    const auto op = static_cast<NetOp>(1 + rng.uniform_int(0, 6));
    req.hdr.op = static_cast<std::uint8_t>(op);
    req.hdr.flags = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
    req.hdr.request_id = rng.engine()();
    switch (op) {
      case NetOp::Hello:
        req.tenant = "f" + std::to_string(rng.uniform_int(0, 1 << 30));
        req.durability = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
        req.fsync_interval = static_cast<std::uint64_t>(
            rng.uniform_int(1, 1 << 20));
        req.platform_m =
            static_cast<std::uint32_t>(rng.uniform_int(1, 64));
        break;
      case NetOp::Admit:
        req.task = tk(1 + rng.uniform_int(0, 99),
                      100 + rng.uniform_int(0, 899),
                      1000 + rng.uniform_int(0, 9000));
        break;
      case NetOp::AdmitGroup:
        for (int k = rng.uniform_int(0, 8); k > 0; --k) {
          req.group.push_back(tk(1 + rng.uniform_int(0, 9),
                                 10 + rng.uniform_int(0, 89),
                                 100 + rng.uniform_int(0, 900)));
        }
        break;
      case NetOp::Remove:
        req.id = rng.engine()();
        break;
      case NetOp::RemoveGroup:
        for (int k = rng.uniform_int(0, 16); k > 0; --k) {
          req.ids.push_back(rng.engine()());
        }
        break;
      case NetOp::Stats:
      case NetOp::Ping:
        break;
    }

    std::vector<std::uint8_t> wire;
    append_frame(wire, encode_request(req));
    FrameView view;
    ASSERT_EQ(try_parse_frame(wire, view), FrameStatus::Ok);
    const NetRequest out = decode_request(view.payload);
    EXPECT_EQ(out.hdr.op, req.hdr.op);
    EXPECT_EQ(out.hdr.request_id, req.hdr.request_id);
    EXPECT_EQ(out.tenant, req.tenant);
    EXPECT_EQ(out.platform_m, req.platform_m);
    EXPECT_EQ(out.ids, req.ids);
    ASSERT_EQ(out.group.size(), req.group.size());
    for (std::size_t g = 0; g < req.group.size(); ++g) {
      EXPECT_EQ(out.group[g].wcet, req.group[g].wcet);
      EXPECT_EQ(out.group[g].deadline, req.group[g].deadline);
      EXPECT_EQ(out.group[g].period, req.group[g].period);
    }
  }
}

// ----------------------------------------------------- repl op codecs

TEST(Codec, ReplHelloRoundTrip) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::ReplHello);
  req.hdr.request_id = 9;
  req.tenant = "pc";
  req.durability = 2;  // FsyncPolicy::EveryN
  req.fsync_interval = 32;
  const NetRequest out = decode_request(encode_request(req));
  EXPECT_EQ(out.hdr.op, req.hdr.op);
  EXPECT_EQ(out.tenant, "pc");
  EXPECT_EQ(out.durability, req.durability);
  EXPECT_EQ(out.fsync_interval, 32u);
}

TEST(Codec, ReplAppendRoundTrip) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::ReplAppend);
  req.tenant = "pc";
  req.repl_lsn = 1234;
  req.repl_records = {{0x01, 0x02, 0x03}, {}, {0xff}};
  req.digest_lsn = 1237;
  req.digest = 0xdeadbeef;
  const NetRequest out = decode_request(encode_request(req));
  EXPECT_EQ(out.repl_lsn, 1234u);
  EXPECT_EQ(out.repl_records, req.repl_records);
  EXPECT_EQ(out.digest_lsn, 1237u);
  EXPECT_EQ(out.digest, 0xdeadbeefu);

  // A 0-record append with a digest is the idle pure-check shape.
  req.repl_records.clear();
  const NetRequest pure = decode_request(encode_request(req));
  EXPECT_TRUE(pure.repl_records.empty());
  EXPECT_EQ(pure.digest_lsn, 1237u);
}

TEST(Codec, ReplSnapshotRoundTrip) {
  NetRequest req;
  req.hdr.op = static_cast<std::uint8_t>(NetOp::ReplSnapshot);
  req.tenant = "pc";
  req.repl_lsn = 77;
  req.repl_snapshot = {0xaa, 0xbb, 0xcc, 0xdd};
  req.repl_dedup = {0x11};
  const NetRequest out = decode_request(encode_request(req));
  EXPECT_EQ(out.repl_lsn, 77u);
  EXPECT_EQ(out.repl_snapshot, req.repl_snapshot);
  EXPECT_EQ(out.repl_dedup, req.repl_dedup);
}

TEST(Codec, ReplAckAndPromoteResponsesRoundTrip) {
  NetResponse ack;
  ack.hdr.op = static_cast<std::uint8_t>(NetOp::ReplAppend);
  ack.hdr.status = static_cast<std::uint8_t>(NetStatus::Ok);
  ack.base_lsn = 64;
  ack.lsn = 96;
  ack.repl_flags = kReplNeedSnapshot | kReplDiverged;
  NetResponse out = decode_response(encode_response(ack));
  EXPECT_EQ(out.base_lsn, 64u);
  EXPECT_EQ(out.lsn, 96u);
  EXPECT_EQ(out.repl_flags, kReplNeedSnapshot | kReplDiverged);

  NetResponse prom;
  prom.hdr.op = static_cast<std::uint8_t>(NetOp::Promote);
  prom.hdr.status = static_cast<std::uint8_t>(NetStatus::Ok);
  prom.promoted = 3;
  out = decode_response(encode_response(prom));
  EXPECT_EQ(out.promoted, 3u);
}

}  // namespace
}  // namespace edfkit::net
